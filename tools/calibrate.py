#!/usr/bin/env python3
"""Cost-model sensitivity sweeps.

Maintaining the calibration (DESIGN.md §8) means knowing which constants
each experiment is sensitive to.  This tool re-runs a small experiment
while sweeping one `CostModel` constant and prints the response curve.

Examples:

    python tools/calibrate.py --constant scone_fiber_resume_quantum \
        --values 60e-6,120e-6,240e-6 --experiment ycsb-distributed
    python tools/calibrate.py --constant encrypt_setup \
        --values 0.2e-6,0.4e-6,0.8e-6 --experiment recovery
"""

from __future__ import annotations

import argparse
import dataclasses

from repro.config import ClusterConfig, CostModel, PROFILES


def run_experiment(name: str, config: ClusterConfig, profile_name: str):
    profile = PROFILES[profile_name]
    if name == "ycsb-distributed":
        from repro.core import TreatyCluster
        from repro.bench.metrics import MetricsCollector
        from repro.workloads import YcsbConfig, bulk_load, run_ycsb

        cluster = TreatyCluster(profile=profile, config=config).start()
        ycsb = YcsbConfig(read_proportion=0.2, num_keys=4_000)
        cluster.run(bulk_load(cluster, ycsb), name="load")
        metrics = MetricsCollector()
        run_ycsb(cluster, ycsb, metrics, num_clients=48, duration=0.25, warmup=0.05)
        return {
            "tps": metrics.throughput(),
            "lat_ms": metrics.mean_latency() * 1e3,
        }
    if name == "ycsb-single":
        from repro.core import TreatyCluster
        from repro.bench.metrics import MetricsCollector
        from repro.workloads import YcsbConfig, bulk_load, run_ycsb

        cluster = TreatyCluster(profile=profile, config=config, num_nodes=1).start()
        ycsb = YcsbConfig(read_proportion=0.2, num_keys=4_000)
        cluster.run(bulk_load(cluster, ycsb), name="load")
        metrics = MetricsCollector()
        run_ycsb(cluster, ycsb, metrics, num_clients=16, duration=0.25, warmup=0.05)
        return {
            "tps": metrics.throughput(),
            "lat_ms": metrics.mean_latency() * 1e3,
        }
    if name == "recovery":
        from repro.bench.harness import recovery_experiment

        seconds, log_bytes = recovery_experiment(
            profile, num_entries=10_000
        )
        return {"recovery_ms": seconds * 1e3, "log_MiB": log_bytes / 1048576.0}
    if name == "network":
        from repro.bench.netbench import network_throughput

        return {
            "erpc_scone_1460_gbps": network_throughput(
                "erpc-scone", 1460, duration=1e-3, config=config
            )
        }
    raise SystemExit("unknown experiment %r" % name)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--constant", required=True,
                        help="CostModel field to sweep")
    parser.add_argument("--values", required=True,
                        help="comma-separated values")
    parser.add_argument(
        "--experiment",
        default="ycsb-distributed",
        choices=["ycsb-distributed", "ycsb-single", "recovery", "network"],
    )
    parser.add_argument("--profile", default="Treaty w/ Enc w/ Stab",
                        choices=sorted(PROFILES))
    args = parser.parse_args()

    field_names = {f.name for f in dataclasses.fields(CostModel)}
    if args.constant not in field_names:
        raise SystemExit("unknown CostModel constant %r" % args.constant)

    baseline = getattr(CostModel(), args.constant)
    print("sweeping %s (default %s) on %s [%s]" % (
        args.constant, baseline, args.experiment, args.profile))
    for raw in args.values.split(","):
        value = type(baseline)(float(raw))
        costs = CostModel().with_overrides(**{args.constant: value})
        config = ClusterConfig(costs=costs)
        result = run_experiment(args.experiment, config, args.profile)
        cells = "  ".join("%s=%.3f" % (k, v) for k, v in result.items())
        print("  %s=%-12s %s" % (args.constant, raw, cells))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
