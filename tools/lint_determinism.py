#!/usr/bin/env python3
"""Determinism guard: no wall-clock or ambient randomness in the sim.

Every run of the simulator must be a pure function of its seed — that is
what makes traces byte-identical and bugs replayable.  This lint fails
if any module under ``src/repro`` imports ``time`` or ``random``
directly; :mod:`repro.sim.rng` is the single sanctioned wrapper (it
derives streams from explicit seeds and never touches global state).

Usage: ``python tools/lint_determinism.py [src-root]`` — exits non-zero
and lists offenders if any are found.
"""

from __future__ import annotations

import ast
import os
import sys

BANNED = {"time", "random"}
ALLOWED_FILES = {os.path.join("repro", "sim", "rng.py")}


def banned_imports(path: str) -> list:
    with open(path) as fp:
        tree = ast.parse(fp.read(), filename=path)
    offenses = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in BANNED:
                    offenses.append((node.lineno, "import %s" % alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module and \
                    node.module.split(".")[0] in BANNED:
                offenses.append(
                    (node.lineno, "from %s import ..." % node.module)
                )
    return offenses


def main(argv: list) -> int:
    root = argv[1] if len(argv) > 1 else "src"
    failures = []
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, "repro")):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relative = os.path.relpath(path, root)
            if relative in ALLOWED_FILES:
                continue
            for lineno, what in banned_imports(path):
                failures.append("%s:%d: %s" % (path, lineno, what))
    if failures:
        print("determinism lint: banned wall-clock/randomness imports "
              "(only repro/sim/rng.py may import them):")
        for failure in failures:
            print("  " + failure)
        return 1
    print("determinism lint: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
