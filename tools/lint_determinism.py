#!/usr/bin/env python3
"""Determinism guard: no wall-clock or ambient randomness in the sim.

Every run of the simulator must be a pure function of its seed — that is
what makes traces byte-identical and bugs replayable.  This lint fails
if any module under ``src/repro`` imports ``time`` or ``random``
directly; :mod:`repro.sim.rng` is the single sanctioned wrapper (it
derives streams from explicit seeds and never touches global state),
and :mod:`repro.mc.explorer` may import ``time`` for its *search*
budget only (``--budget 60s`` bounds wall-clock exploration; every
simulated world it explores stays seed-deterministic).

The model checker gets one extra rule: modules under ``src/repro/mc``
must not import :mod:`repro.sim.rng` either.  The checker's whole
premise is that a run is a pure function of the choice trace — a
controller or digest drawing from an RNG stream would silently break
trace replay.

Usage: ``python tools/lint_determinism.py [src-root]`` — exits non-zero
and lists offenders if any are found.
"""

from __future__ import annotations

import ast
import os
import sys

BANNED = {"time", "random"}
ALLOWED_FILES = {
    os.path.join("repro", "sim", "rng.py"),
    # wall-clock use is confined to the exploration budget; the explored
    # worlds themselves are deterministic (see the module docstring).
    os.path.join("repro", "mc", "explorer.py"),
}
#: modules under this prefix must not pull seeded randomness either —
#: a model-checking run must be a pure function of its choice trace.
MC_PREFIX = os.path.join("repro", "mc") + os.sep
MC_BANNED_MODULES = {"repro.sim.rng"}


def banned_imports(path: str, relative: str) -> list:
    with open(path) as fp:
        tree = ast.parse(fp.read(), filename=path)
    in_mc = relative.startswith(MC_PREFIX)
    allowed = relative in ALLOWED_FILES
    offenses = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if not allowed and alias.name.split(".")[0] in BANNED:
                    offenses.append((node.lineno, "import %s" % alias.name))
                if in_mc and alias.name in MC_BANNED_MODULES:
                    offenses.append(
                        (node.lineno,
                         "import %s (mc must be trace-pure)" % alias.name)
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module:
                if not allowed and node.module.split(".")[0] in BANNED:
                    offenses.append(
                        (node.lineno, "from %s import ..." % node.module)
                    )
                if in_mc and node.module in MC_BANNED_MODULES:
                    offenses.append(
                        (node.lineno,
                         "from %s import ... (mc must be trace-pure)"
                         % node.module)
                    )
            elif in_mc and node.level > 0 and node.module and \
                    node.module.endswith("sim.rng"):
                offenses.append(
                    (node.lineno,
                     "relative import of sim.rng (mc must be trace-pure)")
                )
    return offenses


def main(argv: list) -> int:
    root = argv[1] if len(argv) > 1 else "src"
    failures = []
    for dirpath, _dirnames, filenames in os.walk(os.path.join(root, "repro")):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relative = os.path.relpath(path, root)
            for lineno, what in banned_imports(path, relative):
                failures.append("%s:%d: %s" % (path, lineno, what))
    if failures:
        print("determinism lint: banned wall-clock/randomness imports "
              "(see tools/lint_determinism.py docstring for the rules):")
        for failure in failures:
            print("  " + failure)
        return 1
    print("determinism lint: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
