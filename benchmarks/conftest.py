"""Shared helpers for the figure/table benchmarks.

Each benchmark regenerates one of the paper's figures or tables.  The
simulation measures *simulated* time, so pytest-benchmark's wall-clock
numbers only reflect how long the simulation took to run; the reproduced
quantities (throughput ratios, latencies, Gbit/s) are printed as
comparison tables, recorded in each benchmark's ``extra_info``, and —
because pytest captures stdout — re-emitted in the terminal summary so
they appear in ``pytest benchmarks/ --benchmark-only`` output.

Set ``REPRO_BENCH_SCALE=full`` for paper-scale client counts/durations.
"""

_RENDERED = []


def publish(text: str) -> None:
    """Print a results table and queue it for the terminal summary."""
    print(text)
    _RENDERED.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RENDERED:
        return
    terminalreporter.section("paper comparison tables")
    for text in _RENDERED:
        for line in text.splitlines():
            terminalreporter.write_line(line)
