"""Figure 6: single-node *pessimistic* transactions (TPC-C + YCSB).

Paper (§VIII-D), six systems on one node:

* Native Treaty performs equivalently to RocksDB;
* Native Treaty w/ Enc adds minimal overhead;
* Treaty w/o Enc (SCONE) ~1.6x, w/ Enc ~2x, w/ Enc w/ Stab ~2.1x on
  TPC-C; YCSB read-heavy w/ Enc ~2.7x-2.8x.
"""

from repro.config import (
    DS_ROCKSDB,
    NATIVE_TREATY,
    NATIVE_TREATY_ENC,
    TREATY_ENC,
    TREATY_FULL,
    TREATY_NO_ENC,
)
from repro.bench.harness import tpcc_single_node, ycsb_single_node
from repro.bench.reporting import ComparisonTable

# (profile, tpcc band, ycsb band) — slowdown vs single-node RocksDB.
SYSTEMS = [
    (DS_ROCKSDB, None, None),  # reported as "RocksDB" in this figure
    (NATIVE_TREATY, (0.9, 1.2), (0.9, 1.2)),
    (NATIVE_TREATY_ENC, (0.9, 1.5), (1.0, 1.7)),
    (TREATY_NO_ENC, (1.2, 2.2), (1.4, 2.6)),
    (TREATY_ENC, (1.5, 2.7), (1.8, 3.4)),
    (TREATY_FULL, (1.6, 2.8), (1.9, 4.2)),
]


def _render(results, band_index, title, extra_info):
    baseline = results["DS-RocksDB"].throughput()
    table = ComparisonTable(title)
    for profile, *bands in SYSTEMS:
        metrics = results[profile.name]
        slowdown = baseline / max(metrics.throughput(), 1e-9)
        label = "RocksDB" if profile.name == "DS-RocksDB" else profile.name
        table.add(
            label,
            slowdown,
            "x",
            paper_range=bands[band_index],
            note="%.0f tps, lat %.1f ms" % (
                metrics.throughput(), metrics.mean_latency() * 1e3
            ),
        )
    extra_info.update(table.results())
    print(table.render())


def test_figure6_tpcc(benchmark):
    def run():
        results = {
            profile.name: tpcc_single_node(profile)
            for profile, *_ in SYSTEMS
        }
        _render(
            results, 0, "Figure 6 (TPC-C): single-node pessimistic Txs",
            benchmark.extra_info,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_figure6_ycsb_write_heavy(benchmark):
    def run():
        results = {
            profile.name: ycsb_single_node(profile, read_proportion=0.2)
            for profile, *_ in SYSTEMS
        }
        _render(
            results, 1, "Figure 6 (YCSB 20%R): single-node pessimistic Txs",
            benchmark.extra_info,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_figure6_ycsb_read_heavy(benchmark):
    def run():
        results = {
            profile.name: ycsb_single_node(profile, read_proportion=0.8)
            for profile, *_ in SYSTEMS
        }
        _render(
            results, 1, "Figure 6 (YCSB 80%R): single-node pessimistic Txs",
            benchmark.extra_info,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


if __name__ == "__main__":
    class _Info(dict):
        pass

    results = {p.name: tpcc_single_node(p) for p, *_ in SYSTEMS}
    _render(results, 0, "Figure 6 (TPC-C)", _Info())
    results = {p.name: ycsb_single_node(p, 0.2) for p, *_ in SYSTEMS}
    _render(results, 1, "Figure 6 (YCSB 20%R)", _Info())
    results = {p.name: ycsb_single_node(p, 0.8) for p, *_ in SYSTEMS}
    _render(results, 1, "Figure 6 (YCSB 80%R)", _Info())
