"""Figure 7: single-node *optimistic* transactions (TPC-C + YCSB).

Paper (§VIII-D): Treaty w/ Enc w/ Stab performs ~5x (TPC-C) and ~4x
(YCSB) worse than native RocksDB.  Stabilization adds no throughput
overhead over Treaty w/ Enc (the fiber scheduler keeps serving) and
roughly 10 % latency.
"""

from repro.config import (
    DS_ROCKSDB,
    NATIVE_TREATY,
    NATIVE_TREATY_ENC,
    TREATY_ENC,
    TREATY_FULL,
    TREATY_NO_ENC,
)
from repro.bench.harness import tpcc_single_node, ycsb_single_node
from repro.bench.reporting import ComparisonTable

SYSTEMS = [
    (DS_ROCKSDB, None, None),
    (NATIVE_TREATY, (0.9, 1.3), (0.9, 1.3)),
    (NATIVE_TREATY_ENC, (0.9, 1.7), (1.0, 1.8)),
    (TREATY_NO_ENC, (1.3, 3.6), (1.4, 3.0)),
    (TREATY_ENC, (2.0, 5.6), (1.8, 4.6)),
    (TREATY_FULL, (3.0, 6.5), (2.4, 5.2)),
]


def _render(results, band_index, title, extra_info):
    baseline = results["DS-RocksDB"].throughput()
    table = ComparisonTable(title)
    for profile, *bands in SYSTEMS:
        metrics = results[profile.name]
        slowdown = baseline / max(metrics.throughput(), 1e-9)
        label = "RocksDB" if profile.name == "DS-RocksDB" else profile.name
        table.add(
            label,
            slowdown,
            "x",
            paper_range=bands[band_index],
            note="%.0f tps, lat %.1f ms, %.0f%% aborts" % (
                metrics.throughput(),
                metrics.mean_latency() * 1e3,
                metrics.abort_rate() * 100,
            ),
        )
    extra_info.update(table.results())
    print(table.render())


def test_figure7_tpcc_optimistic(benchmark):
    def run():
        results = {
            profile.name: tpcc_single_node(profile, optimistic=True)
            for profile, *_ in SYSTEMS
        }
        _render(
            results, 0, "Figure 7 (TPC-C): single-node optimistic Txs",
            benchmark.extra_info,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_figure7_ycsb_optimistic(benchmark):
    def run():
        results = {
            profile.name: ycsb_single_node(
                profile, read_proportion=0.8, optimistic=True
            )
            for profile, *_ in SYSTEMS
        }
        _render(
            results, 1, "Figure 7 (YCSB 80%R): single-node optimistic Txs",
            benchmark.extra_info,
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


if __name__ == "__main__":
    results = {p.name: tpcc_single_node(p, optimistic=True) for p, *_ in SYSTEMS}
    _render(results, 0, "Figure 7 (TPC-C, OCC)", {})
    results = {
        p.name: ycsb_single_node(p, 0.8, optimistic=True) for p, *_ in SYSTEMS
    }
    _render(results, 1, "Figure 7 (YCSB 80%R, OCC)", {})
