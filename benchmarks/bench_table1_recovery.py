"""Table I: recovery overheads w.r.t. native recovery.

Paper (§VIII-F): logs of 800 k small (~100 B) entries; recovery of
Treaty w/o decryption costs ~1.5x native, with decryption ~2x native.
Small entries are the worst case: more syscalls and more decryption
calls per byte.
"""

from repro.config import DS_ROCKSDB, TREATY_ENC, TREATY_NO_ENC
from repro.bench.harness import recovery_experiment
from repro.bench.reporting import ComparisonTable

SYSTEMS = [
    (DS_ROCKSDB, "Native recovery", None),
    (TREATY_NO_ENC, "Treaty w/o Enc", (1.1, 2.0)),
    (TREATY_ENC, "Treaty (w/ Enc)", (1.5, 2.6)),
]


def test_table1_recovery(benchmark):
    results = {}

    def run():
        for profile, label, _band in SYSTEMS:
            results[label] = recovery_experiment(profile)

    benchmark.pedantic(run, rounds=1, iterations=1)
    baseline, base_bytes = results["Native recovery"]
    table = ComparisonTable("Table I: recovery slowdown vs native")
    for _profile, label, band in SYSTEMS:
        seconds, log_bytes = results[label]
        table.add(
            label,
            seconds / max(baseline, 1e-12),
            "x",
            paper_range=band,
            note="%.1f ms recovery, %.1f MiB log" % (
                seconds * 1e3, log_bytes / 1048576.0
            ),
        )
    benchmark.extra_info.update(table.results())
    print(table.render())


if __name__ == "__main__":
    class _Fake:
        extra_info = {}

        def pedantic(self, fn, rounds=1, iterations=1):
            fn()

    test_table1_recovery(_Fake())
