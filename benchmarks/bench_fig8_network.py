"""Figure 8: network bandwidth of seven stacks vs message size.

Paper (§VIII-E), expected shape:

* iPerf-UDP delivers zero goodput above the MTU (fragment loss);
* iPerf-TCP (native) is the fastest kernel stack (offloading) and eRPC
  (native) trails it by ~20-30 % at small/medium sizes, matching at MTU+;
* SCONE costs up to ~8x on the TCP path and up to ~4x on eRPC;
* eRPC (SCONE) beats iPerf-TCP (SCONE) (~1.5x in the paper);
* Treaty networking (eRPC + SCONE + encryption) lands in the same band
  as iPerf-TCP (SCONE) — full security at socket-baseline speed.
"""

import os

from repro.bench.netbench import STACKS, run_figure8
from repro.bench.reporting import format_table

SIZES = (64, 256, 1024, 1460, 2048, 4096)


def _duration():
    return 2e-3 if os.environ.get("REPRO_BENCH_SCALE") == "full" else 1e-3


def _run_and_render(extra_info):
    results = run_figure8(sizes=SIZES, duration=_duration())
    rows = [
        [stack] + ["%.1f" % results[stack][size] for size in SIZES]
        for stack in STACKS
    ]
    print(
        format_table(
            "Figure 8: throughput (Gbit/s) by message size",
            ["stack"] + ["%dB" % size for size in SIZES],
            rows,
        )
    )
    checks = {
        "udp dies above MTU": results["udp-native"][2048] == 0.0,
        "tcp-native fastest kernel stack": (
            results["tcp-native"][1460] > results["udp-native"][1460]
        ),
        "scone tcp penalty 3x-10x": (
            3.0
            <= results["tcp-native"][1460] / max(results["tcp-scone"][1460], 1e-9)
            <= 10.0
        ),
        "scone erpc penalty <= ~7x": (
            results["erpc-native"][1024] / max(results["erpc-scone"][1024], 1e-9)
            <= 7.0
        ),
        "treaty within 2x of tcp-scone": (
            0.5
            <= results["treaty"][1460] / max(results["tcp-scone"][1460], 1e-9)
            <= 2.0
        ),
        "erpc-scone >= tcp-scone at 4096": (
            results["erpc-scone"][4096] >= results["tcp-scone"][4096] * 0.9
        ),
    }
    for name, passed in checks.items():
        print("  [%s] %s" % ("OK " if passed else "off", name))
    extra_info["gbps"] = {
        stack: {str(size): results[stack][size] for size in SIZES}
        for stack in STACKS
    }
    extra_info["checks"] = {name: bool(ok) for name, ok in checks.items()}


def test_figure8_network_stacks(benchmark):
    benchmark.pedantic(
        lambda: _run_and_render(benchmark.extra_info), rounds=1, iterations=1
    )


if __name__ == "__main__":
    _run_and_render({})
