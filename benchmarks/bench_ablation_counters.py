"""Ablation: SGX hardware monotonic counters vs the ROTE-style service.

§III motivates Treaty's distributed counter service: SGX's hardware
counters take up to ~250 ms per increment and wear out, so stabilizing
every transaction on them is unusable.  This ablation stabilizes a
stream of log entries through both mechanisms and compares achieved
stabilization throughput and latency.
"""

from repro.config import ClusterConfig, TREATY_FULL
from repro.core import TreatyCluster
from repro.bench.reporting import ComparisonTable
from repro.tee.counters import HardwareMonotonicCounter

NUM_ENTRIES = 200


def _rote_stabilization():
    """Entries stabilized through the echo-broadcast counter service."""
    cluster = TreatyCluster(profile=TREATY_FULL).start()
    node = cluster.nodes[0]
    sim = cluster.sim
    start = sim.now
    latencies = []

    def writer(i):
        begin = sim.now
        yield from node.counter_client.stabilize("ablation-log", i + 1)
        latencies.append(sim.now - begin)

    def run():
        # 8 concurrent writers, as a loaded node would see.
        pending = []
        for i in range(NUM_ENTRIES):
            pending.append(sim.process(writer(i)))
        yield sim.all_of(pending)

    cluster.run(run())
    elapsed = sim.now - start
    return NUM_ENTRIES / elapsed, sum(latencies) / len(latencies)


def _hw_counter_stabilization():
    """The same entries, one hardware-counter increment each."""
    cluster = TreatyCluster(profile=TREATY_FULL).start()
    node = cluster.nodes[0]
    sim = cluster.sim
    counter = HardwareMonotonicCounter(sim, cluster.config.costs)
    start = sim.now
    latencies = []

    def run():
        # Hardware counters serialize: increments cannot be batched or
        # parallelized (one NVRAM device).
        for _ in range(NUM_ENTRIES):
            begin = sim.now
            yield from counter.increment()
            latencies.append(sim.now - begin)

    cluster.run(run())
    elapsed = sim.now - start
    return NUM_ENTRIES / elapsed, sum(latencies) / len(latencies)


def test_ablation_trusted_counters(benchmark):
    results = {}

    def run():
        results["rote"] = _rote_stabilization()
        results["hw"] = _hw_counter_stabilization()

    benchmark.pedantic(run, rounds=1, iterations=1)
    rote_tput, rote_lat = results["rote"]
    hw_tput, hw_lat = results["hw"]
    table = ComparisonTable(
        "Ablation: stabilization backend", metric_name="entries/s"
    )
    table.add(
        "ROTE-style service", rote_tput, "",
        note="mean latency %.2f ms" % (rote_lat * 1e3),
    )
    table.add(
        "SGX hw counter", hw_tput, "",
        note="mean latency %.1f ms" % (hw_lat * 1e3),
    )
    benchmark.extra_info.update(table.results())
    benchmark.extra_info["speedup"] = rote_tput / max(hw_tput, 1e-9)
    print(table.render())
    print("  ROTE-backed stabilization is %.0fx faster than hw counters"
          % (rote_tput / max(hw_tput, 1e-9)))
    assert rote_tput > hw_tput * 10  # the design choice, quantified


if __name__ == "__main__":
    class _Fake:
        extra_info = {}

        def pedantic(self, fn, rounds=1, iterations=1):
            fn()

    test_ablation_trusted_counters(_Fake())
