"""Figure 4: throughput slowdown of TREATY's 2PC protocol, no storage.

Paper (§VIII-B): YCSB 50R/50W through the 2PC protocol with *no
underlying storage engine*, four versions normalized to a native,
non-secure 2PC:

* Native 2PC w/ Enc   — minimal encryption overhead (~1.0-1.2x)
* Secure 2PC w/o Enc  — ~1.8x slowdown
* Secure 2PC w/ Enc   — ~2x slowdown
"""

from repro.config import (
    DS_ROCKSDB,
    NATIVE_TREATY_ENC,
    TREATY_ENC,
    TREATY_NO_ENC,
)
from repro.bench.harness import twopc_only
from repro.bench.reporting import ComparisonTable

#: (profile, label, paper slowdown band vs native 2PC)
SYSTEMS = [
    (DS_ROCKSDB, "Native 2PC", None),
    (NATIVE_TREATY_ENC, "Native 2PC w/ Enc", (0.9, 1.4)),
    (TREATY_NO_ENC, "Secure 2PC w/o Enc", (1.4, 2.4)),
    (TREATY_ENC, "Secure 2PC w/ Enc", (1.6, 2.7)),
]


def test_figure4_twopc_protocol(benchmark):
    results = {}

    def run():
        for profile, label, _band in SYSTEMS:
            results[label] = twopc_only(profile)

    table = ComparisonTable("Figure 4: 2PC-only slowdown vs native 2PC")
    benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = results["Native 2PC"].throughput()
    for _profile, label, band in SYSTEMS:
        throughput = results[label].throughput()
        slowdown = baseline / max(throughput, 1e-9)
        table.add(
            label,
            slowdown,
            "x",
            paper_range=band,
            note="%.0f tps" % throughput,
        )
    benchmark.extra_info.update(table.results())
    print(table.render())


if __name__ == "__main__":
    class _Fake:
        extra_info = {}

        def pedantic(self, fn, rounds=1, iterations=1):
            fn()

    test_figure4_twopc_protocol(_Fake())
