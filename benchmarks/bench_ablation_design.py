"""Ablations of Treaty's substrate design choices (§VII).

1. *Group commit* (§VII-B): leader-merged WAL writes vs one device
   write per transaction.
2. *Message buffers in host memory* (§VII-A): Treaty deliberately keeps
   eRPC msgbufs outside the enclave; placing them in enclave memory
   triggers EPC paging under load.
3. *Mempool allocator recycling* (§VII-D): steady-state allocations are
   served from free lists instead of growing the mapped working set.
"""

from repro.config import ClusterConfig, TREATY_ENC, TREATY_FULL
from repro.core import TreatyCluster
from repro.bench import MetricsCollector
from repro.bench.reporting import ComparisonTable
from repro.memory import MempoolAllocator
from repro.memory.regions import MemoryRegion
from repro.workloads import YcsbConfig, bulk_load, run_ycsb


def _ycsb_throughput(config: ClusterConfig) -> MetricsCollector:
    # Write-heavy load on one node at enough concurrency that per-commit
    # WAL device writes would serialize the commit path (§VII-B's
    # motivation for group commit).
    cluster = TreatyCluster(profile=TREATY_FULL, config=config, num_nodes=1).start()
    ycsb = YcsbConfig(read_proportion=0.2, num_keys=4_000)
    cluster.run(bulk_load(cluster, ycsb), name="load")
    metrics = MetricsCollector()
    run_ycsb(cluster, ycsb, metrics, num_clients=48, duration=0.3, warmup=0.1)
    return metrics


def test_ablation_group_commit(benchmark):
    results = {}

    def run():
        results["on"] = _ycsb_throughput(ClusterConfig(group_commit_max=16))
        results["off"] = _ycsb_throughput(ClusterConfig(group_commit_max=1))

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = ComparisonTable("Ablation: group commit", metric_name="tps")
    on_tps = results["on"].throughput()
    off_tps = results["off"].throughput()
    table.add("group commit (16)", on_tps, "")
    table.add("no group commit (1)", off_tps, "")
    benchmark.extra_info.update(table.results())
    print(table.render())
    print("  group commit gains %.2fx throughput" % (on_tps / max(off_tps, 1e-9)))


def test_ablation_msgbuf_placement(benchmark):
    """EPC pressure from in-enclave message buffers (modelled directly)."""
    from repro.sim import Simulator
    from repro.tee import NodeRuntime

    results = {}

    def run():
        for placement in ("host", "enclave"):
            sim = Simulator()
            config = ClusterConfig()
            runtime = NodeRuntime(sim, TREATY_ENC, config)
            # A heavy network phase: 64 concurrent 1 MiB buffer sets.
            buffers = []
            region = (
                runtime.host_memory
                if placement == "host"
                else runtime.enclave.memory
            )
            for _ in range(192):
                buffers.append(region.allocate(1 << 20))

            def touch_all():
                # The enclave touches every buffer once per burst.
                for _ in range(64):
                    yield from runtime.touch_enclave(1 << 20)

            sim.run_process(touch_all())
            results[placement] = sim.now
            for allocation in buffers:
                allocation.free()

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = ComparisonTable(
        "Ablation: message buffer placement", metric_name="paging time (s)"
    )
    table.add("host memory (Treaty)", results["host"], "s")
    table.add("enclave memory (naive)", results["enclave"], "s")
    benchmark.extra_info.update(table.results())
    print(table.render())
    assert results["enclave"] > results["host"]


def test_ablation_mempool_recycling(benchmark):
    results = {}

    def run():
        region_pool = MemoryRegion("pooled")
        pool = MempoolAllocator(region_pool, heaps=4)
        for i in range(20_000):
            pool.alloc(1024, thread_id=i % 4).release()
        region_raw = MemoryRegion("raw")
        for _ in range(20_000):
            region_raw.allocate(1024)  # never recycled
        results["pooled"] = region_pool.total_allocated
        results["raw"] = region_raw.total_allocated
        results["recycle_rate"] = pool.recycle_rate()

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = ComparisonTable(
        "Ablation: mempool allocator", metric_name="mapped bytes"
    )
    table.add("mempool (Treaty)", results["pooled"], "B")
    table.add("malloc-per-buffer", results["raw"], "B")
    benchmark.extra_info.update(table.results())
    print(table.render())
    print("  recycle rate: %.1f%%" % (results["recycle_rate"] * 100))
    assert results["pooled"] < results["raw"] / 100


def test_ablation_fiber_scheduler(benchmark):
    """§VII-C: fibers vs thread-per-client wake-ups.

    The fiber scheduler switches between runnable clients without
    syscalls; a naive SCONE deployment pays an async syscall (and often
    a world switch) per thread wake-up.  Measure total scheduling
    overhead for a bursty 64-client serving pattern.
    """
    from repro.sched import Compute, FiberScheduler, Sleep
    from repro.sim import Simulator
    from repro.tee import NodeRuntime

    results = {}

    def run():
        config = ClusterConfig()
        # Fibers: one scheduler, 64 client fibers, syscall only when idle.
        sim = Simulator()
        runtime = NodeRuntime(sim, TREATY_ENC, config)
        scheduler = FiberScheduler(runtime)

        def client():
            for _ in range(20):
                yield Compute(5e-6)
                yield Sleep(1e-4)

        for _ in range(64):
            scheduler.spawn(client())
        sim.run()
        results["fibers"] = (sim.now, runtime.syscalls)

        # Threads: every wake-up costs a syscall + world switch.
        sim2 = Simulator()
        runtime2 = NodeRuntime(sim2, TREATY_ENC, config)

        def thread_client():
            for _ in range(20):
                yield from runtime2.syscall()  # futex-style wake
                yield from runtime2.world_switch()
                yield from runtime2.compute(5e-6)
                yield sim2.timeout(1e-4)

        import repro.sim as _sim  # noqa: F401

        procs = [sim2.process(thread_client()) for _ in range(64)]
        sim2.run()
        results["threads"] = (sim2.now, runtime2.syscalls)

    benchmark.pedantic(run, rounds=1, iterations=1)
    fiber_time, fiber_syscalls = results["fibers"]
    thread_time, thread_syscalls = results["threads"]
    table = ComparisonTable(
        "Ablation: userland fiber scheduler", metric_name="syscalls"
    )
    table.add("fibers (Treaty)", fiber_syscalls, "", note="%.2f ms" % (fiber_time * 1e3))
    table.add("thread wake-ups", thread_syscalls, "", note="%.2f ms" % (thread_time * 1e3))
    benchmark.extra_info.update(table.results())
    print(table.render())
    assert fiber_syscalls < thread_syscalls / 4




def test_ablation_storage_io_mechanism(benchmark):
    """§V-A's design choice: async syscalls + page cache beat SPDK when
    the database fits in the page cache (read path dominates)."""
    from repro.bench.harness import ycsb_single_node
    from repro.config import TREATY_ENC
    from dataclasses import replace

    results = {}

    def run():
        for io_mode in ("syscall", "spdk"):
            from repro.core import TreatyCluster
            from repro.workloads import YcsbConfig, bulk_load, run_ycsb
            from repro.bench import MetricsCollector

            config = ClusterConfig(storage_io=io_mode)
            cluster = TreatyCluster(
                profile=TREATY_ENC, config=config, num_nodes=1
            ).start()
            ycsb = YcsbConfig(read_proportion=0.8, num_keys=6_000)
            cluster.run(bulk_load(cluster, ycsb), name="load")
            # Flush so reads actually hit SSTables (the I/O path at stake).
            cluster.run(cluster.nodes[0].engine.flush())
            metrics = MetricsCollector()
            run_ycsb(cluster, ycsb, metrics, num_clients=16,
                     duration=0.25, warmup=0.05)
            results[io_mode] = metrics

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = ComparisonTable(
        "Ablation: storage I/O mechanism (read-heavy)", metric_name="tps"
    )
    for io_mode, metrics in results.items():
        label = {
            "syscall": "async syscalls + page cache (Treaty)",
            "spdk": "SPDK direct I/O (SPEICHER)",
        }[io_mode]
        table.add(label, metrics.throughput(), "",
                  note="lat %.2f ms" % (metrics.mean_latency() * 1e3))
    benchmark.extra_info.update(table.results())
    try:
        from conftest import publish
    except ImportError:
        publish = print
    publish(table.render())
    # The paper's claim: page-cached reads beat SPDK for this workload.
    assert (
        results["syscall"].throughput() > results["spdk"].throughput()
    )


if __name__ == "__main__":
    class _Fake:
        extra_info = {}

        def pedantic(self, fn, rounds=1, iterations=1):
            fn()

    test_ablation_group_commit(_Fake())
    test_ablation_msgbuf_placement(_Fake())
    test_ablation_mempool_recycling(_Fake())
    test_ablation_fiber_scheduler(_Fake())
    test_ablation_storage_io_mechanism(_Fake())
