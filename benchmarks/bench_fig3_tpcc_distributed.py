"""Figure 3: distributed transactions under TPC-C (10 and 100 warehouses).

Paper (§VIII-C):

* 10 W (heavy W-W conflicts; DS-RocksDB 780 tps): Treaty 8x-11x slower;
  the stabilized version scales to more clients because locks are
  released during the stabilization period.
* 100 W (fewer conflicts; DS-RocksDB 1200 tps): overheads drop to 4x-6x.
"""

from repro.config import DS_ROCKSDB, TREATY_ENC, TREATY_FULL, TREATY_NO_ENC
from repro.bench.harness import tpcc_distributed
from repro.bench.reporting import ComparisonTable

# Bands widened below the paper's 8x-11x / 4x-6x: the simulated TPC-C
# population is scaled down (DESIGN.md), which proportionally reduces
# the contention that amplifies the paper's slowdowns.  The *ordering*
# checks (10W slowdown > 100W slowdown; Stab adds latency) are the
# shape this figure is about.
SYSTEMS_10W = [
    (DS_ROCKSDB, None),
    (TREATY_NO_ENC, (3.0, 13.0)),
    (TREATY_ENC, (3.0, 13.0)),
    (TREATY_FULL, (4.0, 13.0)),
]

SYSTEMS_100W = [
    (DS_ROCKSDB, None),
    (TREATY_NO_ENC, (2.0, 9.0)),
    (TREATY_ENC, (2.0, 9.0)),
    (TREATY_FULL, (2.5, 9.0)),
]


def _run_panel(warehouses, systems, title, extra_info):
    results = {}
    for profile, _band in systems:
        results[profile.name] = tpcc_distributed(profile, warehouses=warehouses)
    baseline = results["DS-RocksDB"].throughput()
    table = ComparisonTable(title)
    for profile, band in systems:
        metrics = results[profile.name]
        slowdown = baseline / max(metrics.throughput(), 1e-9)
        table.add(
            profile.name,
            slowdown,
            "x",
            paper_range=band,
            note="%.0f tps, lat %.1f ms" % (
                metrics.throughput(), metrics.mean_latency() * 1e3
            ),
        )
    extra_info.update(table.results())
    print(table.render())


def test_figure3_tpcc_10_warehouses(benchmark):
    benchmark.pedantic(
        lambda: _run_panel(
            10, SYSTEMS_10W,
            "Figure 3 (left): TPC-C 10W slowdown vs DS-RocksDB",
            benchmark.extra_info,
        ),
        rounds=1,
        iterations=1,
    )


def test_figure3_tpcc_100_warehouses(benchmark):
    benchmark.pedantic(
        lambda: _run_panel(
            100, SYSTEMS_100W,
            "Figure 3 (right): TPC-C 100W slowdown vs DS-RocksDB",
            benchmark.extra_info,
        ),
        rounds=1,
        iterations=1,
    )


if __name__ == "__main__":
    _run_panel(10, SYSTEMS_10W, "Figure 3 (left): TPC-C 10W", {})
    _run_panel(100, SYSTEMS_100W, "Figure 3 (right): TPC-C 100W", {})
