"""Figure 5: distributed transactions under YCSB (write- and read-heavy).

Paper (§VIII-C): 3-node cluster, 96 clients, YCSB with 20 %R and 80 %R.
Throughput slowdowns w.r.t. native DS-RocksDB:

* W-heavy (20 %R): Treaty versions 9x-15x slower (DS-RocksDB: 18.5 ktps)
* R-heavy (80 %R): Treaty w/o Enc ~9.5x, Treaty w/ Enc ~11x (24 ktps)

plus the latency panel: stabilization raises write-heavy latencies.
"""

from repro.config import DS_ROCKSDB, TREATY_ENC, TREATY_FULL, TREATY_NO_ENC
from repro.bench.harness import ycsb_distributed
from repro.bench.reporting import ComparisonTable

SYSTEMS = [
    (DS_ROCKSDB, None, None),
    (TREATY_NO_ENC, (6.0, 16.0), (6.0, 13.0)),
    (TREATY_ENC, (7.0, 17.0), (7.0, 15.0)),
    (TREATY_FULL, (8.0, 18.0), (7.0, 17.5)),
]


def _run_panel(read_proportion, band_index, title, benchmark_extra):
    results = {}
    for profile, *_bands in SYSTEMS:
        results[profile.name] = ycsb_distributed(profile, read_proportion)
    baseline = results["DS-RocksDB"].throughput()
    table = ComparisonTable(title)
    for profile, w_band, r_band in SYSTEMS:
        band = (w_band, r_band)[band_index]
        metrics = results[profile.name]
        slowdown = baseline / max(metrics.throughput(), 1e-9)
        table.add(
            profile.name,
            slowdown,
            "x",
            paper_range=band,
            note="%.0f tps, lat %.1f ms" % (
                metrics.throughput(), metrics.mean_latency() * 1e3
            ),
        )
    benchmark_extra.update(table.results())
    print(table.render())


def test_figure5_write_heavy(benchmark):
    benchmark.pedantic(
        lambda: _run_panel(
            0.2, 0, "Figure 5 (left): YCSB 20%R slowdown vs DS-RocksDB",
            benchmark.extra_info,
        ),
        rounds=1,
        iterations=1,
    )


def test_figure5_read_heavy(benchmark):
    benchmark.pedantic(
        lambda: _run_panel(
            0.8, 1, "Figure 5 (right): YCSB 80%R slowdown vs DS-RocksDB",
            benchmark.extra_info,
        ),
        rounds=1,
        iterations=1,
    )


if __name__ == "__main__":
    _run_panel(0.2, 0, "Figure 5 (left): YCSB 20%R", {})
    _run_panel(0.8, 1, "Figure 5 (right): YCSB 80%R", {})
