"""Client-scaling / saturation behavior (§VIII-C/D, textual claims).

The paper repeatedly reports *saturation points*: "DS-RocksDB and TREATY
w/o Enc scale up to 92 clients while encrypted versions cannot scale
more than 60 clients" (YCSB read-heavy), and the stabilized version
saturating with *more* clients than its peers on TPC-C because locks are
released during the stabilization window.

This bench sweeps the client count for DS-RocksDB and Treaty w/ Enc
w/ Stab on distributed YCSB and reports each system's saturation point
(the knee where extra clients stop adding throughput).
"""

import os

from repro.config import DS_ROCKSDB, TREATY_FULL
from repro.bench.harness import ycsb_distributed
from repro.bench.reporting import format_table

try:
    from conftest import publish
except ImportError:  # standalone execution
    publish = print

CLIENT_COUNTS = (12, 24, 48, 96)


def _sweep(profile, duration):
    curve = {}
    for clients in CLIENT_COUNTS:
        metrics = ycsb_distributed(
            profile, read_proportion=0.8, num_clients=clients, duration=duration
        )
        curve[clients] = metrics.throughput()
    return curve


def _saturation_point(curve):
    """First client count where adding clients gains < 15 % throughput."""
    counts = sorted(curve)
    for previous, current in zip(counts, counts[1:]):
        if curve[current] < curve[previous] * 1.15:
            return previous
    return counts[-1]


def test_saturation_client_scaling(benchmark):
    duration = 0.5 if os.environ.get("REPRO_BENCH_SCALE") == "full" else 0.25
    curves = {}

    def run():
        curves["DS-RocksDB"] = _sweep(DS_ROCKSDB, duration)
        curves["Treaty w/ Enc w/ Stab"] = _sweep(TREATY_FULL, duration)

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for system, curve in curves.items():
        rows.append(
            [system]
            + ["%.0f" % curve[count] for count in CLIENT_COUNTS]
            + [str(_saturation_point(curve))]
        )
    publish(
        format_table(
            "Saturation: YCSB 80%R throughput (tps) vs client count",
            ["system"] + ["%dc" % count for count in CLIENT_COUNTS] + ["knee"],
            rows,
        )
    )
    ds_knee = _saturation_point(curves["DS-RocksDB"])
    treaty_knee = _saturation_point(curves["Treaty w/ Enc w/ Stab"])
    publish(
        "  paper: native scales to ~92 clients, encrypted versions to ~60\n"
        "  measured knees: DS-RocksDB=%s, Treaty w/ Enc w/ Stab=%s"
        % (ds_knee, treaty_knee)
    )
    benchmark.extra_info["curves"] = {
        system: {str(k): v for k, v in curve.items()}
        for system, curve in curves.items()
    }
    # The secure system must saturate at or before the native baseline.
    assert treaty_knee <= ds_knee


if __name__ == "__main__":
    class _Fake:
        extra_info = {}

        def pedantic(self, fn, rounds=1, iterations=1):
            fn()

    test_saturation_client_scaling(_Fake())
