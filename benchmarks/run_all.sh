#!/usr/bin/env bash
# Regenerate every figure/table sequentially (quick scale by default;
# REPRO_BENCH_SCALE=full for paper-scale clients and durations).
set -u
cd "$(dirname "$0")/.."
for bench in \
    benchmarks/bench_fig8_network.py \
    benchmarks/bench_table1_recovery.py \
    benchmarks/bench_fig4_twopc.py \
    benchmarks/bench_fig5_ycsb_distributed.py \
    benchmarks/bench_fig3_tpcc_distributed.py \
    benchmarks/bench_fig6_pessimistic.py \
    benchmarks/bench_fig7_optimistic.py \
    benchmarks/bench_ablation_counters.py \
    benchmarks/bench_ablation_design.py
do
    echo "===== $bench ====="
    python "$bench" || echo "!! $bench failed with $?"
done
echo "===== all benches done ====="
