"""Transport batching: coalescing, batch sealing, adversary atomicity.

Covers the eRPC doorbell-batching layer (per-destination TX queues, one
frame per coalesced batch), the one-AEAD-pass batch sealing in
SecureRpc, the fail-fast handling of crashed destinations, and the
pinned perf win: strictly fewer delivered frames AND fewer AEAD seal
operations per committed distributed transaction with batching on,
with identical commit/abort outcomes and a green invariant monitor.
"""

import pytest

from repro.config import ClusterConfig, TREATY_ENC, TREATY_FULL
from repro.core import TreatyCluster
from repro.crypto import KeyRing
from repro.errors import (
    IntegrityError,
    NetworkError,
    TransactionAborted,
)
from repro.net import MsgType, NetworkAdversary, TxMessage
from repro.net.erpc import BATCH_OCCUPANCY_BUCKETS
from repro.net.message import (
    batch_wire_size,
    pack_parts,
    seal_batch,
    unpack_parts,
    unseal_batch,
)

from tests.conftest import NetHarness, ROOT_KEY


def echo_handler(payload, src):
    if False:  # generator without extra cost
        yield None
    return payload, len(payload) if isinstance(payload, bytes) else 8


def tx_message(op_id, body=b"put k v"):
    return TxMessage(MsgType.TXN_WRITE, 0, 1, op_id, body)


def install_secure_echo(harness, node=1, executions=None):
    def handler(message, src):
        if False:
            yield None
        if executions is not None:
            executions.append(message.op_id)
        return TxMessage(
            MsgType.ACK, message.node_id, message.txn_id, message.op_id,
            b"echo:" + message.body,
        )

    harness.secure[node].register(MsgType.TXN_WRITE, handler)


# -- wire format ---------------------------------------------------------------


class TestBatchFraming:
    def test_pack_unpack_roundtrip(self):
        parts = [b"", b"a", b"hello" * 100]
        assert unpack_parts(pack_parts(parts)) == parts

    def test_unpack_truncated_raises(self):
        blob = pack_parts([b"abc", b"defg"])
        with pytest.raises(IntegrityError):
            unpack_parts(blob[:-1])
        with pytest.raises(IntegrityError):
            unpack_parts(blob[:2])

    def test_seal_unseal_roundtrip(self):
        aead = KeyRing(ROOT_KEY).network_aead()
        parts = [b"one", b"two", b"three"]
        wire = seal_batch(aead, b"\x01" * 12, parts, b"aad")
        assert unseal_batch(aead, wire, b"aad") == parts
        assert len(wire) == batch_wire_size([len(p) for p in parts], True)

    def test_tampered_or_misbound_batch_rejected(self):
        aead = KeyRing(ROOT_KEY).network_aead()
        wire = seal_batch(aead, b"\x02" * 12, [b"payload"], b"aad")
        tampered = bytearray(wire)
        tampered[20] ^= 0xFF  # inside the ciphertext
        with pytest.raises(IntegrityError):
            unseal_batch(aead, bytes(tampered), b"aad")
        with pytest.raises(IntegrityError):
            unseal_batch(aead, wire, b"other-sender")

    def test_batch_wire_size_plaintext(self):
        assert batch_wire_size([3, 5], False) == 3 + 5 + 8


# -- TX coalescing -------------------------------------------------------------


class TestCoalescing:
    def test_same_instant_requests_coalesce_into_one_frame(self, harness):
        harness.endpoints[1].register_handler(1, echo_handler)
        client = harness.endpoints[0]

        def body():
            events = [
                client.enqueue_request("node1", 1, b"m%d" % i, 2)
                for i in range(5)
            ]
            replies = yield harness.sim.all_of(events)
            return sorted(r.payload for r in replies)

        assert harness.run(body()) == [b"m0", b"m1", b"m2", b"m3", b"m4"]
        # One coalesced request frame + one coalesced reply frame.
        assert harness.fabric.delivered_frames == 2
        assert client.batches_sent == 1
        assert harness.endpoints[1].batches_sent == 1

    def test_unbatched_config_sends_one_frame_per_message(self):
        harness = NetHarness(config=ClusterConfig(net_batching=False))
        harness.endpoints[1].register_handler(1, echo_handler)
        client = harness.endpoints[0]

        def body():
            events = [
                client.enqueue_request("node1", 1, b"m%d" % i, 2)
                for i in range(5)
            ]
            yield harness.sim.all_of(events)

        harness.run(body())
        assert harness.fabric.delivered_frames == 10
        assert client.batches_sent == 0

    def test_occupancy_histogram_and_frames_saved(self, harness):
        harness.endpoints[1].register_handler(1, echo_handler)
        client = harness.endpoints[0]

        def body():
            events = [
                client.enqueue_request("node1", 1, b"m%d" % i, 2)
                for i in range(5)
            ]
            yield harness.sim.all_of(events)

        harness.run(body())
        hist = client.runtime.metrics.histogram(
            "net.batch_occupancy", BATCH_OCCUPANCY_BUCKETS
        )
        assert hist.total == 1 and hist.max == 5
        # Five standalone frames collapsed into one: four saved.
        assert client.runtime.metrics.counter("net.frames_saved").value == 4

    def test_batch_max_splits_oversized_bursts(self):
        config = ClusterConfig(net_tx_batch_max=4)
        harness = NetHarness(config=config)
        harness.endpoints[1].register_handler(1, echo_handler)
        client = harness.endpoints[0]

        def body():
            events = [
                client.enqueue_request("node1", 1, b"m%d" % i, 2)
                for i in range(10)
            ]
            yield harness.sim.all_of(events)

        harness.run(body())
        # 10 requests at batch_max=4 -> at least 3 request frames.
        assert client.batches_sent >= 3


# -- batch sealing -------------------------------------------------------------


class TestBatchSealing:
    def test_one_aead_pass_per_batch_each_direction(self):
        harness = NetHarness(profile=TREATY_ENC)
        install_secure_echo(harness)

        def body():
            events = harness.secure[0].broadcast(
                [("node1", tx_message(op_id=i)) for i in range(1, 6)]
            )
            replies = yield harness.sim.all_of(events)
            return [r.value.msg_type for r in events] and [
                reply.msg_type for reply in replies
            ]

        replies = harness.run(body())
        assert replies == [MsgType.ACK] * 5
        # Five messages protected, but only one seal + one open per side.
        assert harness.secure[0].messages_sealed == 5
        assert harness.secure[0].seal_ops == 2
        assert harness.secure[1].seal_ops == 2

    def test_plaintext_profile_batches_without_sealing(self, harness):
        install_secure_echo(harness)

        def body():
            events = harness.secure[0].broadcast(
                [("node1", tx_message(op_id=i)) for i in range(1, 4)]
            )
            yield harness.sim.all_of(events)

        harness.run(body())
        assert harness.secure[0].seal_ops == 0
        assert harness.secure[0].messages_sealed == 0
        assert harness.endpoints[0].batches_sent == 1


# -- adversary x batching ------------------------------------------------------


class TestAdversaryBatchAtomicity:
    def test_duplicated_batch_rejected_atomically(self):
        harness = NetHarness(profile=TREATY_ENC)
        executions = []
        install_secure_echo(harness, executions=executions)
        adversary = NetworkAdversary()
        adversary.duplicate_matching(
            lambda f: f.meta.get("is_request", False)
        )
        harness.fabric.adversary = adversary

        def body():
            events = harness.secure[0].broadcast(
                [("node1", tx_message(op_id=i)) for i in range(1, 6)]
            )
            yield harness.sim.all_of(events)
            yield harness.sim.timeout(0.01)  # let the duplicate arrive

        harness.run(body())
        # Every sub-message executed exactly once; the duplicated frame
        # was rejected as ONE unit by the batch-level replay guard.
        assert sorted(executions) == [1, 2, 3, 4, 5]
        assert harness.secure[1].replay_guard.rejected == 1

    def test_dropped_batch_loses_every_sub_message_together(self):
        harness = NetHarness(profile=TREATY_ENC)
        install_secure_echo(harness)
        adversary = NetworkAdversary()
        adversary.drop_matching(lambda f: f.meta.get("is_request", False))
        harness.fabric.adversary = adversary

        def body():
            events = harness.secure[0].broadcast(
                [("node1", tx_message(op_id=i)) for i in range(1, 6)]
            )
            yield harness.sim.timeout(1.0)
            return [event.triggered for event in events]

        # All-or-nothing: the whole batch vanished, so no sub-message
        # completed (and none completed spuriously).
        assert harness.run(body()) == [False] * 5

    def test_delayed_batch_delays_all_sub_messages_equally(self, harness):
        harness.endpoints[1].register_handler(1, echo_handler)
        client = harness.endpoints[0]
        adversary = NetworkAdversary()
        adversary.delay_matching(
            lambda f: f.meta.get("is_request", False), delay=0.5
        )
        harness.fabric.adversary = adversary
        times = []

        def body():
            events = [
                client.enqueue_request("node1", 1, b"m%d" % i, 2)
                for i in range(5)
            ]
            for event in events:
                event.add_callback(
                    lambda ev: times.append(harness.sim.now)
                )
            yield harness.sim.all_of(events)
            return harness.sim.now

        finished = harness.run(body())
        assert finished >= 0.5
        # The whole batch was delayed as a unit: every continuation
        # fired at the same instant.
        assert len(times) == 5 and len(set(times)) == 1

    def test_tampered_response_batch_fails_waiting_continuations(self):
        harness = NetHarness(profile=TREATY_ENC)
        install_secure_echo(harness)
        adversary = NetworkAdversary()

        def corrupt(frame):
            data = bytearray(frame.payload)
            data[20] ^= 0xFF
            frame.payload = bytes(data)
            return frame

        adversary.tamper_matching(
            lambda f: not f.meta.get("is_request", True), corrupt
        )
        harness.fabric.adversary = adversary

        def body():
            try:
                yield from harness.secure[0].call("node1", tx_message(1))
            except IntegrityError:
                return "rejected"
            return "accepted"

        assert harness.run(body()) == "rejected"
        assert harness.secure[0].auth_failures >= 1


# -- crash handling ------------------------------------------------------------


class TestCrashFailFast:
    def test_pending_continuations_fail_on_destination_detach(self, harness):
        client = harness.endpoints[0]

        def slow_handler(payload, src):
            yield harness.sim.timeout(10.0)
            return payload, 4

        harness.endpoints[1].register_handler(1, slow_handler)

        def body():
            event = client.enqueue_request("node1", 1, b"x", 1)
            yield harness.sim.timeout(0.001)  # request in flight
            harness.fabric.detach("node1")
            try:
                yield event
            except NetworkError:
                return "failed-fast"
            return "replied"

        assert harness.run(body()) == "failed-fast"
        assert client._pending == {}  # no leaked continuation

    def test_send_to_detached_destination_fails_fast(self, harness):
        harness.fabric.detach("node1")

        def body():
            event = harness.endpoints[0].enqueue_request("node1", 1, b"x", 1)
            try:
                yield event
            except NetworkError:
                return "failed"
            return "sent"

        assert harness.run(body()) == "failed"
        assert harness.endpoints[0]._pending == {}

    def test_tx_bytes_probe_survives_nic_detach(self, harness):
        harness.endpoints[1].register_handler(1, echo_handler)

        def body():
            yield from harness.endpoints[0].call("node1", 1, b"x" * 100, 100)

        harness.run(body())
        before = harness.fabric.metrics.snapshot()["net.tx_bytes"]
        assert before > 0
        harness.fabric.detach("node1")
        after = harness.fabric.metrics.snapshot()["net.tx_bytes"]
        assert after == before  # history kept despite the detached NIC


# -- the pinned perf win -------------------------------------------------------


NUM_TXNS = 12


def shard_key(cluster, shard, tag):
    i = 0
    while True:
        key = b"%s-%04d" % (tag, i)
        if cluster.partitioner(key) == shard:
            return key
        i += 1


def fixed_distributed_run(batching):
    """A fixed set of concurrent distributed txns; returns the accounting.

    The workload is identical (deterministic keys, same txn mix) for
    both configurations, so commit/abort outcomes must match exactly and
    the frame/seal deltas isolate the transport change.
    """
    config = ClusterConfig(net_batching=batching)
    cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
    frames_before = cluster.fabric.delivered_frames
    seals_before = sum(
        node.runtime.metrics.counter("net.seal_ops").value
        for node in cluster.nodes
    )
    outcomes = {}

    def one_txn(i):
        txn = cluster.nodes[i % 3].coordinator.begin()
        try:
            for shard in range(3):
                key = shard_key(cluster, shard, b"nb%02d" % i)
                yield from txn.put(key, b"v%02d" % i)
            yield from txn.commit()
            outcomes[i] = "commit"
        except TransactionAborted:
            outcomes[i] = "abort"

    def body():
        procs = [
            cluster.sim.process(one_txn(i), name="nb-txn-%d" % i)
            for i in range(NUM_TXNS)
        ]
        yield cluster.sim.all_of(procs)
        yield cluster.sim.timeout(0.2)  # COMPLETE + background rounds land

    cluster.run(body())
    monitor = cluster.obs.monitor
    monitor.check_quiescent(now=cluster.sim.now)
    frames = cluster.fabric.delivered_frames - frames_before
    seals = (
        sum(
            node.runtime.metrics.counter("net.seal_ops").value
            for node in cluster.nodes
        )
        - seals_before
    )
    committed = sum(1 for v in outcomes.values() if v == "commit")
    return {
        "outcomes": outcomes,
        "frames": frames,
        "seals": seals,
        "committed": committed,
        "monitor_green": monitor.summary()["green"],
    }


class TestPinnedReduction:
    def test_batching_reduces_frames_and_seals_same_outcomes(self):
        off = fixed_distributed_run(batching=False)
        on = fixed_distributed_run(batching=True)
        # Identical semantics first: same per-txn outcomes, all
        # committed, invariant monitor green in both runs.
        assert on["outcomes"] == off["outcomes"]
        assert on["committed"] == NUM_TXNS
        assert on["monitor_green"] and off["monitor_green"]
        # The pinned win: strictly fewer delivered frames AND strictly
        # fewer AEAD passes per committed distributed transaction.
        assert on["frames"] < off["frames"]
        assert on["seals"] < off["seals"]


# -- bench runners (structure spot checks) ------------------------------------


class TestBenchRunners:
    def test_scaleout_sweep_small(self):
        from repro.bench.harness import scaleout_sweep

        results = scaleout_sweep(nodes=(3, 5), num_clients=4, duration=0.03)
        assert [n for n, _ in results] == [3, 5]
        for _, stats in results:
            assert stats["monitor"]["green"]
            assert stats["committed"] > 0
            assert stats["frames_per_txn"] > 0
            assert stats["counter_rounds_per_txn"] >= 0

    def test_netbatch_compare_small(self):
        from repro.bench.harness import netbatch_compare

        results = netbatch_compare(num_clients=8, duration=0.05)
        for label in ("off", "on"):
            assert results[label]["monitor"]["green"]
            assert results[label]["committed"] > 0
        assert results["on"]["batches_sent"] > 0
        assert results["off"]["batches_sent"] == 0
        assert results["reduction"]["frames_per_txn"] > 0
        assert results["reduction"]["seals_per_txn"] > 0

    def test_ycsb_locality_keeps_transactions_single_shard(self):
        from repro.sim.rng import SeededRng
        from repro.workloads.ycsb import (
            YcsbConfig,
            YcsbWorkload,
            shard_key_indices,
        )

        def partitioner(key):
            return key[-1] % 3

        config = YcsbConfig(num_keys=300, locality=0.9)
        shards = shard_key_indices(config, partitioner, 3)
        assert sorted(i for shard in shards for i in shard) == list(range(300))
        workload = YcsbWorkload(
            config, SeededRng(7, "loc"), shard_keys=shards, home_shard=1
        )
        single_shard = 0
        total = 200
        for _ in range(total):
            ops = workload.next_transaction()
            owners = {partitioner(key) for _, key, _ in ops}
            if owners == {1}:
                single_shard += 1
        # ~90% of transactions stay on the home shard.
        assert single_shard >= total * 0.8
