"""Tests for the ROTE-style trusted counter service."""

import pytest

from repro.config import ClusterConfig, TREATY_FULL
from repro.core import TreatyCluster


@pytest.fixture(scope="module")
def cluster():
    return TreatyCluster(profile=TREATY_FULL).start()


def test_stabilize_advances_stable_value(cluster):
    node = cluster.nodes[0]

    def body():
        yield from node.counter_client.stabilize("test-log-a", 5)
        return node.counter_client.stable_value("test-log-a")

    assert cluster.run(body()) == 5


def test_stabilization_takes_rote_latency(cluster):
    node = cluster.nodes[0]
    start = cluster.sim.now

    def body():
        yield from node.counter_client.stabilize("test-log-b", 1)

    cluster.run(body())
    elapsed = cluster.sim.now - start
    # Two echo-broadcast rounds at ~1 ms replica processing each.
    assert 0.5e-3 < elapsed < 6e-3


def test_batched_stabilization_shares_rounds(cluster):
    node = cluster.nodes[0]
    before = node.counter_client.rounds_executed

    def waiter(value):
        yield from node.counter_client.stabilize("test-log-c", value)

    def body():
        events = [
            cluster.sim.process(waiter(v), name="w%d" % v) for v in range(1, 21)
        ]
        yield cluster.sim.all_of(events)

    cluster.run(body())
    rounds = node.counter_client.rounds_executed - before
    assert rounds < 10  # 20 requests coalesced into far fewer rounds


def test_already_stable_returns_immediately(cluster):
    node = cluster.nodes[0]

    def body():
        yield from node.counter_client.stabilize("test-log-d", 3)
        start = cluster.sim.now
        yield from node.counter_client.stabilize("test-log-d", 2)
        return cluster.sim.now - start

    assert cluster.run(body()) == 0.0


def test_replicas_store_confirmed_values(cluster):
    node = cluster.nodes[0]

    def body():
        yield from node.counter_client.stabilize("test-log-e", 7)

    cluster.run(body())
    confirmed = [
        peer.replica.confirmed.get("test-log-e", 0) for peer in cluster.nodes
    ]
    # Quorum (2 of 3) must have confirmed; the writer certainly has.
    assert sum(1 for value in confirmed if value >= 7) >= 2


def test_replica_state_sealed_to_disk(cluster):
    node = cluster.nodes[0]

    def body():
        yield from node.counter_client.stabilize("test-log-f", 2)

    cluster.run(body())
    assert node.disk.exists("node0/counter.sealed")
    # Sealed: the log name must not appear in plaintext.
    assert b"test-log-f" not in node.disk.read("node0/counter.sealed")


def test_read_stable_returns_group_max(cluster):
    writer = cluster.nodes[1]
    reader = cluster.nodes[2]

    def body():
        yield from writer.counter_client.stabilize("test-log-g", 9)
        value = yield from reader.counter_client.read_stable("test-log-g")
        return value

    assert cluster.run(body()) == 9


def test_unknown_log_reads_zero(cluster):
    def body():
        value = yield from cluster.nodes[0].counter_client.read_stable("never-used")
        return value

    assert cluster.run(body()) == 0


def test_monotonicity_across_writers(cluster):
    node = cluster.nodes[0]

    def body():
        yield from node.counter_client.stabilize("test-log-h", 4)
        yield from node.counter_client.stabilize("test-log-h", 10)
        value = yield from cluster.nodes[1].counter_client.read_stable("test-log-h")
        return value

    assert cluster.run(body()) == 10
