"""Randomized stress tests: consistency invariants under concurrency,
crashes and the full secure stack."""

import pytest

from repro.config import TREATY_ENC, TREATY_FULL
from repro.core import TreatyCluster, crash_and_recover
from repro.errors import TransactionAborted
from repro.sim import SeededRng


class TestPairedWritesStayConsistent:
    """Writers update two keys (on different shards) to the same value
    inside one transaction; readers must never observe a mixed pair —
    the classic serializability smoke test."""

    def _pair(self, cluster, index):
        # Pick two keys on different shards, deterministically.
        left = b"pair-%03d-a" % index
        suffix = 0
        while True:
            right = b"pair-%03d-b%d" % (index, suffix)
            if cluster.partitioner(right) != cluster.partitioner(left):
                return left, right
            suffix += 1

    def test_readers_never_see_torn_pairs(self):
        cluster = TreatyCluster(profile=TREATY_ENC).start()
        sim = cluster.sim
        pairs = [self._pair(cluster, i) for i in range(4)]
        rng = SeededRng(11, "stress")
        violations = []
        done = {"writers": 0, "reads": 0}

        def setup():
            txn = cluster.nodes[0].coordinator.begin()
            for left, right in pairs:
                yield from txn.put(left, b"0")
                yield from txn.put(right, b"0")
            yield from txn.commit()

        cluster.run(setup())

        def writer(worker_id):
            local_rng = rng.child("w%d" % worker_id)
            for round_no in range(6):
                left, right = pairs[local_rng.randrange(len(pairs))]
                value = b"%d-%d" % (worker_id, round_no)
                txn = cluster.nodes[worker_id % 3].coordinator.begin()
                try:
                    yield from txn.put(left, value)
                    yield from txn.put(right, value)
                    yield from txn.commit()
                except TransactionAborted:
                    pass
            done["writers"] += 1

        def reader(worker_id):
            local_rng = rng.child("r%d" % worker_id)
            for _ in range(10):
                left, right = pairs[local_rng.randrange(len(pairs))]
                txn = cluster.nodes[worker_id % 3].coordinator.begin()
                try:
                    left_value = yield from txn.get(left)
                    right_value = yield from txn.get(right)
                    yield from txn.commit()
                except TransactionAborted:
                    continue
                done["reads"] += 1
                if left_value != right_value:
                    violations.append((left, left_value, right_value))

        for i in range(4):
            sim.process(writer(i))
        for i in range(4):
            sim.process(reader(i))
        sim.run()
        assert done["writers"] == 4
        assert done["reads"] > 10
        assert violations == []


class TestCrashDuringLoad:
    def test_invariant_survives_crash_under_load(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        sim = cluster.sim
        accounts = [b"acct-%02d" % i for i in range(12)]
        total = 12 * 100

        def setup():
            txn = cluster.nodes[0].coordinator.begin()
            for account in accounts:
                yield from txn.put(account, b"100")
            yield from txn.commit()

        cluster.run(setup())
        stats = {"committed": 0, "aborted": 0}

        def transfer(i):
            yield sim.timeout(i * 0.004)
            coordinator = cluster.nodes[i % 3].coordinator
            if not cluster.nodes[i % 3].is_up:
                return
            txn = coordinator.begin()
            try:
                src = accounts[i % len(accounts)]
                dst = accounts[(i * 5 + 1) % len(accounts)]
                src_val = yield from txn.get(src)
                dst_val = yield from txn.get(dst)
                yield from txn.put(src, b"%d" % (int(src_val) - 7))
                yield from txn.put(dst, b"%d" % (int(dst_val) + 7))
                yield from txn.commit()
                stats["committed"] += 1
            except TransactionAborted:
                stats["aborted"] += 1

        for i in range(30):
            sim.process(transfer(i))
        sim.run(until=sim.now + 0.05)
        # Crash node 2 while transfers are in flight; recover it.
        cluster.crash_node(2)
        sim.run(until=sim.now + 0.2)
        cluster.run(cluster.recover_node(2))
        sim.run(until=sim.now + 1.0)

        def audit():
            txn = cluster.nodes[0].coordinator.begin()
            values = []
            for account in accounts:
                values.append(int((yield from txn.get(account))))
            yield from txn.commit()
            return values

        values = cluster.run(audit())
        assert sum(values) == total
        assert stats["committed"] > 0


class TestDeterminism:
    def _run_once(self):
        cluster = TreatyCluster(profile=TREATY_ENC).start()
        sim = cluster.sim
        log = []

        def worker(i):
            txn = cluster.nodes[i % 3].coordinator.begin()
            try:
                for j in range(3):
                    yield from txn.put(b"det-%d-%d" % (i, j), b"v%d" % j)
                value = yield from txn.get(b"det-%d-0" % ((i + 1) % 6))
                yield from txn.commit()
                log.append((i, round(sim.now, 9), value))
            except TransactionAborted:
                log.append((i, round(sim.now, 9), "aborted"))

        for i in range(6):
            sim.process(worker(i))
        sim.run()
        return log

    def test_identical_histories_across_runs(self):
        assert self._run_once() == self._run_once()
