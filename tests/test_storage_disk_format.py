"""Tests for the simulated disk and the binary record formats."""

import pytest

from repro.errors import CorruptLogError, StorageError
from repro.storage import Disk, Reader, Writer, iter_log_entries, pack_kv, unpack_kv
from repro.storage.format import frame_log_entry


class TestDisk:
    def test_append_and_read(self):
        disk = Disk()
        offset = disk.append("log", b"hello")
        assert offset == 0
        assert disk.append("log", b" world") == 5
        assert disk.read("log") == b"hello world"

    def test_read_range(self):
        disk = Disk()
        disk.write("f", b"0123456789")
        assert disk.read_range("f", 2, 3) == b"234"
        with pytest.raises(StorageError):
            disk.read_range("f", 8, 5)

    def test_missing_file_raises(self):
        with pytest.raises(StorageError):
            Disk().read("nope")

    def test_delete_and_exists(self):
        disk = Disk()
        disk.write("f", b"x")
        assert disk.exists("f")
        disk.delete("f")
        assert not disk.exists("f")
        disk.delete("f")  # idempotent

    def test_create_duplicate_rejected(self):
        disk = Disk()
        disk.create("f")
        with pytest.raises(StorageError):
            disk.create("f")

    def test_list_files_with_prefix(self):
        disk = Disk()
        disk.write("node0/a", b"")
        disk.write("node0/b", b"")
        disk.write("node1/a", b"")
        assert disk.list_files("node0/") == ["node0/a", "node0/b"]

    def test_snapshot_restore_rollback(self):
        disk = Disk()
        disk.write("log", b"old-state")
        old = disk.snapshot()
        disk.write("log", b"new-state")
        disk.restore(old)
        assert disk.read("log") == b"old-state"

    def test_snapshot_is_deep_copy(self):
        disk = Disk()
        disk.write("log", b"abc")
        snap = disk.snapshot()
        disk.append("log", b"def")
        assert snap.files["log"] == b"abc"

    def test_tamper_flips_byte(self):
        disk = Disk()
        disk.write("f", b"\x00\x00")
        disk.tamper("f", 1, xor_mask=0xFF)
        assert disk.read("f") == b"\x00\xff"

    def test_truncate(self):
        disk = Disk()
        disk.write("f", b"0123456789")
        disk.truncate("f", 4)
        assert disk.read("f") == b"0123"

    def test_total_bytes(self):
        disk = Disk()
        disk.write("a", b"xx")
        disk.write("b", b"yyy")
        assert disk.total_bytes() == 5


class TestFormat:
    def test_writer_reader_roundtrip(self):
        data = Writer().u32(7).u64(2**40).blob(b"payload").raw(b"zz").getvalue()
        reader = Reader(data)
        assert reader.u32() == 7
        assert reader.u64() == 2**40
        assert reader.blob() == b"payload"
        assert reader.raw(2) == b"zz"
        assert reader.exhausted

    def test_truncated_read_raises(self):
        reader = Reader(b"\x01\x02")
        with pytest.raises(CorruptLogError):
            reader.u32()

    def test_kv_roundtrip(self):
        packed = pack_kv(b"key", b"value")
        assert unpack_kv(packed) == (b"key", b"value")

    def test_log_entry_framing(self):
        tag = bytes(32)
        blob = frame_log_entry(1, b"first", tag) + frame_log_entry(2, b"second", tag)
        entries = list(iter_log_entries(blob))
        assert [(e.counter, e.payload) for e in entries] == [
            (1, b"first"),
            (2, b"second"),
        ]
        assert entries[1].offset == len(frame_log_entry(1, b"first", tag))

    def test_bad_tag_length_rejected(self):
        with pytest.raises(ValueError):
            frame_log_entry(1, b"x", b"short")

    def test_truncated_log_raises(self):
        tag = bytes(32)
        blob = frame_log_entry(1, b"data", tag)
        with pytest.raises(CorruptLogError):
            list(iter_log_entries(blob[:-10]))
