"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


@pytest.fixture
def sim():
    return Simulator()


def test_timeout_advances_clock(sim):
    def body():
        yield sim.timeout(1.5)
        return sim.now

    assert sim.run_process(body()) == 1.5
    assert sim.now == 1.5


def test_timeouts_fire_in_order(sim):
    order = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(waiter(3.0, "c"))
    sim.process(waiter(1.0, "a"))
    sim.process(waiter(2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_equal_time_ties_broken_by_schedule_order(sim):
    order = []

    def waiter(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("first", "second", "third"):
        sim.process(waiter(tag))
    sim.run()
    assert order == ["first", "second", "third"]


def test_negative_timeout_rejected(sim):
    with pytest.raises(SimulationError):
        sim.timeout(-0.1)


def test_process_returns_value(sim):
    def child():
        yield sim.timeout(1)
        return 42

    def parent():
        result = yield sim.process(child())
        return result

    assert sim.run_process(parent()) == 42


def test_joining_finished_process_still_delivers(sim):
    def child():
        yield sim.timeout(1)
        return "done"

    def parent(proc):
        yield sim.timeout(5)  # child finished long ago
        value = yield proc
        return value

    child_proc = sim.process(child())
    assert sim.run_process(parent(child_proc)) == "done"


def test_event_succeed_delivers_value(sim):
    event = sim.event()

    def setter():
        yield sim.timeout(2)
        event.succeed("payload")

    def getter():
        value = yield event
        return (sim.now, value)

    sim.process(setter())
    assert sim.run_process(getter()) == (2, "payload")


def test_event_fail_raises_in_waiter(sim):
    event = sim.event()

    def setter():
        yield sim.timeout(1)
        event.fail(ValueError("boom"))

    def getter():
        try:
            yield event
        except ValueError as exc:
            return str(exc)

    sim.process(setter())
    assert sim.run_process(getter()) == "boom"


def test_unhandled_process_failure_surfaces(sim):
    def bad():
        yield sim.timeout(1)
        raise RuntimeError("unhandled")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_double_trigger_rejected(sim):
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_yield_from_composition(sim):
    def inner():
        yield sim.timeout(1)
        return 10

    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b

    assert sim.run_process(outer()) == 20
    assert sim.now == 2


def test_interrupt_wakes_sleeping_process(sim):
    def sleeper():
        try:
            yield sim.timeout(100)
            return "slept"
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, sim.now)

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(3)
        proc.interrupt("wake up")

    sim.process(interrupter())
    sim.run()
    assert proc.value == ("interrupted", "wake up", 3)


def test_stale_wakeup_after_interrupt_is_ignored(sim):
    resumes = []

    def sleeper():
        try:
            yield sim.timeout(5)
        except Interrupt:
            pass
        yield sim.timeout(10)  # the old timeout at t=5 must not resume this
        resumes.append(sim.now)

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(1)
        proc.interrupt()

    sim.process(interrupter())
    sim.run()
    assert resumes == [11]


def test_any_of_returns_first(sim):
    def body():
        fast = sim.timeout(1, value="fast")
        slow = sim.timeout(9, value="slow")
        winner = yield AnyOf(sim, [fast, slow])
        return winner.value

    assert sim.run_process(body()) == "fast"


def test_all_of_waits_for_everything(sim):
    def body():
        events = [sim.timeout(d, value=d) for d in (3, 1, 2)]
        values = yield AllOf(sim, events)
        return (sim.now, sorted(values))

    assert sim.run_process(body()) == (3, [1, 2, 3])


def test_all_of_empty_triggers_immediately(sim):
    def body():
        values = yield sim.all_of([])
        return values

    assert sim.run_process(body()) == []


def test_run_until_stops_clock(sim):
    def forever():
        while True:
            yield sim.timeout(1)

    sim.process(forever())
    sim.run(until=10)
    assert sim.now == 10


def test_deadlock_detected_by_run_process(sim):
    def stuck():
        yield sim.event()  # never triggered

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(stuck())


def test_determinism_same_seed_same_history():
    def run_once():
        sim = Simulator()
        log = []

        def worker(tag, delay):
            for _ in range(3):
                yield sim.timeout(delay)
                log.append((round(sim.now, 6), tag))

        sim.process(worker("a", 0.5))
        sim.process(worker("b", 0.7))
        sim.run()
        return log

    assert run_once() == run_once()
