"""Tests for coordinator-log garbage collection (Clog rotation)."""

import pytest

from repro.config import TREATY_ENC, TREATY_FULL
from repro.core import TreatyCluster, crash_and_recover


def keys_on_each_node(cluster, tag):
    result = {}
    i = 0
    while len(result) < 3:
        key = b"%s-%04d" % (tag, i)
        owner = cluster.partitioner(key)
        result.setdefault(owner, key)
        i += 1
    return result


def distributed_commit(cluster, tag, value=b"v"):
    spread = keys_on_each_node(cluster, tag)

    def body():
        txn = cluster.nodes[0].coordinator.begin()
        for key in spread.values():
            yield from txn.put(key, value)
        yield from txn.commit()
        yield cluster.sim.timeout(0.05)  # let COMPLETE records land

    cluster.run(body())
    return spread


class TestClogRotation:
    def test_rotation_creates_fresh_log_and_deletes_old(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        distributed_commit(cluster, b"rotA")
        node = cluster.nodes[0]
        old_path = node.clog.filename
        assert node.clog.last_counter >= 3
        cluster.run(node.rotate_clog())
        cluster.sim.run(until=cluster.sim.now + 0.2)  # GC fiber
        assert node.clog.filename != old_path
        assert not node.disk.exists(old_path)
        # Completed transactions were not carried over.
        assert node.clog.last_counter == 0

    def test_rotation_preserves_unresolved_decisions(self):
        """A decided-but-incomplete commit must survive rotation so a
        recovering participant can still resolve it."""
        from repro.net import NetworkAdversary

        cluster = TreatyCluster(profile=TREATY_FULL).start()
        adversary = NetworkAdversary()
        adversary.drop_matching(
            lambda f: f.kind == "erpc"
            and f.meta.get("is_request")
            and f.meta.get("req_type") == 4  # TXN_COMMIT
            and f.dst == "node1"
        )
        cluster.fabric.adversary = adversary
        spread = keys_on_each_node(cluster, b"rotB")

        def doomed():
            txn = cluster.nodes[0].coordinator.begin()
            for key in spread.values():
                yield from txn.put(key, b"decided")
            yield from txn.commit()  # blocks retrying node1's commit

        cluster.sim.process(doomed())
        cluster.sim.run(until=cluster.sim.now + 0.3)
        cluster.fabric.adversary = None
        cluster.crash_node(1)

        # Rotate the coordinator's clog while the decision is unresolved.
        node0 = cluster.nodes[0]
        cluster.run(node0.rotate_clog())
        assert node0.clog.last_counter >= 1  # carried records

        # Crash + recover the coordinator: decisions must still be known.
        cluster.crash_node(0)
        cluster.run(cluster.recover_node(0))
        cluster.run(cluster.recover_node(1))
        cluster.sim.run(until=cluster.sim.now + 2.0)

        def check():
            txn = cluster.nodes[2].coordinator.begin()
            value = yield from txn.get(spread[1])
            yield from txn.commit()
            return value

        assert cluster.run(check()) == b"decided"

    def test_recovery_uses_latest_clog_after_rotation(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        distributed_commit(cluster, b"rotC")
        node = cluster.nodes[0]
        cluster.run(node.rotate_clog())
        cluster.sim.run(until=cluster.sim.now + 0.2)
        distributed_commit(cluster, b"rotD")
        cluster.run(crash_and_recover(cluster, 0))
        # The recovered coordinator reads the *rotated* clog.
        assert node.clog.filename.endswith("clog-000002.log")

    def test_rotation_without_stabilization_profile(self):
        cluster = TreatyCluster(profile=TREATY_ENC).start()
        distributed_commit(cluster, b"rotE")
        node = cluster.nodes[0]
        old_path = node.clog.filename
        cluster.run(node.rotate_clog())
        cluster.sim.run(until=cluster.sim.now + 0.2)
        assert not node.disk.exists(old_path)
