"""Tests for the sharded lock table."""

import pytest

from repro.errors import LockTimeout
from repro.sim import Simulator
from repro.txn import LockMode, LockTable


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def table(sim):
    return LockTable(sim, shards=16, timeout=0.5)


def run(sim, gen):
    return sim.run_process(gen)


class TestGrants:
    def test_exclusive_grant_immediate(self, sim, table):
        run(sim, table.acquire(b"t1", b"k", LockMode.EXCLUSIVE))
        assert table.holds(b"t1", b"k", LockMode.EXCLUSIVE)

    def test_shared_locks_coexist(self, sim, table):
        run(sim, table.acquire(b"t1", b"k", LockMode.SHARED))
        run(sim, table.acquire(b"t2", b"k", LockMode.SHARED))
        assert table.holds(b"t1", b"k") and table.holds(b"t2", b"k")

    def test_exclusive_blocks_shared(self, sim, table):
        run(sim, table.acquire(b"t1", b"k", LockMode.EXCLUSIVE))
        with pytest.raises(LockTimeout):
            run(sim, table.acquire(b"t2", b"k", LockMode.SHARED, timeout=0.1))
        assert table.timeouts == 1

    def test_shared_blocks_exclusive(self, sim, table):
        run(sim, table.acquire(b"t1", b"k", LockMode.SHARED))
        with pytest.raises(LockTimeout):
            run(sim, table.acquire(b"t2", b"k", LockMode.EXCLUSIVE, timeout=0.1))

    def test_reentrant_acquire(self, sim, table):
        run(sim, table.acquire(b"t1", b"k", LockMode.EXCLUSIVE))
        run(sim, table.acquire(b"t1", b"k", LockMode.EXCLUSIVE))
        run(sim, table.acquire(b"t1", b"k", LockMode.SHARED))  # W covers R

    def test_upgrade_sole_reader(self, sim, table):
        run(sim, table.acquire(b"t1", b"k", LockMode.SHARED))
        run(sim, table.acquire(b"t1", b"k", LockMode.EXCLUSIVE))
        assert table.holds(b"t1", b"k", LockMode.EXCLUSIVE)

    def test_upgrade_waits_for_other_readers(self, sim, table):
        run(sim, table.acquire(b"t1", b"k", LockMode.SHARED))
        run(sim, table.acquire(b"t2", b"k", LockMode.SHARED))

        outcome = []

        def upgrader():
            yield from table.acquire(b"t1", b"k", LockMode.EXCLUSIVE)
            outcome.append(sim.now)

        def releaser():
            yield sim.timeout(0.1)
            table.release_all(b"t2")

        sim.process(upgrader())
        sim.process(releaser())
        sim.run()
        assert outcome == [0.1]
        assert table.holds(b"t1", b"k", LockMode.EXCLUSIVE)


class TestWaitingAndRelease:
    def test_fifo_handoff(self, sim, table):
        order = []

        def worker(txn, delay):
            yield sim.timeout(delay)
            yield from table.acquire(txn, b"k", LockMode.EXCLUSIVE, timeout=10)
            order.append(txn)
            yield sim.timeout(0.05)
            table.release_all(txn)

        for i, txn in enumerate((b"a", b"b", b"c")):
            sim.process(worker(txn, i * 0.001))
        sim.run()
        assert order == [b"a", b"b", b"c"]

    def test_release_wakes_multiple_readers(self, sim, table):
        run(sim, table.acquire(b"w", b"k", LockMode.EXCLUSIVE))
        granted = []

        def reader(txn):
            yield from table.acquire(txn, b"k", LockMode.SHARED, timeout=10)
            granted.append(txn)

        sim.process(reader(b"r1"))
        sim.process(reader(b"r2"))

        def releaser():
            yield sim.timeout(0.1)
            table.release_all(b"w")

        sim.process(releaser())
        sim.run()
        assert sorted(granted) == [b"r1", b"r2"]

    def test_release_all_frees_every_key(self, sim, table):
        for key in (b"a", b"b", b"c"):
            run(sim, table.acquire(b"t1", key, LockMode.EXCLUSIVE))
        assert table.total_locked_keys() == 3
        table.release_all(b"t1")
        assert table.total_locked_keys() == 0
        run(sim, table.acquire(b"t2", b"a", LockMode.EXCLUSIVE))

    def test_release_unknown_txn_is_noop(self, table):
        table.release_all(b"ghost")

    def test_timed_out_waiter_skipped_on_handoff(self, sim, table):
        run(sim, table.acquire(b"t1", b"k", LockMode.EXCLUSIVE))

        def impatient():
            try:
                yield from table.acquire(b"t2", b"k", LockMode.EXCLUSIVE, timeout=0.05)
            except LockTimeout:
                pass

        def patient():
            yield from table.acquire(b"t3", b"k", LockMode.EXCLUSIVE, timeout=10)
            return sim.now

        sim.process(impatient())
        patient_proc = sim.process(patient())

        def releaser():
            yield sim.timeout(0.2)
            table.release_all(b"t1")

        sim.process(releaser())
        sim.run()
        assert patient_proc.value == 0.2
        assert table.holds(b"t3", b"k", LockMode.EXCLUSIVE)

    def test_deadlock_resolved_by_timeout(self, sim, table):
        """Classic A->B, B->A deadlock: one side times out and aborts."""
        results = {}

        def txn(me, first, second):
            try:
                yield from table.acquire(me, first, LockMode.EXCLUSIVE, timeout=0.3)
                yield sim.timeout(0.01)
                yield from table.acquire(me, second, LockMode.EXCLUSIVE, timeout=0.3)
                results[me] = "ok"
            except LockTimeout:
                results[me] = "timeout"
                table.release_all(me)

        sim.process(txn(b"t1", b"a", b"b"))
        sim.process(txn(b"t2", b"b", b"a"))
        sim.run()
        assert "timeout" in results.values()

    def test_shard_count_validation(self, sim):
        with pytest.raises(ValueError):
            LockTable(sim, shards=0)
