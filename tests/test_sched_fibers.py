"""Tests for the userland fiber scheduler (§VII-C)."""

import pytest

from repro.config import ClusterConfig, DS_ROCKSDB, TREATY_NO_ENC
from repro.sched import Compute, FiberScheduler, Sleep, Wait, YieldNow
from repro.sim import Simulator
from repro.tee import NodeRuntime


def make_scheduler(profile=DS_ROCKSDB):
    sim = Simulator()
    runtime = NodeRuntime(sim, profile, ClusterConfig())
    return sim, FiberScheduler(runtime)


class TestBasics:
    def test_single_fiber_runs_to_completion(self):
        sim, sched = make_scheduler()

        def fiber():
            yield Compute(1e-6)
            return "done"

        handle = sched.spawn(fiber())
        sim.run()
        assert handle.finished
        assert handle.result == "done"

    def test_round_robin_interleaving(self):
        sim, sched = make_scheduler()
        trace = []

        def fiber(tag):
            for step in range(3):
                trace.append((tag, step))
                yield YieldNow()

        sched.spawn(fiber("a"))
        sched.spawn(fiber("b"))
        sim.run()
        # Strict alternation: a0 b0 a1 b1 a2 b2.
        assert trace == [
            ("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)
        ]

    def test_sleeping_queue_wakes_in_order(self):
        sim, sched = make_scheduler()
        wakes = []

        def sleeper(tag, duration):
            yield Sleep(duration)
            wakes.append((tag, round(sim.now, 9)))

        sched.spawn(sleeper("late", 3e-3))
        sched.spawn(sleeper("early", 1e-3))
        sim.run()
        assert [tag for tag, _ in wakes] == ["early", "late"]
        assert wakes[0][1] >= 1e-3

    def test_wait_blocks_until_event(self):
        sim, sched = make_scheduler()
        event = sim.event()
        results = []

        def waiter():
            value = yield Wait(event)
            results.append(value)

        sched.spawn(waiter())

        def trigger():
            yield sim.timeout(0.5)
            event.succeed("payload")

        sim.process(trigger())
        sim.run()
        assert results == ["payload"]

    def test_compute_advances_clock(self):
        sim, sched = make_scheduler()

        def worker():
            yield Compute(1.0)

        sched.spawn(worker())
        sim.run()
        assert sim.now >= 1.0

    def test_many_fibers_share_one_scheduler(self):
        sim, sched = make_scheduler()
        done = []

        def client(i):
            for _ in range(5):
                yield Compute(1e-6)
                yield YieldNow()
            done.append(i)

        for i in range(64):
            sched.spawn(client(i))
        sim.run()
        assert len(done) == 64

    def test_invalid_op_rejected(self):
        sim, sched = make_scheduler()

        def bad():
            yield "not-an-op"

        sched.spawn(bad())
        with pytest.raises(TypeError):
            sim.run()


class TestPaperProperties:
    def test_switching_fibers_costs_no_syscalls(self):
        """Context switches between runnable fibers are syscall-free."""
        sim, sched = make_scheduler(profile=TREATY_NO_ENC)

        def busy(tag):
            for _ in range(10):
                yield Compute(1e-6)
                yield YieldNow()

        sched.spawn(busy("a"))
        sched.spawn(busy("b"))
        sim.run()
        assert sched.context_switches >= 20
        assert sched.idle_syscalls == 0

    def test_idle_scheduler_pays_syscalls_with_backoff(self):
        sim, sched = make_scheduler(profile=TREATY_NO_ENC)

        def mostly_sleeping():
            yield Sleep(5e-3)

        sched.spawn(mostly_sleeping())
        sim.run()
        assert sched.idle_syscalls >= 1

    def test_fiber_spawned_while_idle_wakes_scheduler(self):
        sim, sched = make_scheduler()
        results = []

        def late_fiber():
            yield Compute(1e-6)
            results.append(sim.now)

        def spawner():
            yield sim.timeout(0.25)
            sched.spawn(late_fiber())

        def initial():
            yield Compute(1e-6)

        sched.spawn(initial())
        sim.process(spawner())
        sim.run()
        assert results and results[0] >= 0.25
