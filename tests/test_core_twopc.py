"""Tests for the secure 2PC protocol: atomicity, isolation, aborts."""

import pytest

from repro.config import DS_ROCKSDB, TREATY_ENC, TREATY_FULL
from repro.core import TreatyCluster
from repro.core.twopc import ClogRecord
from repro.errors import TransactionAborted
from repro.net import NetworkAdversary


def keys_per_node(cluster, count=2, tag=b"k"):
    """Pick keys that partition onto each node (deterministic)."""
    result = {i: [] for i in range(len(cluster.nodes))}
    i = 0
    while any(len(v) < count for v in result.values()):
        key = b"%s-%06d" % (tag, i)
        owner = cluster.partitioner(key)
        if len(result[owner]) < count:
            result[owner].append(key)
        i += 1
    return result


@pytest.fixture(scope="module")
def full_cluster():
    return TreatyCluster(profile=TREATY_FULL).start()


class TestDistributedCommit:
    def test_cross_shard_commit_visible_everywhere(self, full_cluster):
        cluster = full_cluster
        spread = keys_per_node(cluster, tag=b"a")
        coordinator = cluster.nodes[0].coordinator

        def body():
            txn = coordinator.begin()
            for node_keys in spread.values():
                yield from txn.put(node_keys[0], b"committed")
            yield from txn.commit()
            # Read back through a fresh transaction.
            check = coordinator.begin()
            values = []
            for node_keys in spread.values():
                values.append((yield from check.get(node_keys[0])))
            yield from check.commit()
            return values

        assert cluster.run(body()) == [b"committed"] * 3
        assert coordinator.distributed_commits >= 1

    def test_single_node_fast_path_skips_clog(self, full_cluster):
        cluster = full_cluster
        coordinator = cluster.nodes[1].coordinator
        local_key = keys_per_node(cluster, tag=b"b")[1][0]
        clog_before = cluster.nodes[1].clog.last_counter

        def body():
            txn = coordinator.begin()
            yield from txn.put(local_key, b"local")
            yield from txn.commit()

        cluster.run(body())
        assert cluster.nodes[1].clog.last_counter == clog_before
        assert coordinator.local_commits >= 1

    def test_distributed_commit_writes_clog_records(self, full_cluster):
        cluster = full_cluster
        spread = keys_per_node(cluster, tag=b"c")
        coordinator = cluster.nodes[2].coordinator
        clog_before = cluster.nodes[2].clog.last_counter

        def body():
            txn = coordinator.begin()
            for node_keys in spread.values():
                yield from txn.put(node_keys[1], b"v")
            yield from txn.commit()
            yield cluster.sim.timeout(0.05)  # let COMPLETE land

        cluster.run(body())
        # PREPARE + COMMIT + COMPLETE
        assert cluster.nodes[2].clog.last_counter >= clog_before + 3

    def test_remote_read_returns_committed_value(self, full_cluster):
        cluster = full_cluster
        spread = keys_per_node(cluster, tag=b"d")
        # Write via node0, read via node1's coordinator.
        key_on_2 = spread[2][0]

        def body():
            writer = cluster.nodes[0].coordinator.begin()
            yield from writer.put(key_on_2, b"xyz")
            yield from writer.commit()
            reader = cluster.nodes[1].coordinator.begin()
            value = yield from reader.get(key_on_2)
            yield from reader.commit()
            return value

        assert cluster.run(body()) == b"xyz"

    def test_read_your_writes_across_shards(self, full_cluster):
        cluster = full_cluster
        spread = keys_per_node(cluster, tag=b"e")
        key_remote = spread[1][1] if cluster.partitioner(spread[1][1]) != 0 else spread[2][1]

        def body():
            txn = cluster.nodes[0].coordinator.begin()
            yield from txn.put(key_remote, b"uncommitted")
            value = yield from txn.get(key_remote)
            yield from txn.rollback()
            return value

        assert cluster.run(body()) == b"uncommitted"


class TestAbort:
    def test_rollback_discards_everywhere(self, full_cluster):
        cluster = full_cluster
        spread = keys_per_node(cluster, tag=b"f")

        def body():
            txn = cluster.nodes[0].coordinator.begin()
            for node_keys in spread.values():
                yield from txn.put(node_keys[0] + b"-rb", b"junk")
            yield from txn.rollback()
            check = cluster.nodes[0].coordinator.begin()
            values = []
            for node_keys in spread.values():
                values.append((yield from check.get(node_keys[0] + b"-rb")))
            yield from check.commit()
            return values

        assert cluster.run(body()) == [None, None, None]

    def test_remote_lock_conflict_aborts_global_txn(self, full_cluster):
        cluster = full_cluster
        spread = keys_per_node(cluster, tag=b"g")
        hot_key = spread[1][0]
        sim = cluster.sim
        results = {}

        def holder():
            txn = cluster.nodes[0].coordinator.begin()
            yield from txn.put(hot_key, b"holder")
            yield sim.timeout(1.5)  # hold across the other's lock timeout
            yield from txn.commit()
            results["holder"] = "committed"

        def contender():
            yield sim.timeout(0.05)
            txn = cluster.nodes[2].coordinator.begin()
            try:
                yield from txn.put(hot_key, b"contender")
                yield from txn.commit()
                results["contender"] = "committed"
            except TransactionAborted:
                results["contender"] = "aborted"

        sim.process(holder())
        sim.process(contender())
        sim.run()
        assert results == {"holder": "committed", "contender": "aborted"}

        def check():
            txn = cluster.nodes[0].coordinator.begin()
            value = yield from txn.get(hot_key)
            yield from txn.commit()
            return value

        assert cluster.run(check()) == b"holder"

    def test_failed_txn_releases_participant_locks(self, full_cluster):
        cluster = full_cluster
        for node in cluster.nodes:
            assert node.manager.locks.total_locked_keys() == 0


class TestConcurrency:
    def test_concurrent_disjoint_distributed_txns(self):
        cluster = TreatyCluster(profile=TREATY_ENC).start()
        sim = cluster.sim
        committed = []

        def worker(i):
            coordinator = cluster.nodes[i % 3].coordinator
            txn = coordinator.begin()
            for j in range(3):
                yield from txn.put(b"w%d-%d" % (i, j), b"val-%d" % i)
            yield from txn.commit()
            committed.append(i)

        for i in range(15):
            sim.process(worker(i))
        sim.run()
        assert sorted(committed) == list(range(15))

        def check():
            txn = cluster.nodes[0].coordinator.begin()
            values = []
            for i in range(15):
                values.append((yield from txn.get(b"w%d-0" % i)))
            yield from txn.commit()
            return values

        assert cluster.run(check()) == [b"val-%d" % i for i in range(15)]

    def test_atomic_cross_shard_transfer_invariant(self):
        """Concurrent transfers preserve the total across shards."""
        cluster = TreatyCluster(profile=TREATY_ENC).start()
        sim = cluster.sim
        accounts = [b"acct-%04d" % i for i in range(8)]

        def setup():
            txn = cluster.nodes[0].coordinator.begin()
            for account in accounts:
                yield from txn.put(account, b"100")
            yield from txn.commit()

        cluster.run(setup())

        def transfer(i):
            src = accounts[i % len(accounts)]
            dst = accounts[(i + 3) % len(accounts)]
            coordinator = cluster.nodes[i % 3].coordinator
            txn = coordinator.begin()
            try:
                src_balance = yield from txn.get(src)
                dst_balance = yield from txn.get(dst)
                yield from txn.put(src, b"%d" % (int(src_balance) - 10))
                yield from txn.put(dst, b"%d" % (int(dst_balance) + 10))
                yield from txn.commit()
            except TransactionAborted:
                pass

        for i in range(12):
            sim.process(transfer(i))
        sim.run()

        def audit():
            txn = cluster.nodes[0].coordinator.begin()
            total = 0
            for account in accounts:
                balance = yield from txn.get(account)
                total += int(balance)
            yield from txn.commit()
            return total

        assert cluster.run(audit()) == 100 * len(accounts)


class TestSecurity:
    def test_tampered_2pc_message_detected(self):
        cluster = TreatyCluster(profile=TREATY_ENC).start()
        adversary = NetworkAdversary()

        def corrupt(frame):
            data = bytearray(frame.payload)
            data[len(data) // 2] ^= 0xFF
            frame.payload = bytes(data)
            return frame

        adversary.tamper_matching(
            lambda f: f.kind == "erpc"
            and f.meta.get("is_request")
            and f.dst.startswith("node")
            and not f.dst.endswith(".front")
            and f.src.startswith("node"),
            corrupt,
        )
        cluster.fabric.adversary = adversary
        spread = keys_per_node(cluster, tag=b"h")
        remote_key = spread[1][0]

        from repro.errors import IntegrityError

        def body():
            txn = cluster.nodes[0].coordinator.begin()
            yield from txn.put(remote_key, b"v")

        with pytest.raises(IntegrityError):
            cluster.run(body())
        assert adversary.tampered >= 1

    def test_duplicated_prepare_not_double_executed(self):
        cluster = TreatyCluster(profile=TREATY_ENC).start()
        adversary = NetworkAdversary()
        adversary.duplicate_matching(
            lambda f: f.kind == "erpc" and f.meta.get("is_request")
            and f.meta.get("req_type") == 3  # TXN_PREPARE
        )
        cluster.fabric.adversary = adversary
        spread = keys_per_node(cluster, tag=b"i")

        def body():
            txn = cluster.nodes[0].coordinator.begin()
            yield from txn.put(spread[1][0], b"once")
            yield from txn.put(spread[2][0], b"once")
            yield from txn.commit()
            yield cluster.sim.timeout(0.1)
            check = cluster.nodes[0].coordinator.begin()
            value = yield from check.get(spread[1][0])
            yield from check.commit()
            return value

        assert cluster.run(body()) == b"once"
        total_rejected = sum(
            node.cluster_rpc.replay_guard.rejected for node in cluster.nodes
        )
        assert total_rejected >= 1

    def test_plaintext_leaks_only_without_encryption(self):
        """With encryption, key material never crosses the wire in clear."""
        observed = {"cipher": [], "plain": []}

        def run(profile, bucket):
            cluster = TreatyCluster(profile=profile).start()
            adversary = NetworkAdversary()

            def spy(frame):
                if isinstance(frame.payload, (bytes, bytearray)):
                    observed[bucket].append(bytes(frame.payload))
                return [(frame, 0.0)]

            adversary.add_rule(spy)
            cluster.fabric.adversary = adversary
            spread = keys_per_node(cluster, tag=b"jj")
            remote = spread[1][0]

            def body():
                txn = cluster.nodes[0].coordinator.begin()
                yield from txn.put(remote, b"SECRETVALUE")
                yield from txn.commit()

            cluster.run(body())

        run(TREATY_ENC, "cipher")
        run(DS_ROCKSDB, "plain")
        assert not any(b"SECRETVALUE" in frame for frame in observed["cipher"])
        assert any(b"SECRETVALUE" in frame for frame in observed["plain"])
