"""Randomized crash-point conformance sweep for piggybacked 2PC.

Every seed builds a fresh cluster, drives a handful of concurrent
distributed transactions, and fail-stops one node at a seeded crash
point — one of the observable steps of the 2PC + stabilization
pipeline:

* ``twopc/prepare_target``  — prepare logged, piggybacked ACK about to
  leave the participant (its counter target is *not* yet stable);
* ``twopc/prepare_ack``     — legacy path: prepare stabilized, ACK sent;
* ``stabilize/group_begin`` — the coordinator's group-wide echo round
  is in flight (targets chosen, nothing stable yet);
* ``twopc/decision``        — decision logged to the Clog, not stable;
* ``twopc/commit_apply``    — a participant applied the commit;
* ``stabilize/advance``     — a stable-counter gate moved.

The victim is the node that emitted the event or a seeded bystander.
After a settle period the victim recovers and the suite asserts the
conformance conditions:

* **atomicity** — each transaction's writes are all present or all
  absent across every shard, whatever the crash point;
* **durability** — a transaction whose commit() returned success is
  fully visible after recovery;
* **safety** — the strict I1–I5 invariant monitor stays green for the
  entire run (it raises at the violating instant), and the end-of-run
  quiescence check (I4/I5 tail sweep) passes.

Crash model: :meth:`TreatyCluster.crash_node` detaches the node's NIC
— nothing is sent or received afterwards (in-flight frames and zombie
fibers' sends are dropped at the NIC identity check).  A fiber already
past its last network wait may still complete its current local disk
write, which models device I/O that was submitted before the failure;
the first network interaction parks it forever.

Failing seeds can be exported for offline triage: set
``CRASH_CONFORMANCE_TRACE_DIR`` and each failure writes a Chrome-trace
JSON (``chrome://tracing`` / Perfetto) of the full run.  The seed count
defaults to one pass over every crash scenario; CI widens it with
``CRASH_CONFORMANCE_SEEDS=<count>`` or ``<start>:<stop>``.

``CRASH_CONFORMANCE_OCC=1`` reruns the whole sweep under distributed
OCC: every workload transaction executes lock-free and validates inside
the participants' PREPARE critical sections, so the same crash points
now land on validators mid-prepare (e.g. ``twopc/prepare_target`` fires
after validation, inside the prepare critical section).  I1–I5 and the
atomicity/durability audits must hold identically.
"""

import os

import pytest

from repro.config import ClusterConfig, TREATY_FULL
from repro.core import TreatyCluster
from repro.errors import TransactionAborted
from repro.mc.faults import SCENARIOS, CrashInjector
from repro.obs import write_chrome_trace
from repro.sim.rng import SeededRng

# Crash scenarios and the injector live in repro.mc.faults now, shared
# with the model checker so both use one fault vocabulary.  SCENARIOS
# order is pinned there (seed % len(SCENARIOS) must keep its mapping).


def _seed_list():
    """Default: one pass over all scenarios plus a few reruns."""
    spec = os.environ.get("CRASH_CONFORMANCE_SEEDS", "12")
    if ":" in spec:
        start, stop = spec.split(":", 1)
        return list(range(int(start), int(stop)))
    return list(range(int(spec)))


def _backend_list():
    """Rollback-protection backends the sweep runs under.  CI narrows
    this to one backend per matrix job with
    ``CRASH_CONFORMANCE_BACKENDS=<name>[,<name>...]``."""
    spec = os.environ.get(
        "CRASH_CONFORMANCE_BACKENDS", "counter-sync,counter-async,lcm"
    )
    return [name.strip() for name in spec.split(",") if name.strip()]


def _occ_mode():
    """Whether the sweep drives distributed-OCC transactions."""
    return os.environ.get("CRASH_CONFORMANCE_OCC") == "1"


def _backend_config(seed, backend, piggyback):
    """Sweep config: the coverage backends also run sharded so the
    sweep exercises per-shard frontiers and shard-aware recovery."""
    return ClusterConfig(
        seed=seed,
        tracing=True,
        monitor=True,
        twopc_piggyback=piggyback,
        rollback_backend=backend,
        counter_shards=1 if backend == "counter-sync" else 2,
    )


# -- workload ------------------------------------------------------------------


def distinct_keys(cluster, node_index, count, tag):
    keys, i = [], 0
    while len(keys) < count:
        key = b"%s-%05d" % (tag, i)
        if cluster.partitioner(key) == node_index:
            keys.append(key)
        i += 1
    return keys


def spread_txns(cluster, count):
    """``count`` transactions, each writing one key per shard (forced
    2PC), with per-transaction distinct keys and values."""
    txns = []
    for t in range(count):
        tag = b"cc%02d" % t
        pairs = [
            (distinct_keys(cluster, i, 1, tag)[0], b"val-" + tag)
            for i in range(cluster.num_nodes)
        ]
        txns.append((t % cluster.num_nodes, pairs))
    return txns


def read_owner(cluster, key):
    """Read ``key`` through a fresh transaction on its owning shard."""
    owner = cluster.partitioner(key)

    def body():
        txn = cluster.nodes[owner].coordinator.begin()
        value = yield from txn.get(key)
        yield from txn.commit()
        return value

    return cluster.run(body(), name="conformance-read")


# -- the sweep -----------------------------------------------------------------


@pytest.mark.parametrize("backend", _backend_list())
@pytest.mark.parametrize("seed", _seed_list())
def test_crash_point_conformance(seed, backend):
    point, piggyback = SCENARIOS[seed % len(SCENARIOS)]
    rng = SeededRng(seed, "crash-conformance")
    occurrence = rng.randint(1, 3)
    # Bias towards crashing the emitter; sometimes take down a bystander.
    victim_offset = rng.choice((0, 0, 0, 1, 2))

    # COORDINATOR_NO_RESTART=1: the crashed node stays dead for the rest
    # of the run — the sweep then asserts that the survivors converge on
    # their own through decision replication + the completer protocol.
    no_restart = os.environ.get("COORDINATOR_NO_RESTART") == "1"

    config = _backend_config(seed, backend, piggyback)
    cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
    try:
        _run_one_seed(cluster, rng, point, occurrence, victim_offset,
                      no_restart=no_restart, occ=_occ_mode())
    except BaseException:
        trace_dir = os.environ.get("CRASH_CONFORMANCE_TRACE_DIR")
        if trace_dir:
            os.makedirs(trace_dir, exist_ok=True)
            records = cluster.obs.records()
            stem = "seed-%03d-%s" % (seed, backend)
            write_chrome_trace(
                records,
                os.path.join(trace_dir, stem + ".trace.json"),
            )
            _export_critical_paths(
                records,
                os.path.join(trace_dir, stem + ".critpath.txt"),
            )
            _export_incidents(
                records,
                os.path.join(trace_dir, stem + ".incidents.jsonl"),
            )
        raise


def _export_critical_paths(records, path):
    """Per-transaction critical paths for the failing seed's trace — the
    "where did the time go" view next to the raw Chrome trace.  Best
    effort: a half-recorded trace must never mask the real failure."""
    from repro.obs import critical_path, format_breakdown, transaction_traces

    sections = []
    for trace in transaction_traces(records):
        try:
            sections.append(format_breakdown(critical_path(records, trace)))
        except Exception as exc:  # noqa: BLE001 - diagnostic export only
            sections.append("trace %s: critical path unavailable (%s)"
                            % (trace, exc))
    with open(path, "w") as fp:
        fp.write("\n\n".join(sections) + "\n")


def _export_incidents(records, path):
    """Post-hoc incident log for the failing seed: the record-driven
    detectors (takeover, lease expiry, lock convoy) replayed over the
    saved trace.  Best effort, like the critical-path export."""
    from repro.obs import IncidentLog

    try:
        IncidentLog.from_records(records).write(path)
    except Exception as exc:  # noqa: BLE001 - diagnostic export only
        with open(path, "w") as fp:
            fp.write('{"error": "incident replay failed: %s"}\n' % exc)


def _run_one_seed(cluster, rng, point, occurrence, victim_offset,
                  no_restart=False, occ=False):
    sim = cluster.sim
    txns = spread_txns(cluster, count=6)
    outcomes = ["pending"] * len(txns)

    def drive(index, coord, pairs, delay):
        yield sim.timeout(delay)
        txn = cluster.nodes[coord].coordinator.begin(optimistic=occ)
        put_done = [False]

        def put_phase():
            try:
                for key, value in pairs:
                    yield from txn.put(key, value)
            except TransactionAborted:
                outcomes[index] = "aborted"
                return
            put_done[0] = True

        # A real client times out a stalled operation and gives up; a
        # put blocked on a crashed shard would otherwise park forever.
        puts = sim.process(put_phase(), name="puts-%d" % index)
        yield sim.any_of([puts, sim.timeout(4.0)])
        if outcomes[index] == "aborted":
            return
        if not put_done[0]:
            outcomes[index] = "stuck"
            # Give-up path: release locks everywhere (retries until the
            # crashed shard recovers; from a crashed coordinator the
            # epoch fence does the job instead).
            sim.process(txn.rollback(), name="giveup-%d" % index)
            return
        try:
            yield from txn.commit()
        except TransactionAborted:
            outcomes[index] = "aborted"
            return
        outcomes[index] = "committed"

    injector = CrashInjector(cluster, point, occurrence, victim_offset).arm()
    for index, (coord, pairs) in enumerate(txns):
        # Stagger starts so the N-th crash point lands on transactions
        # in different interleavings across seeds.
        sim.process(
            drive(index, coord, pairs, delay=index * rng.uniform(1e-4, 2e-3)),
            name="conformance-txn-%d" % index,
        )
    # Past the prepare-vote timeout (2 s) plus resolution retries; a
    # transaction blocked on the crashed node parks, everything else
    # settles to a decision.
    sim.run(until=sim.now + 6.0)

    if injector.crashed is not None:
        if no_restart:
            # Nobody recovers the victim: decision timeouts fire, a
            # surviving completer drives each in-doubt group to its
            # replicated (or presumed-abort) outcome.
            sim.run(until=sim.now + 6.0)
        else:
            cluster.run(cluster.recover_node(injector.crashed),
                        name="recover")
            # Let re-aborts, re-driven commits and prepared-txn
            # resolution converge before auditing state.
            sim.run(until=sim.now + 6.0)

    # Conformance: atomicity + durability across every shard.  A shard
    # that is dead forever (no_restart) is unservable — its half is
    # audited on the survivors only.
    dead = injector.crashed if no_restart else None
    for index, (coord, pairs) in enumerate(txns):
        audit = [
            (key, expected) for key, expected in pairs
            if cluster.partitioner(key) != dead
        ]
        values = [read_owner(cluster, key) for key, _ in audit]
        present = [value == audit[i][1] for i, value in enumerate(values)]
        if outcomes[index] == "committed":
            assert all(present), (
                "seed txn %d committed but writes are missing: %s"
                % (index, values)
            )
        else:
            # Aborted or in-doubt: all-or-nothing, never a partial write.
            assert all(present) or not any(present), (
                "txn %d (%s) applied on some shards only: %s"
                % (index, outcomes[index], values)
            )

    monitor = cluster.obs.monitor
    monitor.check_quiescent(now=sim.now)
    assert monitor.green, monitor.violations
    # The sweep is only meaningful if the seed actually produced work.
    assert any(outcome == "committed" for outcome in outcomes) or (
        injector.crashed is not None
    )


# -- coverage promises under crashes ------------------------------------------


class TestCoveragePromiseCrash:
    """Coordinator crashes with an unexpired coverage promise
    outstanding: the promise was registered (``counter/promise``), its
    lease has not expired, no round of the waiter's own is in flight —
    the canonical new failure mode of the async backends."""

    @pytest.mark.parametrize("backend", ["counter-async", "lcm"])
    def test_coordinator_crash_with_unexpired_promise(self, backend):
        config = _backend_config(77, backend, piggyback=True)
        cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
        rng = SeededRng(77, "promise-crash")
        # occurrence=1, offset=0: kill the emitter at its very first
        # registered promise, well inside the lease window.
        _run_one_seed(
            cluster, rng, ("counter", "promise"),
            occurrence=1, victim_offset=0,
        )

    @pytest.mark.parametrize("backend", ["counter-async", "lcm"])
    def test_bystander_crash_leaves_promise_resolvable(self, backend):
        """A *replica* (not the promise holder) dies while the promise
        is outstanding: with quorum 2-of-3 the round must still cover
        the targets without waiting for recovery."""
        config = _backend_config(78, backend, piggyback=True)
        cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
        rng = SeededRng(78, "promise-bystander")
        _run_one_seed(
            cluster, rng, ("counter", "promise"),
            occurrence=1, victim_offset=1,
        )


# -- counter-round accounting: the tentpole's headline ------------------------


def _distributed_commit(cluster, tag):
    """One transaction spanning all shards; returns after commit()."""
    pairs = [
        (distinct_keys(cluster, i, 1, tag)[0], b"acct-" + tag)
        for i in range(cluster.num_nodes)
    ]

    def body():
        txn = cluster.nodes[0].coordinator.begin()
        for key, value in pairs:
            yield from txn.put(key, value)
        yield from txn.commit()

    cluster.run(body(), name="acct-txn")
    return pairs


def _total_rounds(cluster):
    return sum(node.counter_client.rounds_executed for node in cluster.nodes)


def _txn_events(cluster, cat, name):
    return [
        rec
        for rec in cluster.obs.records()
        if rec["type"] == "event" and rec["cat"] == cat and rec["name"] == name
    ]


class TestCounterRoundAccounting:
    def test_piggyback_commits_in_one_critical_path_round(self):
        """Headline: ≤1 group-wide round per distributed transaction.

        Piggybacking folds every participant's prepare target and the
        Clog decision entry into a single echo-broadcast round on the
        commit critical path.  The apply-side targets ride a second,
        *background* round shared with the COMPLETE record.
        """
        config = ClusterConfig(tracing=True, monitor=True)
        cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
        cluster.sim.run(until=cluster.sim.now + 0.1)  # drain bootstrap
        before = _total_rounds(cluster)
        _distributed_commit(cluster, b"pg-on")
        critical = _total_rounds(cluster) - before
        assert critical <= 1, (
            "piggybacked distributed commit used %d counter rounds on "
            "the critical path (expected <= 1)" % critical
        )
        # The deferred COMPLETE+apply round runs off the critical path.
        cluster.sim.run(until=cluster.sim.now + 0.5)
        total = _total_rounds(cluster) - before
        assert total <= 2

        # The group-wide round is visible in the trace; the legacy
        # stabilize-before-ACK events are not.
        assert _txn_events(cluster, "twopc", "prepare_target")
        assert _txn_events(cluster, "stabilize", "group_begin")
        assert not _txn_events(cluster, "twopc", "prepare_ack")

    def test_flag_off_restores_per_node_rounds(self):
        """``twopc_piggyback=False`` restores the old per-node shape:
        every participant stabilizes before ACKing, the decision gets
        its own round, and no group-round events appear in the trace."""
        config = ClusterConfig(
            tracing=True, monitor=True, twopc_piggyback=False
        )
        cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
        cluster.sim.run(until=cluster.sim.now + 0.1)
        before = _total_rounds(cluster)
        _distributed_commit(cluster, b"pg-off")
        critical = _total_rounds(cluster) - before
        assert critical >= 2, (
            "per-node path should pay one round per prepare plus the "
            "decision round, got %d" % critical
        )
        assert _txn_events(cluster, "twopc", "prepare_ack")
        assert not _txn_events(cluster, "twopc", "prepare_target")
        assert not _txn_events(cluster, "stabilize", "group_begin")

    def test_both_modes_commit_identical_state(self):
        """The flag changes round accounting, never the outcome."""
        states = {}
        for flag in (True, False):
            config = ClusterConfig(twopc_piggyback=flag)
            cluster = TreatyCluster(
                profile=TREATY_FULL, config=config
            ).start()
            pairs = _distributed_commit(cluster, b"pg-eq")
            states[flag] = [read_owner(cluster, key) for key, _ in pairs]
        assert states[True] == states[False]
        assert all(value is not None for value in states[True])
