"""Tests for the TEE layer: enclave model, SGX primitives, runtime, IAS."""

import pytest

from repro.config import (
    ClusterConfig,
    CostModel,
    DS_ROCKSDB,
    TREATY_ENC,
    TREATY_NO_ENC,
)
from repro.errors import AttestationError, IntegrityError, StorageError
from repro.sim import Simulator
from repro.tee import (
    Enclave,
    HardwareMonotonicCounter,
    IntelAttestationService,
    NodeRuntime,
    PlatformQuotingEnclave,
    Quote,
    Report,
    SealingKey,
    measure,
)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def costs():
    return CostModel()


class TestEnclaveModel:
    def test_no_paging_within_epc(self, costs):
        enclave = Enclave(costs)
        enclave.memory.allocate(costs.epc_bytes // 2)
        assert enclave.touch_cost(4096) == 0.0

    def test_paging_cost_under_pressure(self, costs):
        enclave = Enclave(costs)
        enclave.memory.allocate(costs.epc_bytes * 2)
        cost = enclave.touch_cost(costs.page_bytes * 100)
        assert cost == pytest.approx(100 * 0.5 * costs.epc_page_fault)

    def test_transition_counts(self, costs):
        enclave = Enclave(costs)
        assert enclave.transition_cost() == costs.world_switch
        assert enclave.transitions == 1


class TestSgxPrimitives:
    def test_measurement_is_stable_and_distinct(self):
        assert measure("treaty-v1") == measure("treaty-v1")
        assert measure("treaty-v1") != measure("malware")

    def test_quote_roundtrip(self):
        qe = PlatformQuotingEnclave("node1", b"manufacturer-seed")
        report = Report(measure("treaty-v1"), b"pubkey-fp")
        quote = Quote.create(report, qe.signing_key)
        quote.verify(qe.verify_key, measure("treaty-v1"))

    def test_quote_wrong_measurement_rejected(self):
        qe = PlatformQuotingEnclave("node1", b"manufacturer-seed")
        quote = Quote.create(Report(measure("malware"), b""), qe.signing_key)
        with pytest.raises(AttestationError):
            quote.verify(qe.verify_key, measure("treaty-v1"))

    def test_sealing_roundtrip_and_tamper(self):
        key = SealingKey(b"platform-secret", measure("treaty-v1"))
        sealed = key.seal(b"counter-state")
        assert key.unseal(sealed) == b"counter-state"
        tampered = bytearray(sealed)
        tampered[-1] ^= 1
        with pytest.raises(IntegrityError):
            key.unseal(bytes(tampered))

    def test_sealing_bound_to_measurement(self):
        key_a = SealingKey(b"platform", measure("a"))
        key_b = SealingKey(b"platform", measure("b"))
        with pytest.raises(IntegrityError):
            key_b.unseal(key_a.seal(b"state"))


class TestNodeRuntime:
    def _run(self, sim, gen):
        return sim.run_process(gen)

    def test_enclave_work_is_slower(self, sim):
        config = ClusterConfig()
        native = NodeRuntime(sim, DS_ROCKSDB, config)
        secure = NodeRuntime(Simulator(), TREATY_NO_ENC, config)

        def work(runtime):
            yield from runtime.compute(1.0)
            return runtime.sim.now

        native_time = self._run(sim, work(native))
        secure_time = secure.sim.run_process(work(secure))
        assert secure_time > native_time
        assert secure_time == pytest.approx(1.0 / config.costs.enclave_speed_factor)

    def test_syscall_cost_higher_in_enclave(self):
        config = ClusterConfig()
        sim_native, sim_scone = Simulator(), Simulator()
        native = NodeRuntime(sim_native, DS_ROCKSDB, config)
        scone = NodeRuntime(sim_scone, TREATY_NO_ENC, config)

        def one_syscall(runtime):
            yield from runtime.syscall(1024)

        sim_native.run_process(one_syscall(native))
        sim_scone.run_process(one_syscall(scone))
        assert sim_scone.now > sim_native.now

    def test_crypto_charged_only_with_encryption(self):
        config = ClusterConfig()
        sim_plain, sim_enc = Simulator(), Simulator()
        plain = NodeRuntime(sim_plain, TREATY_NO_ENC, config)
        enc = NodeRuntime(sim_enc, TREATY_ENC, config)

        def crypt(runtime):
            yield from runtime.seal_cost(4096)

        sim_plain.run_process(crypt(plain))
        sim_enc.run_process(crypt(enc))
        assert sim_plain.now == 0.0
        # Crypto work runs inside the enclave, so it is scaled by the
        # enclave speed factor like all other CPU work.
        expected = config.costs.aead_cost(4096) / config.costs.enclave_speed_factor
        assert sim_enc.now == pytest.approx(expected)

    def test_ssd_write_takes_device_time(self, sim):
        runtime = NodeRuntime(sim, DS_ROCKSDB, ClusterConfig())

        def write(runtime):
            yield from runtime.ssd_write(4096)

        sim.run_process(write(runtime))
        assert sim.now >= ClusterConfig().costs.ssd_write_cost(4096)

    def test_touch_enclave_free_when_native(self, sim):
        runtime = NodeRuntime(sim, DS_ROCKSDB, ClusterConfig())
        runtime.enclave.memory.allocate(10**10)

        def touch(runtime):
            yield from runtime.touch_enclave(1 << 20)

        sim.run_process(touch(runtime))
        assert sim.now == 0.0


class TestHardwareCounter:
    def test_increment_is_slow_and_monotonic(self, sim, costs):
        counter = HardwareMonotonicCounter(sim, costs)

        def bump():
            value = yield from counter.increment()
            return value

        assert sim.run_process(bump()) == 1
        assert sim.now == pytest.approx(costs.sgx_counter_increment)
        assert counter.read() == 1

    def test_wear_out(self, sim, costs):
        counter = HardwareMonotonicCounter(sim, costs, wear_limit=2)

        def burn():
            yield from counter.increment()
            yield from counter.increment()
            yield from counter.increment()

        with pytest.raises(StorageError, match="worn out"):
            sim.run_process(burn())


class TestIas:
    def test_verifies_known_platform(self, sim, costs):
        ias = IntelAttestationService(sim, costs, b"manufacturer")
        qe = PlatformQuotingEnclave("node1", b"manufacturer")
        ias.register_platform(qe)
        quote = Quote.create(Report(measure("treaty"), b"rd"), qe.signing_key)

        def verify():
            ok = yield from ias.verify_quote(quote, measure("treaty"))
            return ok

        assert sim.run_process(verify())
        assert sim.now == pytest.approx(costs.ias_round_trip)

    def test_unknown_platform_rejected(self, sim, costs):
        ias = IntelAttestationService(sim, costs, b"manufacturer")
        rogue = PlatformQuotingEnclave("rogue", b"other-seed")
        quote = Quote.create(Report(measure("treaty"), b""), rogue.signing_key)

        def verify():
            yield from ias.verify_quote(quote, measure("treaty"))

        with pytest.raises(AttestationError):
            sim.run_process(verify())
