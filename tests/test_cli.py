"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.profile == "Treaty w/ Enc w/ Stab"
        assert args.keys == 8

    def test_ycsb_options(self):
        args = build_parser().parse_args(
            ["ycsb", "--profile", "DS-RocksDB", "--reads", "0.8",
             "--clients", "4", "--duration", "0.1", "--distribution", "zipfian"]
        )
        assert args.reads == 0.8
        assert args.distribution == "zipfian"

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--profile", "NotAProfile"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "DS-RocksDB" in output
        assert "rote_latency_mean" in output

    def test_demo_runs(self, capsys):
        assert main(["demo", "--keys", "3", "--profile", "DS-RocksDB"]) == 0
        output = capsys.readouterr().out
        assert "read back" in output
        assert "value-0" in output

    def test_ycsb_runs_small(self, capsys):
        code = main(
            ["ycsb", "--profile", "DS-RocksDB", "--keys", "200",
             "--clients", "2", "--duration", "0.05"]
        )
        assert code == 0
        assert "throughput" in capsys.readouterr().out

    def test_tpcc_runs_small(self, capsys):
        code = main(
            ["tpcc", "--profile", "DS-RocksDB", "--warehouses", "2",
             "--clients", "2", "--duration", "0.05"]
        )
        assert code == 0
        assert "throughput" in capsys.readouterr().out
