"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.profile == "Treaty w/ Enc w/ Stab"
        assert args.keys == 8

    def test_ycsb_options(self):
        args = build_parser().parse_args(
            ["ycsb", "--profile", "DS-RocksDB", "--reads", "0.8",
             "--clients", "4", "--duration", "0.1", "--distribution", "zipfian"]
        )
        assert args.reads == 0.8
        assert args.distribution == "zipfian"

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--profile", "NotAProfile"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "DS-RocksDB" in output
        assert "rote_latency_mean" in output

    def test_demo_runs(self, capsys):
        assert main(["demo", "--keys", "3", "--profile", "DS-RocksDB"]) == 0
        output = capsys.readouterr().out
        assert "read back" in output
        assert "value-0" in output

    def test_ycsb_runs_small(self, capsys):
        code = main(
            ["ycsb", "--profile", "DS-RocksDB", "--keys", "200",
             "--clients", "2", "--duration", "0.05"]
        )
        assert code == 0
        assert "throughput" in capsys.readouterr().out

    def test_tpcc_runs_small(self, capsys):
        code = main(
            ["tpcc", "--profile", "DS-RocksDB", "--warehouses", "2",
             "--clients", "2", "--duration", "0.05"]
        )
        assert code == 0
        assert "throughput" in capsys.readouterr().out


class TestReportCommand:
    def test_report_parses_with_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.workload == "ycsb"
        assert args.clients == 16
        assert args.window == 5.0
        assert args.timeline_out is None

    def test_metrics_export_parses(self):
        args = build_parser().parse_args(["metrics", "export", "--prom"])
        assert args.mode == "export"
        assert args.prom is True

    def test_bench_flight_recorder_flag(self):
        args = build_parser().parse_args(
            ["bench", "smoke", "--flight-recorder"])
        assert args.flight_recorder is True
        args = build_parser().parse_args(["bench", "smoke"])
        assert args.flight_recorder is False

    def test_report_runs_small(self, capsys, tmp_path):
        timeline = tmp_path / "timeline.jsonl"
        incidents = tmp_path / "incidents.jsonl"
        code = main(
            ["report", "--workload", "demo", "--clients", "4",
             "--duration", "0.02", "--seed", "3",
             "--timeline-out", str(timeline),
             "--incidents-out", str(incidents)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "timeline" in output
        assert "ring" in output
        assert "commits" in output
        assert timeline.exists()
        first = timeline.read_text().splitlines()[0]
        assert '"window":0' in first
        assert incidents.exists()

    def test_metrics_export_prom_runs(self, capsys):
        code = main(
            ["metrics", "export", "--prom", "--workload", "demo",
             "--clients", "2", "--duration", "0.01", "--seed", "3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "# TYPE repro_" in output
        assert "_total{component=" in output
