"""Tests for the benchmark substrate: metrics, reporting, null engine."""

import pytest

from repro.bench import MetricsCollector
from repro.bench.reporting import ComparisonTable, PaperRow, format_table
from repro.config import ClusterConfig, TREATY_ENC, TREATY_FULL
from repro.core import TreatyCluster
from repro.sim import Simulator
from repro.storage.nullengine import NullLog, NullStorageEngine
from repro.tee import NodeRuntime


class TestMetrics:
    def test_throughput_over_window(self):
        metrics = MetricsCollector()
        metrics.measure_from(1.0)
        for i in range(10):
            metrics.record(1.0 + i * 0.1, 1.05 + i * 0.1)
        metrics.finish(2.0)
        assert metrics.throughput() == pytest.approx(10.0)

    def test_warmup_samples_excluded(self):
        metrics = MetricsCollector()
        metrics.measure_from(1.0)
        metrics.record(0.5, 0.6)  # during warmup
        metrics.record(1.5, 1.6)
        metrics.finish(2.0)
        assert metrics.committed == 1

    def test_percentiles(self):
        metrics = MetricsCollector()
        metrics.measure_from(0.0)
        for i in range(1, 101):
            metrics.record(0.0, i / 1000.0)
        metrics.finish(1.0)
        assert metrics.percentile(50) == pytest.approx(0.0505, rel=0.02)
        assert metrics.percentile(99) == pytest.approx(0.100, rel=0.02)
        assert metrics.percentile(0) == pytest.approx(0.001)

    def test_abort_rate(self):
        metrics = MetricsCollector()
        metrics.measure_from(0.0)
        metrics.record(0, 0.1)
        metrics.record_abort()
        metrics.finish(1.0)
        assert metrics.abort_rate() == pytest.approx(0.5)

    def test_empty_collector_is_safe(self):
        metrics = MetricsCollector()
        assert metrics.throughput() == 0.0
        assert metrics.mean_latency() == 0.0
        assert metrics.percentile(99) == 0.0
        assert metrics.abort_rate() == 0.0

    def test_summary_keys(self):
        metrics = MetricsCollector("x")
        metrics.measure_from(0.0)
        metrics.record(0, 0.01)
        metrics.finish(1.0)
        summary = metrics.summary()
        assert summary["name"] == "x"
        assert summary["committed"] == 1
        assert summary["throughput_tps"] == pytest.approx(1.0)


class TestReporting:
    def test_paper_row_range_check(self):
        assert PaperRow("s", 2.0, paper_range=(1.5, 2.5)).within_paper_range()
        assert not PaperRow("s", 3.0, paper_range=(1.5, 2.5)).within_paper_range()
        assert PaperRow("s", 3.0).within_paper_range() is None

    def test_comparison_table_renders(self):
        table = ComparisonTable("T")
        table.add("sysA", 1.0)
        table.add("sysB", 2.0, paper_range=(1.5, 2.5), note="n")
        text = table.render()
        assert "sysA" in text and "sysB" in text
        assert "OK" in text
        results = table.results()
        assert results["sysB"]["within"] is True

    def test_format_table_alignment(self):
        text = format_table("t", ["col"], [["a-long-cell"]])
        assert "a-long-cell" in text


class TestNullEngine:
    def make(self):
        sim = Simulator()
        runtime = NodeRuntime(sim, TREATY_ENC, ClusterConfig())
        return sim, NullStorageEngine(runtime)

    def test_put_get(self):
        sim, engine = self.make()

        def body():
            writes = [(b"k", b"v", engine.next_seq())]
            yield from engine.log_commit(b"t", writes)
            yield from engine.apply_writes(writes)
            return (yield from engine.get(b"k"))

        assert sim.run_process(body()) == b"v"

    def test_scan_and_seq(self):
        sim, engine = self.make()

        def body():
            writes = [
                (b"a", b"1", engine.next_seq()),
                (b"b", b"2", engine.next_seq()),
                (b"c", None, engine.next_seq()),
            ]
            yield from engine.apply_writes(writes)
            rows = yield from engine.scan(b"a", b"z")
            seq = yield from engine.seq_of(b"b")
            return rows, seq

        rows, seq = sim.run_process(body())
        assert rows == [(b"a", b"1"), (b"b", b"2")]
        assert seq == 2

    def test_prepared_tracking(self):
        sim, engine = self.make()

        def body():
            yield from engine.log_prepare(b"g", [(b"k", b"v", 0)])
            assert b"g" in engine.prepared_txns
            yield from engine.log_commit(b"g", [(b"k", b"v", 1)])
            assert b"g" not in engine.prepared_txns

        sim.run_process(body())

    def test_null_log_counters(self):
        sim = Simulator()
        runtime = NodeRuntime(sim, TREATY_ENC, ClusterConfig())
        log = NullLog(runtime, "x/clog")

        def body():
            first = yield from log.append(b"a")
            rest = yield from log.append_many([b"b", b"c"])
            return first, rest

        assert sim.run_process(body()) == (1, [2, 3])
        assert log.last_counter == 3

    def test_null_cluster_end_to_end(self):
        config = ClusterConfig(storage_engine="null")
        cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
        session = cluster.session(cluster.client_machine())

        def body():
            txn = session.begin()
            yield from txn.put(b"nk", b"nv")
            yield from txn.commit()
            check = session.begin()
            value = yield from check.get(b"nk")
            yield from check.commit()
            return value

        assert cluster.run(body()) == b"nv"
        # Storage-less: nothing hit the simulated SSD beyond counters.
        for node in cluster.nodes:
            assert not node.disk.list_files(node.name + "/wal-")

    def test_null_cluster_fiber_delay_exempt(self):
        """The 2PC-only deployment fits in EPC: no resume delay."""
        config = ClusterConfig(storage_engine="null")
        cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
        for node in cluster.nodes:
            assert not node.runtime.heavy_enclave
            assert node.runtime.fiber_resume_delay() == 0.0


class TestStorageIoModes:
    def test_spdk_reads_skip_syscalls_but_pay_device(self):
        from repro.config import ClusterConfig, TREATY_ENC
        from repro.sim import Simulator
        from repro.tee import NodeRuntime

        def one_read(io_mode):
            sim = Simulator()
            runtime = NodeRuntime(
                sim, TREATY_ENC, ClusterConfig(storage_io=io_mode)
            )

            def body():
                yield from runtime.ssd_read(4096)

            sim.run_process(body())
            return sim.now, runtime.syscalls

        syscall_time, syscall_count = one_read("syscall")
        spdk_time, spdk_count = one_read("spdk")
        assert syscall_count == 1 and spdk_count == 0
        # Page-cached read is much faster than a device read.
        assert spdk_time > syscall_time

    def test_spdk_writes_cheaper_cpu(self):
        from repro.config import ClusterConfig, TREATY_ENC
        from repro.sim import Simulator
        from repro.tee import NodeRuntime

        def one_write(io_mode):
            sim = Simulator()
            runtime = NodeRuntime(
                sim, TREATY_ENC, ClusterConfig(storage_io=io_mode)
            )

            def body():
                yield from runtime.ssd_write(65536)

            sim.run_process(body())
            return sim.now

        # SPDK avoids the shielded syscall copies on the write path.
        assert one_write("spdk") < one_write("syscall")
