"""Tests for the LSM engine: writes, reads, flush, compaction, recovery."""

import pytest

from repro.config import ClusterConfig, CostModel, DS_ROCKSDB, TREATY_ENC
from repro.errors import IntegrityError, StorageError
from repro.storage import ManifestEdit, WalRecord

from tests.conftest import StorageHarness


def small_config(memtable_limit=4096):
    return ClusterConfig(memtable_limit_bytes=memtable_limit, block_bytes=512)


class TestBasicOps:
    def test_put_get(self):
        harness = StorageHarness().boot()
        harness.put_all([(b"k1", b"v1"), (b"k2", b"v2")])
        assert harness.get(b"k1") == b"v1"
        assert harness.get(b"k2") == b"v2"

    def test_missing_key(self):
        harness = StorageHarness().boot()
        assert harness.get(b"nope") is None

    def test_delete_via_tombstone(self):
        harness = StorageHarness().boot()
        harness.put_all([(b"k", b"v")])
        harness.put_all([(b"k", None)])
        assert harness.get(b"k") is None

    def test_overwrite_latest_wins(self):
        harness = StorageHarness().boot()
        harness.put_all([(b"k", b"old")])
        harness.put_all([(b"k", b"new")])
        assert harness.get(b"k") == b"new"

    def test_seq_numbers_monotonic(self):
        harness = StorageHarness().boot()
        assert harness.engine.next_seq() == 1
        assert harness.engine.next_seq() == 2

    def test_get_with_seq(self):
        harness = StorageHarness().boot()
        harness.put_all([(b"k", b"v")])
        value, seq = harness.run(harness.engine.get_with_seq(b"k"))
        assert value == b"v" and seq == 1
        assert harness.run(harness.engine.get_with_seq(b"zz")) == (None, 0)

    def test_double_bootstrap_rejected(self):
        harness = StorageHarness().boot()
        with pytest.raises(StorageError):
            harness.run(harness.engine.bootstrap())


class TestFlushAndRead:
    def test_reads_span_memtable_and_sstables(self):
        harness = StorageHarness(config=small_config()).boot()
        for batch in range(6):
            harness.put_all(
                [(b"key-%d-%d" % (batch, i), b"x" * 200) for i in range(8)]
            )
        assert harness.engine.flush_count >= 1
        # Keys from the first (flushed) batch and the last (in-memtable).
        assert harness.get(b"key-0-0") == b"x" * 200
        assert harness.get(b"key-5-7") == b"x" * 200

    def test_flush_rotates_wal(self):
        harness = StorageHarness(config=small_config()).boot()
        first_wal = harness.engine.wal.filename
        for batch in range(4):
            harness.put_all([(b"k%d-%d" % (batch, i), b"y" * 300) for i in range(6)])
        assert harness.engine.wal.filename != first_wal

    def test_flushed_value_overridden_by_newer_memtable(self):
        harness = StorageHarness(config=small_config()).boot()
        harness.put_all([(b"target", b"old-value")])
        harness.run(harness.engine.flush())
        harness.put_all([(b"target", b"new-value")])
        assert harness.get(b"target") == b"new-value"

    def test_tombstone_hides_flushed_value(self):
        harness = StorageHarness(config=small_config()).boot()
        harness.put_all([(b"target", b"value")])
        harness.run(harness.engine.flush())
        harness.put_all([(b"target", None)])
        assert harness.get(b"target") is None

    def test_flush_empty_memtable_is_noop(self):
        harness = StorageHarness().boot()
        harness.run(harness.engine.flush())
        assert harness.engine.flush_count == 0

    def test_old_wal_deleted_after_grace(self):
        harness = StorageHarness(config=small_config()).boot()
        first_wal = harness.engine.wal.filename
        harness.put_all([(b"k%d" % i, b"z" * 400) for i in range(12)])
        harness.run(harness.engine.flush())
        harness.sim.run()  # let the deferred GC fiber run
        assert not harness.disk.exists(first_wal)


class TestCompaction:
    def test_compaction_triggers_and_preserves_data(self):
        harness = StorageHarness(config=small_config()).boot()
        expected = {}
        for batch in range(10):
            pairs = [
                (b"key-%03d" % ((batch * 7 + i) % 40), b"val-%d-%d" % (batch, i))
                for i in range(8)
            ]
            for key, value in pairs:
                expected[key] = value
            harness.put_all(pairs)
            harness.run(harness.engine.flush())
        assert harness.engine.compaction_count >= 1
        assert harness.engine.levels.get(1), "L1 should be populated"
        for key, value in expected.items():
            assert harness.get(key) == value, key

    def test_compaction_drops_tombstones_at_bottom(self):
        harness = StorageHarness(config=small_config()).boot()
        harness.put_all([(b"dead-%d" % i, b"v") for i in range(8)])
        harness.run(harness.engine.flush())
        harness.put_all([(b"dead-%d" % i, None) for i in range(8)])
        harness.run(harness.engine.flush())
        for _ in range(3):
            harness.put_all([(b"pad", b"p")])
            harness.run(harness.engine.flush())
        harness.run(harness.engine.compact(0))
        assert harness.get(b"dead-3") is None
        harness.sim.run()

    def test_obsolete_tables_deleted_after_grace(self):
        harness = StorageHarness(config=small_config()).boot()
        for batch in range(5):
            harness.put_all([(b"k-%d-%d" % (batch, i), b"v" * 300) for i in range(6)])
            harness.run(harness.engine.flush())
        harness.sim.run()
        live = {
            meta.filename
            for tables in harness.engine.levels.values()
            for meta in tables
        }
        on_disk = {
            f for f in harness.disk.list_files("node0/") if "/sst-" in f
        }
        assert on_disk == live


class TestScan:
    def test_scan_merges_levels(self):
        harness = StorageHarness(config=small_config()).boot()
        harness.put_all([(b"s-%02d" % i, b"old") for i in range(10)])
        harness.run(harness.engine.flush())
        harness.put_all([(b"s-%02d" % i, b"new") for i in range(0, 10, 2)])
        result = harness.run(harness.engine.scan(b"s-00", b"s-05"))
        assert result == [
            (b"s-00", b"new"),
            (b"s-01", b"old"),
            (b"s-02", b"new"),
            (b"s-03", b"old"),
            (b"s-04", b"new"),
        ]

    def test_scan_excludes_tombstones(self):
        harness = StorageHarness().boot()
        harness.put_all([(b"a", b"1"), (b"b", b"2"), (b"c", b"3")])
        harness.put_all([(b"b", None)])
        assert harness.run(harness.engine.scan(b"a", b"z")) == [
            (b"a", b"1"),
            (b"c", b"3"),
        ]

    def test_scan_limit(self):
        harness = StorageHarness().boot()
        harness.put_all([(b"k%d" % i, b"v") for i in range(10)])
        assert len(harness.run(harness.engine.scan(b"k", None, limit=3))) == 3


class TestRecovery:
    def test_recover_memtable_from_wal(self):
        harness = StorageHarness().boot()
        harness.put_all([(b"k1", b"v1"), (b"k2", b"v2")])
        recovered = harness.reopen()
        assert recovered.get(b"k1") == b"v1"
        assert recovered.get(b"k2") == b"v2"

    def test_recover_after_flush(self):
        harness = StorageHarness(config=small_config()).boot()
        harness.put_all([(b"key-%02d" % i, b"v" * 300) for i in range(12)])
        harness.run(harness.engine.flush())
        harness.put_all([(b"after-flush", b"mem-only")])
        harness.sim.run()
        recovered = harness.reopen()
        assert recovered.get(b"key-03") == b"v" * 300
        assert recovered.get(b"after-flush") == b"mem-only"

    def test_recover_seq_counter_resumes(self):
        harness = StorageHarness().boot()
        harness.put_all([(b"a", b"1"), (b"b", b"2"), (b"c", b"3")])
        recovered = harness.reopen()
        assert recovered.engine.next_seq() == 4

    def test_recovered_engine_accepts_new_writes(self):
        harness = StorageHarness().boot()
        harness.put_all([(b"old", b"1")])
        recovered = harness.reopen()
        recovered.put_all([(b"new", b"2")])
        assert recovered.get(b"old") == b"1"
        assert recovered.get(b"new") == b"2"
        # And survives a second crash.
        again = recovered.reopen()
        assert again.get(b"new") == b"2"

    def test_prepared_txns_recovered(self):
        harness = StorageHarness().boot()

        def body():
            writes = [(b"pk", b"pv", harness.engine.next_seq())]
            yield from harness.engine.log_prepare(b"gtx-1", writes)

        harness.run(body())
        recovered = harness.reopen()
        assert b"gtx-1" in recovered.engine.prepared_txns
        # Prepared but uncommitted: not visible to reads.
        assert recovered.get(b"pk") is None

    def test_committed_prepare_not_reported(self):
        harness = StorageHarness().boot()

        def body():
            writes = [(b"pk", b"pv", harness.engine.next_seq())]
            yield from harness.engine.log_prepare(b"gtx-1", writes)
            yield from harness.engine.log_commit(b"gtx-1", writes)
            yield from harness.engine.apply_writes(writes)

        harness.run(body())
        recovered = harness.reopen()
        assert recovered.engine.prepared_txns == {}
        assert recovered.get(b"pk") == b"pv"

    def test_prepared_txn_survives_flush(self):
        harness = StorageHarness(config=small_config()).boot()

        def prepare():
            writes = [(b"pk", b"pv", harness.engine.next_seq())]
            yield from harness.engine.log_prepare(b"gtx-7", writes)

        harness.run(prepare())
        harness.put_all([(b"fill-%d" % i, b"x" * 400) for i in range(12)])
        harness.run(harness.engine.flush())
        harness.sim.run()
        recovered = harness.reopen()
        assert b"gtx-7" in recovered.engine.prepared_txns

    def test_stable_limit_discards_unacked_suffix(self):
        harness = StorageHarness().boot()
        harness.put_all([(b"stable", b"1")])
        wal_name = harness.engine.wal_log_name
        harness.put_all([(b"unstable", b"2")])
        stable = {
            wal_name: 1,  # only the first record stabilized
            harness.engine.manifest_log_name: harness.engine.manifest.log.last_counter,
        }
        recovered = harness.reopen(stable_counters=stable)
        assert recovered.get(b"stable") == b"1"
        assert recovered.get(b"unstable") is None

    def test_tampered_wal_detected_at_recovery(self):
        harness = StorageHarness().boot()
        harness.put_all([(b"k", b"v")])
        harness.disk.tamper(harness.engine.wal.filename, 30)
        with pytest.raises(IntegrityError):
            harness.reopen()

    def test_tampered_manifest_detected_at_recovery(self):
        harness = StorageHarness(config=small_config()).boot()
        harness.put_all([(b"key-%02d" % i, b"v" * 300) for i in range(12)])
        harness.run(harness.engine.flush())
        harness.disk.tamper("node0/MANIFEST", 25)
        with pytest.raises(IntegrityError):
            harness.reopen()

    def test_native_recovery_works_without_crypto(self):
        harness = StorageHarness(profile=DS_ROCKSDB).boot()
        harness.put_all([(b"k", b"v")])
        recovered = harness.reopen()
        assert recovered.get(b"k") == b"v"
