"""Tests for crash recovery, rollback protection and attack detection."""

import pytest

from repro.config import DS_ROCKSDB, TREATY_ENC, TREATY_FULL
from repro.core import (
    TreatyCluster,
    crash_and_recover,
    rollback_attack,
    snapshot_node_disk,
    tamper_attack,
)
from repro.core.recovery import find_log_file
from repro.errors import FreshnessError, IntegrityError, TransactionAborted
from repro.net import NetworkAdversary


def local_keys(cluster, node_index, count=4, tag=b"rk"):
    keys, i = [], 0
    while len(keys) < count:
        key = b"%s-%05d" % (tag, i)
        if cluster.partitioner(key) == node_index:
            keys.append(key)
        i += 1
    return keys


def commit_local(cluster, node_index, pairs):
    def body():
        txn = cluster.nodes[node_index].coordinator.begin()
        for key, value in pairs:
            yield from txn.put(key, value)
        yield from txn.commit()

    cluster.run(body())


def read_local(cluster, node_index, key):
    def body():
        txn = cluster.nodes[node_index].coordinator.begin()
        value = yield from txn.get(key)
        yield from txn.commit()
        return value

    return cluster.run(body())


class TestCrashRecovery:
    def test_committed_data_survives_crash(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        keys = local_keys(cluster, 1)
        commit_local(cluster, 1, [(k, b"v-" + k) for k in keys])
        cluster.run(crash_and_recover(cluster, 1))
        for key in keys:
            assert read_local(cluster, 1, key) == b"v-" + key

    def test_recovered_node_serves_new_transactions(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        keys = local_keys(cluster, 2, tag=b"nw")
        cluster.run(crash_and_recover(cluster, 2))
        commit_local(cluster, 2, [(keys[0], b"after-recovery")])
        assert read_local(cluster, 2, keys[0]) == b"after-recovery"

    def test_distributed_commit_survives_participant_crash(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        spread = {i: local_keys(cluster, i, 1, tag=b"dc")[0] for i in range(3)}

        def body():
            txn = cluster.nodes[0].coordinator.begin()
            for key in spread.values():
                yield from txn.put(key, b"distributed")
            yield from txn.commit()

        cluster.run(body())
        cluster.run(crash_and_recover(cluster, 1))
        for i, key in spread.items():
            assert read_local(cluster, 0, key) == b"distributed"

    def test_double_crash_recovery(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        keys = local_keys(cluster, 0, tag=b"dd")
        commit_local(cluster, 0, [(keys[0], b"1")])
        cluster.run(crash_and_recover(cluster, 0))
        commit_local(cluster, 0, [(keys[1], b"2")])
        cluster.run(crash_and_recover(cluster, 0))
        assert read_local(cluster, 0, keys[0]) == b"1"
        assert read_local(cluster, 0, keys[1]) == b"2"

    def test_native_profile_recovery_works(self):
        cluster = TreatyCluster(profile=DS_ROCKSDB).start()
        keys = local_keys(cluster, 1, tag=b"nv")
        commit_local(cluster, 1, [(keys[0], b"plain")])
        cluster.run(crash_and_recover(cluster, 1))
        assert read_local(cluster, 1, keys[0]) == b"plain"


class TestAtomicityAcrossCrashes:
    def _blocked_commit_cluster(self, drop_predicate):
        """Run a distributed commit whose messages are partially dropped."""
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        adversary = NetworkAdversary()
        adversary.drop_matching(drop_predicate)
        cluster.fabric.adversary = adversary
        return cluster, adversary

    def test_coordinator_crash_before_decision_aborts(self):
        """Participants prepared, decision never logged: presumed abort."""
        cluster, adversary = self._blocked_commit_cluster(
            lambda f: f.kind == "erpc"
            and not f.meta.get("is_request")
            and f.meta.get("req_type") == 3  # drop TXN_PREPARE ACKs
        )
        spread = {i: local_keys(cluster, i, 1, tag=b"cc")[0] for i in range(3)}

        def doomed():
            txn = cluster.nodes[0].coordinator.begin()
            for key in spread.values():
                yield from txn.put(key, b"never")
            yield from txn.commit()  # blocks forever: prepare ACKs dropped

        cluster.sim.process(doomed())
        cluster.sim.run(until=cluster.sim.now + 1.0)
        # Participants hold prepared transactions now; coordinator crashes.
        cluster.fabric.adversary = None
        cluster.crash_node(0)
        cluster.run(cluster.recover_node(0))
        cluster.sim.run(until=cluster.sim.now + 1.0)

        # Nothing may be committed anywhere; locks must be free again.
        for i, key in spread.items():
            if i == 0:
                continue
            assert read_local(cluster, i, key) is None
        assert read_local(cluster, 0, spread[0]) is None

    def test_participant_crash_after_prepare_commits_on_recovery(self):
        """Decision=commit logged; participant crashed before TXN_COMMIT."""
        cluster, adversary = self._blocked_commit_cluster(
            lambda f: f.kind == "erpc"
            and f.meta.get("is_request")
            and f.meta.get("req_type") == 4  # drop TXN_COMMIT to node1
            and f.dst == "node1"
        )
        spread = {i: local_keys(cluster, i, 1, tag=b"pc")[0] for i in range(3)}

        def commit_fiber():
            txn = cluster.nodes[0].coordinator.begin()
            for key in spread.values():
                yield from txn.put(key, b"decided")
            yield from txn.commit()  # blocks: node1's commit ACK missing

        cluster.sim.process(commit_fiber())
        cluster.sim.run(until=cluster.sim.now + 1.0)
        # node1 is prepared but never saw the commit; it crashes.
        cluster.fabric.adversary = None
        cluster.crash_node(1)
        cluster.run(cluster.recover_node(1))
        cluster.sim.run(until=cluster.sim.now + 1.0)
        # Recovery resolved with the coordinator: the write must be there.
        assert read_local(cluster, 1, spread[1]) == b"decided"
        assert read_local(cluster, 0, spread[0]) == b"decided"


class TestRollbackProtection:
    def test_rollback_attack_detected(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        keys = local_keys(cluster, 1, tag=b"ra")
        commit_local(cluster, 1, [(keys[0], b"old")])
        stale = snapshot_node_disk(cluster, 1)
        commit_local(cluster, 1, [(keys[1], b"new")])
        # Let background stabilization finish before the attack.
        cluster.sim.run(until=cluster.sim.now + 0.1)
        with pytest.raises(FreshnessError):
            cluster.run(rollback_attack(cluster, 1, stale))

    def test_rollback_to_empty_disk_detected(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        node = cluster.nodes[2]
        keys = local_keys(cluster, 2, tag=b"re")
        empty = snapshot_node_disk(cluster, 2)
        commit_local(cluster, 2, [(keys[0], b"data")])
        cluster.sim.run(until=cluster.sim.now + 0.1)
        with pytest.raises(FreshnessError):
            cluster.run(rollback_attack(cluster, 2, empty))

    def test_unstable_suffix_discarded_not_flagged(self):
        """A genuine crash loses un-acknowledged entries: that is not an
        attack and recovery must succeed."""
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        keys = local_keys(cluster, 1, tag=b"us")
        commit_local(cluster, 1, [(keys[0], b"acked")])
        cluster.sim.run(until=cluster.sim.now + 0.1)
        cluster.run(crash_and_recover(cluster, 1))
        assert read_local(cluster, 1, keys[0]) == b"acked"

    def test_rollback_not_detected_without_stabilization(self):
        """The ablation: w/o the stabilization protocol the attack wins."""
        cluster = TreatyCluster(profile=TREATY_ENC).start()
        keys = local_keys(cluster, 1, tag=b"rn")
        commit_local(cluster, 1, [(keys[0], b"old")])
        stale = snapshot_node_disk(cluster, 1)
        commit_local(cluster, 1, [(keys[1], b"new")])
        cluster.run(rollback_attack(cluster, 1, stale))  # silently succeeds
        assert read_local(cluster, 1, keys[1]) is None  # data silently lost


class TestTamperDetection:
    @pytest.mark.parametrize("log_kind", ["wal", "manifest"])
    def test_tampered_log_detected(self, log_kind):
        cluster = TreatyCluster(profile=TREATY_ENC).start()
        keys = local_keys(cluster, 1, tag=b"tl")
        commit_local(cluster, 1, [(keys[0], b"v")])
        filename = find_log_file(cluster.nodes[1], log_kind)
        with pytest.raises(IntegrityError):
            cluster.run(tamper_attack(cluster, 1, filename, offset=30))

    def test_tampered_clog_detected(self):
        cluster = TreatyCluster(profile=TREATY_ENC).start()
        spread = {i: local_keys(cluster, i, 1, tag=b"tc")[0] for i in range(3)}

        def body():
            txn = cluster.nodes[0].coordinator.begin()
            for key in spread.values():
                yield from txn.put(key, b"v")
            yield from txn.commit()
            yield cluster.sim.timeout(0.05)

        cluster.run(body())
        filename = find_log_file(cluster.nodes[0], "clog")
        with pytest.raises(IntegrityError):
            cluster.run(tamper_attack(cluster, 0, filename, offset=20))

    def test_native_baseline_cannot_detect_tampering(self):
        cluster = TreatyCluster(profile=DS_ROCKSDB).start()
        keys = local_keys(cluster, 1, tag=b"tn")
        commit_local(cluster, 1, [(keys[0], b"v")])
        filename = find_log_file(cluster.nodes[1], "manifest")
        # Flip a byte inside the recorded WAL filename: the baseline
        # recovers "successfully" while silently losing the WAL's data.
        cluster.run(tamper_attack(cluster, 1, filename, offset=25, xor_mask=0x01))
        assert read_local(cluster, 1, keys[0]) is None  # silent data loss
