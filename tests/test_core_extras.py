"""Extra coverage: Stabilizer, Clog records, batched writes, client scans."""

import pytest

from repro.config import ClusterConfig, DS_ROCKSDB, TREATY_ENC, TREATY_FULL
from repro.core import ClogRecord, GlobalTxnId, TreatyCluster
from repro.core.stabilization import Stabilizer
from repro.sim import Simulator
from repro.tee import NodeRuntime


class TestStabilizer:
    def test_disabled_without_stabilization_profile(self):
        sim = Simulator()
        runtime = NodeRuntime(sim, TREATY_ENC, ClusterConfig())
        stabilizer = Stabilizer(runtime, counter_client=None)
        assert not stabilizer.enabled
        sim.run_process(stabilizer("log", 5))  # no-op, returns instantly
        assert sim.now == 0.0
        assert stabilizer.waits == 0

    def test_enabled_waits_and_records(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        node = cluster.nodes[0]
        start = cluster.sim.now
        cluster.run(node.stabilizer("extras-log", 1))
        assert node.stabilizer.waits == 1
        assert node.stabilizer.mean_wait() > 0
        assert cluster.sim.now > start

    def test_zero_counter_is_noop(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        node = cluster.nodes[0]
        start = cluster.sim.now
        cluster.run(node.stabilizer("extras-log2", 0))
        assert cluster.sim.now == start

    def test_background_does_not_block(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        node = cluster.nodes[0]
        start = cluster.sim.now
        node.stabilizer.background("extras-bg", 3)
        assert cluster.sim.now == start  # returned immediately
        cluster.sim.run(until=cluster.sim.now + 0.05)
        assert node.counter_client.stable_value("extras-bg") >= 3


class TestClogRecord:
    @pytest.mark.parametrize(
        "kind",
        [ClogRecord.PREPARE, ClogRecord.COMMIT, ClogRecord.ABORT, ClogRecord.COMPLETE],
    )
    def test_roundtrip(self, kind):
        record = ClogRecord(kind, GlobalTxnId(2, 99), [0, 1, 2])
        decoded = ClogRecord.decode(record.encode())
        assert decoded.kind == kind
        assert decoded.gid == GlobalTxnId(2, 99)
        assert decoded.participants == [0, 1, 2]

    def test_empty_participants(self):
        record = ClogRecord(ClogRecord.ABORT, GlobalTxnId(1, 1), [])
        assert ClogRecord.decode(record.encode()).participants == []


class TestGlobalTxnIdEpochs:
    def test_epoch_separates_id_spaces(self):
        from repro.core import TxnIdAllocator

        first_boot = TxnIdAllocator(1, epoch=1)
        second_boot = TxnIdAllocator(1, epoch=2)
        ids_1 = {first_boot.next() for _ in range(100)}
        ids_2 = {second_boot.next() for _ in range(100)}
        assert not ids_1 & ids_2

    def test_encode_decode(self):
        gid = GlobalTxnId(7, (3 << 48) | 123)
        assert GlobalTxnId.decode(gid.encode()) == gid


class TestPutMany:
    def test_batched_multi_shard_put(self):
        cluster = TreatyCluster(profile=TREATY_ENC).start()
        pairs = [(b"pm-%02d" % i, b"v%d" % i) for i in range(9)]
        owners = {cluster.partitioner(k) for k, _ in pairs}
        assert len(owners) == 3

        def body():
            txn = cluster.nodes[0].coordinator.begin()
            yield from txn.put_many(pairs)
            yield from txn.commit()
            check = cluster.nodes[0].coordinator.begin()
            values = []
            for key, _ in pairs:
                values.append((yield from check.get(key)))
            yield from check.commit()
            return values

        assert cluster.run(body()) == [v for _, v in pairs]


def prefix_partitioner(key):
    """Range-style sharding: 's<digit>/...' keys go to shard <digit>.

    Scans require a range partitioner (TPC-C partitions by warehouse the
    same way); hash partitioning cannot support prefix scans.
    """
    if key[:1] == b"s" and key[1:2].isdigit():
        return int(key[1:2]) % 3
    import zlib

    return zlib.crc32(key) % 3


class TestClientScan:
    @pytest.fixture(scope="class")
    def cluster(self):
        return TreatyCluster(
            profile=TREATY_ENC, partitioner=prefix_partitioner
        ).start()

    def test_scan_through_client_api(self, cluster):
        session = cluster.session(cluster.client_machine())
        keys = [b"s0/scan/%02d" % i for i in range(5)]

        def body():
            txn = session.begin()
            for i, key in enumerate(keys):
                yield from txn.put(key, b"v%d" % i)
            yield from txn.commit()
            reader = session.begin()
            rows = yield from reader.scan(b"s0/scan/", b"s0/scan/\xff")
            yield from reader.commit()
            return rows

        rows = cluster.run(body())
        assert [k for k, _ in rows] == keys

    def test_scan_sees_own_uncommitted_writes(self, cluster):
        session = cluster.session(cluster.client_machine())
        key = b"s1/sw/01"

        def body():
            txn = session.begin()
            yield from txn.put(key, b"mine")
            rows = yield from txn.scan(b"s1/sw/", b"s1/sw/\xff")
            yield from txn.rollback()
            return rows

        assert (key, b"mine") in cluster.run(body())

    def test_scan_limit(self, cluster):
        session = cluster.session(cluster.client_machine())
        keys = [b"s2/lim/%02d" % i for i in range(6)]

        def body():
            txn = session.begin()
            for key in keys:
                yield from txn.put(key, b"x")
            yield from txn.commit()
            reader = session.begin()
            rows = yield from reader.scan(b"s2/lim/", b"s2/lim/\xff", limit=2)
            yield from reader.commit()
            return rows

        assert len(cluster.run(body())) == 2


class TestResumeDelayModel:
    def test_native_never_delays(self):
        sim = Simulator()
        runtime = NodeRuntime(sim, DS_ROCKSDB, ClusterConfig())
        runtime.heavy_enclave = True
        runtime.active_requests = 50
        assert runtime.fiber_resume_delay() == 0.0

    def test_scone_light_enclave_never_delays(self):
        sim = Simulator()
        runtime = NodeRuntime(sim, TREATY_ENC, ClusterConfig())
        runtime.active_requests = 50
        assert runtime.fiber_resume_delay() == 0.0

    def test_scone_heavy_enclave_scales_with_load_up_to_cap(self):
        sim = Simulator()
        config = ClusterConfig()
        runtime = NodeRuntime(sim, TREATY_ENC, config)
        runtime.heavy_enclave = True
        runtime.active_requests = 10
        assert runtime.fiber_resume_delay() == pytest.approx(
            10 * config.costs.scone_fiber_resume_quantum
        )
        runtime.active_requests = 10_000
        assert runtime.fiber_resume_delay() == pytest.approx(
            config.costs.scone_resume_load_cap
            * config.costs.scone_fiber_resume_quantum
        )


class TestRequestDispatchDelay:
    def test_dispatch_charged_only_for_heavy_scone(self):
        """The per-request wake-up cost appears exactly when the storage
        engine is loaded into a SCONE enclave (Figures 6/7 deployments)."""
        from repro.config import DS_ROCKSDB, TREATY_ENC

        def one_request_latency(profile):
            cluster = TreatyCluster(profile=profile, num_nodes=1).start()
            session = cluster.session(cluster.client_machine())

            def body():
                txn = session.begin()
                start = cluster.sim.now
                yield from txn.get(b"nope")
                elapsed = cluster.sim.now - start
                yield from txn.commit()
                return elapsed

            return cluster.run(body())

        native = one_request_latency(DS_ROCKSDB)
        scone = one_request_latency(TREATY_ENC)
        dispatch = ClusterConfig().costs.scone_request_dispatch
        assert scone >= native + dispatch
