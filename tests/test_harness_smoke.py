"""Smoke tests for the experiment harness (tiny scales)."""

import pytest

from repro.config import DS_ROCKSDB, TREATY_ENC
from repro.bench.harness import recovery_experiment, twopc_only, bulk_load_null
from repro.bench.netbench import network_throughput


class TestTwopcOnly:
    def test_runs_and_reports(self):
        metrics = twopc_only(DS_ROCKSDB, num_clients=6, duration=0.05)
        assert metrics.committed > 3
        assert metrics.throughput() > 0


class TestRecoveryExperiment:
    def test_ratio_direction(self):
        native_seconds, native_bytes = recovery_experiment(
            DS_ROCKSDB, num_entries=2_000
        )
        secure_seconds, secure_bytes = recovery_experiment(
            TREATY_ENC, num_entries=2_000
        )
        assert secure_seconds > native_seconds
        assert secure_bytes > native_bytes  # IV+MAC framing per entry


class TestNetworkThroughput:
    def test_basic_measurement(self):
        gbps = network_throughput("tcp-native", 1460, duration=3e-4)
        assert gbps > 1.0

    def test_udp_zero_above_mtu(self):
        assert network_throughput("udp-native", 2048, duration=3e-4) == 0.0

    def test_unknown_stack_rejected(self):
        with pytest.raises(ValueError):
            network_throughput("carrier-pigeon", 64)
