"""Tests for :mod:`repro.mc`, the small-scope model checker.

Covers the four layers separately — adversary action enumeration, the
controlled-scheduler harness (determinism, crash/drop semantics), the
explorer (bounded exhaustive pass stays green, pruning works), and the
end-to-end mutation workflow (a disabled recovery rule yields a
minimized, replayable counterexample that is green once the rule is
restored) — plus monitor reset/reuse across repeated sim runs and the
crash-fault vocabulary shared with the conformance sweep.
"""

import json

import pytest

from repro.config import ClusterConfig, TREATY_FULL
from repro.core import TreatyCluster
from repro.mc import (
    MUTATIONS,
    SCENARIOS,
    coordinator_crash_points,
    explore,
    load_counterexample,
    parse_scope,
    piggyback_crash_points,
    replay_counterexample,
    run_one,
    save_counterexample,
    shrink_trace,
)
from repro.mc.harness import Scope, mutation_scope
from repro.net.adversary import ENUMERATED_DELAY, NetworkAdversary
from repro.obs.monitor import InvariantMonitor


# -- adversary action enumeration ---------------------------------------------

class TestEnumerateActions:
    class _Frame:
        src, dst, meta, payload = "node0.rpc", "node1.rpc", {}, b"x"

    def test_deliver_first_and_order_pinned(self):
        adversary = NetworkAdversary()
        actions = adversary.enumerate_actions(self._Frame())
        assert [name for name, _ in actions] == [
            "deliver", "drop", "duplicate", "delay"
        ]

    def test_verdicts(self):
        frame = self._Frame()
        actions = dict(NetworkAdversary().enumerate_actions(frame))
        assert actions["deliver"] == [(frame, 0.0)]
        assert actions["drop"] == [(None, 0.0)]
        assert actions["duplicate"] == [(frame, 0.0), (frame, 0.0)]
        assert actions["delay"] == [(frame, ENUMERATED_DELAY)]

    def test_enumeration_is_pure(self):
        """Enumerating must not mutate counters; only apply_action does."""
        adversary = NetworkAdversary()
        adversary.enumerate_actions(self._Frame())
        assert (adversary.dropped, adversary.duplicated,
                adversary.delayed) == (0, 0, 0)

    def test_apply_action_counts(self):
        adversary = NetworkAdversary()
        frame = self._Frame()
        adversary.apply_action("drop", frame)
        adversary.apply_action("duplicate", frame)
        adversary.apply_action("delay", frame, 1e-3)
        assert (adversary.dropped, adversary.duplicated,
                adversary.delayed) == (1, 1, 1)

    def test_apply_unknown_action_raises(self):
        with pytest.raises(ValueError):
            NetworkAdversary().apply_action("mangle", self._Frame())


# -- the harness: one controlled run ------------------------------------------

class TestRunOne:
    def test_default_trace_is_green_and_commits(self):
        result = run_one(Scope(), [])
        assert result.green, result.violations
        assert result.outcomes == ["committed", "committed"]
        assert result.committed == 2
        assert result.liveness_checked
        assert result.points, "no choice points recorded"

    def test_runs_are_deterministic(self):
        """Same trace, fresh world: identical choice-point sequence."""
        a = run_one(Scope(), [])
        b = run_one(Scope(), [])
        assert [p.label for p in a.points] == [p.label for p in b.points]
        assert [p.time for p in a.points] == [p.time for p in b.points]
        assert a.outcomes == b.outcomes

    def test_drop_disables_liveness_but_keeps_safety(self):
        result = run_one(Scope(), [1])  # drop the first eligible frame
        assert result.drops == 1
        assert not result.liveness_checked
        assert result.green, result.violations

    def test_crash_choice_crashes_and_recovers(self):
        scope = Scope(actions=(), crash_points=piggyback_crash_points())
        base = run_one(scope, [])
        crash_index = next(
            p.index for p in base.points if p.kind == "crash"
        )
        trace = [0] * crash_index + [1]
        result = run_one(scope, trace)
        assert len(result.crashes) == 1
        assert result.green, result.violations
        assert result.liveness_checked

    def test_beyond_trace_choices_default_to_zero(self):
        """A trace is a finite perturbation prefix: padding with zeros
        changes nothing."""
        a = run_one(Scope(), [])
        b = run_one(Scope(), [0, 0, 0, 0])
        assert [p.chosen for p in a.points] == [p.chosen for p in b.points]

    def test_visited_cache_subsumes_sibling_runs(self):
        visited = {}
        first = run_one(Scope(), [], remaining_budget=2, visited=visited)
        assert first.new_states > 0
        again = run_one(Scope(), [], remaining_budget=1, visited=visited)
        assert again.new_states == 0
        assert again.suppressed > 0  # subsumed straight away


# -- the explorer -------------------------------------------------------------

class TestExplorer:
    def test_bounded_pass_stays_green(self):
        """A budget-bounded depth-2 slice of the real scope: no
        violations, visited-state pruning engaged, stats coherent."""
        stats, counterexample = explore(
            parse_scope("2x3"), depth=2, max_runs=40
        )
        assert counterexample is None
        assert stats.runs >= 40
        assert stats.states > 100
        assert stats.pruned_visited > 0
        assert 0.0 < stats.prune_rate <= 1.0
        assert stats.depth_exhausted.get(1) in (True, False)

    def test_coordinator_death_depth_two_stays_green(self):
        """Non-blocking commit under the bounded checker: every depth-2
        schedule that kills the emitter at a decision-path crash point
        and never restarts it stays green — decision replication plus
        the completer protocol converge on the survivors alone."""
        scope = Scope(
            actions=(),
            crash_points=coordinator_crash_points(),
            crash_offsets=(0,),
            max_crashes=1,
            no_restart=True,
        )
        stats, counterexample = explore(scope, depth=2, max_runs=30)
        assert counterexample is None
        assert stats.runs > 1

    def test_depth_one_crash_only_scope_exhausts(self):
        scope = Scope(
            actions=(),
            crash_points=(("twopc", "prepare_target"),),
        )
        stats, counterexample = explore(scope, depth=1)
        assert counterexample is None
        assert stats.depth_exhausted[1] is True
        # one root + one run per crash-point occurrence
        assert stats.runs > 1


# -- mutations: seeded bugs must be found, shrunk, and replayable -------------

class TestMutationCounterexample:
    @pytest.fixture(scope="class")
    def found(self):
        stats, counterexample = explore(
            mutation_scope("no-abort-rebroadcast"),
            depth=2, mutation="no-abort-rebroadcast",
        )
        return stats, counterexample

    def test_counterexample_found_and_minimal(self, found):
        stats, counterexample = found
        assert counterexample is not None
        assert stats.violation
        # delta debugging leaves a single necessary perturbation: the
        # coordinator crash at its own prepare point.
        nonzeros = [c for c in counterexample["trace"] if c]
        assert len(nonzeros) == 1
        assert len(counterexample["choices"]) == 1
        assert counterexample["choices"][0]["kind"] == "crash"

    def test_mutated_replay_reproduces(self, found):
        _stats, counterexample = found
        _scope, result = replay_counterexample(counterexample)
        assert result.violations == counterexample["violations"]

    def test_unmutated_replay_is_green(self, found):
        """The same schedule against the real protocol: the recovery
        rule the mutation disabled is what makes it converge."""
        _stats, counterexample = found
        _scope, result = replay_counterexample(counterexample, mutation=None)
        assert result.green, result.violations

    def test_document_roundtrip(self, found, tmp_path):
        _stats, counterexample = found
        path = str(tmp_path / "ce.json")
        save_counterexample(path, counterexample)
        loaded = load_counterexample(path)
        assert loaded == json.loads(json.dumps(counterexample))
        _scope, result = replay_counterexample(loaded)
        assert result.violations == counterexample["violations"]

    def test_load_rejects_other_json(self, tmp_path):
        path = str(tmp_path / "not-ce.json")
        with open(path, "w") as fp:
            json.dump({"format": "something-else"}, fp)
        with pytest.raises(ValueError):
            load_counterexample(path)

    def test_every_mutation_has_a_focused_scope(self):
        for name in MUTATIONS:
            scope = mutation_scope(name)
            assert isinstance(scope, Scope)
        with pytest.raises(ValueError):
            mutation_scope("no-such-mutation")

    def test_second_mutation_is_caught(self):
        """no-commit-redrive: coordinator dies between logging COMMIT
        and broadcasting it; without the redrive, participants' prepared
        halves stay in doubt."""
        stats, counterexample = explore(
            mutation_scope("no-commit-redrive"),
            depth=1, mutation="no-commit-redrive",
        )
        assert counterexample is not None
        assert any("in-doubt" in v or "quiescent" in v
                   for v in counterexample["violations"])
        _scope, result = replay_counterexample(counterexample, mutation=None)
        assert result.green, result.violations

    def test_shrink_requires_failing_trace(self):
        with pytest.raises(ValueError):
            shrink_trace(Scope(), [0, 0, 0])

    def test_ack_before_covered_is_caught(self):
        """A backend that acks without lease coverage violates I1 on the
        very first unperturbed run — the counterexample is the empty
        trace under the counter-async backend."""
        stats, counterexample = explore(
            mutation_scope("ack-before-covered"),
            depth=1, mutation="ack-before-covered",
        )
        assert counterexample is not None
        assert not [c for c in counterexample["trace"] if c]
        assert any("I1" in v or "I2" in v
                   for v in counterexample["violations"])
        _scope, result = replay_counterexample(counterexample, mutation=None)
        assert result.green, result.violations

    def test_reply_before_decision_quorum_is_caught(self):
        """A coordinator that acks the client before its commit decision
        is sealed on a quorum of attested participants violates I1/I2 on
        the very first unperturbed run — under replication the commit
        targets' counter round rides the decision round, so skipping it
        externalizes an uncovered commit.  The counterexample is the
        empty trace; the real protocol replays green."""
        stats, counterexample = explore(
            mutation_scope("reply-before-decision-quorum"),
            depth=1, mutation="reply-before-decision-quorum",
        )
        assert counterexample is not None
        assert not [c for c in counterexample["trace"] if c]
        assert any("I1" in v or "I2" in v
                   for v in counterexample["violations"])
        _scope, result = replay_counterexample(counterexample, mutation=None)
        assert result.green, result.violations


# -- coverage backends under the bounded checker ------------------------------

class TestBackendScopes:
    """The unperturbed world (and a crashed one) must stay green under
    every rollback-protection backend."""

    @pytest.mark.parametrize("backend", ["counter-async", "lcm"])
    def test_empty_trace_green(self, backend):
        result = run_one(Scope(backend=backend, shards=2), [])
        assert result.green, result.violations
        assert result.outcomes.count("committed") >= 1

    @pytest.mark.parametrize("backend", ["counter-async", "lcm"])
    def test_single_crash_worlds_green(self, backend):
        """First-choice crash world per backend: the coordinator dies at
        its first eligible crash point with promises outstanding."""
        scope = Scope(
            backend=backend, shards=2, actions=(), max_crashes=1,
        )
        result = run_one(scope, [1])
        assert result.green, result.violations


# -- real bugs the checker found: their schedules must stay green -------------

class TestFoundBugsStayGreen:
    """Minimal counterexamples of the four recovery bugs the exhaustive
    2-crash pass found in this codebase (see docs/MODELCHECK.md).  Each
    trace wedged or corrupted the cluster before its fix; replaying them
    pins the fixes."""

    SCOPE = parse_scope("2x3", crash_offsets=(0, 1, 2), max_crashes=2)

    @pytest.mark.parametrize("name,trace", [
        # I3 gate regression: stale redriven target re-advertised a
        # stable view below the sealed confirmed value after a double
        # reboot (fix: seed counter gates from sealed confirmed state).
        ("gate-seeding", [0] * 7 + [1] + [0] * 38 + [1]),
        # resolve/redrive race applied one commit twice (fix: popping
        # the participant's active entry is the exactly-once guard).
        ("resolve-redrive-race", [0] * 7 + [2] + [0] * 22 + [2]),
        # replay-guard collision: two participants recovering at the
        # same boot epoch asked the coordinator about the same txn with
        # identical (node, txn, op) triples; the second genuine query
        # was dropped as a replay (fix: fold the asker's id into op).
        ("resolution-op-collision", [0] * 13 + [1] + [0] * 19 + [1]),
        # recovery orphan GC deleted the counter replica's sealed state
        # file, rolling confirmed counters to zero on the next boot
        # (fix: exempt *.sealed from the orphan sweep).
        ("sealed-state-gc", [0] * 32 + [1] + [0] * 19 + [1]),
    ])
    def test_counterexample_trace_is_green(self, name, trace):
        result = run_one(self.SCOPE, trace)
        assert result.green, (name, result.violations)


# -- monitor reset / reuse ----------------------------------------------------

class TestMonitorReuse:
    def test_reset_clears_observed_state(self):
        monitor = InvariantMonitor(strict=False, liveness_timeout=5.0)
        monitor.on_record({
            "type": "event", "cat": "stabilize", "name": "advance",
            "t": 1.0, "node": "node0",
            "args": {"log": "node0/wal-000001.log", "value": 7},
        })
        assert monitor.stable and monitor.events_seen == 1
        monitor.reset()
        assert monitor.events_seen == 0
        assert not monitor.stable and not monitor.advance_views
        assert monitor.green
        # configuration survives a reset
        assert monitor.liveness_timeout == 5.0
        assert monitor.strict is False

    def test_reset_drops_stale_counter_views(self):
        """A fresh world's counters restart from 1; a monitor carrying
        the previous world's views would flag a phantom I3 regression."""
        monitor = InvariantMonitor(strict=True)
        record = {
            "type": "event", "cat": "stabilize", "name": "advance",
            "t": 1.0, "node": "node0",
            "args": {"log": "node0/wal-000001.log", "value": 5},
        }
        monitor.on_record(record)
        monitor.reset()
        low = dict(record, args={"log": "node0/wal-000001.log", "value": 1})
        monitor.on_record(low)  # must NOT raise after the reset
        assert monitor.green

    def test_sequential_worlds_do_not_leak(self):
        """Two full sim runs in one process: the second's monitor starts
        blank and both end green (the model checker's reuse pattern)."""
        summaries = []
        for _ in range(2):
            result = run_one(Scope(), [])
            assert result.green, result.violations
            summaries.append(result.monitor_summary)
        assert summaries[0]["events_seen"] == summaries[1]["events_seen"]

    def test_cluster_monitor_is_fresh_per_cluster(self):
        config = ClusterConfig(seed=2022, num_nodes=3, monitor=True)
        first = TreatyCluster(profile=TREATY_FULL, config=config).start()
        assert first.obs.monitor.green
        second = TreatyCluster(profile=TREATY_FULL, config=config).start()
        assert second.obs.monitor.events_seen <= first.obs.monitor.events_seen


# -- the shared crash-fault vocabulary ----------------------------------------

class TestFaultsExtraction:
    def test_scenario_order_is_pinned(self):
        """The conformance sweep maps ``seed % len(SCENARIOS)`` to a
        scenario, so the tuple's order and length are part of its
        contract with recorded seeds."""
        assert SCENARIOS[0] == (("twopc", "prepare_target"), True)
        assert SCENARIOS[1] == (("stabilize", "group_begin"), True)
        # New points are appended, never inserted: counter/promise
        # (coverage backends) then twopc/decision-quorum (non-blocking
        # commit) ride at the end.
        assert SCENARIOS[8] == (("counter", "promise"), True)
        assert SCENARIOS[9] == (("twopc", "decision-quorum"), True)
        assert len(SCENARIOS) == 10

    def test_piggyback_filter_subsets_scenarios(self):
        points = piggyback_crash_points()
        all_points = {point for point, _piggyback in SCENARIOS}
        assert set(points) <= all_points
        assert ("twopc", "prepare_target") in points
        assert ("twopc", "prepare_ack") not in points
