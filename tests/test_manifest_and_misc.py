"""Targeted unit tests: manifest state machine, misc layer edges."""

import pytest

from repro.config import ClusterConfig, DS_ROCKSDB, TREATY_ENC
from repro.errors import CorruptLogError
from repro.storage import ManifestEdit, VersionState
from repro.storage.sstable import SSTableMeta

from tests.conftest import StorageHarness


def meta(filename, level=0, max_seq=1):
    return SSTableMeta(
        filename=filename, level=level, footer_hash=b"\x00" * 32,
        min_key=b"a", max_key=b"z", max_seq=max_seq, entry_count=1,
        file_bytes=100,
    )


class TestManifestEdits:
    def test_add_table_roundtrip(self):
        edit = ManifestEdit.add_table(meta("node0/sst-1.sst", level=2))
        decoded = ManifestEdit.decode(edit.encode())
        assert decoded.kind == ManifestEdit.ADD_TABLE
        assert decoded.table.filename == "node0/sst-1.sst"
        assert decoded.table.level == 2

    @pytest.mark.parametrize(
        "factory,kind",
        [
            (lambda: ManifestEdit.del_table("f"), ManifestEdit.DEL_TABLE),
            (lambda: ManifestEdit.new_log("wal", "f"), ManifestEdit.NEW_LOG),
            (lambda: ManifestEdit.del_log("clog", "f"), ManifestEdit.DEL_LOG),
        ],
    )
    def test_other_edits_roundtrip(self, factory, kind):
        decoded = ManifestEdit.decode(factory().encode())
        assert decoded.kind == kind
        assert decoded.filename == "f"

    def test_unknown_kind_rejected(self):
        from repro.storage.format import Writer

        blob = Writer().u32(99).blob(b"x").blob(b"y").getvalue()
        with pytest.raises(CorruptLogError):
            ManifestEdit.decode(blob)


class TestVersionState:
    def test_add_then_delete_table(self):
        state = VersionState()
        state.apply(ManifestEdit.add_table(meta("t1", level=1)))
        state.apply(ManifestEdit.add_table(meta("t2", level=1, max_seq=9)))
        assert len(state.tables[1]) == 2
        state.apply(ManifestEdit.del_table("t1"))
        assert [t.filename for t in state.tables[1]] == ["t2"]
        assert state.max_seq() == 9

    def test_log_lifecycle(self):
        state = VersionState()
        state.apply(ManifestEdit.new_log("wal", "w1"))
        state.apply(ManifestEdit.new_log("wal", "w2"))
        state.apply(ManifestEdit.new_log("clog", "c1"))
        state.apply(ManifestEdit.del_log("wal", "w1"))
        assert state.live_wals == ["w2"]
        assert state.live_clogs == ["c1"]

    def test_duplicate_new_log_idempotent(self):
        state = VersionState()
        state.apply(ManifestEdit.new_log("wal", "w1"))
        state.apply(ManifestEdit.new_log("wal", "w1"))
        assert state.live_wals == ["w1"]

    def test_delete_unknown_log_ignored(self):
        state = VersionState()
        state.apply(ManifestEdit.del_log("wal", "ghost"))
        assert state.live_wals == []

    def test_empty_state_max_seq(self):
        assert VersionState().max_seq() == 0


class TestSimCompositeFailures:
    def test_all_of_propagates_failure(self):
        from repro.sim import Simulator

        sim = Simulator()

        def failer():
            yield sim.timeout(1)
            raise ValueError("inner")

        def waiter():
            ok = sim.timeout(5)
            bad = sim.process(failer())
            try:
                yield sim.all_of([ok, bad])
            except ValueError as error:
                return str(error)

        assert sim.run_process(waiter()) == "inner"

    def test_any_of_propagates_failure(self):
        from repro.sim import Simulator

        sim = Simulator()

        def failer():
            yield sim.timeout(1)
            raise ValueError("first-to-fire")

        def waiter():
            slow = sim.timeout(10)
            bad = sim.process(failer())
            try:
                yield sim.any_of([bad, slow])
            except ValueError as error:
                return str(error)

        assert sim.run_process(waiter()) == "first-to-fire"


class TestSstableBlockBoundaries:
    def test_keys_at_block_edges_found(self):
        """Every key must be findable even when it is the first/last of
        its block (binary search edge cases)."""
        harness = StorageHarness()
        from repro.storage import SSTableReader, build_sstable

        entries = [(b"k%05d" % i, b"v" * 40, i + 1) for i in range(200)]
        meta_obj = harness.run(
            build_sstable(
                harness.runtime, harness.disk, harness.keyring,
                "node0/edge.sst", 0, entries, block_bytes=256,
            )
        )
        reader = SSTableReader(
            harness.runtime, harness.disk, harness.keyring, meta_obj
        )
        index = harness.run(reader._load_footer())
        assert len(index) >= 10
        # Check the first key of every block and its predecessor.
        for first_key, _off, _len, _hash in index:
            value, _seq = harness.run(reader.get(first_key))
            assert value == b"v" * 40
        # And keys just below each block boundary.
        for first_key, _off, _len, _hash in index[1:]:
            idx = int(first_key[1:])
            previous = b"k%05d" % (idx - 1)
            value, _seq = harness.run(reader.get(previous))
            assert value == b"v" * 40


class TestLockTableMisc:
    def test_holds_semantics(self):
        from repro.sim import Simulator
        from repro.txn import LockMode, LockTable

        sim = Simulator()
        table = LockTable(sim, shards=4)
        sim.run_process(table.acquire(b"t", b"k", LockMode.EXCLUSIVE))
        assert table.holds(b"t", b"k")
        assert table.holds(b"t", b"k", LockMode.SHARED)  # W covers R
        assert table.holds(b"t", b"k", LockMode.EXCLUSIVE)
        assert not table.holds(b"x", b"k")
        assert table.held_keys(b"t") == [b"k"]

    def test_shared_holder_does_not_cover_exclusive(self):
        from repro.sim import Simulator
        from repro.txn import LockMode, LockTable

        sim = Simulator()
        table = LockTable(sim, shards=4)
        sim.run_process(table.acquire(b"t", b"k", LockMode.SHARED))
        assert table.holds(b"t", b"k", LockMode.SHARED)
        assert not table.holds(b"t", b"k", LockMode.EXCLUSIVE)
