"""Cross-node trace propagation, critical-path attribution, baselines."""

import json

import pytest

from repro.net import NetworkAdversary
from repro.obs import (
    aggregate_critical_paths,
    critical_path,
    format_breakdown,
    format_phase_table,
    load_chrome_trace,
    summary_table,
    transaction_traces,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.critpath import CATEGORIES, span_dag, trace_spans

from tests.test_obs import spread_txn, traced_cluster


def committed_trace(cluster):
    """The (single) committed distributed transaction's trace id."""
    traces = transaction_traces(cluster.obs.records(), outcome="commit")
    assert len(traces) >= 1
    return traces[0]


def assert_connected_dag(records, trace):
    """Every span of the trace reaches the root through parent links."""
    root, parents = span_dag(records, trace)
    for sid in parents:
        cursor, hops = sid, 0
        while parents.get(cursor, 0) != 0:
            cursor = parents[cursor]
            hops += 1
            assert hops < 10_000, "cycle in span DAG"
        assert cursor == root["sid"]
    return root


# -- trace propagation ---------------------------------------------------------


class TestTracePropagation:
    def test_committed_txn_forms_one_connected_dag(self):
        cluster = traced_cluster()
        cluster.run(spread_txn(cluster)())
        records = cluster.obs.records()
        trace = committed_trace(cluster)
        root = assert_connected_dag(records, trace)
        assert (root["cat"], root["name"]) == ("twopc", "txn")
        spans = trace_spans(records, trace)
        # the DAG reaches the coordinator, both participants, and the
        # counter service's echo round
        assert {"node0", "node1", "node2"} <= {s.get("node") for s in spans}
        names = {(s["cat"], s["name"]) for s in spans}
        assert ("counter", "round") in names
        assert ("rpc", "COUNTER_UPDATE") in names
        assert ("rpc", "TXN_PREPARE") in names
        assert ("crypto", "seal_batch") in names

    def test_trace_id_is_the_transaction_id(self):
        cluster = traced_cluster()
        cluster.run(spread_txn(cluster)())
        trace = committed_trace(cluster)
        spans = trace_spans(cluster.obs.records(), trace)
        root = [s for s in spans if s["name"] == "txn"][0]
        assert root["txn"] == trace

    def test_connected_under_delayed_frames(self):
        cluster = traced_cluster()
        adversary = NetworkAdversary()
        adversary.delay_matching(
            lambda f: f.kind == "erpc" and f.meta.get("is_request"),
            delay=0.003,
        )
        cluster.fabric.adversary = adversary
        cluster.run(spread_txn(cluster, tag=b"cd")())
        cluster.sim.run(until=cluster.sim.now + 0.5)
        assert adversary.delayed >= 1
        records = cluster.obs.records()
        assert_connected_dag(records, committed_trace(cluster))

    def test_replayed_frames_never_graft_spans(self):
        """A duplicated prepare is dropped by the replay guard *before*
        context adoption, so the live trace gains no extra handler
        spans: exactly one TXN_PREPARE span per remote participant."""
        cluster = traced_cluster()
        adversary = NetworkAdversary()
        adversary.duplicate_matching(
            lambda f: f.kind == "erpc" and f.meta.get("is_request")
            and f.meta.get("req_type") == 3  # TXN_PREPARE
        )
        cluster.fabric.adversary = adversary
        cluster.run(spread_txn(cluster, tag=b"rg")())
        cluster.sim.run(until=cluster.sim.now + 0.5)
        assert adversary.duplicated >= 1
        records = cluster.obs.records()
        trace = committed_trace(cluster)
        assert_connected_dag(records, trace)
        prepares = [
            s for s in trace_spans(records, trace)
            if s["cat"] == "rpc" and s["name"] == "TXN_PREPARE"
        ]
        assert len(prepares) == cluster.num_nodes - 1

    def test_tracing_off_adds_no_trace_to_wire(self):
        from repro.net.message import MsgType, TxMessage, peek_trace

        message = TxMessage(MsgType.TXN_PREPARE, 1, 2, 3, b"x")
        assert peek_trace(message.encode()) is None
        carried = TxMessage(
            MsgType.TXN_PREPARE, 1, 2, 3, b"x", trace="ab" * 16,
            trace_parent=9,
        )
        decoded = TxMessage.decode(carried.encode())
        assert decoded.trace == "ab" * 16
        assert decoded.trace_parent == 9
        # trace fields are transparent to equality / replay identity
        assert decoded == message


# -- critical-path attribution -------------------------------------------------


class TestCriticalPath:
    def test_breakdown_sums_to_commit_latency(self):
        cluster = traced_cluster()
        cluster.run(spread_txn(cluster)())
        records = cluster.obs.records()
        path = critical_path(records, committed_trace(cluster))
        assert path.total > 0
        assert sum(path.breakdown.values()) == pytest.approx(
            path.total, abs=1e-12
        )
        # segments exactly tile the root interval
        segments = sorted(path.segments)
        assert segments[0][0] == pytest.approx(path.root["t0"], abs=1e-12)
        assert segments[-1][1] == pytest.approx(path.root["t1"], abs=1e-12)
        for (_, end, _, _), (start, _, _, _) in zip(segments, segments[1:]):
            assert start == pytest.approx(end, abs=1e-12)

    def test_expected_categories_show_up(self):
        cluster = traced_cluster()
        cluster.run(spread_txn(cluster)())
        path = critical_path(
            cluster.obs.records(), committed_trace(cluster)
        )
        for category in ("network", "counter-round", "group_commit"):
            assert path.breakdown[category] > 0.0
        # counter-wait can legitimately be zero-width under the sync
        # backend (the round span exactly covers the wait interval), so
        # only the round share is pinned positive here.
        assert set(path.breakdown) == set(CATEGORIES)

    def test_outcome_and_formatting(self):
        cluster = traced_cluster()
        cluster.run(spread_txn(cluster)())
        records = cluster.obs.records()
        path = critical_path(records, committed_trace(cluster))
        assert path.outcome == "commit"
        text = format_breakdown(path)
        assert "critical path" in text and "total" in text
        table = format_phase_table(aggregate_critical_paths(records))
        assert "where does a millisecond go" in table

    def test_aggregate_is_deterministic_per_seed(self):
        tables = []
        for _run in range(2):
            cluster = traced_cluster(seed=37)
            cluster.run(spread_txn(cluster)())
            tables.append(
                format_phase_table(
                    aggregate_critical_paths(cluster.obs.records())
                )
            )
        assert tables[0] == tables[1]

    def test_cli_critical_path_from_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        cluster = traced_cluster()
        cluster.run(spread_txn(cluster)())
        path = tmp_path / "records.jsonl"
        write_jsonl(cluster.obs.records(), str(path))
        assert main(["trace", "critical-path", "--from-jsonl",
                     str(path)]) == 0
        out = capsys.readouterr().out
        assert "where does a millisecond go" in out
        assert main(["trace", "critical-path", "last", "--from-jsonl",
                     str(path)]) == 0
        out = capsys.readouterr().out
        assert "critical path: txn" in out


# -- chrome-trace flow events --------------------------------------------------


class TestFlowEvents:
    def test_flow_events_roundtrip_along_cross_node_edges(self, tmp_path):
        cluster = traced_cluster()
        cluster.run(spread_txn(cluster)())
        records = cluster.obs.records()
        path = tmp_path / "trace.json"
        write_chrome_trace(records, str(path))
        events = load_chrome_trace(str(path))
        starts = [e for e in events if e["ph"] == "s"]
        ends = [e for e in events if e["ph"] == "f"]
        assert starts and len(starts) == len(ends)
        assert {e["id"] for e in starts} == {e["id"] for e in ends}
        by_id = {e["id"]: e for e in starts}
        spans = {r["sid"]: r for r in records if r["type"] == "span"}
        for end in ends:
            start = by_id[end["id"]]
            assert end["bp"] == "e"
            assert start["cat"] == end["cat"] == "trace"
            # flow edges are exactly the cross-node parent links
            child = spans[end["id"]]
            parent = spans[child["parent"]]
            assert start["pid"] == parent["node"]
            assert end["pid"] == child["node"]
            assert start["pid"] != end["pid"]
            # the start timestamp is clamped into the parent's interval
            assert start["ts"] >= round(parent["t0"] * 1e6, 3) - 1e-6
            assert start["ts"] <= round(parent["t1"] * 1e6, 3) + 1e-6


# -- bench baseline ------------------------------------------------------------


class TestBaseline:
    @pytest.fixture(scope="class")
    def document(self):
        from repro.bench.baseline import run_baseline

        return run_baseline(num_clients=8, duration=0.05)

    def test_fresh_baseline_passes_its_own_check(self, document):
        from repro.bench.baseline import check_baseline

        assert check_baseline(document, document) == []

    def test_regressions_are_direction_aware(self, document):
        from repro.bench.baseline import check_baseline

        reference = json.loads(json.dumps(
            {k: v for k, v in document.items() if not k.startswith("_")}
        ))
        reference["metrics"]["throughput_tps"] *= 4.0
        reference["metrics"]["frames_per_txn"] /= 4.0
        failures = check_baseline(document, reference)
        assert any("throughput_tps" in f for f in failures)
        assert any("frames_per_txn" in f for f in failures)
        # improvements never fail
        better = json.loads(json.dumps(reference))
        better["metrics"]["throughput_tps"] = 0.01
        better["metrics"]["frames_per_txn"] = 1e9
        better["metrics"]["p99_commit_latency_ms"] = 1e9
        better["metrics"]["seal_ops_per_txn"] = 1e9
        better["metrics"]["counter_rounds_per_txn"] = 1e9
        assert check_baseline(document, better) == []

    def test_document_shape(self, document):
        from repro.bench.baseline import GATED_METRICS, write_baseline

        for name, _direction in GATED_METRICS:
            assert name in document["metrics"]
        breakdown = document["critical_path"]
        assert breakdown["txns"] > 0
        assert set(breakdown["categories"]) == set(CATEGORIES)
        shares = sum(
            c["share"] for c in breakdown["categories"].values()
        )
        assert shares == pytest.approx(1.0, abs=1e-3)

    def test_checked_in_baseline_matches_schema(self):
        from repro.bench.baseline import BASELINE_PATH, GATED_METRICS
        import os

        path = os.path.join(
            os.path.dirname(__file__), "..", BASELINE_PATH
        )
        with open(path) as fp:
            reference = json.load(fp)
        for name, _direction in GATED_METRICS:
            assert name in reference["metrics"]


# -- summary-table truncation --------------------------------------------------


class TestSummaryTable:
    def test_long_metric_names_truncate_instead_of_misaligning(self):
        snapshot = {
            "node0": {
                "a" * 80: 1,
                "short": 2,
            }
        }
        text = summary_table(snapshot)
        lines = text.splitlines()
        assert any("..." in line for line in lines)
        # the name column is capped, so no row blows out the table width
        assert max(len(line) for line in lines) < 80
        # deterministic: same input, same bytes
        assert text == summary_table(snapshot)
