"""The observability subsystem: tracer, registry, exporters, monitor."""

import json

import pytest

from repro.config import ClusterConfig, TREATY_FULL
from repro.core import TreatyCluster, crash_and_recover
from repro.core.stabilization import Stabilizer
from repro.net import NetworkAdversary
from repro.obs import (
    Histogram,
    InvariantMonitor,
    MetricsRegistry,
    MonitorViolation,
    Tracer,
    chrome_trace,
    load_chrome_trace,
    to_jsonl,
    write_chrome_trace,
)
from repro.sim import Simulator


def local_key(cluster, node_index, tag=b"obs"):
    i = 0
    while True:
        key = b"%s-%04d" % (tag, i)
        if cluster.partitioner(key) == node_index:
            return key
        i += 1


def traced_cluster(seed=11, monitor=False):
    config = ClusterConfig(tracing=True, monitor=monitor, seed=seed)
    return TreatyCluster(profile=TREATY_FULL, config=config).start()


def spread_txn(cluster, tag=b"obs"):
    """One transaction touching every shard (guaranteed distributed)."""
    keys = [local_key(cluster, i, tag) for i in range(cluster.num_nodes)]

    def body():
        txn = cluster.session(cluster.client_machine()).begin()
        for key in keys:
            yield from txn.put(key, b"traced")
        yield from txn.commit()

    return body


# -- registry ------------------------------------------------------------------


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        hist = Histogram([1.0, 2.0, 4.0])
        for value in (0.5, 1.0, 1.5, 2.0, 3.9, 4.0, 4.00001):
            hist.observe(value)
        # value <= edge lands in that bucket; beyond the last edge
        # overflows.
        assert hist.counts == [2, 2, 2, 1]
        assert hist.total == 7
        assert hist.min == 0.5
        assert hist.max == 4.00001

    def test_edges_must_increase(self):
        with pytest.raises(ValueError):
            Histogram([1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram([])

    def test_registry_get_or_create(self):
        registry = MetricsRegistry("x")
        assert registry.counter("a") is registry.counter("a")
        registry.counter("a").inc(3)
        registry.probe("b", lambda: 9)
        snap = registry.snapshot()
        assert snap["a"] == 3
        assert snap["b"] == 9


# -- tracer --------------------------------------------------------------------


class TestTracer:
    def test_span_nesting_assigns_parents(self):
        tracer = Tracer(Simulator())
        outer = tracer.span("t", "outer")
        inner = tracer.span("t", "inner")
        inner.close()
        outer.close()
        by_name = {rec["name"]: rec for rec in tracer.records}
        assert by_name["inner"]["parent"] == by_name["outer"]["sid"]
        assert by_name["outer"]["parent"] == 0

    def test_out_of_order_close_keeps_identity(self):
        """Interleaved fibers close spans in any order."""
        tracer = Tracer(Simulator())
        a = tracer.span("t", "a")
        b = tracer.span("t", "b")
        a.close()  # closes the *outer* span first
        c = tracer.span("t", "c")
        assert c.parent == b.sid
        b.close()
        c.close()
        assert tracer.spans_closed == 3

    def test_same_seed_gives_byte_identical_jsonl(self):
        texts = []
        for _run in range(2):
            cluster = traced_cluster(seed=23)
            cluster.run(spread_txn(cluster)())
            cluster.run(crash_and_recover(cluster, 1))
            texts.append(to_jsonl(cluster.obs.records()))
        assert texts[0] == texts[1]
        assert len(texts[0]) > 1000

    def test_disabled_tracing_keeps_sim_tracerless(self):
        config = ClusterConfig(monitor=False)  # opt out of the suite default
        cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
        assert cluster.sim.tracer is None
        assert cluster.obs.records() == []


# -- exporters -----------------------------------------------------------------


class TestChromeTrace:
    def test_round_trip_and_category_coverage(self, tmp_path):
        cluster = traced_cluster()
        cluster.run(spread_txn(cluster)())
        records = cluster.obs.records()
        path = tmp_path / "trace.json"
        write_chrome_trace(records, str(path))
        events = load_chrome_trace(str(path))
        # one event per record, plus "s"/"f" flow pairs along the
        # cross-node trace-context edges
        main = [e for e in events if e["ph"] not in ("s", "f")]
        assert len(main) == len(records)
        categories = {event["cat"] for event in events}
        assert {"twopc", "stabilize", "storage", "net", "tee"} <= categories
        # spans become complete events with durations, on per-node rows
        complete = [e for e in events if e["ph"] == "X"]
        assert complete and all(e["dur"] >= 0 for e in complete)
        assert {"node0", "node1", "node2"} <= {e["pid"] for e in events}

    def test_lanes_never_overlap(self):
        cluster = traced_cluster()
        cluster.run(spread_txn(cluster)())
        events = chrome_trace(cluster.obs.records())["traceEvents"]
        rows = {}
        for event in events:
            if event["ph"] != "X":
                continue
            rows.setdefault((event["pid"], event["tid"]), []).append(
                (event["ts"], event["ts"] + event["dur"])
            )
        for spans in rows.values():
            spans.sort()
            for (_, end), (start, _) in zip(spans, spans[1:]):
                # lanes are assigned on raw sim time; the exporter's
                # 3-decimal µs rounding may show a 1 ns pseudo-overlap
                assert start >= end - 0.0011

    def test_document_is_valid_json_with_metadata(self, tmp_path):
        cluster = traced_cluster()
        cluster.run(spread_txn(cluster)())
        path = tmp_path / "t.json"
        write_chrome_trace(cluster.obs.records(), str(path))
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "M" for e in document["traceEvents"])


# -- monitor: green under real runs and attacks --------------------------------


class TestMonitorGreen:
    def test_normal_run_with_recovery_is_green(self):
        cluster = traced_cluster(monitor=True)
        cluster.run(spread_txn(cluster)())
        cluster.run(crash_and_recover(cluster, 1))
        cluster.sim.run(until=cluster.sim.now + 1.0)
        cluster.obs.monitor.check_quiescent()
        assert cluster.obs.monitor.green
        assert cluster.obs.monitor.events_seen > 0
        assert len(cluster.obs.monitor.decisions) >= 1

    def test_green_under_replayed_prepare(self):
        """Duplicated prepare messages must not trip any invariant."""
        cluster = traced_cluster(monitor=True)
        adversary = NetworkAdversary()
        adversary.duplicate_matching(
            lambda f: f.kind == "erpc" and f.meta.get("is_request")
            and f.meta.get("req_type") == 3  # TXN_PREPARE
        )
        cluster.fabric.adversary = adversary
        cluster.run(spread_txn(cluster, tag=b"rp")())
        cluster.sim.run(until=cluster.sim.now + 0.5)
        assert adversary.duplicated >= 1
        assert cluster.obs.monitor.green

    def test_green_under_delayed_decision(self):
        """Delaying commit messages reorders phases but stays safe."""
        cluster = traced_cluster(monitor=True)
        adversary = NetworkAdversary()
        adversary.delay_matching(
            lambda f: f.kind == "erpc" and f.meta.get("is_request")
            and f.meta.get("req_type") == 4,  # TXN_COMMIT
            delay=0.02,
        )
        cluster.fabric.adversary = adversary
        cluster.run(spread_txn(cluster, tag=b"dd")())
        cluster.sim.run(until=cluster.sim.now + 0.5)
        assert adversary.delayed >= 1
        assert cluster.obs.monitor.green


# -- monitor: deliberately broken components must trip it ----------------------


def _broken_stabilize(self, log_name, counter):
    """A stabilizer that lies: returns without running the protocol."""
    return
    yield  # pragma: no cover - makes this a generator function


def _broken_stabilize_many(self, targets):
    """The vectored/group entry point lying the same way."""
    return
    yield  # pragma: no cover - makes this a generator function


class TestMonitorTrips:
    def test_broken_stabilization_trips_invariants(self, monkeypatch):
        cluster = traced_cluster(monitor=True)
        cluster.obs.monitor.strict = False
        # Break the whole Stabilizer surface: the single-target path and
        # the vectored path the group-wide piggyback rounds use.
        monkeypatch.setattr(Stabilizer, "__call__", _broken_stabilize)
        monkeypatch.setattr(Stabilizer, "many", _broken_stabilize_many)
        cluster.run(spread_txn(cluster, tag=b"bs")())
        cluster.sim.run(until=cluster.sim.now + 0.5)
        violations = cluster.obs.monitor.violations
        assert violations, "monitor took the broken stabilizer at its word"
        assert any(v.startswith(("I1", "I2")) for v in violations)

    def test_injected_decision_before_stabilization(self):
        """I1 regression: commit applied before the decision is stable."""
        tracer = Tracer(Simulator())
        monitor = InvariantMonitor(require_stabilization=True).attach(tracer)
        tracer.event("twopc", "decision", node="node0", txn="aa",
                     kind="commit", log="node0/clog", counter=5)
        tracer.event("stabilize", "advance", node="node0",
                     log="node0/clog", value=4)  # one short of the decision
        with pytest.raises(MonitorViolation, match="I1"):
            tracer.event("twopc", "commit_apply", node="node1", txn="aa")
        # after the entry stabilizes the same apply is legal
        tracer.event("stabilize", "advance", node="node0",
                     log="node0/clog", value=5)
        tracer.event("twopc", "commit_apply", node="node2", txn="aa")

    def test_commit_without_logged_decision(self):
        tracer = Tracer(Simulator())
        InvariantMonitor().attach(tracer)
        with pytest.raises(MonitorViolation, match="I1"):
            tracer.event("twopc", "commit_apply", node="node1", txn="bb")

    def test_prepare_ack_before_stable(self):
        tracer = Tracer(Simulator())
        InvariantMonitor(require_stabilization=True).attach(tracer)
        with pytest.raises(MonitorViolation, match="I2"):
            tracer.event("twopc", "prepare_ack", node="node1", txn="cc",
                         log="node1/clog", counter=2)

    def test_counter_regression_trips_i3(self):
        tracer = Tracer(Simulator())
        InvariantMonitor().attach(tracer)
        tracer.event("stabilize", "advance", log="L", value=7)
        with pytest.raises(MonitorViolation, match="I3"):
            tracer.event("stabilize", "advance", log="L", value=3)

    def test_unresolved_prepared_txns_trip_i4(self):
        tracer = Tracer(Simulator())
        monitor = InvariantMonitor(strict=False).attach(tracer)
        tracer.event("node", "recover_done", node="node1",
                     prepared=["ab12"], redriven=0)
        monitor.check_quiescent()
        assert any(v.startswith("I4") for v in monitor.violations)
        # resolving clears the obligation
        monitor.violations.clear()
        tracer.event("twopc", "prepared_resolved", node="node1", txn="ab12",
                     outcome="commit")
        monitor.check_quiescent()
        assert monitor.green
