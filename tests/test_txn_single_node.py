"""Tests for single-node pessimistic and optimistic transactions."""

import pytest

from repro.config import ClusterConfig, TREATY_ENC
from repro.errors import ConflictError, LockTimeout, TransactionError
from repro.txn import TxnStatus

from tests.conftest import TxnHarness


@pytest.fixture
def harness():
    return TxnHarness().boot()


class TestPessimisticBasics:
    def test_commit_makes_writes_visible(self, harness):
        harness.txn_put([(b"k1", b"v1"), (b"k2", b"v2")])
        assert harness.get(b"k1") == b"v1"
        assert harness.get(b"k2") == b"v2"

    def test_rollback_discards_writes(self, harness):
        def body():
            txn = harness.manager.begin_pessimistic()
            yield from txn.put(b"k", b"v")
            yield from txn.rollback()
            return txn.status

        assert harness.run(body()) == TxnStatus.ABORTED
        assert harness.get(b"k") is None

    def test_read_my_own_writes(self, harness):
        def body():
            txn = harness.manager.begin_pessimistic()
            yield from txn.put(b"k", b"mine")
            value = yield from txn.get(b"k")
            yield from txn.rollback()
            return value

        assert harness.run(body()) == b"mine"

    def test_read_my_own_delete(self, harness):
        harness.txn_put([(b"k", b"v")])

        def body():
            txn = harness.manager.begin_pessimistic()
            yield from txn.delete(b"k")
            value = yield from txn.get(b"k")
            yield from txn.rollback()
            return value

        assert harness.run(body()) is None

    def test_delete_commits_tombstone(self, harness):
        harness.txn_put([(b"k", b"v")])
        harness.txn_put([(b"k", None)])
        assert harness.get(b"k") is None

    def test_read_only_txn_commits_without_wal(self, harness):
        harness.txn_put([(b"k", b"v")])

        def body():
            txn = harness.manager.begin_pessimistic()
            value = yield from txn.get(b"k")
            counter = yield from txn.commit()
            return value, counter

        assert harness.run(body()) == (b"v", 0)

    def test_operations_after_commit_rejected(self, harness):
        def body():
            txn = harness.manager.begin_pessimistic()
            yield from txn.put(b"k", b"v")
            yield from txn.commit()
            yield from txn.put(b"k2", b"v2")

        with pytest.raises(TransactionError):
            harness.run(body())

    def test_locks_released_after_commit(self, harness):
        harness.txn_put([(b"k", b"v1")])
        harness.txn_put([(b"k", b"v2")])  # would block if locks leaked
        assert harness.get(b"k") == b"v2"
        assert harness.manager.locks.total_locked_keys() == 0

    def test_ww_conflict_blocks_until_release(self, harness):
        sim = harness.sim
        order = []

        def writer(tag, delay, hold):
            yield sim.timeout(delay)
            txn = harness.manager.begin_pessimistic()
            yield from txn.put(b"hot", tag)
            order.append((tag, "locked", round(sim.now, 3)))
            yield sim.timeout(hold)
            yield from txn.commit()
            order.append((tag, "done", round(sim.now, 3)))

        sim.process(writer(b"first", 0.0, 0.02))
        sim.process(writer(b"second", 0.001, 0.0))
        sim.run()
        assert order[0][0] == b"first"
        # Second writer only locked after the first committed.
        locked_second = [e for e in order if e[0] == b"second" and e[1] == "locked"]
        done_first = [e for e in order if e[0] == b"first" and e[1] == "done"]
        assert locked_second[0][2] >= done_first[0][2]
        assert harness.get(b"hot") == b"second"

    def test_lock_timeout_aborts_txn(self, harness):
        sim = harness.sim
        outcome = {}

        def holder():
            txn = harness.manager.begin_pessimistic()
            yield from txn.put(b"hot", b"held")
            yield sim.timeout(2.0)  # hold well past the other's timeout
            yield from txn.commit()

        def contender():
            yield sim.timeout(0.01)
            txn = harness.manager.begin_pessimistic()
            try:
                yield from txn.put(b"hot", b"nope")
            except LockTimeout:
                outcome["aborted"] = txn.status

        sim.process(holder())
        sim.process(contender())
        sim.run()
        assert outcome["aborted"] == TxnStatus.ABORTED

    def test_atomicity_multiple_keys(self, harness):
        """All writes of a transaction become visible together."""
        harness.txn_put([(b"a", b"1"), (b"b", b"1")])
        sim = harness.sim

        def transfer():
            txn = harness.manager.begin_pessimistic()
            yield from txn.put(b"a", b"0")
            yield sim.timeout(0.05)
            yield from txn.put(b"b", b"2")
            yield from txn.commit()

        observations = []

        def observer():
            for _ in range(8):
                yield sim.timeout(0.02)
                txn = harness.manager.begin_pessimistic()
                try:
                    a = yield from txn.get(b"a")
                    b = yield from txn.get(b"b")
                    observations.append((a, b))
                    yield from txn.commit()
                except LockTimeout:
                    pass

        sim.process(transfer())
        sim.process(observer())
        sim.run()
        assert all(obs in [(b"1", b"1"), (b"0", b"2")] for obs in observations)


class TestPrepared:
    def test_prepare_then_commit(self, harness):
        def body():
            txn = harness.manager.begin_pessimistic(txn_id=b"g1")
            yield from txn.put(b"pk", b"pv")
            counter, log = yield from txn.prepare()
            assert txn.status == TxnStatus.PREPARED
            yield from txn.commit_prepared()
            return counter

        assert harness.run(body()) >= 1
        assert harness.get(b"pk") == b"pv"
        assert harness.engine.prepared_txns == {}

    def test_prepare_then_abort(self, harness):
        def body():
            txn = harness.manager.begin_pessimistic(txn_id=b"g2")
            yield from txn.put(b"pk", b"pv")
            yield from txn.prepare()
            yield from txn.abort_prepared()

        harness.run(body())
        assert harness.get(b"pk") is None
        assert harness.engine.prepared_txns == {}
        assert harness.manager.locks.total_locked_keys() == 0

    def test_prepared_holds_locks(self, harness):
        sim = harness.sim

        def preparer():
            txn = harness.manager.begin_pessimistic(txn_id=b"g3")
            yield from txn.put(b"pk", b"pv")
            yield from txn.prepare()
            yield sim.timeout(1.0)
            yield from txn.commit_prepared()

        blocked = {}

        def contender():
            yield sim.timeout(0.05)
            txn = harness.manager.begin_pessimistic()
            try:
                yield from txn.put(b"pk", b"other")
            except LockTimeout:
                blocked["yes"] = True

        sim.process(preparer())
        sim.process(contender())
        sim.run()
        assert blocked.get("yes")
        assert harness.get(b"pk") == b"pv"

    def test_commit_prepared_requires_prepare(self, harness):
        def body():
            txn = harness.manager.begin_pessimistic()
            yield from txn.put(b"k", b"v")
            yield from txn.commit_prepared()

        with pytest.raises(TransactionError):
            harness.run(body())


class TestOptimistic:
    def test_basic_commit(self, harness):
        harness.txn_put([(b"k", b"v")], optimistic=True)
        assert harness.get(b"k") == b"v"

    def test_no_locks_taken(self, harness):
        def body():
            txn = harness.manager.begin_optimistic()
            yield from txn.put(b"k", b"v")
            yield from txn.get(b"other")
            assert harness.manager.locks.total_locked_keys() == 0
            yield from txn.commit()

        harness.run(body())

    def test_read_write_conflict_detected(self, harness):
        harness.txn_put([(b"x", b"0")])

        def body():
            reader = harness.manager.begin_optimistic()
            value = yield from reader.get(b"x")
            # Concurrent writer commits between read and commit.
            writer = harness.manager.begin_optimistic()
            yield from writer.put(b"x", b"1")
            yield from writer.commit()
            yield from reader.put(b"y", value + b"-derived")
            yield from reader.commit()

        with pytest.raises(ConflictError):
            harness.run(body())
        assert harness.get(b"y") is None

    def test_write_write_conflict_detected(self, harness):
        def body():
            first = harness.manager.begin_optimistic()
            second = harness.manager.begin_optimistic()
            yield from first.put(b"w", b"1")
            yield from second.put(b"w", b"2")
            yield from first.commit()
            yield from second.commit()

        with pytest.raises(ConflictError):
            harness.run(body())
        assert harness.get(b"w") == b"1"

    def test_disjoint_txns_both_commit(self, harness):
        def body():
            first = harness.manager.begin_optimistic()
            second = harness.manager.begin_optimistic()
            yield from first.put(b"a", b"1")
            yield from second.put(b"b", b"2")
            yield from first.commit()
            yield from second.commit()

        harness.run(body())
        assert harness.get(b"a") == b"1"
        assert harness.get(b"b") == b"2"

    def test_conflict_aborts_and_retry_succeeds(self, harness):
        harness.txn_put([(b"cnt", b"0")])

        def body():
            txn = harness.manager.begin_optimistic()
            value = yield from txn.get(b"cnt")
            interferer = harness.manager.begin_optimistic()
            yield from interferer.put(b"cnt", b"9")
            yield from interferer.commit()
            yield from txn.put(b"cnt", value + b"+1")
            try:
                yield from txn.commit()
                return "committed"
            except ConflictError:
                retry = harness.manager.begin_optimistic()
                value = yield from retry.get(b"cnt")
                yield from retry.put(b"cnt", value + b"+1")
                yield from retry.commit()
                return "retried"

        assert harness.run(body()) == "retried"
        assert harness.get(b"cnt") == b"9+1"

    def test_repeated_read_unchanged_ok(self, harness):
        harness.txn_put([(b"k", b"v")])

        def body():
            txn = harness.manager.begin_optimistic()
            for _ in range(3):
                yield from txn.get(b"k")
            yield from txn.put(b"out", b"done")
            yield from txn.commit()

        harness.run(body())
        assert harness.get(b"out") == b"done"


class TestGroupCommit:
    def test_group_forms_under_concurrency(self):
        harness = TxnHarness().boot()
        sim = harness.sim

        def writer(i):
            txn = harness.manager.begin_pessimistic()
            yield from txn.put(b"key-%d" % i, b"v%d" % i)
            yield from txn.commit()

        for i in range(12):
            sim.process(writer(i))
        sim.run()
        assert harness.manager.group.committed == 12
        assert harness.manager.group.groups_formed < 12  # batching happened
        for i in range(12):
            assert harness.get(b"key-%d" % i) == b"v%d" % i

    def test_group_commit_survives_crash(self):
        harness = TxnHarness().boot()
        sim = harness.sim

        def writer(i):
            txn = harness.manager.begin_pessimistic()
            yield from txn.put(b"key-%d" % i, b"v%d" % i)
            yield from txn.commit()

        for i in range(8):
            sim.process(writer(i))
        sim.run()
        recovered = harness.reopen()
        for i in range(8):
            assert recovered.get(b"key-%d" % i) == b"v%d" % i


class TestGroupCommitConflicts:
    def test_leader_conflict_in_multi_request_batch(self):
        """Regression: a leader whose own OCC validation fails mid-batch
        must not crash the simulation (its outcome fails before it is
        being waited on)."""
        harness = TxnHarness().boot()
        harness.txn_put([(b"hot-occ", b"0")])
        sim = harness.sim
        outcomes = []

        def conflicted_leader():
            txn = harness.manager.begin_optimistic()
            value = yield from txn.get(b"hot-occ")
            # Another txn invalidates the read before we commit.
            writer = harness.manager.begin_optimistic()
            yield from writer.put(b"hot-occ", b"9")
            yield from writer.commit()
            yield from txn.put(b"dep", value + b"x")
            try:
                yield from txn.commit()
                outcomes.append("committed")
            except ConflictError:
                outcomes.append("conflict")

        def follower(i):
            txn = harness.manager.begin_optimistic()
            yield from txn.put(b"other-%d" % i, b"v")
            yield from txn.commit()
            outcomes.append("follower-%d" % i)

        sim.process(conflicted_leader())
        for i in range(4):
            sim.process(follower(i))
        sim.run()
        assert "conflict" in outcomes
        assert sum(1 for o in outcomes if o.startswith("follower")) == 4
        assert harness.get(b"dep") is None
