"""Tests for the simulated fabric, NICs and the network adversary."""

import pytest

from repro.errors import NetworkError
from repro.net import Fabric, Frame, NetworkAdversary, flip_payload_byte
from repro.sim import Simulator


def make_fabric(bandwidth=1e9, propagation=1e-6):
    sim = Simulator()
    fabric = Fabric(sim, mtu=1460)
    a = fabric.attach("a", bandwidth, propagation)
    b = fabric.attach("b", bandwidth, propagation)
    return sim, fabric, a, b


def send_and_receive(sim, src_nic, dst_nic, frame):
    def body():
        yield from src_nic.transmit(frame)
        received = yield dst_nic.receive()
        return received, sim.now

    return sim.run_process(body())


class TestFabric:
    def test_frame_delivery(self):
        sim, fabric, a, b = make_fabric()
        frame = Frame("a", "b", wire_bytes=1000, payload=b"hello")
        received, elapsed = send_and_receive(sim, a, b, frame)
        assert received.payload == b"hello"
        # serialization (1000 B at 1 GB/s) + propagation
        assert elapsed == pytest.approx(1000 / 1e9 + 1e-6)

    def test_egress_serializes_at_bandwidth(self):
        sim, fabric, a, b = make_fabric(bandwidth=1e6, propagation=0.0)

        def body():
            yield from a.transmit(Frame("a", "b", 1000, b"1"))
            yield from a.transmit(Frame("a", "b", 1000, b"2"))
            return sim.now

        assert sim.run_process(body()) == pytest.approx(2 * 1000 / 1e6)

    def test_unknown_destination_drops(self):
        sim, fabric, a, _ = make_fabric()

        def body():
            yield from a.transmit(Frame("a", "nowhere", 10, b""))

        sim.run_process(body())
        sim.run()
        assert fabric.dropped_frames == 1

    def test_duplicate_address_rejected(self):
        sim, fabric, _, _ = make_fabric()
        with pytest.raises(NetworkError):
            fabric.attach("a", 1e9, 0)

    def test_nic_lookup(self):
        _, fabric, a, _ = make_fabric()
        assert fabric.nic("a") is a
        with pytest.raises(NetworkError):
            fabric.nic("zzz")

    def test_frames_for_mtu(self):
        _, fabric, _, _ = make_fabric()
        assert fabric.frames_for(100) == 1
        assert fabric.frames_for(1460) == 1
        assert fabric.frames_for(1461) == 2
        assert fabric.frames_for(4096) == 3

    def test_byte_counters(self):
        sim, fabric, a, b = make_fabric()
        send_and_receive(sim, a, b, Frame("a", "b", 500, b"x"))
        assert a.tx_bytes == 500
        assert b.rx_bytes == 500


class TestAdversary:
    def test_drop_matching(self):
        sim, fabric, a, b = make_fabric()
        adversary = NetworkAdversary()
        adversary.drop_matching(lambda f: f.payload == b"victim")
        fabric.adversary = adversary

        def body():
            yield from a.transmit(Frame("a", "b", 10, b"victim"))
            yield from a.transmit(Frame("a", "b", 10, b"ok"))
            received = yield b.receive()
            return received.payload

        assert sim.run_process(body()) == b"ok"
        assert adversary.dropped == 1

    def test_duplicate_matching(self):
        sim, fabric, a, b = make_fabric()
        adversary = NetworkAdversary()
        adversary.duplicate_matching(lambda f: True)
        fabric.adversary = adversary

        def body():
            yield from a.transmit(Frame("a", "b", 10, b"msg"))
            first = yield b.receive()
            second = yield b.receive()
            return first.payload, second.payload

        assert sim.run_process(body()) == (b"msg", b"msg")

    def test_delay_matching(self):
        sim, fabric, a, b = make_fabric(propagation=0.0)
        adversary = NetworkAdversary()
        adversary.delay_matching(lambda f: True, delay=0.5)
        fabric.adversary = adversary

        def body():
            yield from a.transmit(Frame("a", "b", 10, b"slow"))
            yield b.receive()
            return sim.now

        assert sim.run_process(body()) >= 0.5

    def test_tamper_matching(self):
        sim, fabric, a, b = make_fabric()
        adversary = NetworkAdversary()
        adversary.tamper_matching(lambda f: True, flip_payload_byte)
        fabric.adversary = adversary

        def body():
            yield from a.transmit(Frame("a", "b", 10, b"\x00\x01"))
            received = yield b.receive()
            return received.payload

        assert sim.run_process(body()) == b"\x01\x01"
        assert adversary.tampered == 1

    def test_random_drop_is_deterministic(self):
        from repro.sim import SeededRng

        def run():
            sim, fabric, a, b = make_fabric()
            adversary = NetworkAdversary(rng=SeededRng(7, "drop"))
            adversary.drop_randomly(0.5)
            fabric.adversary = adversary

            def body():
                for i in range(20):
                    yield from a.transmit(Frame("a", "b", 10, i))

            sim.run_process(body())
            sim.run()
            return fabric.delivered_frames

        assert run() == run()

    def test_first_matching_rule_wins(self):
        adversary = NetworkAdversary()
        adversary.drop_matching(lambda f: True)
        adversary.duplicate_matching(lambda f: True)
        verdict = adversary.intercept(Frame("a", "b", 1, b""))
        assert verdict == [(None, 0.0)]
