"""Tests for memory regions, EPC pressure and the mempool allocator."""

import pytest

from repro.memory import (
    EnclaveMemory,
    HostMemory,
    MempoolAllocator,
    MemoryRegion,
)


class TestRegions:
    def test_allocation_accounting(self):
        region = MemoryRegion("r")
        alloc = region.allocate(100)
        assert region.used == 100
        alloc.free()
        assert region.used == 0
        assert region.peak == 100

    def test_double_free_is_idempotent(self):
        region = MemoryRegion("r")
        alloc = region.allocate(10)
        alloc.free()
        alloc.free()
        assert region.used == 0

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            MemoryRegion("r").allocate(-1)

    def test_pressure_zero_within_limit(self):
        enclave = EnclaveMemory(epc_bytes=1000)
        enclave.allocate(999)
        assert enclave.pressure() == 0.0

    def test_pressure_grows_beyond_limit(self):
        enclave = EnclaveMemory(epc_bytes=1000)
        enclave.allocate(2000)
        assert enclave.pressure() == pytest.approx(0.5)
        assert enclave.over_limit_bytes == 1000

    def test_host_memory_never_pressured(self):
        host = HostMemory()
        host.allocate(10**12)
        assert host.pressure() == 0.0


class TestMempoolAllocator:
    def test_recycles_buffers(self):
        region = MemoryRegion("host")
        pool = MempoolAllocator(region, heaps=1)
        first = pool.alloc(100, thread_id=1)
        first.release()
        pool.alloc(100, thread_id=1)
        # Second allocation reuses the slab: mapped bytes did not grow.
        assert pool.recycle_hits == 1
        assert region.total_allocated == 128  # one 128 B size class

    def test_size_classes_power_of_two(self):
        region = MemoryRegion("host")
        pool = MempoolAllocator(region, heaps=1)
        buffer = pool.alloc(65)
        assert buffer.size_class == 128
        assert pool.alloc(64).size_class == 64

    def test_distinct_heaps_do_not_share_free_lists(self):
        region = MemoryRegion("host")
        pool = MempoolAllocator(region, heaps=2)
        thread_a, thread_b = 0, 1
        assert pool._heap_of(thread_a) != pool._heap_of(thread_b)
        pool.alloc(100, thread_id=thread_a).release()
        pool.alloc(100, thread_id=thread_b)
        assert pool.recycle_hits == 0

    def test_recycle_rate(self):
        region = MemoryRegion("host")
        pool = MempoolAllocator(region, heaps=1)
        for _ in range(10):
            pool.alloc(50).release()
        assert pool.recycle_rate() == pytest.approx(0.9)

    def test_oversized_allocation_rejected(self):
        pool = MempoolAllocator(MemoryRegion("host"))
        with pytest.raises(ValueError):
            pool.alloc(64 * 1024 * 1024)

    def test_double_release_is_idempotent(self):
        region = MemoryRegion("host")
        pool = MempoolAllocator(region, heaps=1)
        buffer = pool.alloc(100)
        buffer.release()
        buffer.release()
        pool.alloc(100)
        pool.alloc(100)
        # Only one recycled slab must exist despite the double release.
        assert pool.recycle_hits == 1
