"""Small-surface unit tests: rng derivation, fingerprints, misc APIs."""

import pytest

from repro.config import ClusterConfig, CostModel, EnvProfile, PROFILES
from repro.crypto import generate_keypair
from repro.sim import SeededRng, derive_seed


class TestRngDerivation:
    def test_labels_give_independent_streams(self):
        a = SeededRng(1, "alpha")
        b = SeededRng(1, "beta")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_same_labels_reproduce(self):
        assert SeededRng(1, "x").random() == SeededRng(1, "x").random()

    def test_child_streams_deterministic(self):
        parent = SeededRng(9, "p")
        assert parent.child("c").random() == SeededRng(9, "p").child("c").random()

    def test_derive_seed_handles_negative_and_large(self):
        assert derive_seed(-5, "a") == derive_seed(-5, "a")
        assert derive_seed(2**70, "a") == derive_seed(2**70 & (2**64 - 1), "a")

    def test_label_path_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")


class TestVerifyKeyFingerprint:
    def test_fingerprint_stable_and_distinct(self):
        _s1, v1 = generate_keypair(b"seed", "id1")
        _s2, v2 = generate_keypair(b"seed", "id2")
        assert v1.fingerprint() == v1.fingerprint()
        assert v1.fingerprint() != v2.fingerprint()
        assert len(v1.fingerprint()) == 16


class TestConfigSurface:
    def test_profiles_registry_complete(self):
        assert len(PROFILES) == 6
        assert all(isinstance(p, EnvProfile) for p in PROFILES.values())

    def test_describe_strings(self):
        assert PROFILES["DS-RocksDB"].describe() == "native w/o Enc"
        assert (
            PROFILES["Treaty w/ Enc w/ Stab"].describe()
            == "SCONE w/ Enc w/ Stab"
        )

    def test_cost_model_overrides(self):
        costs = CostModel().with_overrides(rote_latency_mean=5e-3)
        assert costs.rote_latency_mean == 5e-3
        assert CostModel().rote_latency_mean == 2e-3  # original untouched

    def test_cost_helpers(self):
        costs = CostModel()
        assert costs.cycles(3.6e9) == pytest.approx(1.0)
        assert costs.aead_cost(0) == pytest.approx(costs.encrypt_setup)
        assert costs.wire_time(costs.net_bandwidth) == pytest.approx(1.0)
        assert costs.syscall_cost(True) > costs.syscall_cost(False)

    def test_cluster_config_defaults(self):
        config = ClusterConfig()
        assert config.num_nodes == 3
        assert config.storage_engine == "lsm"
        assert config.storage_io == "syscall"


class TestFrameAndFabricSurface:
    def test_frame_meta_defaults(self):
        from repro.net import Frame

        frame = Frame("a", "b", 10, b"p")
        assert frame.meta == {}
        assert frame.kind == "msg"

    def test_wire_size_consistency(self):
        from repro.net import wire_size
        from repro.net.message import METADATA_BYTES, PAD_BYTES
        from repro.crypto.aead import IV_BYTES, MAC_BYTES

        assert wire_size(0, False) == METADATA_BYTES
        assert wire_size(0, True) == (
            IV_BYTES + PAD_BYTES + METADATA_BYTES + MAC_BYTES
        )


class TestEngineSurface:
    def test_describe_levels_empty(self):
        from tests.conftest import StorageHarness

        harness = StorageHarness().boot()
        assert harness.engine.describe_levels() == {}
        assert harness.engine.table_count() == 0

    def test_current_seq_tracks_next_seq(self):
        from tests.conftest import StorageHarness

        harness = StorageHarness().boot()
        assert harness.engine.current_seq() == 0
        harness.engine.next_seq()
        assert harness.engine.current_seq() == 1
