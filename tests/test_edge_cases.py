"""Edge cases across modules: empty payloads, boundary sizes, odd inputs."""

import pytest

from repro.config import ClusterConfig, DS_ROCKSDB, TREATY_ENC
from repro.crypto import Aead, KeyRing
from repro.errors import StorageError, TransactionError
from repro.storage import SecureLog, TOMBSTONE, build_sstable
from repro.txn import TxnBuffer, TxnStatus

from tests.conftest import ROOT_KEY, StorageHarness, TxnHarness


class TestEmptyAndBoundary:
    def test_empty_value_roundtrip(self):
        harness = TxnHarness().boot()
        harness.txn_put([(b"empty", b"")])
        assert harness.get(b"empty") == b""

    def test_empty_value_distinct_from_missing(self):
        harness = TxnHarness().boot()
        harness.txn_put([(b"empty", b"")])
        assert harness.get(b"empty") == b""
        assert harness.get(b"missing") is None

    def test_single_byte_key(self):
        harness = TxnHarness().boot()
        harness.txn_put([(b"k", b"v")])
        assert harness.get(b"k") == b"v"

    def test_large_value_crosses_block_boundaries(self):
        config = ClusterConfig(block_bytes=512)
        harness = StorageHarness(config=config).boot()
        big = b"X" * 20_000
        harness.put_all([(b"big", big)])
        harness.run(harness.engine.flush())
        assert harness.get(b"big") == big

    def test_binary_keys_with_separator_bytes(self):
        harness = TxnHarness().boot()
        weird = bytes(range(1, 32)) + b"\x00\xff/"
        harness.txn_put([(weird, b"v")])
        assert harness.get(weird) == b"v"

    def test_key_ordering_with_prefixes(self):
        harness = StorageHarness().boot()
        harness.put_all([(b"a", b"1"), (b"a\x00", b"2"), (b"a0", b"3")])
        rows = harness.run(harness.engine.scan(b"a", b"b"))
        assert [k for k, _ in rows] == [b"a", b"a\x00", b"a0"]

    def test_secure_log_empty_payload_entry(self):
        harness = StorageHarness()
        log = SecureLog(harness.runtime, harness.disk, "node0/e.log",
                        KeyRing(ROOT_KEY))

        def body():
            yield from log.append(b"")
            return (yield from log.replay())

        assert harness.run(body()) == [(1, b"")]

    def test_log_entry_of_exactly_one_block(self):
        aead = Aead(bytes(32))
        plaintext = b"z" * 32  # one keystream block exactly
        assert aead.open(aead.seal(b"\x01" * 12, plaintext)) == plaintext


class TestTransactionStateMachine:
    def test_commit_twice_rejected(self):
        harness = TxnHarness().boot()

        def body():
            txn = harness.manager.begin_pessimistic()
            yield from txn.put(b"k", b"v")
            yield from txn.commit()
            yield from txn.commit()

        with pytest.raises(TransactionError):
            harness.run(body())

    def test_rollback_after_commit_is_noop(self):
        harness = TxnHarness().boot()

        def body():
            txn = harness.manager.begin_pessimistic()
            yield from txn.put(b"k", b"v")
            yield from txn.commit()
            yield from txn.rollback()  # silently ignored
            return txn.status

        assert harness.run(body()) == TxnStatus.COMMITTED

    def test_prepare_on_committed_rejected(self):
        harness = TxnHarness().boot()

        def body():
            txn = harness.manager.begin_pessimistic()
            yield from txn.put(b"k", b"v")
            yield from txn.commit()
            yield from txn.prepare()

        with pytest.raises(TransactionError):
            harness.run(body())

    def test_put_none_value_rejected(self):
        harness = TxnHarness().boot()

        def body():
            txn = harness.manager.begin_pessimistic()
            yield from txn.put(b"k", None)

        with pytest.raises(ValueError):
            harness.run(body())

    def test_overwrite_in_buffer_keeps_last(self):
        harness = TxnHarness().boot()

        def body():
            txn = harness.manager.begin_pessimistic()
            for i in range(5):
                yield from txn.put(b"k", b"v%d" % i)
            yield from txn.commit()

        harness.run(body())
        assert harness.get(b"k") == b"v4"


class TestTxnBuffer:
    def test_contiguous_growth_accounting(self):
        from repro.memory.regions import MemoryRegion

        region = MemoryRegion("enclave")
        buffer = TxnBuffer(region)
        buffer.record(b"key1", b"x" * 100)
        buffer.record(b"key2", b"y" * 50)
        assert buffer.byte_size == 4 + 100 + 4 + 50
        assert region.used == buffer.byte_size
        buffer.release()
        assert region.used == 0
        assert len(buffer) == 0

    def test_delete_then_write_order(self):
        from repro.memory.regions import MemoryRegion

        buffer = TxnBuffer(MemoryRegion("enclave"))
        buffer.record(b"k", b"v1")
        buffer.record(b"k", None)
        buffer.record(b"k", b"v2")
        assert buffer.get(b"k") == (True, b"v2")
        assert buffer.items() == [(b"k", b"v2")]


class TestCompactionCascade:
    def test_multi_level_compaction_preserves_everything(self):
        config = ClusterConfig(memtable_limit_bytes=2048, block_bytes=256)
        harness = StorageHarness(profile=DS_ROCKSDB, config=config).boot()
        expected = {}
        for wave in range(30):
            pairs = [
                (b"key-%04d" % ((wave * 13 + i) % 120), b"w%d-%d" % (wave, i))
                for i in range(6)
            ]
            for key, value in pairs:
                expected[key] = value
            harness.put_all(pairs)
            harness.run(harness.engine.flush())
        assert harness.engine.compaction_count >= 2
        levels = harness.engine.describe_levels()
        assert max(levels) >= 1
        for key, value in expected.items():
            assert harness.get(key) == value
        # Scans agree with the model too.
        rows = dict(harness.run(harness.engine.scan(b"key-", b"key-\xff")))
        assert rows == expected

    def test_empty_sstable_build_rejected(self):
        harness = StorageHarness().boot()
        with pytest.raises(StorageError):
            harness.run(
                build_sstable(
                    harness.runtime, harness.disk, harness.keyring,
                    "node0/x.sst", 0, [], 4096,
                )
            )


class TestTombstoneEdgeCases:
    def test_delete_missing_key_commits(self):
        harness = TxnHarness().boot()
        harness.txn_put([(b"ghost", None)])
        assert harness.get(b"ghost") is None

    def test_delete_then_reinsert_across_flushes(self):
        config = ClusterConfig(memtable_limit_bytes=2048)
        harness = StorageHarness(config=config).boot()
        harness.put_all([(b"cycle", b"v1")])
        harness.run(harness.engine.flush())
        harness.put_all([(b"cycle", None)])
        harness.run(harness.engine.flush())
        harness.put_all([(b"cycle", b"v2")])
        harness.run(harness.engine.flush())
        assert harness.get(b"cycle") == b"v2"
        harness.sim.run()
        recovered = harness.reopen()
        assert recovered.get(b"cycle") == b"v2"
