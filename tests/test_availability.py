"""Availability semantics (§VI): faults affect liveness, never safety."""

import pytest

from repro.config import TREATY_FULL
from repro.core import TreatyCluster
from repro.errors import AttestationError


class TestCasSinglePointOfFailure:
    def test_crashed_node_cannot_recover_without_cas(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        cluster.cas.fail()
        cluster.crash_node(1)
        with pytest.raises(AttestationError, match="CAS unavailable"):
            cluster.run(cluster.recover_node(1))

    def test_recovery_succeeds_once_cas_restored(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        session = cluster.session(cluster.client_machine())

        def write():
            txn = session.begin()
            yield from txn.put(b"cas-key", b"v")
            yield from txn.commit()

        cluster.run(write())
        cluster.cas.fail()
        cluster.crash_node(1)
        with pytest.raises(AttestationError):
            cluster.run(cluster.recover_node(1))
        cluster.cas.restore()
        cluster.run(cluster.recover_node(1))
        assert cluster.nodes[1].is_up

    def test_running_nodes_unaffected_by_cas_failure(self):
        """CAS is only needed at (re)attestation, not in steady state."""
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        cluster.cas.fail()
        session = cluster.session(cluster.client_machine())

        def write():
            txn = session.begin()
            yield from txn.put(b"steady", b"state")
            yield from txn.commit()
            check = session.begin()
            value = yield from check.get(b"steady")
            yield from check.commit()
            return value

        assert cluster.run(write()) == b"state"


class TestCounterQuorumLoss:
    def test_stabilization_stalls_without_quorum_then_resumes(self):
        """Losing the quorum blocks commit acknowledgements (availability),
        but never acknowledges unprotected state (safety)."""
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        sim = cluster.sim
        # Kill two of three nodes: node0's counter group loses quorum.
        cluster.crash_node(1)
        cluster.crash_node(2)

        outcome = {}

        def stabilize():
            yield from cluster.nodes[0].counter_client.stabilize("q-log", 1)
            outcome["stable_at"] = sim.now

        sim.process(stabilize())
        sim.run(until=sim.now + 1.0)
        assert "stable_at" not in outcome  # still retrying, not acked

        # Recover one node: quorum (2 of 3) is reachable again.
        cluster.run(cluster.recover_node(1))
        sim.run(until=sim.now + 5.0)
        assert "stable_at" in outcome

    def test_reads_of_other_nodes_survive_one_crash(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        session = cluster.session(cluster.client_machine(), coordinator=0)
        key = next(
            b"av-%d" % i for i in range(100)
            if cluster.partitioner(b"av-%d" % i) == 0
        )

        def write():
            txn = session.begin()
            yield from txn.put(key, b"v")
            yield from txn.commit()

        cluster.run(write())
        cluster.crash_node(2)  # unrelated shard

        def read():
            txn = session.begin()
            value = yield from txn.get(key)
            yield from txn.commit()
            return value

        assert cluster.run(read()) == b"v"


class TestRecoverWithoutExplicitCrash:
    def test_recover_on_running_node_restarts_it(self):
        """recover() on a live node implies a restart (no NIC clash)."""
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        session = cluster.session(cluster.client_machine())

        def write():
            txn = session.begin()
            yield from txn.put(b"restart-key", b"v")
            yield from txn.commit()

        cluster.run(write())
        cluster.sim.run(until=cluster.sim.now + 0.1)
        cluster.run(cluster.recover_node(0))  # no crash_node first
        assert cluster.nodes[0].is_up
