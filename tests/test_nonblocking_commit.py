"""Liveness-under-coordinator-death battery for non-blocking commit.

Treaty's baseline 2PC blocks when the coordinator dies: prepared
participants hold their locks until the coordinator's enclave restarts
and replays its Clog.  With ``commit_replication`` (default on) the
coordinator seals its commit/abort decision into the piggybacked group
round and waits for a quorum of attested participants to hold the
decision slot *before* the client is acknowledged — so any surviving
participant whose decision watchdog fires can assume the completer
role and drive the group to its outcome without the coordinator ever
coming back.

This battery kills the coordinator at every crash point of the shared
fault vocabulary (``repro.mc.faults.SCENARIOS``) and **never restarts
it**, then asserts on the survivors:

* any transaction whose commit decision reached a surviving slot is
  fully committed on every surviving shard (the completer spreads and
  applies it);
* any transaction with no surviving commit slot is fully absent
  (presumed abort via the completer's abort quorum) — all-or-nothing,
  never a partial write;
* a transaction whose ``commit()`` returned success is fully visible
  (durability: the quorum wait precedes the client ack);
* the strict I1–I5 monitor stays green and the quiescence sweep passes
  on the survivors.

Plus two pins: a healthy run performs **zero** completer takeovers
(the watchdog must never fire under a live coordinator), and a
same-instant completer race between two survivors resolves to exactly
one set of apply effects per shard (the active-entry pop is the
exactly-once guard).
"""

import os

import pytest

from repro.config import ClusterConfig, TREATY_FULL
from repro.core import TreatyCluster
from repro.errors import TransactionAborted
from repro.mc.faults import SCENARIOS, CrashInjector
from repro.sim.rng import SeededRng

COORDINATOR = 0


def _config(seed, backend, piggyback):
    return ClusterConfig(
        seed=seed,
        tracing=True,
        monitor=True,
        twopc_piggyback=piggyback,
        rollback_backend=backend,
        counter_shards=1 if backend == "counter-sync" else 2,
        # Tight watchdog so takeovers fire well inside the settle window.
        decision_timeout_s=1.5,
    )


def _distinct_keys(cluster, node_index, count, tag):
    keys, i = [], 0
    while len(keys) < count:
        key = b"%s-%05d" % (tag, i)
        if cluster.partitioner(key) == node_index:
            keys.append(key)
        i += 1
    return keys


def _coordinator_txns(cluster, count):
    """``count`` distributed transactions, all coordinated by the
    designated victim, each writing one key per shard (forced 2PC)."""
    txns = []
    for t in range(count):
        tag = b"nb%02d" % t
        pairs = [
            (_distinct_keys(cluster, i, 1, tag)[0], b"val-" + tag)
            for i in range(cluster.num_nodes)
        ]
        txns.append((COORDINATOR, pairs))
    return txns


def _read_survivor(cluster, key, dead):
    """Read ``key`` on its owning shard; ``None`` result means absent,
    ``dead``-owned keys are unservable and return the sentinel."""
    owner = cluster.partitioner(key)
    if owner == dead:
        return _DEAD

    def body():
        txn = cluster.nodes[owner].coordinator.begin()
        value = yield from txn.get(key)
        yield from txn.commit()
        return value

    return cluster.run(body(), name="nb-read")


_DEAD = object()


def _drive_workload(cluster, txns, outcomes, give_up=4.0):
    sim = cluster.sim

    def drive(index, coord, pairs, delay):
        yield sim.timeout(delay)
        txn = cluster.nodes[coord].coordinator.begin()
        put_done = [False]

        def put_phase():
            try:
                for key, value in pairs:
                    yield from txn.put(key, value)
            except TransactionAborted:
                outcomes[index] = "aborted"
                return
            put_done[0] = True

        puts = sim.process(put_phase(), name="nb-puts-%d" % index)
        yield sim.any_of([puts, sim.timeout(give_up)])
        if outcomes[index] == "aborted":
            return
        if not put_done[0]:
            outcomes[index] = "stuck"
            sim.process(txn.rollback(), name="nb-giveup-%d" % index)
            return
        try:
            yield from txn.commit()
        except TransactionAborted:
            outcomes[index] = "aborted"
            return
        outcomes[index] = "committed"

    for index, (coord, pairs) in enumerate(txns):
        sim.process(
            drive(index, coord, pairs, delay=index * 1e-3),
            name="nb-txn-%d" % index,
        )


def _surviving_commit_slots(cluster, txn_hex, dead):
    """Surviving nodes that recorded this transaction's COMMIT decision
    (``twopc/decision_replicated`` with kind=commit), from the trace."""
    nodes = set()
    for rec in cluster.obs.records():
        if rec["type"] != "event" or rec.get("cat") != "twopc":
            continue
        if rec.get("name") != "decision_replicated":
            continue
        if rec.get("txn") != txn_hex:
            continue
        if rec.get("args", {}).get("kind") != "commit":
            continue
        node = int(rec["node"][4:])
        if node != dead:
            nodes.add(node)
    return nodes


def _takeovers(cluster, exclude=()):
    return sum(
        node.participant.takeovers
        for i, node in enumerate(cluster.nodes) if i not in exclude
    )


# -- the sweep: coordinator dies at every crash point, stays dead -------------


def _sweep_seeds():
    spec = os.environ.get("NONBLOCKING_SWEEP_SEEDS", "2")
    return list(range(int(spec)))


@pytest.mark.parametrize("seed", _sweep_seeds())
@pytest.mark.parametrize("scenario", range(len(SCENARIOS)))
def test_coordinator_death_converges(scenario, seed):
    point, piggyback = SCENARIOS[scenario]
    rng = SeededRng(seed * len(SCENARIOS) + scenario, "nonblocking")
    occurrence = rng.randint(1, 3)
    # counter/promise only fires under the coverage backends; everything
    # else sweeps the sync backend (the conformance matrix covers the
    # full backend cross product).
    backend = "counter-async" if point == ("counter", "promise") \
        else "counter-sync"

    cluster = TreatyCluster(
        profile=TREATY_FULL, config=_config(seed, backend, piggyback)
    ).start()
    sim = cluster.sim
    txns = _coordinator_txns(cluster, count=4)
    outcomes = ["pending"] * len(txns)

    # victim= pins the kill to the coordinator no matter which node
    # emitted the matched event; permanent: nobody ever recovers it.
    injector = CrashInjector(
        cluster, point, occurrence, 0, victim=COORDINATOR, permanent=True,
    ).arm()
    _drive_workload(cluster, txns, outcomes)
    # Workload window (past the 2 s prepare-vote timeout), then a settle
    # window for decision watchdogs + completer rounds on the survivors.
    sim.run(until=sim.now + 6.0)
    sim.run(until=sim.now + 6.0)

    dead = injector.crashed
    for index, (coord, pairs) in enumerate(txns):
        txn_hex = None
        values = {}
        for key, expected in pairs:
            value = _read_survivor(cluster, key, dead)
            if value is _DEAD:
                continue
            values[key] = (value, expected)
        present = [value == expected for value, expected in values.values()]
        # All-or-nothing on the survivors, whatever happened.
        assert all(present) or not any(present), (
            "txn %d (%s) applied on some surviving shards only: %s"
            % (index, outcomes[index], values)
        )
        if outcomes[index] == "committed":
            # Durability: the ack implies decision quorum, which implies
            # the completers can only converge on commit.
            assert all(present), (
                "txn %d acked committed but writes are missing on "
                "survivors: %s" % (index, values)
            )
        if dead is not None:
            # A commit decision that reached any surviving slot must win:
            # the completer protocol prefers a genuine COMMIT record over
            # its synthetic abort proposal.
            txn_hex = _txn_hex_for(cluster, index)
            if txn_hex and _surviving_commit_slots(cluster, txn_hex, dead):
                assert all(present), (
                    "txn %d reached a surviving commit slot but is not "
                    "visible everywhere: %s" % (index, values)
                )

    monitor = cluster.obs.monitor
    monitor.check_quiescent(now=sim.now)
    assert monitor.green, monitor.violations

    if dead is not None:
        # Survivors' lock tables and participant tables are quiescent.
        for i, node in enumerate(cluster.nodes):
            if i == dead:
                continue
            held = {
                txn_id: keys
                for txn_id, keys in node.manager.locks._held.items() if keys
            }
            assert not held, (
                "node%d lock table not quiescent: %s" % (i, held)
            )
            assert not node.participant.active, (
                "node%d still has in-doubt participant txns" % i
            )


def _txn_hex_for(cluster, index):
    """Map workload index -> txn hex via the prepare spans (the N-th
    coordinator-side prepare belongs to the N-th driven transaction —
    all transactions share one coordinator, which serializes begins)."""
    hexes = []
    for rec in cluster.obs.records():
        if rec["type"] != "span" or rec.get("cat") != "twopc":
            continue
        if rec.get("name") != "prepare":
            continue
        txn = rec.get("txn")
        if txn and txn not in hexes:
            hexes.append(txn)
    return hexes[index] if index < len(hexes) else None


# -- pin: a live coordinator never provokes a takeover ------------------------


class TestNoSpuriousTakeover:
    def test_healthy_run_has_zero_takeovers(self):
        """The decision watchdog must be disarmed by the normal commit
        path: a surviving coordinator's transactions complete without a
        single completer takeover (or decision query round)."""
        cluster = TreatyCluster(
            profile=TREATY_FULL,
            config=_config(7, "counter-sync", piggyback=True),
        ).start()
        txns = _coordinator_txns(cluster, count=4)
        outcomes = ["pending"] * len(txns)
        _drive_workload(cluster, txns, outcomes)
        # Well past decision_timeout_s (1.5) plus jitter: any armed
        # watchdog that survives its transaction would fire here.
        cluster.sim.run(until=cluster.sim.now + 8.0)

        assert outcomes == ["committed"] * len(txns)
        assert _takeovers(cluster) == 0
        assert sum(
            node.runtime.metrics.counter("completer.takeover").value
            for node in cluster.nodes
        ) == 0
        takeover_events = [
            rec for rec in cluster.obs.records()
            if rec["type"] == "event"
            and (rec.get("cat"), rec.get("name"))
            == ("twopc", "completer_takeover")
        ]
        assert not takeover_events


# -- completer-driven client redirect -----------------------------------------


class TestClientRedirect:
    def test_client_learns_commit_from_survivors(self):
        """A client whose coordinator dies after the decision quorum
        (ack never sent) must not report a false abort: it polls the
        survivors' applied records (``_OP_STATUS``) and returns success
        once a completer has driven the commit home."""
        cluster = TreatyCluster(
            profile=TREATY_FULL,
            config=_config(13, "counter-sync", piggyback=True),
        ).start()
        sim = cluster.sim
        machine = cluster.client_machine()
        session = cluster.session(machine, coordinator=COORDINATOR)
        pairs = [
            (_distinct_keys(cluster, i, 1, b"redir")[0], b"redir-val")
            for i in range(cluster.num_nodes)
        ]

        # Kill the coordinator the instant it counts its decision
        # replication quorum: survivors hold the commit slot, but the
        # client's COMMIT reply is never sent.
        injector = CrashInjector(
            cluster, ("twopc", "decision-quorum"), 1, 0,
            victim=COORDINATOR, permanent=True,
        ).arm()
        result = {}

        def body():
            txn = session.begin()
            for key, value in pairs:
                yield from txn.put(key, value)
            try:
                yield from txn.commit()
                result["outcome"] = "committed"
            except TransactionAborted as exc:
                result["outcome"] = "aborted: %s" % exc

        sim.process(body(), name="redirect-client")
        sim.run(until=sim.now + 12.0)

        assert injector.crashed == COORDINATOR
        assert result.get("outcome") == "committed"
        assert session.redirected == 1
        assert session.committed == 1 and session.aborted == 0
        # The learned outcome is real: writes visible on every survivor.
        for key, expected in pairs:
            value = _read_survivor(cluster, key, COORDINATOR)
            if value is not _DEAD:
                assert value == expected
        monitor = cluster.obs.monitor
        monitor.check_quiescent(now=sim.now)
        assert monitor.green, monitor.violations

    def test_unknown_outcome_still_aborts(self):
        """If the coordinator dies before any decision exists, the poll
        drains UNKNOWN until its deadline and the client sees the abort
        (presumed abort: the completers roll the transaction back)."""
        cluster = TreatyCluster(
            profile=TREATY_FULL,
            config=_config(17, "counter-sync", piggyback=True),
        ).start()
        sim = cluster.sim
        machine = cluster.client_machine()
        session = cluster.session(machine, coordinator=COORDINATOR)
        pairs = [
            (_distinct_keys(cluster, i, 1, b"redab")[0], b"redab-val")
            for i in range(cluster.num_nodes)
        ]

        # Crash on the first prepare targeting: no decision was ever
        # formed, so no survivor can report COMMITTED.
        injector = CrashInjector(
            cluster, ("twopc", "prepare_target"), 1, 0,
            victim=COORDINATOR, permanent=True,
        ).arm()
        result = {}

        def body():
            txn = session.begin()
            try:
                for key, value in pairs:
                    yield from txn.put(key, value)
                yield from txn.commit()
                result["outcome"] = "committed"
            except TransactionAborted:
                result["outcome"] = "aborted"

        sim.process(body(), name="redirect-client-abort")
        sim.run(until=sim.now + 16.0)

        assert injector.crashed == COORDINATOR
        assert result.get("outcome") == "aborted"
        assert session.redirected == 0
        # No partial write survives anywhere.
        for key, _expected in pairs:
            value = _read_survivor(cluster, key, COORDINATOR)
            if value is not _DEAD:
                assert value is None


# -- pin: same-instant completer race is exactly-once -------------------------


class TestCompleterRace:
    def test_simultaneous_takeovers_apply_once(self):
        """Both survivors time out in the same instant and race to
        complete the same in-doubt transaction.  Both count a takeover,
        but the apply/release effects happen exactly once per shard —
        the participant's active-entry pop is the exactly-once guard,
        and duplicate TXN_COMMIT drives are absorbed as ACKs."""
        cluster = TreatyCluster(
            profile=TREATY_FULL,
            # Long watchdog: the race below fires manually, before any
            # organic timeout could interleave a third completer.
            config=ClusterConfig(
                seed=11, tracing=True, monitor=True,
                decision_timeout_s=30.0,
            ),
        ).start()
        sim = cluster.sim
        txns = _coordinator_txns(cluster, count=1)
        outcomes = ["pending"]

        # Kill the coordinator right after it counts its first decision
        # replication ack: both survivors hold the commit slot, nobody
        # ever received TXN_COMMIT.
        injector = CrashInjector(
            cluster, ("twopc", "decision-quorum"), 1, 0,
            victim=COORDINATOR, permanent=True,
        ).arm()
        _drive_workload(cluster, txns, outcomes)
        sim.run(until=sim.now + 4.0)
        assert injector.crashed == COORDINATOR

        survivors = [
            i for i in range(cluster.num_nodes) if i != COORDINATOR
        ]
        in_doubt = set.intersection(*(
            set(cluster.nodes[i].participant.active) for i in survivors
        ))
        assert in_doubt, "no shared in-doubt transaction to race on"
        gid_bytes = sorted(in_doubt)[0]

        # The race: both completers enter at the same sim instant.
        for i in survivors:
            sim.process(
                cluster.nodes[i].participant.complete(gid_bytes),
                name="race-completer-%d" % i,
            )
        sim.run(until=sim.now + 4.0)

        assert _takeovers(cluster, exclude=(COORDINATOR,)) == 2
        # Exactly one application of the commit per surviving shard.
        applies = {}
        for rec in cluster.obs.records():
            if rec["type"] != "event" or rec.get("cat") != "twopc":
                continue
            if rec.get("name") not in ("commit_apply", "abort_apply"):
                continue
            if rec.get("txn") != gid_bytes.hex():
                continue
            applies.setdefault(rec["node"], []).append(rec["name"])
        for i in survivors:
            assert applies.get("node%d" % i) == ["commit_apply"], (
                "node%d applies: %s" % (i, applies.get("node%d" % i))
            )

        # Both halves visible, locks free, monitor green.
        for key, expected in txns[0][1]:
            value = _read_survivor(cluster, key, COORDINATOR)
            if value is not _DEAD:
                assert value == expected
        for i in survivors:
            node = cluster.nodes[i]
            assert not node.participant.active
            assert not any(
                keys for keys in node.manager.locks._held.values()
            )
        monitor = cluster.obs.monitor
        monitor.check_quiescent(now=sim.now)
        assert monitor.green, monitor.violations
