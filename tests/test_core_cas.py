"""Tests for trust establishment: CAS, LAS, attestation chain."""

import pytest

from repro.config import ClusterConfig, TREATY_FULL
from repro.core import TreatyCluster
from repro.core.cas import (
    ConfigurationService,
    LocalAttestationService,
    TREATY_MEASUREMENT,
)
from repro.errors import AttestationError
from repro.tee import NodeRuntime, Quote, Report, measure
from repro.tee.attestation import IntelAttestationService, PlatformQuotingEnclave
from repro.sim import Simulator


def test_cluster_bootstrap_attests_every_node():
    cluster = TreatyCluster(profile=TREATY_FULL).start()
    assert cluster.cas.cas_attested
    assert cluster.cas.attested_instances == len(cluster.nodes)
    for node in cluster.nodes:
        assert node.is_up


def test_ias_contacted_once_per_platform_not_per_recovery():
    cluster = TreatyCluster(profile=TREATY_FULL).start()
    after_bootstrap = cluster.ias.verifications  # CAS + one LAS per node

    def cycle():
        cluster.crash_node(1)
        yield from cluster.recover_node(1)

    cluster.run(cycle())
    # Recovery re-attested via the LAS only: no extra IAS round trips.
    assert cluster.ias.verifications == after_bootstrap
    assert after_bootstrap == 1 + len(cluster.nodes)


def test_all_nodes_derive_same_keyring():
    cluster = TreatyCluster(profile=TREATY_FULL).start()
    keys = {node.keyring.subkey("network") for node in cluster.nodes}
    assert len(keys) == 1


def test_wrong_measurement_rejected():
    cluster = TreatyCluster(profile=TREATY_FULL).start()
    node = cluster.nodes[0]

    def body():
        quote = yield from node.las.quote_local_enclave(
            measure("malicious-binary"), b"evil"
        )
        yield from cluster.cas.attest_instance(node.name, quote)

    with pytest.raises(AttestationError):
        cluster.run(body())


def test_unregistered_node_rejected():
    cluster = TreatyCluster(profile=TREATY_FULL).start()
    rogue_las = LocalAttestationService(
        cluster._cas_runtime, "rogue-node", b"attacker-seed-material"
    )

    def body():
        quote = yield from rogue_las.quote_local_enclave(
            TREATY_MEASUREMENT, b"rogue"
        )
        yield from cluster.cas.attest_instance("rogue-node", quote)

    with pytest.raises(AttestationError):
        cluster.run(body())


def test_forged_las_signature_rejected():
    """A LAS keypair not registered through IAS cannot attest instances."""
    cluster = TreatyCluster(profile=TREATY_FULL).start()
    forged = LocalAttestationService(
        cluster._cas_runtime, "node0", b"attacker-forged-key"
    )

    def body():
        quote = yield from forged.quote_local_enclave(TREATY_MEASUREMENT, b"x")
        yield from cluster.cas.attest_instance("node0", quote)

    from repro.errors import SecurityError

    with pytest.raises(SecurityError):
        cluster.run(body())


def test_las_registration_requires_cas_attested():
    sim = Simulator()
    from repro.config import ClusterConfig

    config = ClusterConfig()
    runtime = NodeRuntime(sim, TREATY_FULL, config)
    ias = IntelAttestationService(sim, config.costs, b"manufacturer-seed")
    cas = ConfigurationService(runtime, ias, bytes(32), {})
    las = LocalAttestationService(runtime, "node0", b"manufacturer-seed")
    qe = PlatformQuotingEnclave("node0", b"manufacturer-seed")

    def body():
        yield from cas.register_las(las, qe)

    with pytest.raises(AttestationError):
        sim.run_process(body())


def test_client_authentication():
    cluster = TreatyCluster(profile=TREATY_FULL).start()

    def good():
        ok = yield from cluster.cas.authenticate_client("c1", b"valid-secret")
        return ok

    assert cluster.run(good())
    assert cluster.cas.is_authenticated("c1")

    def bad():
        yield from cluster.cas.authenticate_client("c2", b"wrong")

    with pytest.raises(AttestationError):
        cluster.run(bad())
    assert not cluster.cas.is_authenticated("c2")


def test_ias_bootstrap_is_slow_las_quotes_are_fast():
    cluster = TreatyCluster(profile=TREATY_FULL)
    start = cluster.sim.now
    cluster.start()
    bootstrap_time = cluster.sim.now - start
    # 4 IAS round trips at 0.35 s dominate the bootstrap.
    assert bootstrap_time > 1.0

    node = cluster.nodes[0]
    quote_start = cluster.sim.now

    def body():
        yield from node.las.quote_local_enclave(TREATY_MEASUREMENT, b"fast")

    cluster.run(body())
    assert cluster.sim.now - quote_start < 0.01
