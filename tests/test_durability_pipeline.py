"""The unified durability pipeline: vectored counter rounds,
stabilization-aware group commit, and the I5 liveness monitor."""

import pytest

from repro.config import ClusterConfig, TREATY_FULL
from repro.core import (
    StableCounterResolver,
    TreatyCluster,
    crash_and_recover,
    rollback_attack,
    snapshot_node_disk,
)
from repro.errors import FreshnessError
from repro.obs import InvariantMonitor, MonitorViolation, Tracer
from repro.sim import Simulator


def make_cluster(**overrides):
    config = ClusterConfig(**overrides)
    return TreatyCluster(profile=TREATY_FULL, config=config).start()


def local_keys(cluster, node_index, count=4, tag=b"dp"):
    keys, i = [], 0
    while len(keys) < count:
        key = b"%s-%05d" % (tag, i)
        if cluster.partitioner(key) == node_index:
            keys.append(key)
        i += 1
    return keys


# -- vectored counter rounds ---------------------------------------------------


class TestVectoredRounds:
    def test_concurrent_logs_share_one_round(self):
        """WAL- and Clog-style targets on different logs coalesce into a
        single echo-broadcast execution."""
        cluster = make_cluster()
        client = cluster.nodes[0].counter_client
        before = client.rounds_executed

        def waiter(log, value):
            yield from client.stabilize(log, value)

        def body():
            events = [
                cluster.sim.process(waiter("vec-log-a", 5), name="wa"),
                cluster.sim.process(waiter("vec-log-b", 3), name="wb"),
            ]
            yield cluster.sim.all_of(events)

        cluster.run(body())
        assert client.rounds_executed - before == 1
        assert client.stable_value("vec-log-a") == 5
        assert client.stable_value("vec-log-b") == 3

    def test_per_log_baseline_runs_one_round_per_log(self):
        cluster = make_cluster(counter_vectoring=False)
        client = cluster.nodes[0].counter_client
        before = client.rounds_executed

        def waiter(log, value):
            yield from client.stabilize(log, value)

        def body():
            events = [
                cluster.sim.process(waiter("leg-log-a", 5), name="wa"),
                cluster.sim.process(waiter("leg-log-b", 3), name="wb"),
            ]
            yield cluster.sim.all_of(events)

        cluster.run(body())
        assert client.rounds_executed - before == 2

    def test_stabilize_many_is_one_request(self):
        cluster = make_cluster()
        client = cluster.nodes[0].counter_client
        before = client.rounds_executed

        def body():
            yield from client.stabilize_many(
                [("many-log-a", 4), ("many-log-b", 9), ("many-log-c", 1)]
            )

        cluster.run(body())
        assert client.rounds_executed - before == 1
        for log, value in (("many-log-a", 4), ("many-log-b", 9),
                           ("many-log-c", 1)):
            assert client.stable_value(log) == value

    def test_rounds_per_txn_drop_at_least_2x_vs_per_log(self):
        """Acceptance: under a concurrent workload the vectored pipeline
        executes >=2x fewer counter rounds per committed transaction than
        the per-log baseline (same seed, same workload)."""
        from repro.bench.harness import durability_smoke

        per_txn = {}
        for vectoring in (True, False):
            metrics = durability_smoke(vectoring=vectoring)
            durability = metrics.extra_info["obs"]["durability"]
            assert metrics.committed > 50
            per_txn[vectoring] = durability["rounds_per_committed_txn"]
        assert per_txn[False] / per_txn[True] >= 2.0


# -- vectored recovery reads ---------------------------------------------------


class TestVectoredRecovery:
    def test_resolver_prefetches_many_logs_in_one_read(self):
        cluster = make_cluster()
        client = cluster.nodes[0].counter_client

        def body():
            yield from client.stabilize_many([("rr-log-a", 7), ("rr-log-b", 2)])
            resolver = StableCounterResolver(cluster.nodes[1].counter_client)
            yield from resolver.prefetch(["rr-log-a", "rr-log-b", "rr-log-c"])
            a = yield from resolver("rr-log-a")
            b = yield from resolver("rr-log-b")
            c = yield from resolver("rr-log-c")
            return resolver.reads, (a, b, c)

        reads, values = cluster.run(body())
        assert reads == 1  # the cached calls issue no further rounds
        assert values == (7, 2, 0)

    def test_committed_data_survives_crash_with_vectored_reads(self):
        cluster = make_cluster()
        keys = local_keys(cluster, 1)

        def commit():
            txn = cluster.nodes[1].coordinator.begin()
            for key in keys:
                yield from txn.put(key, b"v-" + key)
            yield from txn.commit()

        cluster.run(commit())
        cluster.run(crash_and_recover(cluster, 1))

        def read(key):
            txn = cluster.nodes[1].coordinator.begin()
            value = yield from txn.get(key)
            yield from txn.commit()
            return value

        for key in keys:
            assert cluster.run(read(key)) == b"v-" + key

    def test_rollback_attack_still_detected(self):
        cluster = make_cluster()
        keys = local_keys(cluster, 1, tag=b"ra")

        def commit(key, value):
            txn = cluster.nodes[1].coordinator.begin()
            yield from txn.put(key, value)
            yield from txn.commit()

        cluster.run(commit(keys[0], b"old"))
        stale = snapshot_node_disk(cluster, 1)
        cluster.run(commit(keys[1], b"new"))
        with pytest.raises(FreshnessError):
            cluster.run(rollback_attack(cluster, 1, stale))


# -- stabilization-aware group commit ------------------------------------------


class TestGroupCommitWindow:
    def _staggered_submits(self, cluster, count=6, gap=2e-5):
        node = cluster.nodes[0]
        group = node.manager.group

        def submitter(i):
            yield cluster.sim.timeout(i * gap)
            yield from group.submit(
                b"gcw-%02d" % i, [(b"gcw-key-%02d" % i, b"v")]
            )

        def body():
            events = [
                cluster.sim.process(submitter(i), name="s%d" % i)
                for i in range(count)
            ]
            yield cluster.sim.all_of(events)

        cluster.run(body())
        return group

    def test_fixed_window_collects_staggered_burst_into_one_group(self):
        cluster = make_cluster(group_commit_window=2e-4)
        group = self._staggered_submits(cluster)
        assert group.groups_formed == 1
        assert group.committed == 6

    def test_zero_window_forms_more_groups(self):
        cluster = make_cluster(group_commit_window=0.0)
        group = self._staggered_submits(cluster)
        assert group.groups_formed >= 2
        assert group.committed == 6

    def test_adaptive_window_tracks_arrival_gap(self):
        cluster = make_cluster()  # group_commit_window=None -> adaptive
        group = cluster.nodes[0].manager.group
        assert group.window is None
        # No arrival history: an idle node drains immediately.
        assert group.window_delay() == 0.0
        group._gap_ewma = 5e-5
        assert group.window_delay() == pytest.approx(2e-4)
        # The wait is bounded by the configured cap...
        group._gap_ewma = 1.0
        assert group.window_delay() == cluster.config.group_commit_window_cap
        # ...and skipped entirely once the queue is already full.
        group._queue = [None] * group.max_group
        assert group.window_delay() == 0.0

    def test_batch_shares_one_stabilization_event(self):
        cluster = make_cluster(group_commit_window=2e-4)
        node = cluster.nodes[0]
        group = node.manager.group
        client = node.counter_client
        before = client.rounds_executed
        results = []

        def submitter(i):
            result = yield from group.submit(
                b"shr-%02d" % i, [(b"shr-key-%02d" % i, b"v")],
                wait_stable=True,
            )
            results.append(result)

        def body():
            events = [
                cluster.sim.process(submitter(i), name="s%d" % i)
                for i in range(4)
            ]
            yield cluster.sim.all_of(events)
            # Everyone shares the batch's stabilization event; waiting on
            # it yields once the one counter round completes.
            yield results[0][2]

        cluster.run(body())
        assert group.groups_formed == 1
        events = {id(stable_event) for _, _, stable_event in results}
        assert len(events) == 1  # one shared event for the whole batch
        counters = [counter for counter, _, _ in results]
        assert client.stable_value(results[0][1]) >= max(counters)
        assert client.rounds_executed - before == 1

    def test_bursty_arrivals_move_the_adaptive_window(self):
        """On-off (Pareto) arrivals exercise the feedback loop: the
        arrival-gap EWMA moves off its idle default and the observed
        stabilization wait sets a floor under the window."""
        from repro.bench import MetricsCollector
        from repro.workloads import YcsbConfig, bulk_load, run_ycsb

        cluster = make_cluster()  # group_commit_window=None -> adaptive
        ycsb = YcsbConfig(num_keys=300, value_size=64, ops_per_txn=4)
        cluster.run(bulk_load(cluster, ycsb), name="load")
        metrics = MetricsCollector("bursty")
        run_ycsb(cluster, ycsb, metrics, num_clients=8, duration=0.3,
                 warmup=0.05, arrivals="bursty")
        assert metrics.committed > 0
        groups = [node.manager.group for node in cluster.nodes]
        moved = [g for g in groups if g._gap_ewma is not None]
        assert moved, "no group-commit leader saw an arrival gap"
        fed = [g for g in groups if g._stab_ewma is not None]
        assert fed, "no observed stabilize wait fed the window EWMA"
        cap = cluster.config.group_commit_window_cap
        for group in fed:
            delay = group.window_delay()
            assert delay > 0.0
            assert delay >= min(cap, group._stab_ewma * 0.1) - 1e-12
            assert delay <= cap


# -- I5: bounded liveness ------------------------------------------------------


class TestLivenessMonitor:
    def _monitored_tracer(self, timeout=1.0, strict=True):
        sim = Simulator()
        tracer = Tracer(sim)
        monitor = InvariantMonitor(
            strict=strict, liveness_timeout=timeout
        ).attach(tracer)
        return sim, tracer, monitor

    def test_stuck_prepare_trips_i5(self):
        sim, tracer, monitor = self._monitored_tracer()
        tracer.event("twopc", "prepare_ack", node="node1", txn="aa",
                     log="node1/wal", counter=1)
        sim.now = 2.0
        with pytest.raises(MonitorViolation, match="I5"):
            tracer.event("net", "tick")  # any later event advances the clock
        assert "aa" not in monitor.awaiting_decision

    def test_decision_within_bound_is_green(self):
        sim, tracer, monitor = self._monitored_tracer()
        tracer.event("twopc", "prepare_ack", node="node1", txn="bb",
                     log="node1/wal", counter=1)
        sim.now = 0.5
        tracer.event("twopc", "decision", node="node0", txn="bb",
                     kind="commit", log="node0/clog", counter=1)
        sim.now = 5.0
        tracer.event("net", "tick")
        assert monitor.green

    def test_crash_clears_pending_obligations(self):
        sim, tracer, monitor = self._monitored_tracer()
        tracer.event("twopc", "prepare_ack", node="node1", txn="cc",
                     log="node1/wal", counter=1)
        tracer.event("node", "crash", node="node0")
        sim.now = 5.0
        tracer.event("net", "tick")
        assert monitor.green

    def test_bystander_crash_does_not_mask_stuck_txn(self):
        """I5 blind spot regression: obligations are per-coordinator —
        an unrelated node's crash must not excuse a stuck transaction
        whose coordinator is healthy."""
        sim, tracer, monitor = self._monitored_tracer()
        tracer.event("twopc", "prepare_ack", node="node1", txn="ee",
                     log="node1/wal", counter=1, coord=0)
        tracer.event("node", "crash", node="node2", node_id=2)
        assert "ee" in monitor.awaiting_decision
        sim.now = 5.0
        with pytest.raises(MonitorViolation, match="I5"):
            tracer.event("net", "tick")

    def test_coordinator_crash_excuses_only_its_txns(self):
        sim, tracer, monitor = self._monitored_tracer()
        tracer.event("twopc", "prepare_ack", node="node1", txn="f0",
                     log="node1/wal", counter=1, coord=0)
        tracer.event("twopc", "prepare_target", node="node2", txn="f1",
                     log="node2/wal", counter=1, coord=1)
        tracer.event("node", "crash", node="node0", node_id=0)
        # node0's transaction is excused; node1's still owes a decision.
        assert "f0" not in monitor.awaiting_decision
        assert "f1" in monitor.awaiting_decision
        sim.now = 5.0
        with pytest.raises(MonitorViolation, match="I5.*f1"):
            tracer.event("net", "tick")

    def test_check_quiescent_sweeps_the_tail(self):
        sim, tracer, monitor = self._monitored_tracer(strict=False)
        sim.now = 3.0
        tracer.event("twopc", "prepare_ack", node="node1", txn="dd",
                     log="node1/wal", counter=1)
        monitor.check_quiescent(now=10.0)
        assert any(v.startswith("I5") for v in monitor.violations)

    def test_full_run_under_liveness_monitor_is_green(self):
        cluster = make_cluster(monitor=True, monitor_liveness_timeout_s=1.0)
        keys = [local_keys(cluster, i, 1, tag=b"lv")[0] for i in range(3)]

        def body():
            txn = cluster.session(cluster.client_machine()).begin()
            for key in keys:
                yield from txn.put(key, b"live")
            yield from txn.commit()

        cluster.run(body())
        cluster.sim.run(until=cluster.sim.now + 2.0)
        monitor = cluster.obs.monitor
        monitor.check_quiescent(now=cluster.sim.now)
        assert monitor.green
        assert monitor.liveness_timeout == 1.0
        assert not monitor.awaiting_decision
