"""Tests for simulation synchronization primitives and the CPU pool."""

import pytest

from repro.sim import CpuPool, Gate, Resource, Semaphore, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_grants_up_to_capacity_immediately(self, sim):
        resource = Resource(sim, capacity=2)
        assert resource.request().triggered
        assert resource.request().triggered
        assert not resource.request().triggered

    def test_fifo_ordering_of_waiters(self, sim):
        resource = Resource(sim, capacity=1)
        order = []

        def worker(tag, hold_time):
            grant = resource.request()
            yield grant
            order.append(tag)
            yield sim.timeout(hold_time)
            resource.release()

        for tag in ("a", "b", "c"):
            sim.process(worker(tag, 1.0))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_release_without_request_rejected(self, sim):
        resource = Resource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_cancel_pending_request(self, sim):
        resource = Resource(sim, capacity=1)
        resource.request()  # take the slot
        pending = resource.request()
        resource.cancel(pending)
        resource.release()
        # The cancelled waiter must be skipped: a new request succeeds.
        assert resource.request().triggered

    def test_cancel_after_grant_releases_slot(self, sim):
        resource = Resource(sim, capacity=1)
        grant = resource.request()
        assert grant.triggered
        resource.cancel(grant)  # caller decided too late; slot is returned
        assert resource.in_use == 0

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")

        def body():
            item = yield store.get()
            return item

        assert sim.run_process(body()) == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def producer():
            yield sim.timeout(2)
            store.put("late")

        def consumer():
            item = yield store.get()
            return (sim.now, item)

        sim.process(producer())
        assert sim.run_process(consumer()) == (2, "late")

    def test_fifo_order(self, sim):
        store = Store(sim)
        for i in range(5):
            store.put(i)

        def body():
            items = []
            for _ in range(5):
                items.append((yield store.get()))
            return items

        assert sim.run_process(body()) == [0, 1, 2, 3, 4]


class TestGate:
    def test_waiters_release_in_counter_order(self, sim):
        gate = Gate(sim)
        released = []

        def waiter(mark):
            yield gate.wait_for(mark)
            released.append((mark, sim.now))

        for mark in (3, 1, 2):
            sim.process(waiter(mark))

        def advancer():
            yield sim.timeout(1)
            gate.advance_to(1)
            yield sim.timeout(1)
            gate.advance_to(3)

        sim.process(advancer())
        sim.run()
        assert (1, 1) in released
        assert (2, 2) in released and (3, 2) in released

    def test_wait_for_already_passed_mark(self, sim):
        gate = Gate(sim, initial=10)
        assert gate.wait_for(5).triggered

    def test_advance_never_regresses(self, sim):
        gate = Gate(sim, initial=7)
        gate.advance_to(3)
        assert gate.value == 7


class TestSemaphore:
    def test_acquire_release(self, sim):
        sem = Semaphore(sim, value=1)
        assert sem.acquire().triggered
        second = sem.acquire()
        assert not second.triggered
        sem.release()
        sim.run()
        assert second.triggered


class TestCpuPool:
    def test_serializes_beyond_core_count(self, sim):
        cpu = CpuPool(sim, cores=2)
        finished = []

        def worker(tag):
            yield from cpu.consume(1.0)
            finished.append((tag, sim.now))

        for tag in range(4):
            sim.process(worker(tag))
        sim.run()
        times = sorted(t for _, t in finished)
        assert times == [1.0, 1.0, 2.0, 2.0]

    def test_speed_factor_scales_work(self, sim):
        cpu = CpuPool(sim, cores=1, speed_factor=0.5)

        def worker():
            yield from cpu.consume(1.0)
            return sim.now

        assert sim.run_process(worker()) == 2.0

    def test_zero_work_is_free(self, sim):
        cpu = CpuPool(sim, cores=1)

        def worker():
            yield from cpu.consume(0.0)
            return sim.now

        assert sim.run_process(worker()) == 0.0

    def test_utilization_accounting(self, sim):
        cpu = CpuPool(sim, cores=2)

        def worker():
            yield from cpu.consume(1.0)

        sim.process(worker())
        sim.process(worker())
        sim.run()
        assert cpu.utilization(elapsed=1.0) == pytest.approx(1.0)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            CpuPool(sim, cores=0)
        with pytest.raises(ValueError):
            CpuPool(sim, cores=1, speed_factor=0)


class TestQuorumOf:
    """Vote-counting composite: regression pins for the late-settle
    accounting fix (a straggler settling after the trigger must only be
    defused — counting it corrupted the quorum/backstop bookkeeping)."""

    def test_quorum_then_late_failure_stays_clean(self, sim):
        events = [sim.event() for _ in range(3)]
        quorum = sim.quorum_of(events, needed=2)
        events[0].succeed("a")
        events[1].succeed("b")
        sim.run()
        assert quorum.triggered and quorum.ok
        # The straggler fails *after* the trigger (a down peer's
        # NetworkError settling late): it must be defused — neither
        # failing the composite, nor re-firing it via the backstop,
        # nor surfacing an uncovered error at the simulator.
        events[2].fail(RuntimeError("late NetworkError settle"))
        sim.run()
        assert quorum.triggered and quorum.ok

    def test_failure_then_quorum_still_triggers(self, sim):
        events = [sim.event() for _ in range(3)]
        quorum = sim.quorum_of(events, needed=2)
        events[0].fail(RuntimeError("down peer fails fast"))
        sim.run()
        assert not quorum.triggered  # one failure is not quorum progress
        events[1].succeed("a")
        events[2].succeed("b")
        sim.run()
        assert quorum.triggered and quorum.ok

    def test_late_ok_settle_does_not_skew_accept_count(self, sim):
        accepted = []

        def accept(value):
            accepted.append(value)
            return True

        events = [sim.event() for _ in range(3)]
        quorum = sim.quorum_of(events, needed=2, accept=accept)
        events[0].succeed("a")
        events[1].succeed("b")
        sim.run()
        assert quorum.triggered
        events[2].succeed("c")  # post-quorum straggler: not consulted
        sim.run()
        assert accepted == ["a", "b"]

    def test_all_failed_backstop_fires_once(self, sim):
        events = [sim.event() for _ in range(2)]
        quorum = sim.quorum_of(events, needed=2)
        for event in events:
            event.fail(RuntimeError("unreachable"))
        sim.run()
        # Quorum unreachable: the all-settled backstop fires (ok), so
        # the caller can inspect per-event outcomes itself.
        assert quorum.triggered and quorum.ok
