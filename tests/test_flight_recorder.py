"""The always-on observability layer: flight recorder, time-series, incidents.

Pins the PR's acceptance properties:

* the streaming quantile estimator and the ring buffer are deterministic
  (same stream ⇒ same estimate, same retained records);
* an injected slow transaction is captured as a p99 exemplar whose
  critical-path breakdown sums **exactly** to its measured commit
  latency (the segments tile the root interval);
* ring memory is capped — span retention is pinned, eviction is FIFO in
  emission order and identical across same-seed runs;
* same seed ⇒ byte-identical timeline JSONL/CSV, incident log, and
  exemplar export;
* enabling the recorder/time-series/incident layer leaves the simulated
  execution bit-identical (subscriber-driven: no heap entries);
* a coordinator death produces exactly the matching completer-takeover
  incidents; a parked counter driver produces exactly one
  lease-expiry-fallback incident;
* the satellite gauges (per-destination TX-queue depth, group-commit
  occupancy, decision slots, per-shard counter pending) surface in the
  snapshot and the Prometheus exposition.
"""

import json

import pytest

from repro.config import ClusterConfig, TREATY_FULL
from repro.core import TreatyCluster
from repro.errors import TransactionAborted
from repro.mc.faults import CrashInjector
from repro.obs import (
    FlightRecorder,
    Histogram,
    IncidentLog,
    MetricsHub,
    P2Quantile,
    TimeSeriesRecorder,
    Tracer,
    bucket_quantile,
    prometheus_text,
    to_jsonl,
)
from repro.obs.critpath import percentile
from repro.obs.timeseries import WINDOW_FIELDS
from repro.sim import Simulator

COORDINATOR = 0

#: an exactly-representable "millisecond-ish" duration: every latency in
#: the synthetic tests is a small multiple of this binary fraction, so
#: float sums are exact and the breakdown-sums-to-latency assertion can
#: use ``==`` rather than an epsilon.
TICK = 1.0 / 1024


# -- helpers -------------------------------------------------------------------


def local_key(cluster, node_index, tag=b"fr"):
    i = 0
    while True:
        key = b"%s-%04d" % (tag, i)
        if cluster.partitioner(key) == node_index:
            return key
        i += 1


def obs_cluster(seed=11, **overrides):
    overrides.setdefault("flight_recorder", True)
    overrides.setdefault("timeseries", True)
    overrides.setdefault("incidents", True)
    overrides.setdefault("tail_warmup", 4)
    config = ClusterConfig(seed=seed, **overrides)
    return TreatyCluster(profile=TREATY_FULL, config=config).start()


def run_rounds(cluster, rounds=8, tag=b"fr"):
    """``rounds`` sequential distributed txns, one key per shard each."""
    keys = [local_key(cluster, i, tag) for i in range(cluster.num_nodes)]

    def body():
        session = cluster.session(cluster.client_machine())
        for r in range(rounds):
            txn = session.begin()
            for key in keys:
                yield from txn.put(key, b"v%03d" % r)
            yield from txn.commit()

    cluster.run(body())


def synth_commits(txns, **recorder_kwargs):
    """Emit synthetic txn span DAGs and return the attached recorder.

    ``txns`` is ``[(gid, [(cat, name, duration), ...]), ...]``; each
    transaction is a ``twopc/txn`` root whose sequential children tile
    its interval exactly.
    """
    sim = Simulator()
    tracer = Tracer(sim)
    recorder = FlightRecorder(tracer, **recorder_kwargs).attach()

    def body():
        for gid, segments in txns:
            root = tracer.span(
                "twopc", "txn", node="node0", txn=gid, trace=gid,
                participants=1,
            )
            for cat, name, duration in segments:
                child = tracer.span(cat, name, node="node0")
                yield sim.timeout(duration)
                child.close()
            root.close(outcome="commit")

    sim.run_process(body(), name="synth")
    return recorder


FAST = [("net", "rpc", TICK), ("storage", "group_commit", TICK / 2)]


# -- P2 streaming quantile -----------------------------------------------------


class TestP2Quantile:
    def test_rejects_degenerate_quantiles(self):
        for q in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                P2Quantile(q)

    def test_small_samples_are_exact(self):
        estimator = P2Quantile(0.5)
        assert estimator.value() == 0.0
        for value in (5.0, 1.0, 3.0):
            estimator.add(value)
        assert estimator.value() == 3.0  # exact median of {1, 3, 5}

    def test_tracks_true_percentile_on_long_streams(self):
        estimator = P2Quantile(0.9)
        values = [float((i * 37) % 1000) for i in range(2000)]
        for value in values:
            estimator.add(value)
        true = percentile(values, 90)
        assert abs(estimator.value() - true) < 0.05 * 1000

    def test_same_stream_same_estimate(self):
        a, b = P2Quantile(0.99), P2Quantile(0.99)
        for i in range(500):
            value = float((i * 97) % 113)
            a.add(value)
            b.add(value)
        assert a.value() == b.value()


# -- bucket quantile interpolation (the upper-edge-bias fix) -------------------


class TestBucketQuantile:
    def test_interpolates_within_covering_bucket(self):
        # rank 3 of 6 lands mid-way through the (1, 2] bucket.
        assert bucket_quantile((1.0, 2.0, 4.0), (2, 2, 2, 0), 0.5) == 1.5

    def test_histogram_no_longer_reports_upper_edge(self):
        hist = Histogram([0.005, 0.01])
        for _ in range(100):
            hist.observe(0.002)
        # The old estimator returned the covering bucket's upper edge
        # (0.005) — 2.5x the true value.  Clamped interpolation is exact
        # for a point mass.
        assert hist.quantile(0.5) == 0.002

    def test_agrees_with_raw_percentile_within_bucket_resolution(self):
        samples = [0.1 * i for i in range(1, 101)]  # uniform (0, 10]
        edges = [float(e) for e in range(1, 11)]
        hist = Histogram(edges)
        for sample in samples:
            hist.observe(sample)
        for p in (10, 50, 90, 99):
            raw = percentile(samples, p)
            assert abs(hist.quantile(p / 100.0) - raw) <= 1.0

    def test_clamped_to_observed_extremes(self):
        hist = Histogram([1.0, 10.0])
        hist.observe(4.0)
        hist.observe(6.0)
        assert 4.0 <= hist.quantile(0.01)
        assert hist.quantile(0.999) <= 6.0


# -- bounded ring buffer -------------------------------------------------------


def _ring_run(ring_max):
    """Eight interleaved fibers each closing ten spans."""
    sim = Simulator()
    tracer = Tracer(sim, ring_max=ring_max)

    def fiber(i):
        for j in range(10):
            span = tracer.span("t", "work", node="n%d" % i, seq=j)
            yield sim.timeout(TICK * ((i + j) % 3 + 1))
            span.close()

    for i in range(8):
        sim.process(fiber(i), name="f%d" % i)
    sim.run()
    return tracer


class TestRingBuffer:
    def test_span_retention_is_pinned(self):
        tracer = _ring_run(ring_max=32)
        assert tracer.spans_closed == 80
        assert len(tracer.records) == 32
        assert tracer.records_evicted == 80 - 32

    def test_eviction_is_fifo_in_emission_order(self):
        ring = _ring_run(ring_max=32)
        unbounded = _ring_run(ring_max=None)
        assert unbounded.records_evicted == 0
        # The ring retains exactly the newest 32 records of the full
        # emission order — eviction is as deterministic as emission.
        assert list(ring.records) == unbounded.records[-32:]

    def test_same_run_same_retained_records(self):
        assert list(_ring_run(32).records) == list(_ring_run(32).records)

    def test_oversized_ring_never_evicts(self):
        tracer = _ring_run(ring_max=500)
        assert tracer.records_evicted == 0
        assert len(tracer.records) == 80


# -- exemplar capture ----------------------------------------------------------


class TestFlightRecorder:
    def test_slow_txn_captured_with_exact_breakdown(self):
        slow = [
            ("net", "rpc", TICK),
            ("locks", "wait", 32 * TICK),
            ("storage", "group_commit", TICK / 2),
        ]
        txns = [("%04x" % i, FAST) for i in range(8)] + [("beef", slow)]
        recorder = synth_commits(txns, warmup=5, max_exemplars=4)
        assert recorder.commits_seen == 9
        assert len(recorder.exemplars) == 1
        exemplar = recorder.exemplars[0]
        assert exemplar["trace"] == "beef"
        assert exemplar["latency_s"] == 33.5 * TICK
        assert exemplar["dominant"] == "lock"
        assert exemplar["breakdown"]["lock"] == 32 * TICK
        assert exemplar["breakdown"]["network"] == TICK
        assert exemplar["breakdown"]["group_commit"] == TICK / 2
        # The acceptance pin: critical-path segments tile the root
        # interval, so the breakdown sums *exactly* to the latency.
        assert sum(exemplar["breakdown"].values()) == exemplar["latency_s"]
        assert recorder.exemplar_for("beef") is exemplar
        assert recorder.exemplar_for("0000") is None

    def test_fast_commits_below_threshold_are_not_captured(self):
        recorder = synth_commits([("%04x" % i, FAST) for i in range(20)],
                                 warmup=5)
        assert recorder.commits_seen == 20
        assert recorder.exemplars == []

    def test_full_set_evicts_fastest_exemplar(self):
        def outlier(gid, ms):
            return (gid, [("locks", "wait", ms * TICK)])

        txns = [("%04x" % i, FAST) for i in range(2)]
        txns += [outlier("t10", 10), outlier("t20", 20), outlier("t30", 30)]
        recorder = synth_commits(txns, warmup=1, max_exemplars=2)
        traces = [exemplar["trace"] for exemplar in recorder.exemplars]
        assert traces == ["t20", "t30"]  # t10 (the fastest) evicted
        assert recorder.exemplars_dropped == 1

    def test_exemplars_jsonl_strips_records_and_is_stable(self):
        slow = [("locks", "wait", 16 * TICK)]
        txns = [("%04x" % i, FAST) for i in range(6)] + [("feed", slow)]
        first = synth_commits(txns, warmup=5).exemplars_jsonl()
        second = synth_commits(txns, warmup=5).exemplars_jsonl()
        assert first == second
        line = json.loads(first.splitlines()[0])
        assert line["trace"] == "feed"
        assert "records" not in line
        assert line["breakdown"]["lock"] == 16 * TICK

    def test_summary_shape(self):
        recorder = synth_commits([("%04x" % i, FAST) for i in range(6)],
                                 warmup=5)
        summary = recorder.summary()
        assert summary["commits"] == 6
        assert summary["exemplars"] == 0
        assert summary["tail_quantile"] == 0.99
        assert summary["p50_ms"] > 0.0


# -- cluster integration: recorder on a real workload --------------------------


class TestClusterCapture:
    def test_workload_exemplars_tile_their_latency(self):
        cluster = obs_cluster(seed=17)
        run_rounds(cluster, rounds=16)
        recorder = cluster.obs.recorder
        assert recorder.commits_seen == 16
        assert recorder.exemplars, "no tail exemplar captured in 16 txns"
        for exemplar in recorder.exemplars:
            total = sum(exemplar["breakdown"].values())
            assert total == pytest.approx(exemplar["latency_s"], rel=1e-9)
            assert exemplar["span_count"] > 1
            assert exemplar["dominant"] in exemplar["breakdown"]

    def test_satellite_gauges_surface_in_snapshot(self):
        cluster = obs_cluster(seed=13)
        run_rounds(cluster, rounds=4)
        snapshot = cluster.obs.snapshot()
        names = {name for metrics in snapshot.values() for name in metrics}
        assert "decision.slots" in names
        assert "group_commit.queue_depth" in names
        assert "counter.pending.0" in names
        assert any(name.startswith("net.txq.depth.") for name in names)
        occupancy = [
            metrics["group_commit.occupancy"]
            for metrics in snapshot.values()
            if "group_commit.occupancy" in metrics
        ]
        assert occupancy and all(hist["total"] > 0 for hist in occupancy)


# -- time-series recorder ------------------------------------------------------


class TestTimeSeries:
    def test_windows_partition_the_run(self):
        cluster = obs_cluster(seed=19)
        run_rounds(cluster, rounds=10)
        timeseries = cluster.obs.timeseries
        timeseries.flush()
        windows = timeseries.windows
        assert windows, "no windows closed"
        assert [w["window"] for w in windows] == list(range(len(windows)))
        assert sum(w["commits"] for w in windows) == 10
        for window in windows:
            assert set(window) == set(WINDOW_FIELDS)
        summary = timeseries.summary()
        assert summary["commits"] == 10
        assert summary["windows"] == len(windows)
        assert summary["tps_peak"] >= summary["tps_mean"] > 0.0

    def test_csv_matches_field_order(self):
        cluster = obs_cluster(seed=19)
        run_rounds(cluster, rounds=4)
        cluster.obs.timeseries.flush()
        lines = cluster.obs.timeseries.to_csv().splitlines()
        assert lines[0] == ",".join(WINDOW_FIELDS)
        assert len(lines) == len(cluster.obs.timeseries.windows) + 1

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(Simulator(), MetricsHub(), window_s=0.0)


# -- determinism and zero perturbation -----------------------------------------


class TestDeterminism:
    def test_same_seed_byte_identical_exports(self):
        outputs = []
        for _run in range(2):
            cluster = obs_cluster(seed=29)
            run_rounds(cluster, rounds=10)
            cluster.obs.timeseries.flush()
            outputs.append((
                cluster.obs.timeseries.to_jsonl(),
                cluster.obs.timeseries.to_csv(),
                cluster.obs.incidents.to_jsonl(),
                cluster.obs.recorder.exemplars_jsonl(),
            ))
        assert outputs[0] == outputs[1]
        assert len(outputs[0][0]) > 200

    def test_observation_does_not_perturb_the_simulation(self):
        def run(observed):
            config = ClusterConfig(
                seed=31, tracing=True, flight_recorder=observed,
                timeseries=observed, incidents=observed,
            )
            cluster = TreatyCluster(profile=TREATY_FULL,
                                    config=config).start()
            run_rounds(cluster, rounds=8)
            return cluster

        plain, observed = run(False), run(True)
        # Subscriber-driven observation adds no heap entries: the
        # simulated execution — every record, every timestamp — is
        # bit-identical with the whole layer enabled.
        assert plain.sim.now == observed.sim.now
        assert to_jsonl(plain.obs.records()) == to_jsonl(
            observed.obs.records())


# -- incident detection --------------------------------------------------------


class TestIncidents:
    def test_lease_expiry_fallback_incident(self):
        cluster = obs_cluster(
            seed=5, tracing=True, monitor=True,
            rollback_backend="counter-async", counter_shards=2,
            counter_lease_s=0.005,
        )
        node = cluster.nodes[0]
        backend = node.rollback
        backend.drivers_enabled = False  # only the fallback can resolve

        def body():
            yield from backend.stabilize("lease-exp/a", 7)

        cluster.run(body())
        assert backend.sync_fallbacks == 1
        counts = cluster.obs.incidents.counts()
        assert counts.get("lease-expiry-fallback") == 1
        incident = next(
            i for i in cluster.obs.incidents.incidents
            if i["kind"] == "lease-expiry-fallback"
        )
        assert incident["details"]["targets"] == 1
        assert "shard" in incident["details"]
        assert incident["node"] == node.runtime.name

    def test_coordinator_death_yields_takeover_incidents(self):
        config = ClusterConfig(
            seed=1, tracing=True, monitor=True, incidents=True,
            twopc_piggyback=True, rollback_backend="counter-sync",
            counter_shards=1, decision_timeout_s=1.5,
        )
        cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
        sim = cluster.sim
        keys = [local_key(cluster, i, b"ko") for i in range(cluster.num_nodes)]

        def drive(index, delay):
            yield sim.timeout(delay)
            txn = cluster.nodes[COORDINATOR].coordinator.begin()
            try:
                for key in keys:
                    yield from txn.put(key + b"-%d" % index, b"v")
                yield from txn.commit()
            except Exception:
                pass  # the victim dies mid-protocol; survivors converge

        injector = CrashInjector(
            cluster, ("twopc", "decision"), 1, 0,
            victim=COORDINATOR, permanent=True,
        ).arm()
        for index in range(4):
            sim.process(drive(index, 0.002 * index), name="ko-%d" % index)
        sim.run(until=sim.now + 6.0)
        sim.run(until=sim.now + 6.0)

        assert injector.crashed == COORDINATOR
        takeovers = sum(
            node.participant.takeovers
            for i, node in enumerate(cluster.nodes) if i != COORDINATOR
        )
        assert takeovers >= 1
        counts = cluster.obs.incidents.counts()
        # Exactly one incident per completer takeover, each carrying the
        # transaction's trace id (its hex gid).
        assert counts.get("completer-takeover") == takeovers
        for incident in cluster.obs.incidents.incidents:
            if incident["kind"] != "completer-takeover":
                continue
            assert incident["trace"]
            assert incident["details"]["coord"] == COORDINATOR

    def test_post_hoc_replay_matches_live_detection(self):
        config = ClusterConfig(
            seed=1, tracing=True, monitor=True, incidents=True,
            twopc_piggyback=True, rollback_backend="counter-sync",
            counter_shards=1, decision_timeout_s=1.5,
        )
        cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
        sim = cluster.sim
        keys = [local_key(cluster, i, b"ph") for i in range(cluster.num_nodes)]

        def drive(index, delay):
            yield sim.timeout(delay)
            txn = cluster.nodes[COORDINATOR].coordinator.begin()
            try:
                for key in keys:
                    yield from txn.put(key + b"-%d" % index, b"v")
                yield from txn.commit()
            except Exception:
                pass

        CrashInjector(
            cluster, ("twopc", "decision"), 1, 0,
            victim=COORDINATOR, permanent=True,
        ).arm()
        for index in range(3):
            sim.process(drive(index, 0.002 * index), name="ph-%d" % index)
        sim.run(until=sim.now + 6.0)
        sim.run(until=sim.now + 6.0)

        live = cluster.obs.incidents
        replayed = IncidentLog.from_records(cluster.obs.records())
        record_kinds = ("completer-takeover", "lease-expiry-fallback",
                        "lock-convoy")
        live_counts = {k: v for k, v in live.counts().items()
                       if k in record_kinds}
        replay_counts = {k: v for k, v in replayed.counts().items()
                         if k in record_kinds}
        assert replay_counts == live_counts
        assert live_counts.get("completer-takeover", 0) >= 1

    def test_monitor_violation_hook(self):
        log = IncidentLog()
        log.monitor_violation(0.5, "I2: decision before quorum")
        assert log.counts() == {"monitor-violation": 1}
        assert json.loads(log.to_jsonl())["details"]["message"].startswith(
            "I2")

    def test_windowed_detectors(self):
        log = IncidentLog(occ_storm_conflicts=5)
        base = dict.fromkeys(WINDOW_FIELDS, 0)
        log.observe_window(dict(base, window=0, t1_ms=5.0, commits=3,
                                occ_conflicts=9, frames_per_s=100.0))
        log.observe_window(dict(base, window=1, t1_ms=10.0, commits=0,
                                occ_conflicts=0, frames_per_s=100.0))
        # A commit-free window with no fabric traffic is idle, not
        # stalled.
        log.observe_window(dict(base, window=2, t1_ms=15.0, commits=0,
                                occ_conflicts=0, frames_per_s=0.0))
        assert log.counts() == {"occ-retry-storm": 1, "stalled-window": 1}


# -- Prometheus exposition -----------------------------------------------------


class TestPrometheusText:
    def test_families_and_sample_lines(self):
        hub = MetricsHub()
        registry = hub.registry("node0")
        registry.counter("txn.committed").inc(3)
        registry.gauge("decision.pending").set(2)
        registry.probe("decision.slots", lambda: 4)
        registry.histogram("latency", edges=(0.001, 0.01)).observe(0.002)
        hub.registry("node1").counter("txn.committed").inc(5)

        text = prometheus_text(hub)
        lines = text.splitlines()
        assert "# TYPE repro_txn_committed_total counter" in lines
        assert 'repro_txn_committed_total{component="node0"} 3' in lines
        assert 'repro_txn_committed_total{component="node1"} 5' in lines
        assert "# TYPE repro_decision_slots gauge" in lines
        assert 'repro_decision_slots{component="node0"} 4' in lines
        assert 'repro_decision_pending{component="node0"} 2' in lines
        assert "# TYPE repro_latency histogram" in lines
        assert 'repro_latency_bucket{component="node0",le="0.001"} 0' in lines
        assert 'repro_latency_bucket{component="node0",le="0.01"} 1' in lines
        assert 'repro_latency_bucket{component="node0",le="+Inf"} 1' in lines
        assert 'repro_latency_count{component="node0"} 1' in lines
        assert text.endswith("\n")

    def test_non_numeric_probes_are_skipped(self):
        hub = MetricsHub()
        registry = hub.registry("x")
        registry.probe("status", lambda: "ok")
        registry.probe("flag", lambda: True)
        registry.probe("depth", lambda: 7)
        text = prometheus_text(hub)
        assert "repro_status" not in text
        assert "repro_flag" not in text
        assert 'repro_depth{component="x"} 7' in text

    def test_cluster_export_is_parseable(self):
        cluster = obs_cluster(seed=23)
        run_rounds(cluster, rounds=4)
        text = prometheus_text(cluster.obs.hub)
        assert "repro_group_commit_occupancy" in text
        assert "repro_decision_slots" in text
        for line in text.splitlines():
            assert line.startswith("# TYPE ") or " " in line
