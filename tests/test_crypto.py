"""Tests for the crypto layer: AEAD, log chains, key ring, signatures."""

import pytest

from repro.crypto import (
    Aead,
    KeyRing,
    LogChain,
    SigningKey,
    derive_key,
    digest,
    generate_keypair,
)
from repro.crypto.aead import IV_BYTES, KEY_BYTES, MAC_BYTES
from repro.errors import AuthenticationError, IntegrityError

KEY = bytes(range(32))
IV = b"\x01" * IV_BYTES


class TestAead:
    def test_roundtrip(self):
        aead = Aead(KEY)
        sealed = aead.seal(IV, b"hello world", aad=b"hdr")
        assert aead.open(sealed, aad=b"hdr") == b"hello world"

    def test_empty_plaintext(self):
        aead = Aead(KEY)
        assert aead.open(aead.seal(IV, b"")) == b""

    def test_wire_layout_sizes(self):
        aead = Aead(KEY)
        sealed = aead.seal(IV, b"x" * 100)
        assert len(sealed) == IV_BYTES + 100 + MAC_BYTES
        assert Aead.sealed_size(100) == len(sealed)
        assert sealed[:IV_BYTES] == IV

    def test_ciphertext_hides_plaintext(self):
        aead = Aead(KEY)
        plaintext = b"secret-value" * 10
        sealed = aead.seal(IV, plaintext)
        assert plaintext not in sealed

    @pytest.mark.parametrize("position", [0, IV_BYTES, IV_BYTES + 5, -1])
    def test_any_bit_flip_detected(self, position):
        aead = Aead(KEY)
        sealed = bytearray(aead.seal(IV, b"payload-bytes", aad=b"a"))
        sealed[position] ^= 0x01
        with pytest.raises(IntegrityError):
            aead.open(bytes(sealed), aad=b"a")

    def test_aad_mismatch_detected(self):
        aead = Aead(KEY)
        sealed = aead.seal(IV, b"data", aad=b"txn=1")
        with pytest.raises(IntegrityError):
            aead.open(sealed, aad=b"txn=2")

    def test_wrong_key_detected(self):
        sealed = Aead(KEY).seal(IV, b"data")
        with pytest.raises(IntegrityError):
            Aead(bytes(32)).open(sealed)

    def test_truncated_blob_detected(self):
        with pytest.raises(IntegrityError):
            Aead(KEY).open(b"short")

    def test_distinct_ivs_give_distinct_ciphertexts(self):
        aead = Aead(KEY)
        first = aead.seal(b"\x01" * 12, b"same")
        second = aead.seal(b"\x02" * 12, b"same")
        assert first[IV_BYTES:] != second[IV_BYTES:]

    def test_key_length_validated(self):
        with pytest.raises(ValueError):
            Aead(b"short")
        with pytest.raises(ValueError):
            Aead(KEY).seal(b"shortiv", b"data")


class TestLogChain:
    def test_append_then_verify_replay(self):
        writer = LogChain(KEY)
        entries = [(i, b"entry-%d" % i) for i in range(10)]
        tags = [writer.append(counter, body) for counter, body in entries]

        reader = LogChain(KEY)
        for (counter, body), tag in zip(entries, tags):
            reader.verify_next(counter, body, tag)
        assert reader.state.count == 10

    def test_modified_entry_detected(self):
        writer = LogChain(KEY)
        tag = writer.append(1, b"original")
        reader = LogChain(KEY)
        with pytest.raises(IntegrityError):
            reader.verify_next(1, b"tampered", tag)

    def test_dropped_entry_detected(self):
        writer = LogChain(KEY)
        writer.append(1, b"first")
        tag2 = writer.append(2, b"second")
        reader = LogChain(KEY)
        with pytest.raises(IntegrityError):
            reader.verify_next(2, b"second", tag2)  # skipped entry 1

    def test_reordered_entries_detected(self):
        writer = LogChain(KEY)
        tag1 = writer.append(1, b"first")
        tag2 = writer.append(2, b"second")
        reader = LogChain(KEY)
        with pytest.raises(IntegrityError):
            reader.verify_next(2, b"second", tag2)
        reader2 = LogChain(KEY)
        reader2.verify_next(1, b"first", tag1)  # correct order still fine

    def test_counter_value_is_authenticated(self):
        writer = LogChain(KEY)
        tag = writer.append(5, b"body")
        reader = LogChain(KEY)
        with pytest.raises(IntegrityError):
            reader.verify_next(6, b"body", tag)


class TestKeys:
    def test_derivation_is_deterministic_and_labelled(self):
        root = KEY
        assert derive_key(root, "a") == derive_key(root, "a")
        assert derive_key(root, "a") != derive_key(root, "b")
        assert derive_key(root, "a", "b") != derive_key(root, "b", "a")
        assert len(derive_key(root, "x")) == KEY_BYTES

    def test_keyring_separates_purposes(self):
        ring = KeyRing(KEY)
        assert ring.subkey("network") != ring.subkey("storage")
        assert ring.log_auth_key("WAL") != ring.log_auth_key("Clog")

    def test_keyring_aead_cached_and_functional(self):
        ring = KeyRing(KEY)
        assert ring.network_aead() is ring.network_aead()
        sealed = ring.storage_aead().seal(IV, b"v")
        assert ring.storage_aead().open(sealed) == b"v"

    def test_same_root_same_keys_across_nodes(self):
        assert KeyRing(KEY).subkey("network") == KeyRing(KEY).subkey("network")

    def test_root_length_validated(self):
        with pytest.raises(ValueError):
            KeyRing(b"short")


class TestSignatures:
    def test_sign_verify_roundtrip(self):
        signing, verify = generate_keypair(b"seed-material-01", "node1")
        signature = signing.sign(b"message")
        verify.verify(b"message", signature)  # no exception

    def test_tampered_message_rejected(self):
        signing, verify = generate_keypair(b"seed-material-01", "node1")
        signature = signing.sign(b"message")
        with pytest.raises(AuthenticationError):
            verify.verify(b"other", signature)

    def test_cross_key_rejected(self):
        signing1, _ = generate_keypair(b"seed-material-01", "node1")
        _, verify2 = generate_keypair(b"seed-material-01", "node2")
        with pytest.raises(AuthenticationError):
            verify2.verify(b"m", signing1.sign(b"m"))

    def test_deterministic_keypairs(self):
        s1, _ = generate_keypair(b"seed", "id")
        s2, _ = generate_keypair(b"seed", "id")
        assert s1.sign(b"m") == s2.sign(b"m")

    def test_short_secret_rejected(self):
        with pytest.raises(ValueError):
            SigningKey(b"tiny", "x")


def test_digest_is_sha256_sized():
    assert len(digest(b"data")) == 32
    assert digest(b"a") != digest(b"b")
