"""Tests for workload generators: distributions, YCSB, TPC-C."""

import pytest

from repro.config import DS_ROCKSDB, TREATY_ENC
from repro.core import TreatyCluster
from repro.bench import MetricsCollector
from repro.sim import SeededRng
from repro.workloads import (
    ScrambledZipfianGenerator,
    TpccScale,
    UniformGenerator,
    YcsbConfig,
    YcsbWorkload,
    ZipfianGenerator,
    bulk_load,
    load_tpcc,
    run_tpcc,
    run_ycsb,
    tpcc_partitioner,
)
from repro.workloads import tpcc


class TestDistributions:
    def test_uniform_bounds_and_spread(self):
        gen = UniformGenerator(100, SeededRng(1, "u"))
        samples = [gen.next() for _ in range(5000)]
        assert min(samples) >= 0 and max(samples) < 100
        assert len(set(samples)) > 90

    def test_zipfian_bounds_and_skew(self):
        gen = ZipfianGenerator(1000, SeededRng(1, "z"))
        samples = [gen.next() for _ in range(20000)]
        assert min(samples) >= 0 and max(samples) < 1000
        # Rank-0 must be far more popular than the uniform expectation.
        share = samples.count(0) / len(samples)
        assert share > 0.02  # uniform would be 0.001

    def test_scrambled_zipfian_spreads_hot_keys(self):
        gen = ScrambledZipfianGenerator(1000, SeededRng(1, "sz"))
        samples = [gen.next() for _ in range(20000)]
        hottest = max(set(samples), key=samples.count)
        assert 0 <= hottest < 1000
        # Still skewed...
        assert samples.count(hottest) / len(samples) > 0.02
        # ...but the hottest key need not be rank 0.
        assert len(set(samples)) > 300

    def test_determinism(self):
        a = ZipfianGenerator(500, SeededRng(7, "d"))
        b = ZipfianGenerator(500, SeededRng(7, "d"))
        assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformGenerator(0, SeededRng(1, "x"))
        with pytest.raises(ValueError):
            ZipfianGenerator(0, SeededRng(1, "x"))


class TestYcsbGenerator:
    def test_ops_per_txn_and_value_size(self):
        config = YcsbConfig(ops_per_txn=10, value_size=1000)
        workload = YcsbWorkload(config, SeededRng(1, "y"))
        ops = workload.next_transaction()
        assert len(ops) == 10
        for kind, key, value in ops:
            assert key.startswith(config.key_prefix)
            if kind == "update":
                assert len(value) == 1000
            else:
                assert value is None

    def test_read_proportion_respected(self):
        config = YcsbConfig(read_proportion=0.8, ops_per_txn=10)
        workload = YcsbWorkload(config, SeededRng(1, "y2"))
        ops = [op for _ in range(300) for op in workload.next_transaction()]
        reads = sum(1 for kind, _, _ in ops if kind == "read")
        assert 0.75 < reads / len(ops) < 0.85

    def test_keyspace_respected(self):
        config = YcsbConfig(num_keys=50)
        workload = YcsbWorkload(config, SeededRng(1, "y3"))
        keys = {key for _ in range(100) for _, key, _ in workload.next_transaction()}
        assert keys <= {config.key(i) for i in range(50)}

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            YcsbWorkload(YcsbConfig(distribution="pareto"), SeededRng(1, "y4"))

    def test_variants_match_standard_mixes(self):
        assert YcsbConfig.variant("a").read_proportion == 0.5
        assert not YcsbConfig.variant("a").read_only
        b = YcsbConfig.variant("b")
        assert b.read_proportion == 0.95 and b.read_only
        c = YcsbConfig.variant("C")  # case-insensitive
        assert c.read_proportion == 1.0 and c.read_only
        e = YcsbConfig.variant("e")
        assert e.scan_proportion == 0.95 and e.read_only
        with pytest.raises(KeyError):
            YcsbConfig.variant("f")

    def test_variant_overrides_apply(self):
        config = YcsbConfig.variant("c", num_keys=77, read_only=False)
        assert config.num_keys == 77
        assert config.read_proportion == 1.0
        assert not config.read_only

    def test_scan_lengths_zipf_bounded(self):
        config = YcsbConfig.variant("e", max_scan_length=40)
        workload = YcsbWorkload(config, SeededRng(5, "y5"))
        lengths = [
            value
            for _ in range(200)
            for kind, _, value in workload.next_transaction()
            if kind == "scan"
        ]
        assert lengths, "YCSB-E must emit scans"
        assert all(1 <= length <= 40 for length in lengths)
        # Zipf-shaped: short scans dominate the draw.
        short = sum(1 for length in lengths if length <= 5)
        assert short / len(lengths) > 0.5

    def test_scan_proportion_respected(self):
        config = YcsbConfig.variant("e")
        workload = YcsbWorkload(config, SeededRng(6, "y6"))
        ops = [op for _ in range(300) for op in workload.next_transaction()]
        scans = sum(1 for kind, _, _ in ops if kind == "scan")
        assert 0.90 < scans / len(ops) <= 1.0

    def test_is_read_only(self):
        assert YcsbWorkload.is_read_only(
            [("read", b"k", None), ("scan", b"k", 5)]
        )
        assert not YcsbWorkload.is_read_only(
            [("read", b"k", None), ("update", b"k", b"v")]
        )
        assert YcsbWorkload.is_read_only([])

    def test_ycsb_c_emits_no_updates(self):
        config = YcsbConfig.variant("c")
        workload = YcsbWorkload(config, SeededRng(7, "y7"))
        for _ in range(100):
            assert YcsbWorkload.is_read_only(workload.next_transaction())


class TestYcsbDriver:
    def test_end_to_end_run_collects_metrics(self):
        cluster = TreatyCluster(profile=DS_ROCKSDB).start()
        config = YcsbConfig(num_keys=200, value_size=100)
        cluster.run(bulk_load(cluster, config), name="load")
        metrics = MetricsCollector()
        run_ycsb(cluster, config, metrics, num_clients=4, duration=0.2, warmup=0.05)
        assert metrics.committed > 10
        assert metrics.throughput() > 0
        assert metrics.mean_latency() > 0

    def test_bursty_arrivals_run_end_to_end(self):
        cluster = TreatyCluster(profile=DS_ROCKSDB).start()
        config = YcsbConfig(num_keys=200, value_size=100)
        cluster.run(bulk_load(cluster, config), name="load")
        metrics = MetricsCollector()
        run_ycsb(cluster, config, metrics, num_clients=4, duration=0.2,
                 warmup=0.05, arrivals="bursty")
        assert metrics.committed > 0

    def test_unknown_arrival_process_rejected(self):
        cluster = TreatyCluster(profile=DS_ROCKSDB).start()
        config = YcsbConfig(num_keys=50, value_size=32)
        with pytest.raises(ValueError):
            run_ycsb(cluster, config, MetricsCollector(), arrivals="poisson")

    def test_snapshot_reads_use_zero_cluster_frames(self):
        # The tentpole claim, pinned: a pure-read workload in snapshot
        # mode performs ZERO coordinator rounds — no frame crosses the
        # inter-node cluster fabric during the measured run.
        from repro.bench.harness import cluster_nic_tx_frames
        from repro.config import ClusterConfig

        cluster = TreatyCluster(
            profile=TREATY_ENC,
            config=ClusterConfig(read_only_snapshot=True),
        ).start()
        config = YcsbConfig.variant("c", num_keys=200, value_size=100)
        cluster.run(bulk_load(cluster, config), name="load")
        frames_before = cluster_nic_tx_frames(cluster)
        metrics = MetricsCollector()
        run_ycsb(
            cluster, config, metrics, num_clients=4, duration=0.3,
            warmup=0.05,
        )
        assert metrics.committed > 10
        assert cluster_nic_tx_frames(cluster) == frames_before

    def test_ycsb_e_scans_commit_via_snapshot_reads(self):
        from repro.config import ClusterConfig

        cluster = TreatyCluster(
            profile=TREATY_ENC,
            config=ClusterConfig(read_only_snapshot=True),
        ).start()
        config = YcsbConfig.variant(
            "e", num_keys=200, value_size=100, max_scan_length=20
        )
        cluster.run(bulk_load(cluster, config), name="load")
        metrics = MetricsCollector()
        run_ycsb(
            cluster, config, metrics, num_clients=4, duration=0.3,
            warmup=0.05,
        )
        assert metrics.committed > 5

    def test_bulk_load_visible_through_transactions(self):
        cluster = TreatyCluster(profile=TREATY_ENC).start()
        config = YcsbConfig(num_keys=100, value_size=64)
        cluster.run(bulk_load(cluster, config), name="load")

        def check():
            txn = cluster.nodes[0].coordinator.begin()
            value = yield from txn.get(config.key(42))
            yield from txn.commit()
            return value

        assert cluster.run(check()) == config.value(42, 0)


class TestTpccCodecs:
    @pytest.mark.parametrize(
        "row_cls,kwargs",
        [
            (tpcc.WarehouseRow, dict(ytd=123456)),
            (tpcc.DistrictRow, dict(next_o_id=42, ytd=7, tax_bp=825)),
            (
                tpcc.CustomerRow,
                dict(balance=-500, ytd_payment=10, payment_cnt=3,
                     delivery_cnt=1, lastname=b"BARBARBAR"),
            ),
            (tpcc.StockRow, dict(quantity=33, ytd=9, order_cnt=2, remote_cnt=1)),
            (tpcc.ItemRow, dict(price=999)),
            (tpcc.OrderRow, dict(c_id=7, entry_us=123, carrier_id=2, ol_cnt=9)),
            (
                tpcc.OrderLineRow,
                dict(i_id=5, supply_w=2, qty=3, amount=300, delivery_us=77),
            ),
        ],
    )
    def test_row_roundtrip(self, row_cls, kwargs):
        row = row_cls(**kwargs)
        assert row_cls.decode(row.encode()) == row

    def test_key_ordering_supports_scans(self):
        # Order-line keys must sort by order id so range scans work.
        keys = [tpcc.order_line_key(1, 2, o, 1) for o in (1, 9, 10, 100)]
        assert keys == sorted(keys)

    def test_last_name_generation(self):
        assert tpcc.last_name(0) == b"BARBARBAR"
        assert tpcc.last_name(999) == b"EINGEINGEING"
        assert tpcc.last_name(371) == b"PRICALLYOUGHT"

    def test_partitioner_by_warehouse(self):
        partition = tpcc_partitioner(3)
        assert partition(tpcc.warehouse_key(3)) == 0
        assert partition(tpcc.district_key(3, 5)) == 0
        assert partition(tpcc.stock_key(4, 10)) == 1
        assert partition(tpcc.order_key(5, 1, 1)) == 2

    def test_initial_rows_cover_all_tables(self):
        scale = TpccScale(
            warehouses=1, districts_per_warehouse=2,
            customers_per_district=3, items=5, initial_orders_per_district=2,
        )
        rows = dict(tpcc.initial_rows(scale))
        assert tpcc.warehouse_key(1) in rows
        assert tpcc.district_key(1, 2) in rows
        assert tpcc.customer_key(1, 2, 3) in rows
        assert tpcc.stock_key(1, 5) in rows
        assert tpcc.item_key(5) in rows
        assert tpcc.order_key(1, 1, 2) in rows
        assert tpcc.order_line_key(1, 1, 1, 5) in rows


class TestTpccDriver:
    @pytest.fixture(scope="class")
    def loaded_cluster(self):
        scale = TpccScale(
            warehouses=2, districts_per_warehouse=2,
            customers_per_district=5, items=20, initial_orders_per_district=2,
        )
        cluster = TreatyCluster(
            profile=DS_ROCKSDB, partitioner=tpcc_partitioner(3)
        ).start()
        cluster.run(load_tpcc(cluster, scale), name="load")
        return cluster, scale

    def _terminal(self, cluster, scale, seed="t1"):
        machine = cluster.client_machine()
        session = cluster.session(machine, coordinator=0)
        return tpcc.TpccTerminal(session, scale, home_w=1, rng=SeededRng(3, seed))

    def test_new_order_commits_and_writes_rows(self, loaded_cluster):
        cluster, scale = loaded_cluster
        terminal = self._terminal(cluster, scale)

        def body():
            ok = yield from terminal.new_order()
            return ok

        assert cluster.run(body()) is True

        def check():
            txn = cluster.nodes[0].coordinator.begin()
            district = yield from txn.get(tpcc.district_key(1, 1))
            yield from txn.commit()
            return tpcc.DistrictRow.decode(district)

        district = cluster.run(check())
        assert district.next_o_id >= scale.initial_orders_per_district + 1

    def test_payment_updates_balances(self, loaded_cluster):
        cluster, scale = loaded_cluster
        terminal = self._terminal(cluster, scale, seed="t2")

        def before():
            txn = cluster.nodes[0].coordinator.begin()
            row = yield from txn.get(tpcc.warehouse_key(1))
            yield from txn.commit()
            return tpcc.WarehouseRow.decode(row).ytd

        ytd_before = cluster.run(before())

        def body():
            return (yield from terminal.payment())

        assert cluster.run(body()) is True
        assert cluster.run(before()) > ytd_before

    def test_order_status_runs(self, loaded_cluster):
        cluster, scale = loaded_cluster
        terminal = self._terminal(cluster, scale, seed="t3")

        def body():
            return (yield from terminal.order_status())

        assert cluster.run(body()) is True

    def test_delivery_consumes_new_orders(self, loaded_cluster):
        cluster, scale = loaded_cluster
        terminal = self._terminal(cluster, scale, seed="t4")

        def create():
            return (yield from terminal.new_order())

        cluster.run(create())

        def deliver():
            return (yield from terminal.delivery())

        assert cluster.run(deliver()) is True

        def pending_new_orders():
            txn = cluster.nodes[0].coordinator.begin()
            rows = yield from txn.scan(b"no/0001/", b"no/0001/\xff")
            yield from txn.commit()
            return rows

        assert cluster.run(pending_new_orders()) == []

    def test_stock_level_runs(self, loaded_cluster):
        cluster, scale = loaded_cluster
        terminal = self._terminal(cluster, scale, seed="t5")

        def body():
            return (yield from terminal.stock_level())

        assert cluster.run(body()) is True

    def test_mix_distribution(self, loaded_cluster):
        cluster, scale = loaded_cluster
        terminal = self._terminal(cluster, scale, seed="t6")
        counts = {name: 0 for name, _ in tpcc.MIX}
        for _ in range(2000):
            counts[terminal.choose_type()] += 1
        assert 0.40 < counts["new_order"] / 2000 < 0.50
        assert 0.38 < counts["payment"] / 2000 < 0.48

    def test_full_driver_run(self):
        scale = TpccScale(
            warehouses=2, districts_per_warehouse=2,
            customers_per_district=5, items=20, initial_orders_per_district=2,
        )
        cluster = TreatyCluster(
            profile=DS_ROCKSDB, partitioner=tpcc_partitioner(3)
        ).start()
        cluster.run(load_tpcc(cluster, scale), name="load")
        metrics = MetricsCollector()
        run_tpcc(cluster, scale, metrics, num_clients=4, duration=0.3, warmup=0.05)
        assert metrics.committed > 5
