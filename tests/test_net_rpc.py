"""Tests for the eRPC port, socket stacks and the secure RPC channel."""

import pytest

from repro.config import ClusterConfig, DS_ROCKSDB, TREATY_NO_ENC
from repro.errors import IntegrityError
from repro.net import (
    MsgType,
    NetworkAdversary,
    SocketStack,
    TxMessage,
)
from repro.sim import Simulator
from repro.tee import NodeRuntime

from tests.conftest import NetHarness


def echo_handler(payload, src):
    if False:  # make this a generator without extra cost
        yield None
    return payload, len(payload) if isinstance(payload, bytes) else 8


class TestErpc:
    def test_request_response_roundtrip(self, harness):
        server = harness.endpoints[1]
        server.register_handler(1, echo_handler)

        def body():
            reply = yield from harness.endpoints[0].call(
                "node1", 1, b"ping", 4
            )
            return reply.payload

        assert harness.run(body()) == b"ping"

    def test_continuation_event_batching(self, harness):
        """A coordinator can enqueue N requests before yielding (Fig. 2)."""
        server = harness.endpoints[1]
        server.register_handler(1, echo_handler)
        client = harness.endpoints[0]

        def body():
            events = [
                client.enqueue_request("node1", 1, b"m%d" % i, 2) for i in range(5)
            ]
            replies = yield harness.sim.all_of(events)
            return sorted(r.payload for r in replies)

        assert harness.run(body()) == [b"m0", b"m1", b"m2", b"m3", b"m4"]

    def test_handlers_run_concurrently(self):
        """Two slow handlers overlap instead of serializing."""
        harness = NetHarness(num_nodes=3)

        def slow_handler(payload, src):
            yield harness.sim.timeout(1.0)
            return payload, 4

        harness.endpoints[1].register_handler(1, slow_handler)
        harness.endpoints[2].register_handler(1, slow_handler)
        client = harness.endpoints[0]

        def body():
            events = [
                client.enqueue_request("node1", 1, b"a", 1),
                client.enqueue_request("node2", 1, b"b", 1),
            ]
            yield harness.sim.all_of(events)
            return harness.sim.now

        assert harness.run(body()) < 1.5  # not 2.0: they overlapped

    def test_unknown_request_type_ignored(self, harness):
        client = harness.endpoints[0]

        def body():
            event = client.enqueue_request("node1", 99, b"x", 1)
            timeout = harness.sim.timeout(1.0, value="timed-out")
            winner = yield harness.sim.any_of([event, timeout])
            return winner.value

        assert harness.run(body()) == "timed-out"

    def test_msgbufs_recycled_from_host_pool(self, harness):
        server = harness.endpoints[1]
        server.register_handler(1, echo_handler)
        client = harness.endpoints[0]

        def body():
            for _ in range(20):
                yield from client.call("node1", 1, b"x" * 100, 100)

        harness.run(body())
        assert client.msgbuf_pool.recycle_rate() > 0.5
        assert client.runtime.host_memory.used >= 0

    def test_scone_erpc_is_slower_than_native(self):
        def elapsed(profile):
            harness = NetHarness(profile=profile)
            harness.endpoints[1].register_handler(1, echo_handler)

            def body():
                for _ in range(10):
                    yield from harness.endpoints[0].call("node1", 1, b"x" * 1000, 1000)
                return harness.sim.now

            return harness.run(body())

        assert elapsed(TREATY_NO_ENC) > elapsed(DS_ROCKSDB) * 1.5


class TestSockets:
    def make_pair(self, profile=DS_ROCKSDB):
        harness = NetHarness(profile=profile)
        tcp_a = SocketStack(harness.runtimes[0], harness.fabric, harness.nics[0], "tcp")
        return harness, tcp_a

    def test_tcp_send_delivers(self):
        harness, tcp = self.make_pair()

        def body():
            ok = yield from tcp.send("node1", 4096, payload=b"bulk")
            frame = yield harness.nics[1].receive()
            return ok, frame.payload

        assert harness.run(body()) == (True, b"bulk")

    def test_udp_above_mtu_dropped(self):
        harness = NetHarness()
        udp = SocketStack(harness.runtimes[0], harness.fabric, harness.nics[0], "udp")

        def body():
            ok = yield from udp.send("node1", 2048)
            return ok

        assert harness.run(body()) is False
        assert udp.dropped_messages == 1

    def test_udp_below_mtu_delivers(self):
        harness = NetHarness()
        udp = SocketStack(harness.runtimes[0], harness.fabric, harness.nics[0], "udp")

        def body():
            ok = yield from udp.send("node1", 1000, payload=b"dgram")
            frame = yield harness.nics[1].receive()
            return ok, frame.payload

        assert harness.run(body()) == (True, b"dgram")

    def test_scone_socket_slower_than_native(self):
        def one_send(profile):
            harness = NetHarness(profile=profile)
            tcp = SocketStack(
                harness.runtimes[0], harness.fabric, harness.nics[0], "tcp"
            )

            def body():
                yield from tcp.send("node1", 4096)
                return harness.sim.now

            return harness.run(body())

        assert one_send(TREATY_NO_ENC) > one_send(DS_ROCKSDB) * 2

    def test_invalid_protocol_rejected(self):
        harness = NetHarness()
        with pytest.raises(ValueError):
            SocketStack(harness.runtimes[0], harness.fabric, harness.nics[0], "sctp")


class TestSecureRpc:
    def install_echo(self, harness, node=1):
        def handler(message, src):
            if False:
                yield None
            return TxMessage(
                MsgType.ACK, message.node_id, message.txn_id, message.op_id,
                b"echo:" + message.body,
            )

        harness.secure[node].register(MsgType.TXN_WRITE, handler)

    def request(self, txn_id=1, op_id=1, body=b"put k v"):
        return TxMessage(MsgType.TXN_WRITE, 0, txn_id, op_id, body)

    def test_roundtrip_encrypted(self, secure_harness):
        self.install_echo(secure_harness)

        def body():
            reply = yield from secure_harness.secure[0].call(
                "node1", self.request()
            )
            return reply

        reply = secure_harness.run(body())
        assert reply.msg_type == MsgType.ACK
        assert reply.body == b"echo:put k v"
        assert secure_harness.secure[0].messages_sealed >= 1

    def test_roundtrip_plaintext_profile(self, harness):
        self.install_echo(harness)

        def body():
            reply = yield from harness.secure[0].call("node1", self.request())
            return reply.body

        assert harness.run(body()) == b"echo:put k v"
        assert harness.secure[0].messages_sealed == 0

    def test_tampered_request_detected(self, secure_harness):
        self.install_echo(secure_harness)
        adversary = NetworkAdversary()

        def corrupt(frame):
            data = bytearray(frame.payload)
            data[20] ^= 0xFF  # inside the encrypted metadata
            frame.payload = bytes(data)
            return frame

        adversary.tamper_matching(lambda f: f.meta.get("is_request", False), corrupt)
        secure_harness.fabric.adversary = adversary

        def body():
            yield from secure_harness.secure[0].call("node1", self.request())

        with pytest.raises(IntegrityError):
            secure_harness.run(body())

    def test_duplicated_request_executes_once(self, secure_harness):
        executions = []

        def handler(message, src):
            if False:
                yield None
            executions.append(message.op_id)
            return TxMessage(
                MsgType.ACK, message.node_id, message.txn_id, message.op_id
            )

        secure_harness.secure[1].register(MsgType.TXN_WRITE, handler)
        adversary = NetworkAdversary()
        adversary.duplicate_matching(lambda f: f.meta.get("is_request", False))
        secure_harness.fabric.adversary = adversary

        def body():
            reply = yield from secure_harness.secure[0].call(
                "node1", self.request(op_id=5)
            )
            # Let the duplicate arrive and be rejected.
            yield secure_harness.sim.timeout(0.01)
            return reply

        reply = secure_harness.run(body())
        assert reply.msg_type == MsgType.ACK
        assert executions == [5]
        assert secure_harness.secure[1].replay_guard.rejected == 1

    def test_distinct_ivs_used(self, secure_harness):
        rpc = secure_harness.secure[0]
        first, _ = rpc._encode(self.request(op_id=1))
        second, _ = rpc._encode(self.request(op_id=2))
        assert first[:12] != second[:12]

    def test_encryption_adds_latency(self):
        def elapsed(harness):
            self.install_echo(harness)

            def body():
                yield from harness.secure[0].call(
                    "node1", self.request(body=b"v" * 4000)
                )
                return harness.sim.now

            return harness.run(body())

        from repro.config import TREATY_ENC

        plain = elapsed(NetHarness(profile=TREATY_NO_ENC))
        encrypted = elapsed(NetHarness(profile=TREATY_ENC))
        assert encrypted > plain
