"""Tests for the client access layer (sessions, front-end, wire format)."""

import pytest

from repro.config import DS_ROCKSDB, TREATY_ENC, TREATY_FULL
from repro.core import TreatyCluster
from repro.errors import TransactionAborted


@pytest.fixture(scope="module")
def cluster():
    return TreatyCluster(profile=TREATY_ENC).start()


def test_client_put_get_roundtrip(cluster):
    machine = cluster.client_machine()
    session = cluster.session(machine, coordinator=0)

    def body():
        txn = session.begin()
        yield from txn.put(b"ck1", b"cv1")
        yield from txn.commit()
        txn2 = session.begin()
        value = yield from txn2.get(b"ck1")
        yield from txn2.commit()
        return value

    assert cluster.run(body()) == b"cv1"
    assert session.committed == 2


def test_client_read_missing_key(cluster):
    machine = cluster.client_machine()
    session = cluster.session(machine, coordinator=1)

    def body():
        txn = session.begin()
        value = yield from txn.get(b"missing-key")
        yield from txn.commit()
        return value

    assert cluster.run(body()) is None


def test_client_delete(cluster):
    machine = cluster.client_machine()
    session = cluster.session(machine, coordinator=0)

    def body():
        txn = session.begin()
        yield from txn.put(b"ck-del", b"x")
        yield from txn.commit()
        txn = session.begin()
        yield from txn.delete(b"ck-del")
        yield from txn.commit()
        txn = session.begin()
        value = yield from txn.get(b"ck-del")
        yield from txn.commit()
        return value

    assert cluster.run(body()) is None


def test_client_rollback(cluster):
    machine = cluster.client_machine()
    session = cluster.session(machine, coordinator=2)

    def body():
        txn = session.begin()
        yield from txn.put(b"ck-rb", b"junk")
        yield from txn.rollback()
        check = session.begin()
        value = yield from check.get(b"ck-rb")
        yield from check.commit()
        return value

    assert cluster.run(body()) is None


def test_client_transactions_span_shards(cluster):
    machine = cluster.client_machine()
    session = cluster.session(machine, coordinator=0)
    keys = [b"span-%04d" % i for i in range(12)]
    owners = {cluster.partitioner(k) for k in keys}
    assert len(owners) == 3  # keys really spread over all nodes

    def body():
        txn = session.begin()
        for key in keys:
            yield from txn.put(key, b"v-" + key)
        yield from txn.commit()
        check = session.begin()
        values = []
        for key in keys:
            values.append((yield from check.get(key)))
        yield from check.commit()
        return values

    assert cluster.run(body()) == [b"v-" + k for k in keys]


def test_optimistic_session_single_node():
    cluster = TreatyCluster(profile=TREATY_ENC, num_nodes=1).start()
    machine = cluster.client_machine()
    session = cluster.session(machine, coordinator=0)

    def body():
        txn = session.begin(optimistic=True)
        yield from txn.put(b"occ-key", b"occ-value")
        yield from txn.commit()
        check = session.begin(optimistic=True)
        value = yield from check.get(b"occ-key")
        yield from check.commit()
        return value

    assert cluster.run(body()) == b"occ-value"


def test_concurrent_clients_all_commit(cluster):
    machine = cluster.client_machine()
    sessions = [cluster.session(machine, coordinator=i % 3) for i in range(9)]
    done = []

    def worker(session, i):
        txn = session.begin()
        yield from txn.put(b"cc-%d" % i, b"v%d" % i)
        yield from txn.commit()
        done.append(i)

    for i, session in enumerate(sessions):
        cluster.sim.process(worker(session, i))
    cluster.sim.run()
    assert sorted(done) == list(range(9))


def test_aborted_client_txn_raises(cluster):
    machine = cluster.client_machine()
    session_a = cluster.session(machine, coordinator=0)
    session_b = cluster.session(machine, coordinator=1)
    sim = cluster.sim
    outcome = {}

    def holder():
        txn = session_a.begin()
        yield from txn.put(b"hot-client-key", b"a")
        yield sim.timeout(2.0)
        yield from txn.commit()

    def contender():
        yield sim.timeout(0.1)
        txn = session_b.begin()
        try:
            yield from txn.put(b"hot-client-key", b"b")
            yield from txn.commit()
            outcome["result"] = "committed"
        except TransactionAborted:
            outcome["result"] = "aborted"

    sim.process(holder())
    sim.process(contender())
    sim.run()
    assert outcome["result"] == "aborted"


def test_client_latency_includes_client_network():
    cluster = TreatyCluster(profile=DS_ROCKSDB).start()
    machine = cluster.client_machine()
    session = cluster.session(machine, coordinator=0)
    start = cluster.sim.now

    def body():
        txn = session.begin()
        yield from txn.put(b"lat-key", b"v")
        yield from txn.commit()

    cluster.run(body())
    elapsed = cluster.sim.now - start
    # Two round trips over the 1 GbE client link (>= 4 propagation hops).
    assert elapsed >= 4 * cluster.config.costs.client_propagation
