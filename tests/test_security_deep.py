"""Deeper adversarial scenarios: counter service, vote timeouts, runtime
host-memory tampering, sealed-state tampering."""

import pytest

from repro.config import TREATY_ENC, TREATY_FULL
from repro.core import TreatyCluster
from repro.errors import IntegrityError, TransactionAborted
from repro.net import NetworkAdversary


def local_key(cluster, node_index, tag=b"sd"):
    i = 0
    while True:
        key = b"%s-%04d" % (tag, i)
        if cluster.partitioner(key) == node_index:
            return key
        i += 1


class TestCounterServiceUnderAttack:
    def test_duplicated_counter_updates_harmless(self):
        """Replayed echo-broadcast messages must not advance counters
        twice or break stabilization."""
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        adversary = NetworkAdversary()
        adversary.duplicate_matching(
            lambda f: f.kind == "erpc" and f.meta.get("is_request")
            and f.meta.get("req_type") in (8, 9)  # COUNTER_UPDATE/CONFIRM
        )
        cluster.fabric.adversary = adversary
        node = cluster.nodes[0]

        def body():
            yield from node.counter_client.stabilize("dup-log", 3)
            return node.counter_client.stable_value("dup-log")

        assert cluster.run(body()) == 3
        rejected = sum(n.cluster_rpc.replay_guard.rejected for n in cluster.nodes)
        assert rejected >= 1

    def test_tampered_counter_message_detected(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        adversary = NetworkAdversary()
        state = {"count": 0}

        def corrupt_once(frame):
            state["count"] += 1
            data = bytearray(frame.payload)
            data[len(data) // 2] ^= 0xFF
            frame.payload = bytes(data)
            return frame

        adversary.tamper_matching(
            lambda f: f.kind == "erpc" and f.meta.get("is_request")
            and f.meta.get("req_type") == 8 and state["count"] == 0,
            corrupt_once,
        )
        cluster.fabric.adversary = adversary
        node = cluster.nodes[0]

        # The tampered update fails authentication at the replica (its
        # handler dies), but the quorum still forms from the remaining
        # member + retries, so stabilization eventually succeeds.
        def body():
            yield from node.counter_client.stabilize("tm-log", 1)
            return node.counter_client.stable_value("tm-log")

        # A failed handler fiber surfaces as an unhandled IntegrityError
        # OR the round completes via the quorum — accept either, but the
        # counter must never advance on forged data.
        try:
            value = cluster.run(body())
            assert value == 1
        except IntegrityError:
            pass
        for peer in cluster.nodes:
            assert peer.replica.confirmed.get("tm-log", 0) <= 1

    def test_tampered_sealed_counter_state_detected(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        session = cluster.session(cluster.client_machine())
        key = local_key(cluster, 1)

        def write():
            txn = session.begin()
            yield from txn.put(key, b"v")
            yield from txn.commit()

        cluster.run(write())
        cluster.sim.run(until=cluster.sim.now + 0.1)
        assert cluster.nodes[1].disk.exists("node1/counter.sealed")
        cluster.crash_node(1)
        cluster.nodes[1].disk.tamper("node1/counter.sealed", 20)
        with pytest.raises(IntegrityError):
            cluster.run(cluster.recover_node(1))


class TestVoteTimeout:
    def test_unresponsive_participant_aborts_transaction(self):
        """A prepare that never answers counts as a NO vote after the
        timeout; the transaction aborts everywhere."""
        cluster = TreatyCluster(profile=TREATY_ENC).start()
        adversary = NetworkAdversary()
        adversary.drop_matching(
            lambda f: f.kind == "erpc" and f.meta.get("is_request")
            and f.meta.get("req_type") == 3 and f.dst == "node2"
        )
        cluster.fabric.adversary = adversary
        keys = {i: local_key(cluster, i, tag=b"vt") for i in range(3)}

        def body():
            txn = cluster.nodes[0].coordinator.begin()
            for key in keys.values():
                yield from txn.put(key, b"never")
            yield from txn.commit()

        with pytest.raises(TransactionAborted):
            cluster.run(body())
        cluster.fabric.adversary = None
        cluster.sim.run(until=cluster.sim.now + 2.0)

        def check():
            txn = cluster.nodes[0].coordinator.begin()
            values = []
            for key in keys.values():
                values.append((yield from txn.get(key)))
            yield from txn.commit()
            return values

        assert cluster.run(check()) == [None, None, None]


class TestRuntimeHostMemoryTamper:
    def test_memtable_value_tamper_detected_through_full_stack(self):
        cluster = TreatyCluster(profile=TREATY_ENC).start()
        session = cluster.session(cluster.client_machine())
        key = local_key(cluster, 0, tag=b"hm")

        def write():
            txn = session.begin()
            yield from txn.put(key, b"precious")
            yield from txn.commit()

        cluster.run(write())
        # Adversary flips bits of the sealed value in host memory.
        memtable = cluster.nodes[0].engine.memtable
        victim = max(memtable.host_values)  # most recent value blob
        blob = bytearray(memtable.host_values[victim])
        blob[-1] ^= 0x01
        memtable.host_values[victim] = bytes(blob)

        def read():
            txn = session.begin()
            value = yield from txn.get(key)
            yield from txn.commit()
            return value

        with pytest.raises(IntegrityError):
            cluster.run(read())
