"""Shared fixtures and builders for the test suite."""

import pytest

from repro.config import ClusterConfig, DS_ROCKSDB, TREATY_ENC
from repro.obs import enable_monitor_by_default

# Every cluster the suite builds runs under the online invariant monitor
# (strict: a protocol-safety violation fails the test at the violating
# instant).  Individual tests can still opt out via ClusterConfig.
enable_monitor_by_default()
from repro.crypto import KeyRing
from repro.net import ErpcEndpoint, Fabric, SecureRpc
from repro.sim import Simulator
from repro.storage import Disk, LSMEngine
from repro.tee import NodeRuntime

ROOT_KEY = bytes(range(32))


class StorageHarness:
    """One node's storage stack on a fresh simulated disk."""

    def __init__(self, profile=TREATY_ENC, config=None, name="node0", disk=None):
        self.config = config or ClusterConfig()
        self.sim = Simulator()
        self.runtime = NodeRuntime(self.sim, profile, self.config)
        self.disk = disk if disk is not None else Disk()
        self.keyring = KeyRing(ROOT_KEY)
        self.name = name
        self.engine = LSMEngine(
            self.runtime, self.disk, self.keyring, self.config, name=name
        )

    def run(self, body, name="test-main"):
        return self.sim.run_process(body, name)

    def boot(self):
        self.run(self.engine.bootstrap())
        return self

    def put_all(self, pairs, txn_id=b"t"):
        """Commit key/value pairs through the WAL + MemTable path."""

        def body():
            writes = [
                (key, value, self.engine.next_seq()) for key, value in pairs
            ]
            yield from self.engine.log_commit(txn_id, writes)
            yield from self.engine.apply_writes(writes)

        self.run(body())

    def get(self, key):
        return self.run(self.engine.get(key))

    def reopen(self, profile=None, stable_counters=None):
        """Simulate a crash: new runtime/engine over the same disk."""
        fresh = StorageHarness(
            profile=profile or self.runtime.profile,
            config=self.config,
            name=self.name,
            disk=self.disk,
        )
        fresh.run(fresh.engine.recover(stable_counters))
        return fresh


class TxnHarness(StorageHarness):
    """Storage harness plus the single-node transaction manager."""

    def __init__(self, profile=TREATY_ENC, config=None, name="node0", disk=None):
        super().__init__(profile=profile, config=config, name=name, disk=disk)
        from repro.txn import TransactionManager

        self.manager = TransactionManager(
            self.runtime, self.engine, self.config, name=name
        )

    def txn_put(self, pairs, optimistic=False):
        """One transaction writing all pairs; returns the WAL counter."""

        def body():
            txn = (
                self.manager.begin_optimistic()
                if optimistic
                else self.manager.begin_pessimistic()
            )
            for key, value in pairs:
                if value is None:
                    yield from txn.delete(key)
                else:
                    yield from txn.put(key, value)
            return (yield from txn.commit())

        return self.run(body())


class NetHarness:
    """Two (or more) nodes wired to one fabric, for network-layer tests."""

    def __init__(self, profile=DS_ROCKSDB, config=None, num_nodes=2):
        self.config = config or ClusterConfig()
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, mtu=self.config.costs.net_mtu)
        self.runtimes = []
        self.nics = []
        self.endpoints = []
        self.secure = []
        keyring = KeyRing(ROOT_KEY)
        for i in range(num_nodes):
            runtime = NodeRuntime(self.sim, profile, self.config)
            nic = self.fabric.attach(
                "node%d" % i,
                self.config.costs.net_bandwidth,
                self.config.costs.net_propagation,
            )
            endpoint = ErpcEndpoint(runtime, self.fabric, nic)
            self.runtimes.append(runtime)
            self.nics.append(nic)
            self.endpoints.append(endpoint)
            self.secure.append(SecureRpc(runtime, endpoint, keyring, i))

    def run(self, body, name="test-main"):
        return self.sim.run_process(body, name)


@pytest.fixture
def harness():
    return NetHarness()


@pytest.fixture
def secure_harness():
    return NetHarness(profile=TREATY_ENC)
