"""Tests for authenticated SSTables (blocks, footer, integrity)."""

import pytest

from repro.config import DS_ROCKSDB, TREATY_ENC
from repro.errors import IntegrityError, StorageError
from repro.storage import SSTableReader, TOMBSTONE, build_sstable

from tests.conftest import StorageHarness


def build(harness, entries, filename="node0/sst-000001.sst", block_bytes=256):
    return harness.run(
        build_sstable(
            harness.runtime,
            harness.disk,
            harness.keyring,
            filename,
            0,
            entries,
            block_bytes,
        )
    )


def reader_for(harness, meta):
    return SSTableReader(harness.runtime, harness.disk, harness.keyring, meta)


def sample_entries(n=50, value_size=32):
    return [(b"key-%04d" % i, bytes([i % 256]) * value_size, i + 1) for i in range(n)]


class TestBuildAndGet:
    def test_get_every_key(self):
        harness = StorageHarness()
        entries = sample_entries()
        meta = build(harness, entries)
        reader = reader_for(harness, meta)
        for key, value, seq in entries:
            assert harness.run(reader.get(key)) == (value, seq)

    def test_absent_keys(self):
        harness = StorageHarness()
        meta = build(harness, sample_entries(10))
        reader = reader_for(harness, meta)
        assert harness.run(reader.get(b"key-9999")) is None  # beyond range
        assert harness.run(reader.get(b"key-0005x")) is None  # between keys
        assert harness.run(reader.get(b"a")) is None  # before range

    def test_meta_summary(self):
        harness = StorageHarness()
        entries = sample_entries(20)
        meta = build(harness, entries)
        assert meta.min_key == b"key-0000"
        assert meta.max_key == b"key-0019"
        assert meta.entry_count == 20
        assert meta.max_seq == 20

    def test_multiple_blocks_created(self):
        harness = StorageHarness()
        meta = build(harness, sample_entries(100, value_size=64), block_bytes=256)
        reader = reader_for(harness, meta)
        index = harness.run(reader._load_footer())
        assert len(index) > 5

    def test_tombstones_roundtrip(self):
        harness = StorageHarness()
        entries = [(b"a", b"1", 1), (b"b", TOMBSTONE, 2), (b"c", b"3", 3)]
        meta = build(harness, entries)
        reader = reader_for(harness, meta)
        value, seq = harness.run(reader.get(b"b"))
        assert value is TOMBSTONE
        assert seq == 2

    def test_empty_rejected(self):
        harness = StorageHarness()
        with pytest.raises(StorageError):
            build(harness, [])

    def test_data_encrypted_on_disk(self):
        harness = StorageHarness()
        build(harness, [(b"k", b"super-secret-value", 1)])
        assert b"super-secret-value" not in harness.disk.read("node0/sst-000001.sst")

    def test_plaintext_profile(self):
        harness = StorageHarness(profile=DS_ROCKSDB)
        build(harness, [(b"k", b"visible-value", 1)])
        assert b"visible-value" in harness.disk.read("node0/sst-000001.sst")

    def test_meta_encode_decode(self):
        from repro.storage import SSTableMeta

        harness = StorageHarness()
        meta = build(harness, sample_entries(5))
        assert SSTableMeta.decode(meta.encode()) == meta


class TestScan:
    def test_scan_range(self):
        harness = StorageHarness()
        meta = build(harness, sample_entries(50))
        reader = reader_for(harness, meta)
        result = harness.run(reader.scan(b"key-0010", b"key-0015"))
        assert [k for k, _, _ in result] == [b"key-%04d" % i for i in range(10, 15)]

    def test_scan_open_end(self):
        harness = StorageHarness()
        meta = build(harness, sample_entries(10))
        reader = reader_for(harness, meta)
        result = harness.run(reader.scan(b"key-0008", None))
        assert [k for k, _, _ in result] == [b"key-0008", b"key-0009"]

    def test_scan_outside_range_empty(self):
        harness = StorageHarness()
        meta = build(harness, sample_entries(10))
        reader = reader_for(harness, meta)
        assert harness.run(reader.scan(b"zzz", None)) == []

    def test_all_entries(self):
        harness = StorageHarness()
        entries = sample_entries(30)
        meta = build(harness, entries, block_bytes=128)
        reader = reader_for(harness, meta)
        assert harness.run(reader.all_entries()) == entries


class TestIntegrity:
    def test_block_tamper_detected(self):
        harness = StorageHarness()
        meta = build(harness, sample_entries(50))
        harness.disk.tamper(meta.filename, 10)
        reader = reader_for(harness, meta)
        with pytest.raises(IntegrityError):
            harness.run(reader.get(b"key-0000"))

    def test_footer_tamper_detected(self):
        harness = StorageHarness()
        meta = build(harness, sample_entries(50))
        size = harness.disk.size(meta.filename)
        harness.disk.tamper(meta.filename, size - 10)
        reader = reader_for(harness, meta)
        with pytest.raises(IntegrityError):
            harness.run(reader.get(b"key-0000"))

    def test_whole_file_substitution_detected(self):
        """Replacing the file with another valid SSTable fails the
        MANIFEST-recorded footer hash."""
        harness = StorageHarness()
        meta_a = build(harness, sample_entries(10), filename="node0/a.sst")
        build(harness, [(b"evil", b"data", 99)], filename="node0/b.sst")
        harness.disk.write("node0/a.sst", harness.disk.read("node0/b.sst"))
        reader = reader_for(harness, meta_a)
        with pytest.raises(IntegrityError):
            harness.run(reader.get(b"key-0000"))

    def test_native_profile_does_not_verify(self):
        """The unencrypted baseline is deliberately unable to detect this."""
        harness = StorageHarness(profile=DS_ROCKSDB)
        meta = build(harness, sample_entries(5, value_size=8))
        harness.disk.tamper(meta.filename, 12)
        reader = reader_for(harness, meta)
        harness.run(reader.get(b"key-0002"))  # silently serves bad data
