"""Tests for Treaty's secure message format and the replay guard."""

import pytest

from repro.crypto import Aead
from repro.errors import IntegrityError, ReplayError
from repro.net import MsgType, ReplayGuard, TxMessage, wire_size
from repro.net.message import METADATA_BYTES, PAD_BYTES
from repro.crypto.aead import IV_BYTES, MAC_BYTES

KEY = bytes(range(32))
IV = b"\x07" * IV_BYTES


def sample_message(body=b"key=value"):
    return TxMessage(MsgType.TXN_WRITE, node_id=3, txn_id=42, op_id=7, body=body)


class TestEncoding:
    def test_plain_roundtrip(self):
        message = sample_message()
        assert TxMessage.decode(message.encode()) == message

    def test_metadata_is_80_bytes(self):
        assert len(sample_message(b"").encode()) == METADATA_BYTES

    def test_empty_body(self):
        message = sample_message(b"")
        assert TxMessage.decode(message.encode()).body == b""

    def test_truncated_plaintext_rejected(self):
        with pytest.raises(IntegrityError):
            TxMessage.decode(b"\x00" * 10)

    def test_body_length_mismatch_rejected(self):
        encoded = sample_message(b"abc").encode()
        with pytest.raises(IntegrityError):
            TxMessage.decode(encoded + b"extra")


class TestSealing:
    def test_sealed_roundtrip(self):
        aead = Aead(KEY)
        message = sample_message()
        wire = message.seal(aead, IV)
        assert TxMessage.unseal(aead, wire) == message

    def test_wire_layout_matches_paper(self):
        aead = Aead(KEY)
        body = b"x" * 100
        wire = sample_message(body).seal(aead, IV)
        # IV(12) + pad(4) + metadata(80) + data(100) + MAC(16)
        assert len(wire) == IV_BYTES + PAD_BYTES + METADATA_BYTES + 100 + MAC_BYTES
        assert len(wire) == wire_size(100, encrypted=True)

    def test_plaintext_wire_size(self):
        assert wire_size(100, encrypted=False) == METADATA_BYTES + 100

    def test_metadata_not_visible_on_wire(self):
        aead = Aead(KEY)
        wire = sample_message(b"secret-body").seal(aead, IV)
        assert b"secret-body" not in wire

    @pytest.mark.parametrize("offset", [0, 11, 13, 20, 95, -1])
    def test_any_tamper_detected(self, offset):
        aead = Aead(KEY)
        wire = bytearray(sample_message().seal(aead, IV))
        if offset in (13,):  # inside the 4 B alignment pad: NOT authenticated
            pytest.skip("alignment pad carries no information")
        wire[offset] ^= 0x01
        with pytest.raises(IntegrityError):
            TxMessage.unseal(aead, bytes(wire))

    def test_pad_is_outside_authenticated_region(self):
        aead = Aead(KEY)
        wire = bytearray(sample_message().seal(aead, IV))
        wire[IV_BYTES] ^= 0xFF  # flip pad byte
        assert TxMessage.unseal(aead, bytes(wire)) == sample_message()

    def test_short_wire_rejected(self):
        with pytest.raises(IntegrityError):
            TxMessage.unseal(Aead(KEY), b"short")

    def test_operation_key_identifies_triple(self):
        assert sample_message().operation_key == (3, 42, 7)


class TestReplayGuard:
    def test_first_seen_passes(self):
        guard = ReplayGuard()
        guard.check(sample_message())
        assert len(guard) == 1

    def test_duplicate_rejected(self):
        guard = ReplayGuard()
        guard.check(sample_message())
        with pytest.raises(ReplayError):
            guard.check(sample_message())
        assert guard.rejected == 1

    def test_distinct_ops_pass(self):
        guard = ReplayGuard()
        for op in range(10):
            guard.check(
                TxMessage(MsgType.TXN_WRITE, node_id=1, txn_id=1, op_id=op)
            )
        assert len(guard) == 10

    def test_same_op_different_txn_passes(self):
        guard = ReplayGuard()
        guard.check(TxMessage(MsgType.TXN_READ, 1, 1, 1))
        guard.check(TxMessage(MsgType.TXN_READ, 1, 2, 1))
        guard.check(TxMessage(MsgType.TXN_READ, 2, 1, 1))
        assert len(guard) == 3
