"""Property-based tests (hypothesis) for core data structures/invariants."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import ClusterConfig, DS_ROCKSDB, TREATY_ENC
from repro.crypto import Aead, LogChain
from repro.crypto.aead import IV_BYTES
from repro.errors import IntegrityError
from repro.net.message import MsgType, TxMessage
from repro.sim import SeededRng, Simulator
from repro.storage import SkipList, Writer, Reader
from repro.storage.records import WalRecord
from repro.storage.sstable import SSTableMeta
from repro.workloads.zipf import ZipfianGenerator

KEY = bytes(range(32))

_SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

keys_st = st.binary(min_size=1, max_size=32)
values_st = st.binary(min_size=0, max_size=256)


class TestAeadProperties:
    @_SETTINGS
    @given(plaintext=values_st, aad=st.binary(max_size=32), iv_seed=st.integers(0, 2**64 - 1))
    def test_roundtrip(self, plaintext, aad, iv_seed):
        aead = Aead(KEY)
        iv = iv_seed.to_bytes(8, "little") + b"\x00\x00\x00\x00"
        assert aead.open(aead.seal(iv, plaintext, aad), aad) == plaintext

    @_SETTINGS
    @given(
        plaintext=st.binary(min_size=1, max_size=128),
        position=st.integers(0, 10_000),
        mask=st.integers(1, 255),
    )
    def test_any_tamper_detected(self, plaintext, position, mask):
        aead = Aead(KEY)
        sealed = bytearray(aead.seal(b"\x01" * IV_BYTES, plaintext))
        sealed[position % len(sealed)] ^= mask
        with pytest.raises(IntegrityError):
            aead.open(bytes(sealed))


class TestCodecProperties:
    @_SETTINGS
    @given(
        fields=st.lists(
            st.one_of(
                st.tuples(st.just("u32"), st.integers(0, 2**32 - 1)),
                st.tuples(st.just("u64"), st.integers(0, 2**64 - 1)),
                st.tuples(st.just("blob"), values_st),
            ),
            max_size=12,
        )
    )
    def test_writer_reader_roundtrip(self, fields):
        writer = Writer()
        for kind, value in fields:
            getattr(writer, kind)(value)
        reader = Reader(writer.getvalue())
        for kind, value in fields:
            assert getattr(reader, kind)() == value
        assert reader.exhausted

    @_SETTINGS
    @given(
        kind=st.sampled_from([WalRecord.KIND_COMMIT, WalRecord.KIND_PREPARE]),
        txn_id=st.binary(min_size=1, max_size=24),
        writes=st.lists(
            st.tuples(keys_st, st.one_of(st.none(), values_st), st.integers(0, 2**40)),
            max_size=8,
        ),
    )
    def test_wal_record_roundtrip(self, kind, txn_id, writes):
        record = WalRecord(kind, txn_id, list(writes))
        decoded = WalRecord.decode(record.encode())
        assert decoded.kind == kind
        assert decoded.txn_id == txn_id
        assert decoded.writes == list(writes)

    @_SETTINGS
    @given(
        msg_type=st.sampled_from([MsgType.TXN_READ, MsgType.TXN_WRITE, MsgType.ACK]),
        node=st.integers(0, 2**32),
        txn=st.integers(0, 2**48),
        op=st.integers(0, 2**32),
        body=values_st,
    )
    def test_txmessage_roundtrip(self, msg_type, node, txn, op, body):
        message = TxMessage(msg_type, node, txn, op, body)
        assert TxMessage.decode(message.encode()) == message
        aead = Aead(KEY)
        wire = message.seal(aead, b"\x09" * IV_BYTES)
        assert TxMessage.unseal(aead, wire) == message

    @_SETTINGS
    @given(
        filename=st.text(alphabet="abc123/-.", min_size=1, max_size=40),
        level=st.integers(0, 6),
        min_key=keys_st,
        max_key=keys_st,
        max_seq=st.integers(0, 2**40),
        count=st.integers(0, 2**20),
        nbytes=st.integers(0, 2**40),
    )
    def test_sstable_meta_roundtrip(
        self, filename, level, min_key, max_key, max_seq, count, nbytes
    ):
        meta = SSTableMeta(
            filename, level, b"\x00" * 32, min_key, max_key, max_seq, count, nbytes
        )
        assert SSTableMeta.decode(meta.encode()) == meta


class TestLogChainProperties:
    @_SETTINGS
    @given(bodies=st.lists(values_st, min_size=1, max_size=20))
    def test_chain_replays(self, bodies):
        writer = LogChain(KEY)
        tags = [writer.append(i + 1, body) for i, body in enumerate(bodies)]
        reader = LogChain(KEY)
        for i, (body, tag) in enumerate(zip(bodies, tags)):
            reader.verify_next(i + 1, body, tag)

    @_SETTINGS
    @given(
        bodies=st.lists(values_st, min_size=2, max_size=10),
        drop=st.integers(0, 8),
    )
    def test_dropping_any_entry_detected(self, bodies, drop):
        drop = drop % (len(bodies) - 1)  # drop a non-final entry
        writer = LogChain(KEY)
        entries = [
            (i + 1, body, writer.append(i + 1, body))
            for i, body in enumerate(bodies)
        ]
        del entries[drop]
        reader = LogChain(KEY)
        with pytest.raises(IntegrityError):
            for counter, body, tag in entries:
                reader.verify_next(counter, body, tag)


class TestSkipListProperties:
    @_SETTINGS
    @given(
        operations=st.lists(
            st.tuples(keys_st, st.integers(0, 1000)), max_size=80
        ),
        seed=st.integers(0, 2**32),
    )
    def test_matches_dict_model(self, operations, seed):
        skiplist = SkipList(SeededRng(seed, "prop"))
        model = {}
        for key, value in operations:
            skiplist.insert(key, value)
            model[key] = value
        assert len(skiplist) == len(model)
        assert list(skiplist.items()) == sorted(model.items())
        for key, value in model.items():
            assert skiplist.get(key) == value

    @_SETTINGS
    @given(
        keys=st.sets(keys_st, min_size=1, max_size=40),
        bounds=st.tuples(keys_st, keys_st),
        seed=st.integers(0, 2**32),
    )
    def test_range_matches_model(self, keys, bounds, seed):
        start, end = min(bounds), max(bounds)
        skiplist = SkipList(SeededRng(seed, "prop"))
        for key in keys:
            skiplist.insert(key, None)
        expected = sorted(k for k in keys if start <= k < end)
        assert [k for k, _ in skiplist.range_items(start, end)] == expected


class TestZipfProperties:
    @_SETTINGS
    @given(n=st.integers(1, 5000), seed=st.integers(0, 2**32))
    def test_bounds(self, n, seed):
        gen = ZipfianGenerator(n, SeededRng(seed, "z"))
        for _ in range(50):
            assert 0 <= gen.next() < n


class TestEngineMatchesModel:
    """Randomized (seeded) engine-vs-dict equivalence, encrypted profile."""

    @_SETTINGS
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["put", "delete", "get", "flush"]),
                st.integers(0, 25),
                st.integers(0, 6),
            ),
            max_size=60,
        )
    )
    def test_engine_equivalent_to_dict(self, operations):
        from tests.conftest import StorageHarness

        harness = StorageHarness(
            profile=TREATY_ENC,
            config=ClusterConfig(memtable_limit_bytes=2048, block_bytes=256),
        ).boot()
        model = {}

        def body():
            for op, key_index, value_index in operations:
                key = b"key-%03d" % key_index
                if op == "put":
                    value = b"value-%d" % value_index
                    seq = harness.engine.next_seq()
                    yield from harness.engine.log_commit(b"t", [(key, value, seq)])
                    yield from harness.engine.apply_writes([(key, value, seq)])
                    model[key] = value
                elif op == "delete":
                    seq = harness.engine.next_seq()
                    yield from harness.engine.log_commit(b"t", [(key, None, seq)])
                    yield from harness.engine.apply_writes([(key, None, seq)])
                    model.pop(key, None)
                elif op == "flush":
                    yield from harness.engine.flush()
                else:
                    value = yield from harness.engine.get(key)
                    assert value == model.get(key), key
            # Final check: every key agrees, and scans match.
            for key, expected in model.items():
                value = yield from harness.engine.get(key)
                assert value == expected
            rows = yield from harness.engine.scan(b"key-", b"key-\xff")
            assert rows == sorted(model.items())

        harness.run(body())
