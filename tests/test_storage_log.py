"""Tests for the authenticated counter-stamped logs (WAL/MANIFEST/Clog base)."""

import pytest

from repro.config import DS_ROCKSDB, TREATY_ENC
from repro.crypto import KeyRing
from repro.errors import IntegrityError
from repro.storage import SecureLog

from tests.conftest import ROOT_KEY, StorageHarness


def make_log(profile=TREATY_ENC, disk=None):
    harness = StorageHarness(profile=profile, disk=disk)
    log = SecureLog(
        harness.runtime, harness.disk, "node0/test.log", KeyRing(ROOT_KEY)
    )
    return harness, log


class TestSecureLogBasics:
    def test_counters_are_monotonic_from_one(self):
        harness, log = make_log()

        def body():
            first = yield from log.append(b"a")
            second = yield from log.append(b"b")
            return first, second

        assert harness.run(body()) == (1, 2)
        assert log.last_counter == 2

    def test_replay_returns_payloads_in_order(self):
        harness, log = make_log()

        def body():
            for i in range(5):
                yield from log.append(b"entry-%d" % i)
            return (yield from log.replay())

        entries = harness.run(body())
        assert [c for c, _ in entries] == [1, 2, 3, 4, 5]
        assert entries[3][1] == b"entry-3"

    def test_replay_missing_file_is_empty(self):
        harness, log = make_log()
        assert harness.run(log.replay()) == []

    def test_append_many_single_device_write(self):
        harness, log = make_log()
        before = harness.runtime.io_bytes_written

        def body():
            counters = yield from log.append_many([b"x", b"y", b"z"])
            return counters

        assert harness.run(body()) == [1, 2, 3]
        # One batched write, not three.
        assert harness.runtime.syscalls >= 1

    def test_payload_encrypted_on_disk(self):
        harness, log = make_log()
        harness.run(log.append(b"super-secret-payload"))
        assert b"super-secret-payload" not in harness.disk.read("node0/test.log")

    def test_plaintext_profile_stores_plaintext(self):
        harness, log = make_log(profile=DS_ROCKSDB)
        harness.run(log.append(b"visible-payload"))
        assert b"visible-payload" in harness.disk.read("node0/test.log")

    def test_stable_prefix_limit(self):
        harness, log = make_log()

        def body():
            for i in range(6):
                yield from log.append(b"e%d" % i)
            return (yield from log.replay(up_to_counter=4))

        entries = harness.run(body())
        assert [c for c, _ in entries] == [1, 2, 3, 4]


class TestSecureLogAttacks:
    def _filled(self):
        harness, log = make_log()

        def body():
            for i in range(4):
                yield from log.append(b"payload-%d" % i)

        harness.run(body())
        return harness, log

    def test_tampered_byte_detected(self):
        harness, log = self._filled()
        harness.disk.tamper("node0/test.log", 20)
        with pytest.raises(IntegrityError):
            harness.run(log.replay())

    def test_counter_gap_detected(self):
        """Deleting a middle entry breaks the counter sequence."""
        harness, log = self._filled()
        data = harness.disk.read("node0/test.log")
        entry_len = len(data) // 4
        harness.disk.write(
            "node0/test.log", data[:entry_len] + data[2 * entry_len :]
        )
        with pytest.raises(IntegrityError):
            harness.run(log.replay())

    def test_reordered_entries_detected(self):
        harness, log = self._filled()
        data = harness.disk.read("node0/test.log")
        entry_len = len(data) // 4
        swapped = (
            data[entry_len : 2 * entry_len]
            + data[:entry_len]
            + data[2 * entry_len :]
        )
        harness.disk.write("node0/test.log", swapped)
        with pytest.raises(IntegrityError):
            harness.run(log.replay())

    def test_truncation_hides_suffix_but_prefix_verifies(self):
        """Truncation alone is a rollback: caught by the freshness check
        (core.recovery), not the chain — the chain prefix still verifies."""
        harness, log = self._filled()
        data = harness.disk.read("node0/test.log")
        harness.disk.write("node0/test.log", data[: len(data) // 2])
        entries = harness.run(log.replay())
        assert len(entries) == 2  # prefix verifies; freshness check is separate
        assert log.last_counter == 4  # writer knows 4 were appended

    def test_cross_log_substitution_detected(self):
        """An entry copied from another log fails this log's chain key."""
        harness = StorageHarness()
        keyring = KeyRing(ROOT_KEY)
        log_a = SecureLog(harness.runtime, harness.disk, "node0/a.log", keyring)
        log_b = SecureLog(harness.runtime, harness.disk, "node0/b.log", keyring)

        def body():
            yield from log_a.append(b"from-a")
            yield from log_b.append(b"from-b")

        harness.run(body())
        harness.disk.write("node0/b.log", harness.disk.read("node0/a.log"))
        with pytest.raises(IntegrityError):
            harness.run(log_b.replay())

    def test_reset_from_replay_continues_chain(self):
        harness, log = self._filled()

        def body():
            entries = yield from log.replay(up_to_counter=2)
            log.reset_from_replay(entries)
            counter = yield from log.append(b"after-recovery")
            return counter, (yield from log.replay())

        counter, entries = harness.run(body())
        assert counter == 3
        assert [c for c, _ in entries] == [1, 2, 3]
        assert entries[-1][1] == b"after-recovery"
