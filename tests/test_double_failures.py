"""Multi-failure scenarios: two crashes, coordinator+participant loss."""

import pytest

from repro.config import TREATY_FULL
from repro.core import TreatyCluster
from repro.errors import TransactionAborted
from repro.net import NetworkAdversary


def local_key(cluster, node_index, tag=b"df"):
    i = 0
    while True:
        key = b"%s-%04d" % (tag, i)
        if cluster.partitioner(key) == node_index:
            return key
        i += 1


class TestTwoNodeCrash:
    def test_two_nodes_crash_and_recover_consistently(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        keys = {i: local_key(cluster, i) for i in range(3)}

        def write():
            txn = cluster.nodes[0].coordinator.begin()
            for key in keys.values():
                yield from txn.put(key, b"before")
            yield from txn.commit()

        cluster.run(write())
        cluster.sim.run(until=cluster.sim.now + 0.1)
        cluster.crash_node(1)
        cluster.crash_node(2)
        # Sequential recovery: the first recovering node needs its quorum
        # peer back, so bring node1 up first, then node2.
        cluster.run(cluster.recover_node(1))
        cluster.run(cluster.recover_node(2))
        cluster.sim.run(until=cluster.sim.now + 1.0)

        def check():
            txn = cluster.nodes[0].coordinator.begin()
            values = []
            for key in keys.values():
                values.append((yield from txn.get(key)))
            yield from txn.commit()
            return values

        assert cluster.run(check()) == [b"before"] * 3

    def test_coordinator_and_participant_crash_mid_commit(self):
        """Decision logged; both the coordinator and one participant die
        before the commit instruction lands; both recover; the
        transaction must still commit everywhere."""
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        adversary = NetworkAdversary()
        adversary.drop_matching(
            lambda f: f.kind == "erpc" and f.meta.get("is_request")
            and f.meta.get("req_type") == 4  # all TXN_COMMITs
        )
        cluster.fabric.adversary = adversary
        keys = {i: local_key(cluster, i, tag=b"cm") for i in range(3)}

        def doomed():
            txn = cluster.nodes[0].coordinator.begin()
            for key in keys.values():
                yield from txn.put(key, b"decided")
            yield from txn.commit()

        cluster.sim.process(doomed())
        cluster.sim.run(until=cluster.sim.now + 1.0)
        cluster.fabric.adversary = None
        cluster.crash_node(0)
        cluster.crash_node(1)
        cluster.run(cluster.recover_node(0))
        cluster.run(cluster.recover_node(1))
        cluster.sim.run(until=cluster.sim.now + 3.0)

        def check():
            txn = cluster.nodes[2].coordinator.begin()
            values = []
            for key in keys.values():
                values.append((yield from txn.get(key)))
            yield from txn.commit()
            return values

        assert cluster.run(check()) == [b"decided"] * 3

    def test_repeated_crash_recover_cycles(self):
        cluster = TreatyCluster(profile=TREATY_FULL).start()
        key = local_key(cluster, 1, tag=b"rc")
        for cycle in range(3):
            def write(value):
                txn = cluster.nodes[0].coordinator.begin()
                yield from txn.put(key, value)
                yield from txn.commit()

            cluster.run(write(b"cycle-%d" % cycle))
            cluster.sim.run(until=cluster.sim.now + 0.1)
            cluster.crash_node(1)
            cluster.run(cluster.recover_node(1))

        def read():
            txn = cluster.nodes[0].coordinator.begin()
            value = yield from txn.get(key)
            yield from txn.commit()
            return value

        assert cluster.run(read()) == b"cycle-2"
