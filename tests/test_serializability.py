"""Conflict-serializability of committed histories.

Runs batches of concurrent transactions, captures each committed
transaction's read set (key -> version observed) and write set
(key -> version installed), builds the direct serialization graph
(ww / wr / rw edges) and asserts it is acyclic — the textbook proof
obligation for serializability.
"""

import pytest

from repro.config import ClusterConfig, TREATY_ENC
from repro.errors import TransactionAborted
from repro.sim import SeededRng

from tests.conftest import TxnHarness


def build_conflict_graph(histories):
    """histories: list of (txn_name, reads {k: seq}, writes {k: seq}).

    Returns adjacency dict txn -> set(txn).
    """
    writers_by_version = {}  # (key, seq) -> txn
    versions_by_key = {}  # key -> sorted list of (seq, txn)
    for name, _reads, writes in histories:
        for key, seq in writes.items():
            writers_by_version[(key, seq)] = name
            versions_by_key.setdefault(key, []).append((seq, name))
    for key in versions_by_key:
        versions_by_key[key].sort()

    edges = {name: set() for name, _, _ in histories}

    def add_edge(src, dst):
        if src != dst and src in edges and dst in edges:
            edges[src].add(dst)

    # ww edges: version order is commit order.
    for key, versions in versions_by_key.items():
        for (s1, t1), (s2, t2) in zip(versions, versions[1:]):
            add_edge(t1, t2)
    for name, reads, writes in histories:
        for key, seq in reads.items():
            # wr: the transaction that installed what we read precedes us.
            writer = writers_by_version.get((key, seq))
            if writer is not None:
                add_edge(writer, name)
            # rw: we precede the next writer of that key.
            for version_seq, other in versions_by_key.get(key, ()):
                if version_seq > seq:
                    add_edge(name, other)
                    break
    return edges

def assert_acyclic(edges):
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}

    def visit(node, stack):
        color[node] = GREY
        stack.append(node)
        for succ in edges[node]:
            if color[succ] == GREY:
                raise AssertionError(
                    "serializability violated: cycle through %r"
                    % (stack[stack.index(succ):],)
                )
            if color[succ] == WHITE:
                visit(succ, stack)
        stack.pop()
        color[node] = BLACK

    for node in edges:
        if color[node] == WHITE:
            visit(node, [])


class _Recorder:
    """Wraps the engine's log_commits to capture installed versions."""

    def __init__(self, engine):
        self.engine = engine
        self.versions = {}  # txn_id -> {key: seq}
        self._original = engine.log_commits
        engine.log_commits = self._wrapped

    def _wrapped(self, records):
        for txn_id, writes in records:
            self.versions.setdefault(txn_id, {}).update(
                {key: seq for key, _value, seq in writes}
            )
        result = yield from self._original(records)
        return result


def run_random_history(seed, num_txns=40, num_keys=8, optimistic=False):
    harness = TxnHarness(profile=TREATY_ENC).boot()
    recorder = _Recorder(harness.engine)
    rng = SeededRng(seed, "ser")
    keys = [b"k%02d" % i for i in range(num_keys)]
    harness.put_all([(key, b"init") for key in keys], txn_id=b"init")
    histories = []
    sim = harness.sim

    def worker(index):
        local_rng = rng.child(str(index))
        yield sim.timeout(local_rng.random() * 0.002)
        begin = (
            harness.manager.begin_optimistic
            if optimistic
            else harness.manager.begin_pessimistic
        )
        txn = begin()
        reads = {}
        try:
            for _ in range(local_rng.randint(1, 4)):
                key = local_rng.choice(keys)
                if local_rng.random() < 0.5:
                    yield from txn.get(key)
                    if key in txn.reads:
                        # (reads served from the txn's own write buffer
                        # have no version: they are internal, not edges)
                        reads[key] = txn.reads._reads[key]
                else:
                    yield from txn.put(key, b"w%d" % index)
            yield from txn.commit()
        except TransactionAborted:
            return
        histories.append(
            (txn.txn_id, dict(reads), recorder.versions.get(txn.txn_id, {}))
        )

    for index in range(num_txns):
        sim.process(worker(index))
    sim.run()
    return histories


@pytest.mark.parametrize("seed", [1, 7, 42, 2022])
def test_pessimistic_histories_are_conflict_serializable(seed):
    histories = run_random_history(seed)
    assert len(histories) > 5  # enough committed transactions to matter
    named = [("t%d" % i, r, w) for i, (_, r, w) in enumerate(histories)]
    assert_acyclic(build_conflict_graph(named))


@pytest.mark.parametrize("seed", [3, 9, 77])
def test_optimistic_histories_are_conflict_serializable(seed):
    histories = run_random_history(seed, optimistic=True)
    assert len(histories) > 5
    named = [("t%d" % i, r, w) for i, (_, r, w) in enumerate(histories)]
    assert_acyclic(build_conflict_graph(named))


# -- distributed OCC (validation inside PREPARE) ------------------------------


def run_distributed_occ_history(
    seed, num_txns=30, num_keys=12, mix_pessimistic=False
):
    """Random concurrent global transactions through the full cluster.

    Returns (histories, committed_gids): per committed transaction the
    validate set (key -> observed seq) and installed write versions
    (key -> seq) merged across every node's engine.
    """
    from repro.core.cluster import TreatyCluster

    config = ClusterConfig(seed=seed)
    cluster = TreatyCluster(
        profile=TREATY_ENC, config=config, num_nodes=3
    ).start()
    recorders = [_Recorder(node.engine) for node in cluster.nodes]
    keys = [b"k%02d" % i for i in range(num_keys)]
    sim = cluster.sim

    def load():
        txn = cluster.nodes[0].coordinator.begin()
        for key in keys:
            yield from txn.put(key, b"init")
        yield from txn.commit()

    cluster.run(load(), name="load")
    rng = SeededRng(seed, "docc")
    histories = []

    def worker(index):
        local_rng = rng.child(str(index))
        yield sim.timeout(local_rng.random() * 0.002)
        coordinator = cluster.nodes[index % 3].coordinator
        pessimistic = mix_pessimistic and local_rng.random() < 0.5
        txn = coordinator.begin(optimistic=not pessimistic)
        reads = {}
        try:
            for _ in range(local_rng.randint(1, 4)):
                key = local_rng.choice(keys)
                if local_rng.random() < 0.5:
                    yield from txn.get(key)
                else:
                    yield from txn.put(key, b"w%d" % index)
            if not pessimistic:
                reads = dict(txn._occ_reads)
            yield from txn.commit()
        except TransactionAborted:
            return
        gid_bytes = txn.gid.encode()
        writes = {}
        for recorder in recorders:
            writes.update(recorder.versions.get(gid_bytes, {}))
        histories.append((gid_bytes, reads, writes))

    for index in range(num_txns):
        sim.process(worker(index))
    sim.run()
    return histories


@pytest.mark.parametrize("seed", [5, 13, 99])
def test_distributed_occ_histories_are_conflict_serializable(seed):
    histories = run_distributed_occ_history(seed)
    assert len(histories) > 5
    named = [("t%d" % i, r, w) for i, (_, r, w) in enumerate(histories)]
    assert_acyclic(build_conflict_graph(named))


@pytest.mark.parametrize("seed", [17, 23])
def test_mixed_occ_and_locking_histories_are_serializable(seed):
    """Distributed OCC validates under the same lock table 2PL uses, so
    a mixed population must still produce acyclic histories."""
    histories = run_distributed_occ_history(seed, mix_pessimistic=True)
    assert len(histories) > 5
    named = [("t%d" % i, r, w) for i, (_, r, w) in enumerate(histories)]
    assert_acyclic(build_conflict_graph(named))


def test_cross_node_anti_dependency_cycle_aborts():
    """T1 reads a/writes b, T2 reads b/writes a (a and b on different
    nodes): letting both commit would be the classic write-skew cycle
    r1[a] r2[b] w1[b] w2[a] — PREPARE-time validation must NACK at
    least one of them."""
    from repro.core.cluster import TreatyCluster

    cluster = TreatyCluster(profile=TREATY_ENC, num_nodes=3).start()
    partitioner = cluster.partitioner
    key_a = next(
        b"a%04d" % i for i in range(10_000) if partitioner(b"a%04d" % i) == 0
    )
    key_b = next(
        b"b%04d" % i for i in range(10_000) if partitioner(b"b%04d" % i) == 1
    )
    sim = cluster.sim

    def load():
        txn = cluster.nodes[0].coordinator.begin()
        yield from txn.put(key_a, b"0")
        yield from txn.put(key_b, b"0")
        yield from txn.commit()

    cluster.run(load(), name="load")
    outcomes = {}

    def run_one(name, coordinator, read_key, write_key, gate):
        txn = cluster.nodes[coordinator].coordinator.begin(optimistic=True)
        yield from txn.get(read_key)
        yield from txn.put(write_key, name.encode())
        gate.succeed(None) if not gate.triggered else None
        # Both transactions have read before either commits.
        yield sim.timeout(0.001)
        try:
            yield from txn.commit()
            outcomes[name] = "committed"
        except TransactionAborted:
            outcomes[name] = "aborted"

    gate1, gate2 = sim.event(), sim.event()
    sim.process(run_one("T1", 0, key_a, key_b, gate1))
    sim.process(run_one("T2", 1, key_b, key_a, gate2))
    sim.run()
    assert set(outcomes) == {"T1", "T2"}
    # The rw-cycle must be broken: at most one commits, never both.
    assert list(outcomes.values()).count("committed") <= 1
    # Progress: validation conflicts abort, they do not deadlock.
    assert all(v in ("committed", "aborted") for v in outcomes.values())


def test_graph_checker_detects_cycles():
    """Self-test: a non-serializable history must be flagged."""
    histories = [
        # T1 reads k@0 then writes j@1; T2 reads j@0 then writes k@1.
        ("T1", {"k": 0}, {"j": 1}),
        ("T2", {"j": 0}, {"k": 1}),
    ]
    edges = build_conflict_graph(histories)
    with pytest.raises(AssertionError, match="cycle"):
        assert_acyclic(edges)
