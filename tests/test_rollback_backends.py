"""Tests for the pluggable rollback-protection backends.

Covers the coverage-promise machinery (`repro.core.rollback`): shard
routing determinism and stability across recovery, independent
per-shard frontiers/leases, the exactly-once sync fallback on lease
expiry, backend equivalence for committed state, and the span-leak
regression for crashed stabilizations.
"""

import pytest

from repro.config import ClusterConfig, TREATY_FULL
from repro.core import TreatyCluster
from repro.core.rollback import (
    BACKENDS,
    CounterAsyncBackend,
    CounterSyncBackend,
    LcmBackend,
    make_backend,
)
from repro.core.trusted_counter import shard_of
from repro.errors import NetworkError


def make_cluster(**overrides):
    config = ClusterConfig(tracing=True, monitor=True, **overrides)
    return TreatyCluster(profile=TREATY_FULL, config=config).start()


# -- shard routing -------------------------------------------------------------


class TestShardRouting:
    def test_mapping_is_deterministic(self):
        names = ["node%d/wal-000001.log" % i for i in range(8)]
        first = [shard_of(name, 4) for name in names]
        second = [shard_of(name, 4) for name in names]
        assert first == second
        assert all(0 <= shard < 4 for shard in first)

    def test_single_shard_short_circuits(self):
        assert shard_of("anything", 1) == 0
        assert shard_of("anything", 0) == 0

    def test_many_logs_spread_over_shards(self):
        names = ["node%d/wal-%06d.log" % (i % 3, i) for i in range(64)]
        used = {shard_of(name, 4) for name in names}
        assert used == {0, 1, 2, 3}

    def test_mapping_is_stable_across_recovery(self):
        """The log→shard route depends only on the log name and shard
        count — a recovered node must resolve every log to the same
        counter group its pre-crash incarnation used."""
        cluster = make_cluster(
            rollback_backend="counter-async", counter_shards=4
        )
        node = cluster.nodes[0]
        names = ["recov/log-%02d" % i for i in range(16)]
        before = [node.counter_client.shard_of(name) for name in names]

        def body():
            yield from node.counter_client.stabilize(names[0], 3)

        cluster.run(body())
        cluster.crash_node(0)
        cluster.run(cluster.recover_node(0), name="recover")
        node = cluster.nodes[0]
        after = [node.counter_client.shard_of(name) for name in names]
        assert before == after
        # The recovered client still knows the stabilized value.
        assert node.counter_client.stable_value(names[0]) >= 3


# -- backend construction ------------------------------------------------------


class TestBackendSelection:
    def test_registry_matches_config_values(self):
        assert BACKENDS == ("counter-sync", "counter-async", "lcm")

    def test_make_backend_dispatch(self):
        expected = {
            "counter-sync": CounterSyncBackend,
            "counter-async": CounterAsyncBackend,
            "lcm": LcmBackend,
        }
        for name, cls in expected.items():
            cluster = make_cluster(rollback_backend=name)
            node = cluster.nodes[0]
            assert type(node.rollback) is cls
            assert node.rollback.name == name
            assert node.pipeline.rollback is node.rollback

    def test_unknown_backend_rejected(self):
        cluster = make_cluster()
        node = cluster.nodes[0]
        config = ClusterConfig(rollback_backend="no-such-backend")
        with pytest.raises(ValueError):
            make_backend(node.runtime, node.counter_client, config)

    def test_no_client_no_backend(self):
        cluster = make_cluster()
        node = cluster.nodes[0]
        assert make_backend(node.runtime, None, ClusterConfig()) is None


# -- per-shard frontiers and leases --------------------------------------------


class TestPerShardFrontiers:
    def test_frontiers_and_leases_advance_independently(self):
        cluster = make_cluster(
            rollback_backend="counter-async", counter_shards=4
        )
        node = cluster.nodes[0]
        backend = node.rollback
        client = node.counter_client
        # Two logs guaranteed to live on different shards.
        log_a = "shard-ind/a"
        log_b = next(
            "shard-ind/b%d" % i for i in range(64)
            if client.shard_of("shard-ind/b%d" % i)
            != client.shard_of(log_a)
        )
        shard_a = client.shard_of(log_a)
        shard_b = client.shard_of(log_b)

        def body():
            yield from backend.stabilize(log_a, 5)

        cluster.run(body())
        assert client.stable_value(log_a) == 5
        assert client.stable_value(log_b) == 0
        # Only the serving shard's lease was renewed.
        assert backend.lease_until[shard_a] > 0.0
        assert backend.lease_until[shard_b] == 0.0

        def body_b():
            yield from backend.stabilize(log_b, 2)

        cluster.run(body_b())
        assert client.stable_value(log_b) == 2
        assert backend.lease_until[shard_b] > 0.0

    def test_cross_shard_group_covers_all_targets(self):
        """One stabilize_many spanning several shards: every target is
        covered, with one promise accounting entry."""
        cluster = make_cluster(
            rollback_backend="counter-async", counter_shards=4
        )
        node = cluster.nodes[0]
        backend = node.rollback
        targets = [("xshard/log-%02d" % i, i + 1) for i in range(8)]
        shards = {node.counter_client.shard_of(log) for log, _ in targets}
        assert len(shards) > 1

        def body():
            yield from backend.stabilize_many(targets)

        cluster.run(body())
        for log, value in targets:
            assert node.counter_client.stable_value(log) >= value
        assert backend.promises == 1
        assert backend.covered == len(targets)
        assert backend.sync_fallbacks == 0


# -- lease expiry --------------------------------------------------------------


class TestLeaseExpiry:
    @pytest.mark.parametrize("backend_name", ["counter-async", "lcm"])
    def test_expired_promise_falls_back_exactly_once(self, backend_name):
        cluster = make_cluster(
            rollback_backend=backend_name,
            counter_shards=2,
            counter_lease_s=0.005,
        )
        node = cluster.nodes[0]
        backend = node.rollback
        # Park the drivers: promises can only resolve via the waiter's
        # own lease-expiry fallback.
        backend.drivers_enabled = False
        start = cluster.sim.now

        def body():
            yield from backend.stabilize("lease-exp/a", 7)

        cluster.run(body())
        assert node.counter_client.stable_value("lease-exp/a") == 7
        assert backend.sync_fallbacks == 1
        assert node.runtime.metrics.counter("counter.lease.expired").value == 1
        # The waiter sat out the full grace window before falling back.
        assert cluster.sim.now - start >= 0.005

        targets2 = [("lease-exp/a", 9), ("lease-exp/c", 1)]
        shards2 = {node.counter_client.shard_of(log) for log, _ in targets2}

        def body2():
            yield from backend.stabilize_many(targets2)

        cluster.run(body2())
        # Exactly one more fallback per expired (promise, shard) — never
        # one per target, never a retry loop.
        assert backend.sync_fallbacks == 1 + len(shards2)
        assert node.counter_client.stable_value("lease-exp/a") == 9
        assert node.counter_client.stable_value("lease-exp/c") == 1

    def test_live_driver_never_falls_back(self):
        cluster = make_cluster(
            rollback_backend="counter-async", counter_shards=2
        )
        node = cluster.nodes[0]
        backend = node.rollback

        def body():
            for i in range(6):
                yield from backend.stabilize("no-fallback/%d" % i, i + 1)

        cluster.run(body())
        assert backend.sync_fallbacks == 0
        assert backend.covered == 6
        assert node.runtime.metrics.counter("counter.covered").value == 6
        assert (
            node.runtime.metrics.counter("counter.lease.renewals").value > 0
        )


# -- backend equivalence -------------------------------------------------------


def distinct_keys(cluster, node_index, count, tag):
    keys, i = [], 0
    while len(keys) < count:
        key = b"%s-%05d" % (tag, i)
        if cluster.partitioner(key) == node_index:
            keys.append(key)
        i += 1
    return keys


class TestBackendEquivalence:
    def test_all_backends_commit_identical_state(self):
        """The backend changes how coverage is established, never the
        committed state or the monitor verdict."""
        states = {}
        for backend in BACKENDS:
            cluster = make_cluster(
                rollback_backend=backend,
                counter_shards=1 if backend == "counter-sync" else 2,
            )
            pairs = [
                (distinct_keys(cluster, i, 1, b"beq")[0], b"v-" + name.encode())
                for i, name in enumerate(["a", "b", "c"])
            ]

            def body():
                txn = cluster.nodes[0].coordinator.begin()
                for key, value in pairs:
                    yield from txn.put(key, value)
                yield from txn.commit()

            cluster.run(body())
            cluster.sim.run(until=cluster.sim.now + 0.5)
            cluster.obs.monitor.check_quiescent(now=cluster.sim.now)
            assert cluster.obs.monitor.green, cluster.obs.monitor.violations

            def read(key):
                def rbody():
                    txn = cluster.nodes[
                        cluster.partitioner(key)
                    ].coordinator.begin()
                    value = yield from txn.get(key)
                    yield from txn.commit()
                    return value

                return cluster.run(rbody())

            states[backend] = [read(key) for key, _ in pairs]
        assert states["counter-sync"] == states["counter-async"]
        assert states["counter-sync"] == states["lcm"]
        assert all(value is not None for value in states["counter-sync"])


# -- span-leak regression ------------------------------------------------------


def _open_span_count(tracer):
    return len(tracer._open) + sum(
        len(stack) for stack in tracer._proc_open.values()
    )


class TestSpanLeakOnCrashedStabilization:
    def test_crashed_stabilization_leaves_no_open_spans(self):
        """A NetworkError out of the counter path (zombie fiber after a
        NIC detach) must close the stabilize/wait and group_round spans
        on the way out."""
        cluster = make_cluster()
        node = cluster.nodes[0]
        tracer = cluster.obs.tracer

        def boom(*_args, **_kwargs):
            raise NetworkError("NIC detached")
            yield  # pragma: no cover - generator shape

        node.stabilizer.backend.stabilize = boom
        node.stabilizer.backend.stabilize_many = boom

        def call_single():
            yield from node.stabilizer("leak/a", 3)

        def call_many():
            yield from node.pipeline.stabilize_group(
                [("leak/b", 1), ("leak/c", 2)], txn="t-leak"
            )

        before = _open_span_count(tracer)
        for body in (call_single, call_many):
            with pytest.raises(NetworkError):
                cluster.run(body())
        assert _open_span_count(tracer) == before
