"""Tests for the skip list and the enclave/host-split MemTable."""

import pytest

from repro.config import DS_ROCKSDB, TREATY_ENC
from repro.crypto import KeyRing
from repro.errors import IntegrityError
from repro.sim import SeededRng
from repro.storage import MemTable, SkipList, TOMBSTONE

from tests.conftest import ROOT_KEY, StorageHarness


class TestSkipList:
    def test_insert_get(self):
        skiplist = SkipList(SeededRng(1, "t"))
        assert skiplist.insert(b"b", 2)
        assert skiplist.insert(b"a", 1)
        assert skiplist.get(b"a") == 1
        assert skiplist.get(b"b") == 2
        assert skiplist.get(b"c") is None

    def test_overwrite_returns_false(self):
        skiplist = SkipList(SeededRng(1, "t"))
        assert skiplist.insert(b"k", 1)
        assert not skiplist.insert(b"k", 2)
        assert skiplist.get(b"k") == 2
        assert len(skiplist) == 1

    def test_sorted_iteration(self):
        skiplist = SkipList(SeededRng(1, "t"))
        keys = [b"%04d" % i for i in range(200)]
        for key in reversed(keys):
            skiplist.insert(key, key)
        assert [k for k, _ in skiplist.items()] == keys

    def test_range_items(self):
        skiplist = SkipList(SeededRng(1, "t"))
        for i in range(20):
            skiplist.insert(b"%02d" % i, i)
        result = [k for k, _ in skiplist.range_items(b"05", b"09")]
        assert result == [b"05", b"06", b"07", b"08"]

    def test_range_open_end(self):
        skiplist = SkipList(SeededRng(1, "t"))
        for i in range(5):
            skiplist.insert(b"%d" % i, i)
        assert [k for k, _ in skiplist.range_items(b"3", None)] == [b"3", b"4"]

    def test_large_scale_ordering(self):
        rng = SeededRng(7, "keys")
        skiplist = SkipList(SeededRng(1, "t"))
        keys = {bytes([rng.randrange(256) for _ in range(8)]) for _ in range(2000)}
        for key in keys:
            skiplist.insert(key, None)
        assert [k for k, _ in skiplist.items()] == sorted(keys)


def make_memtable(profile=TREATY_ENC):
    harness = StorageHarness(profile=profile)
    table = MemTable(harness.runtime, KeyRing(ROOT_KEY))
    return harness, table


class TestMemTable:
    def test_put_get_roundtrip(self):
        harness, table = make_memtable()

        def body():
            yield from table.put(b"k1", b"v1", 1)
            return (yield from table.get(b"k1"))

        assert harness.run(body()) == (b"v1", 1)

    def test_missing_key_returns_none(self):
        harness, table = make_memtable()
        assert harness.run(table.get(b"missing")) is None

    def test_tombstone(self):
        harness, table = make_memtable()

        def body():
            yield from table.put(b"k", b"v", 1)
            yield from table.put(b"k", None, 2)
            return (yield from table.get(b"k"))

        value, seq = harness.run(body())
        assert value is TOMBSTONE
        assert seq == 2

    def test_values_encrypted_in_host_memory(self):
        harness, table = make_memtable()
        harness.run(table.put(b"k", b"plaintext-value", 1))
        stored = list(table.host_values.values())[0]
        assert b"plaintext-value" not in stored

    def test_plaintext_profile_skips_crypto(self):
        harness, table = make_memtable(profile=DS_ROCKSDB)
        harness.run(table.put(b"k", b"visible", 1))
        assert list(table.host_values.values())[0] == b"visible"

    def test_host_memory_tamper_detected(self):
        harness, table = make_memtable()
        harness.run(table.put(b"k", b"value", 1))
        value_id = list(table.host_values)[0]
        blob = bytearray(table.host_values[value_id])
        blob[-1] ^= 0x01
        table.host_values[value_id] = bytes(blob)
        with pytest.raises(IntegrityError):
            harness.run(table.get(b"k"))

    def test_enclave_holds_keys_host_holds_values(self):
        harness, table = make_memtable()
        key, value = b"k" * 16, b"v" * 4096
        harness.run(table.put(key, value, 1))
        assert harness.runtime.enclave.memory.used < 200
        assert harness.runtime.host_memory.used >= len(value)

    def test_entries_sorted_decrypted(self):
        harness, table = make_memtable()

        def body():
            yield from table.put(b"b", b"2", 2)
            yield from table.put(b"a", b"1", 1)
            yield from table.put(b"c", None, 3)
            return (yield from table.entries())

        entries = harness.run(body())
        assert entries == [(b"a", b"1", 1), (b"b", b"2", 2), (b"c", TOMBSTONE, 3)]

    def test_seq_of(self):
        harness, table = make_memtable()
        harness.run(table.put(b"k", b"v", 17))
        assert table.seq_of(b"k") == 17
        assert table.seq_of(b"other") is None

    def test_clear_releases_memory(self):
        harness, table = make_memtable()
        for i in range(10):
            harness.run(table.put(b"key-%d" % i, b"v" * 100, i + 1))
        assert harness.runtime.host_memory.used > 0
        table.clear()
        assert harness.runtime.host_memory.used == 0
        assert len(table) == 0
        assert table.approximate_bytes == 0

    def test_overwrite_updates_value(self):
        harness, table = make_memtable()

        def body():
            yield from table.put(b"k", b"old", 1)
            yield from table.put(b"k", b"new", 2)
            return (yield from table.get(b"k"))

        assert harness.run(body()) == (b"new", 2)

    def test_range_scan(self):
        harness, table = make_memtable()

        def body():
            for i in range(10):
                yield from table.put(b"%02d" % i, b"v%d" % i, i + 1)
            return (yield from table.range_scan(b"03", b"06"))

        entries = harness.run(body())
        assert [k for k, _, _ in entries] == [b"03", b"04", b"05"]
