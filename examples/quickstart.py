#!/usr/bin/env python3
"""Quickstart: a secure Treaty cluster in ~40 lines.

Boots a 3-node Treaty cluster with full security (SGX/SCONE cost model,
encryption, stabilization), attests every node through the CAS, and runs
a few distributed transactions through the client API.

Run:  python examples/quickstart.py
"""

from repro import TREATY_FULL, TreatyCluster


def main():
    # One call builds nodes, IAS/CAS/LAS attestation chain and fabric.
    cluster = TreatyCluster(profile=TREATY_FULL).start()
    machine = cluster.client_machine()
    session = cluster.session(machine, coordinator=0)

    def workload():
        # Transactions are generators: the simulator charges TEE,
        # network and storage costs while the logic runs for real.
        txn = session.begin()
        yield from txn.put(b"alice", b"100")
        yield from txn.put(b"bob", b"200")
        yield from txn.commit()  # returns once rollback-protected

        txn = session.begin()
        alice = yield from txn.get(b"alice")
        bob = yield from txn.get(b"bob")
        yield from txn.commit()
        return alice, bob

    start = cluster.sim.now
    alice, bob = cluster.run(workload())
    elapsed_ms = (cluster.sim.now - start) * 1e3

    print("profile     :", TREATY_FULL.name)
    print("alice, bob  :", alice, bob)
    print("elapsed     : %.2f ms of simulated time" % elapsed_ms)
    print("2PC commits :", cluster.nodes[0].coordinator.distributed_commits)
    print("local commits:", cluster.nodes[0].coordinator.local_commits)
    owners = {cluster.partitioner(k) for k in (b"alice", b"bob")}
    print("shards hit  :", sorted(owners))


if __name__ == "__main__":
    main()
