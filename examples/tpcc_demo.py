#!/usr/bin/env python3
"""TPC-C demo: the full five-transaction mix on a secure cluster.

Loads a (scaled-down) 4-warehouse TPC-C database, partitions it by
warehouse over three Treaty nodes, and runs the standard transaction mix
from 8 terminals, printing per-transaction-type commit counts and
overall throughput/latency.

Run:  python examples/tpcc_demo.py
"""

from repro import TREATY_FULL, TreatyCluster
from repro.bench import MetricsCollector
from repro.bench.reporting import format_table
from repro.errors import TransactionAborted
from repro.sim import SeededRng
from repro.workloads import TpccScale, load_tpcc, tpcc_partitioner
from repro.workloads.tpcc import TpccTerminal


def main():
    scale = TpccScale(warehouses=4)
    cluster = TreatyCluster(
        profile=TREATY_FULL, partitioner=tpcc_partitioner(3)
    ).start()
    print("loading TPC-C (%d warehouses) ..." % scale.warehouses)
    cluster.run(load_tpcc(cluster, scale), name="load")

    sim = cluster.sim
    metrics = MetricsCollector("tpcc")
    machines = [cluster.client_machine() for _ in range(2)]
    terminals = []
    duration = 1.0
    end_time = sim.now + duration
    metrics.measure_from(sim.now)

    def terminal_loop(index):
        machine = machines[index % len(machines)]
        home_w = (index % scale.warehouses) + 1
        session = cluster.session(machine, coordinator=(home_w - 1) % 3)
        terminal = TpccTerminal(
            session, scale, home_w, SeededRng(7, "demo", str(index))
        )
        terminals.append(terminal)
        while sim.now < end_time:
            started = sim.now
            try:
                ok = yield from terminal.execute(terminal.choose_type())
            except TransactionAborted:
                metrics.record_abort()
                continue
            if ok:
                metrics.record(started, sim.now)

    for i in range(8):
        sim.process(terminal_loop(i))
    sim.run(until=end_time)
    metrics.finish(sim.now)

    per_type = {}
    for terminal in terminals:
        for name, count in terminal.per_type_commits.items():
            per_type[name] = per_type.get(name, 0) + count
    rows = [(name, count) for name, count in sorted(per_type.items())]
    print(format_table("commits by transaction type", ["type", "commits"], rows))
    summary = metrics.summary()
    print("throughput : %.0f tps" % summary["throughput_tps"])
    print("mean lat   : %.2f ms   p99: %.2f ms"
          % (summary["mean_latency_ms"], summary["p99_ms"]))
    print("aborts     : %d" % summary["aborted"])


if __name__ == "__main__":
    main()
