#!/usr/bin/env python3
"""YCSB demo: throughput/latency across security configurations.

A scaled-down version of the paper's Figure 5 experiment: a read-heavy
YCSB workload against the distributed cluster under three environment
profiles, printing throughput, latency and the relative slowdown.

Run:  python examples/ycsb_demo.py
"""

from repro import DS_ROCKSDB, TREATY_ENC, TREATY_FULL, TreatyCluster
from repro.bench import MetricsCollector
from repro.bench.reporting import format_table
from repro.workloads import YcsbConfig, bulk_load, run_ycsb

PROFILES = [DS_ROCKSDB, TREATY_ENC, TREATY_FULL]


def run_one(profile):
    cluster = TreatyCluster(profile=profile).start()
    config = YcsbConfig(read_proportion=0.8, num_keys=2_000)
    cluster.run(bulk_load(cluster, config), name="load")
    metrics = MetricsCollector(profile.name)
    run_ycsb(cluster, config, metrics, num_clients=24, duration=0.3, warmup=0.1)
    return metrics.summary()


def main():
    print("running YCSB (80% reads, 10 ops/txn, 1000 B values) ...")
    results = [run_one(profile) for profile in PROFILES]
    baseline = results[0]["throughput_tps"]
    rows = [
        (
            summary["name"],
            "%.0f" % summary["throughput_tps"],
            "%.1fx" % (baseline / max(summary["throughput_tps"], 1.0)),
            "%.2f" % summary["mean_latency_ms"],
            "%.2f" % summary["p99_ms"],
            "%d" % summary["aborted"],
        )
        for summary in results
    ]
    print(
        format_table(
            "YCSB read-heavy, 24 clients, 3 nodes",
            ["system", "tput (tps)", "slowdown", "mean lat (ms)", "p99 (ms)", "aborts"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
