#!/usr/bin/env python3
"""Cross-shard bank transfers: atomicity under concurrency and crashes.

Sets up accounts spread over all three shards, runs concurrent transfer
transactions (some of which conflict and abort), crashes a node in the
middle of the run, recovers it, and audits that the total balance is
exactly preserved — the end-to-end ACID demonstration for Treaty's
secure 2PC + recovery protocol.

Run:  python examples/bank_transfers.py
"""

from repro import TREATY_FULL, TransactionAborted, TreatyCluster

NUM_ACCOUNTS = 30
INITIAL_BALANCE = 1_000
NUM_TRANSFERS = 60


def account_key(i):
    return b"account-%04d" % i


def main():
    cluster = TreatyCluster(profile=TREATY_FULL).start()
    machine = cluster.client_machine()
    sessions = [cluster.session(machine, coordinator=i % 3) for i in range(6)]
    sim = cluster.sim

    def setup():
        txn = sessions[0].begin()
        for i in range(NUM_ACCOUNTS):
            yield from txn.put(account_key(i), b"%d" % INITIAL_BALANCE)
        yield from txn.commit()

    cluster.run(setup())
    shards = {cluster.partitioner(account_key(i)) for i in range(NUM_ACCOUNTS)}
    print("accounts spread over shards:", sorted(shards))

    stats = {"committed": 0, "aborted": 0}

    def transfer(worker, src, dst, amount, delay=0.0):
        if delay:
            yield sim.timeout(delay)
        session = sessions[worker % len(sessions)]
        txn = session.begin()
        try:
            src_balance = int((yield from txn.get(account_key(src))))
            dst_balance = int((yield from txn.get(account_key(dst))))
            if src_balance < amount:
                yield from txn.rollback()
                stats["aborted"] += 1
                return
            yield from txn.put(account_key(src), b"%d" % (src_balance - amount))
            yield from txn.put(account_key(dst), b"%d" % (dst_balance + amount))
            yield from txn.commit()
            stats["committed"] += 1
        except TransactionAborted:
            stats["aborted"] += 1

    # Launch concurrent transfers (6 in flight at any time), many
    # touching the same hot accounts — some conflict and abort.
    for i in range(NUM_TRANSFERS):
        sim.process(
            transfer(i, src=i % NUM_ACCOUNTS, dst=(i * 7 + 3) % NUM_ACCOUNTS,
                     amount=10 + i % 40, delay=(i // 6) * 0.02)
        )
    sim.run(until=sim.now + 0.5)
    print("after concurrent phase: %(committed)d committed, %(aborted)d aborted"
          % stats)

    # Crash node 1 mid-life and recover it (disk survives, memory lost).
    print("crashing node1 ...")
    cluster.crash_node(1)
    cluster.run(cluster.recover_node(1))
    print("node1 recovered (attested via LAS, logs verified, freshness ok)")

    # A few more transfers after recovery.
    for i in range(10):
        sim.process(transfer(i, src=(i * 3) % NUM_ACCOUNTS,
                             dst=(i * 11 + 5) % NUM_ACCOUNTS, amount=25))
    sim.run(until=sim.now + 0.5)

    def audit():
        txn = sessions[0].begin()
        total = 0
        for i in range(NUM_ACCOUNTS):
            total += int((yield from txn.get(account_key(i))))
        yield from txn.commit()
        return total

    total = cluster.run(audit())
    expected = NUM_ACCOUNTS * INITIAL_BALANCE
    print("final: %(committed)d committed, %(aborted)d aborted" % stats)
    print("audit: total=%d expected=%d -> %s"
          % (total, expected, "OK" if total == expected else "VIOLATION"))
    assert total == expected


if __name__ == "__main__":
    main()
