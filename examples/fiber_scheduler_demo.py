#!/usr/bin/env python3
"""The §VII-C userland fiber scheduler, demonstrated.

Spawns one fiber per "connected client" on a round-robin userland
scheduler and contrasts it with a naive thread-per-client deployment
where every wake-up costs an async syscall and a world switch.

Run:  python examples/fiber_scheduler_demo.py
"""

from repro.config import ClusterConfig, TREATY_ENC
from repro.sched import Compute, FiberScheduler, Sleep, Wait, YieldNow
from repro.sim import Simulator
from repro.tee import NodeRuntime

NUM_CLIENTS = 32
REQUESTS_PER_CLIENT = 25


def fibers_run():
    sim = Simulator()
    runtime = NodeRuntime(sim, TREATY_ENC, ClusterConfig())
    scheduler = FiberScheduler(runtime, name="demo")

    def client_fiber(index):
        # Serve a burst of requests: compute, then cooperative yield
        # (lock waits, polling) and occasionally sleep (idle client).
        for request in range(REQUESTS_PER_CLIENT):
            yield Compute(8e-6)
            yield YieldNow()
            if request % 5 == 4:
                yield Sleep(200e-6)
        return index

    handles = [scheduler.spawn(client_fiber(i), "client-%d" % i)
               for i in range(NUM_CLIENTS)]
    sim.run()
    assert all(handle.finished for handle in handles)
    return sim.now, runtime.syscalls, scheduler


def threads_run():
    sim = Simulator()
    runtime = NodeRuntime(sim, TREATY_ENC, ClusterConfig())

    def client_thread(index):
        for request in range(REQUESTS_PER_CLIENT):
            # Each wake-up of a kernel-scheduled enclave thread costs a
            # syscall and (naively) a world switch.
            yield from runtime.syscall()
            yield from runtime.world_switch()
            yield from runtime.compute(8e-6)
            if request % 5 == 4:
                yield sim.timeout(200e-6)

    for i in range(NUM_CLIENTS):
        sim.process(client_thread(i))
    sim.run()
    return sim.now, runtime.syscalls


def main():
    fiber_time, fiber_syscalls, scheduler = fibers_run()
    thread_time, thread_syscalls = threads_run()
    print("userland fibers (§VII-C):")
    print("  elapsed          : %.3f ms" % (fiber_time * 1e3))
    print("  syscalls         : %d (only when the scheduler went idle)"
          % fiber_syscalls)
    print("  context switches : %d (all syscall-free)"
          % scheduler.context_switches)
    print("  idle sleeps      : %d" % scheduler.idle_syscalls)
    print("thread-per-client:")
    print("  elapsed          : %.3f ms" % (thread_time * 1e3))
    print("  syscalls         : %d" % thread_syscalls)
    print()
    print("fibers used %.0fx fewer syscalls"
          % (thread_syscalls / max(fiber_syscalls, 1)))


if __name__ == "__main__":
    main()
