#!/usr/bin/env python3
"""Security demo: every §III attack, detected.

Exercises Treaty's security properties end to end:

1. *Tampering with persistent storage* — flip one byte of a WAL on the
   untrusted SSD; recovery fails the authenticated log chain.
2. *Rollback attack* — restore a node's disk to an older (internally
   consistent!) snapshot; recovery detects staleness via the trusted
   counter service.
3. *Network tampering* — flip a bit in a 2PC message; the AEAD check
   rejects it.
4. *Replay* — duplicate a prepare message; the (node, txn, op) triple
   guarantees at-most-once execution.
5. *The baseline contrast* — the same tamper against DS-RocksDB goes
   completely unnoticed.

Run:  python examples/attack_detection.py
"""

from repro import (
    DS_ROCKSDB,
    FreshnessError,
    IntegrityError,
    TREATY_FULL,
    TreatyCluster,
)
from repro.core import rollback_attack, snapshot_node_disk, tamper_attack
from repro.core.recovery import find_log_file
from repro.net import NetworkAdversary


def commit(cluster, session, pairs):
    def body():
        txn = session.begin()
        for key, value in pairs:
            yield from txn.put(key, value)
        yield from txn.commit()

    cluster.run(body())


def demo_storage_tamper():
    print("--- 1. storage tampering ------------------------------------")
    cluster = TreatyCluster(profile=TREATY_FULL).start()
    session = cluster.session(cluster.client_machine())
    # Pick a key whose shard lives on node0, so node0's WAL has data.
    key = next(
        b"doc-%d" % i for i in range(100)
        if cluster.partitioner(b"doc-%d" % i) == 0
    )
    commit(cluster, session, [(key, b"v1")])
    wal = find_log_file(cluster.nodes[0], "wal")
    print("adversary flips one byte of", wal)
    try:
        cluster.run(tamper_attack(cluster, 0, wal, offset=40))
        print("!! undetected")
    except IntegrityError as error:
        print("DETECTED:", error)


def demo_rollback():
    print("--- 2. rollback attack --------------------------------------")
    cluster = TreatyCluster(profile=TREATY_FULL).start()
    session = cluster.session(cluster.client_machine())
    key = next(
        b"bal-%d" % i for i in range(100)
        if cluster.partitioner(b"bal-%d" % i) == 0
    )
    commit(cluster, session, [(key, b"100")])
    stale = snapshot_node_disk(cluster, 0)
    commit(cluster, session, [(key, b"0")])  # spent!
    cluster.sim.run(until=cluster.sim.now + 0.1)  # let stabilization finish
    print("adversary restores the node's disk to the '100' snapshot")
    try:
        cluster.run(rollback_attack(cluster, 0, stale))
        print("!! undetected")
    except FreshnessError as error:
        print("DETECTED:", error)


def demo_network_tamper():
    print("--- 3. network tampering ------------------------------------")
    cluster = TreatyCluster(profile=TREATY_FULL).start()
    adversary = NetworkAdversary()

    def corrupt(frame):
        data = bytearray(frame.payload)
        data[len(data) // 2] ^= 0x01
        frame.payload = bytes(data)
        return frame

    adversary.tamper_matching(
        lambda f: f.kind == "erpc" and f.meta.get("is_request")
        and f.src.startswith("node") and not f.dst.endswith(".front"),
        corrupt,
    )
    cluster.fabric.adversary = adversary
    # A distributed write must cross node boundaries to be attacked.
    key = next(
        b"k%d" % i for i in range(100) if cluster.partitioner(b"k%d" % i) == 1
    )

    def body():
        txn = cluster.nodes[0].coordinator.begin()
        yield from txn.put(key, b"v")

    try:
        cluster.run(body())
        print("!! undetected")
    except IntegrityError as error:
        print("DETECTED:", error)


def demo_replay():
    print("--- 4. message replay ---------------------------------------")
    cluster = TreatyCluster(profile=TREATY_FULL).start()
    adversary = NetworkAdversary()
    adversary.duplicate_matching(
        lambda f: f.kind == "erpc" and f.meta.get("is_request")
        and f.meta.get("req_type") == 2  # duplicate every TXN_WRITE
    )
    cluster.fabric.adversary = adversary
    key = next(
        b"r%d" % i for i in range(100) if cluster.partitioner(b"r%d" % i) == 2
    )

    def body():
        txn = cluster.nodes[0].coordinator.begin()
        yield from txn.put(key, b"exactly-once")
        yield from txn.commit()
        yield cluster.sim.timeout(0.05)

    cluster.run(body())
    rejected = sum(n.cluster_rpc.replay_guard.rejected for n in cluster.nodes)
    print("duplicates rejected by the at-most-once filter:", rejected)


def demo_baseline_blindness():
    print("--- 5. the DS-RocksDB baseline is blind ----------------------")
    cluster = TreatyCluster(profile=DS_ROCKSDB).start()
    session = cluster.session(cluster.client_machine())
    key = next(
        b"vic-%d" % i for i in range(100)
        if cluster.partitioner(b"vic-%d" % i) == 0
    )
    commit(cluster, session, [(key, b"data")])
    manifest = find_log_file(cluster.nodes[0], "manifest")
    try:
        cluster.run(tamper_attack(cluster, 0, manifest, offset=25))
        print("baseline recovered 'successfully' — the tamper went unnoticed")
    except Exception as error:  # pragma: no cover
        print("unexpectedly detected:", error)


def main():
    demo_storage_tamper()
    demo_rollback()
    demo_network_tamper()
    demo_replay()
    demo_baseline_blindness()


if __name__ == "__main__":
    main()
