"""Trace and metrics exporters.

Three output formats:

* **JSONL** — one sorted-key JSON object per record, in emission order.
  Deterministic: the same seed produces byte-identical files.
* **Chrome trace-event JSON** — open with ``chrome://tracing`` (or
  Perfetto's legacy importer).  Spans become ``"X"`` complete events;
  point events become ``"i"`` instants.  ``pid`` is the node, ``tid`` is
  ``<category>/<lane>`` where lanes are assigned greedily so overlapping
  spans of one category never share a row (interval partitioning keeps
  the viewer's nesting rules satisfied).  Trace-context edges that cross
  nodes (a handler span adopted from a remote sender) additionally emit
  ``"s"``/``"f"`` flow events so the viewer draws the causal arrows of
  the transaction's span DAG.
* **summary table** — a fixed-width text rendering of registry
  snapshots for terminals and bench reports.
* **Prometheus text exposition** — renders a :class:`MetricsHub` in the
  ``text/plain; version=0.0.4`` format so the simulated cluster's
  metrics drop into real dashboards: counters as ``_total``, probes and
  gauges as gauges, histograms as cumulative ``_bucket{le=...}`` series
  with ``_sum``/``_count``, every sample labelled with its component.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Optional, Union

__all__ = [
    "to_jsonl",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "summary_table",
    "prometheus_text",
]

Record = Dict[str, Any]


def to_jsonl(records: Iterable[Record]) -> str:
    """Records as JSON-lines text (sorted keys: byte-stable per seed)."""
    lines = [json.dumps(rec, sort_keys=True, separators=(",", ":"))
             for rec in records]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(records: Iterable[Record], path_or_fp: Union[str, IO]) -> None:
    text = to_jsonl(records)
    if hasattr(path_or_fp, "write"):
        path_or_fp.write(text)
    else:
        with open(path_or_fp, "w") as fp:
            fp.write(text)


# -- Chrome trace-event format -------------------------------------------------

def _us(seconds: float) -> float:
    """Simulated seconds -> trace-event microseconds."""
    return round(seconds * 1e6, 3)


def _assign_lanes(spans: List[Record]) -> Dict[int, int]:
    """Greedy interval partitioning per (node, category).

    Returns ``sid -> lane`` such that spans sharing a lane never
    overlap.  Deterministic: spans are processed in (t0, sid) order and
    take the lowest free lane.
    """
    lanes: Dict[int, int] = {}
    groups: Dict[Any, List[Record]] = {}
    for span in spans:
        groups.setdefault((span.get("node"), span["cat"]), []).append(span)
    for group in groups.values():
        group.sort(key=lambda s: (s["t0"], s["sid"]))
        lane_ends: List[float] = []
        for span in group:
            for lane, end in enumerate(lane_ends):
                if end <= span["t0"]:
                    lane_ends[lane] = span["t1"]
                    lanes[span["sid"]] = lane
                    break
            else:
                lanes[span["sid"]] = len(lane_ends)
                lane_ends.append(span["t1"])
    return lanes


def chrome_trace(records: Iterable[Record]) -> Dict[str, Any]:
    """Convert tracer records to a Chrome trace-event document."""
    records = list(records)
    spans = [rec for rec in records if rec["type"] == "span"]
    lanes = _assign_lanes(spans)
    events: List[Dict[str, Any]] = []
    seen_pids = []
    for rec in records:
        pid = rec.get("node") or "sim"
        if pid not in seen_pids:
            seen_pids.append(pid)
        args = dict(rec.get("args") or {})
        if rec.get("txn"):
            args["txn"] = rec["txn"]
        if rec["type"] == "span":
            events.append({
                "ph": "X",
                "name": rec["name"],
                "cat": rec["cat"],
                "pid": pid,
                "tid": "%s/%d" % (rec["cat"], lanes[rec["sid"]]),
                "ts": _us(rec["t0"]),
                "dur": _us(rec["t1"] - rec["t0"]),
                "args": args,
            })
        else:
            events.append({
                "ph": "i",
                "s": "t",
                "name": rec["name"],
                "cat": rec["cat"],
                "pid": pid,
                "tid": "%s/ev" % rec["cat"],
                "ts": _us(rec["t"]),
                "args": args,
            })
    events.extend(_flow_events(spans, lanes))
    metadata = [
        {"ph": "M", "name": "process_name", "pid": pid, "ts": 0,
         "args": {"name": pid}}
        for pid in seen_pids
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def _flow_events(spans: List[Record],
                 lanes: Dict[int, int]) -> List[Dict[str, Any]]:
    """``"s"``/``"f"`` flow-event pairs along cross-node context edges.

    For every span whose trace-context parent lives on a *different*
    node (i.e. the edge the wire header carried), emit a flow start on
    the parent's track and a flow end (``"bp": "e"``: bind to the
    enclosing slice) on the child's.  The start timestamp is clamped
    into the parent's interval — the viewer refuses arrows that leave
    their slice.  Same-node parent/child nesting is already visible from
    the lane layout, so only cross-node edges get arrows.
    """
    by_sid = {span["sid"]: span for span in spans}
    flows: List[Dict[str, Any]] = []
    for span in spans:
        parent = by_sid.get(span["parent"])
        if parent is None or parent.get("node") == span.get("node"):
            continue
        ts = min(max(span["t0"], parent["t0"]), parent["t1"])
        flows.append({
            "ph": "s",
            "name": "ctx",
            "cat": "trace",
            "id": span["sid"],
            "pid": parent.get("node") or "sim",
            "tid": "%s/%d" % (parent["cat"], lanes[parent["sid"]]),
            "ts": _us(ts),
        })
        flows.append({
            "ph": "f",
            "bp": "e",
            "name": "ctx",
            "cat": "trace",
            "id": span["sid"],
            "pid": span.get("node") or "sim",
            "tid": "%s/%d" % (span["cat"], lanes[span["sid"]]),
            "ts": _us(span["t0"]),
        })
    return flows


def write_chrome_trace(records: Iterable[Record],
                       path_or_fp: Union[str, IO]) -> None:
    document = chrome_trace(records)
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    if hasattr(path_or_fp, "write"):
        path_or_fp.write(text)
    else:
        with open(path_or_fp, "w") as fp:
            fp.write(text)


def load_chrome_trace(path_or_fp: Union[str, IO]) -> List[Dict[str, Any]]:
    """Read back a trace file; returns the non-metadata trace events."""
    if hasattr(path_or_fp, "read"):
        document = json.load(path_or_fp)
    else:
        with open(path_or_fp) as fp:
            document = json.load(fp)
    return [event for event in document["traceEvents"] if event["ph"] != "M"]


# -- Prometheus text exposition ------------------------------------------------

def _prom_name(name: str) -> str:
    """``net.txq.depth.node1.req`` -> ``repro_net_txq_depth_node1_req``."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return "repro_" + cleaned


def _prom_value(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _prom_label(component: str) -> str:
    escaped = component.replace("\\", "\\\\").replace('"', '\\"')
    return '{component="%s"}' % escaped


def prometheus_text(hub) -> str:
    """Render a :class:`~repro.obs.registry.MetricsHub` as Prometheus
    text exposition (``text/plain; version=0.0.4``).

    One family per metric name, components as a label.  Counters get the
    ``_total`` suffix; probes (sampled at snapshot time) and gauges
    export as gauges; histograms become cumulative ``_bucket`` series
    plus ``_sum`` and ``_count``.  Deterministic: families and samples
    are emitted in sorted order.
    """
    counters: Dict[str, List[Any]] = {}
    gauges: Dict[str, List[Any]] = {}
    histograms: Dict[str, List[Any]] = {}
    for component in sorted(hub._registries):
        registry = hub._registries[component]
        for name, counter in registry._counters.items():
            counters.setdefault(name, []).append((component, counter.value))
        for name, gauge in registry._gauges.items():
            gauges.setdefault(name, []).append((component, gauge.value))
        for name, fn in registry._probes.items():
            value = fn()
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                gauges.setdefault(name, []).append((component, value))
        for name, histogram in registry._histograms.items():
            histograms.setdefault(name, []).append((component, histogram))

    lines: List[str] = []
    for name in sorted(counters):
        family = _prom_name(name) + "_total"
        lines.append("# TYPE %s counter" % family)
        for component, value in counters[name]:
            lines.append("%s%s %s" % (family, _prom_label(component),
                                      _prom_value(value)))
    for name in sorted(gauges):
        family = _prom_name(name)
        lines.append("# TYPE %s gauge" % family)
        for component, value in gauges[name]:
            lines.append("%s%s %s" % (family, _prom_label(component),
                                      _prom_value(value)))
    for name in sorted(histograms):
        family = _prom_name(name)
        lines.append("# TYPE %s histogram" % family)
        for component, histogram in histograms[name]:
            escaped = component.replace("\\", "\\\\").replace('"', '\\"')
            cumulative = 0
            for edge, count in zip(histogram.edges, histogram.counts):
                cumulative += count
                lines.append(
                    '%s_bucket{component="%s",le="%s"} %d'
                    % (family, escaped, _prom_value(edge), cumulative)
                )
            lines.append(
                '%s_bucket{component="%s",le="+Inf"} %d'
                % (family, escaped, histogram.total)
            )
            lines.append("%s_sum%s %s" % (family, _prom_label(component),
                                          repr(float(histogram.sum))))
            lines.append("%s_count%s %d" % (family, _prom_label(component),
                                            histogram.total))
    return "\n".join(lines) + ("\n" if lines else "")


# -- plain-text summaries ------------------------------------------------------

def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)


#: widest metric/component name a summary table will render before
#: truncating with ``...`` — keeps one runaway probe name from blowing
#: up the whole column for every other row.
_NAME_CAP = 40


def _clip(name: str) -> str:
    if len(name) <= _NAME_CAP:
        return name
    return name[:_NAME_CAP - 3] + "..."


def summary_table(snapshot: Dict[str, Dict[str, Any]],
                  title: str = "metrics") -> str:
    """Render a :meth:`MetricsHub.snapshot` as a fixed-width table.

    Histograms are summarized to ``total/mean/max``; scalar metrics
    print as-is.  Component and metric names longer than ``_NAME_CAP``
    are truncated (with ``...``) instead of widening the columns; output
    stays byte-deterministic per seed.
    """
    rows: List[List[str]] = []
    for component in sorted(snapshot):
        for name, value in sorted(snapshot[component].items()):
            if isinstance(value, dict) and "counts" in value:
                rendered = "n=%d mean=%s max=%s" % (
                    value["total"],
                    _format_value(value["mean"]),
                    _format_value(value["max"] if value["max"] is not None else 0.0),
                )
            else:
                rendered = _format_value(value)
            rows.append([_clip(component), _clip(name), rendered])
    headers = ["component", "metric", "value"]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["=== %s ===" % title,
             "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
             "  ".join("-" * w for w in widths)]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)
