"""Critical-path analysis over a transaction's cross-node span DAG.

Given the tracer's records and a trace id (the hex global transaction
id), this module rebuilds the transaction's span DAG, walks it backward
from the root span's end ("which child finished last?"), and attributes
every instant of the root interval to the category of the span that was
on the critical path at that instant.  The resulting segments exactly
tile the root interval, so the per-category breakdown sums to the
measured commit latency — the property the acceptance test pins.

Categories (the paper's §VIII decomposition):

* ``network``    — RPC exchanges: wire time, eRPC queues/doorbells,
  fiber resume delays (cat ``net``; gaps inside an rpc span between its
  crypto/handler children).
* ``crypto``     — AEAD seal/open passes (cat ``crypto``): the batch
  codec's one-pass frame sealing or per-message sealing.
* ``counter-wait``  — time a transaction fiber spends *blocked on
  coverage*: the ``stabilize/wait`` and ``stabilize/group_round`` spans
  (cat ``stabilize``).  Under the async backends this is the promise
  wait — the cost the caller actually pays.
* ``counter-round`` — the rollback-protection protocol itself:
  ``counter/round`` driver execution and COUNTER_* handler processing
  on replicas (cat ``counter``, rpc handler spans named COUNTER_*).
  Round time off the critical path (a backgrounded CONFIRM leg, a
  driver round nobody is blocked on) does not appear here at all —
  the walk only attributes segments of the commit path.
* ``lock``       — contended lock waits (cat ``locks``).
* ``validate``   — distributed-OCC read-set validation + version
  pinning inside the prepare critical section (cat ``twopc``, name
  ``validate``).
* ``group_commit`` — the group-commit queue/window/WAL wait (cat
  ``storage``, name ``group_commit``).
* ``storage``    — WAL/Clog appends, flushes, compactions (other cat
  ``storage`` spans).
* ``tee``        — enclave transitions, EPC paging and message-buffer
  shielding, carved out of the containing span's own time using the
  ``cost`` argument on cat ``tee`` events.
* ``compute``    — everything else: protocol logic inside handler spans,
  2PC bookkeeping (cats ``twopc``/``node``/``rpc`` own time).

Spans whose parent is outside the trace (the batch codec's crypto spans
are emitted with ``parent=0`` on purpose — a frame has no single owning
fiber) are *grafted* into the smallest same-trace span whose interval
contains them, deterministically, before the walk.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "CATEGORIES",
    "COUNTER_CATEGORIES",
    "CriticalPath",
    "categorize",
    "trace_spans",
    "span_dag",
    "critical_path",
    "transaction_traces",
    "aggregate_critical_paths",
    "format_breakdown",
    "format_phase_table",
    "percentile",
]

Record = Dict[str, Any]

#: presentation order of the latency categories.
CATEGORIES = (
    "network",
    "crypto",
    "counter-wait",
    "counter-round",
    "lock",
    "validate",
    "group_commit",
    "storage",
    "tee",
    "decision",
    "compute",
)

#: the categories that together make up "the counter's share" — used by
#: bench gates that compare against the pre-split single ``counter``
#: category.
COUNTER_CATEGORIES = ("counter-wait", "counter-round")


def categorize(span: Record) -> str:
    """Map one span record to its latency category."""
    cat = span["cat"]
    if cat == "crypto":
        return "crypto"
    if cat == "net":
        return "network"
    if cat == "rpc":
        # Server-side handler spans: counter echo processing is round
        # time; other handlers' own time is protocol compute.
        return (
            "counter-round"
            if span["name"].startswith("COUNTER_")
            else "compute"
        )
    if cat == "stabilize":
        return "counter-wait"
    if cat == "counter":
        return "counter-round"
    if cat == "storage":
        return "group_commit" if span["name"] == "group_commit" else "storage"
    if cat == "locks":
        return "lock"
    if cat == "twopc" and span["name"] in ("decision_wait", "complete"):
        # Non-blocking commit: the quorum-acknowledgement wait on the
        # replicated decision, and a completer's takeover drive.
        return "decision"
    if cat == "twopc" and span["name"] == "validate":
        # Distributed OCC: read-set validation + version pinning inside
        # the participant's prepare critical section.
        return "validate"
    return "compute"


def trace_spans(records: Iterable[Record], trace: str) -> List[Record]:
    """All span records belonging to ``trace``, in emission order."""
    return [
        rec for rec in records
        if rec["type"] == "span" and rec.get("trace") == trace
    ]


def _find_root(spans: Sequence[Record]) -> Optional[Record]:
    """The trace's root: its ``twopc/txn`` span, else the longest span."""
    for span in spans:
        if span["cat"] == "twopc" and span["name"] == "txn":
            return span
    best = None
    for span in spans:
        if best is None or (
            (span["t1"] - span["t0"], -span["sid"])
            > (best["t1"] - best["t0"], -best["sid"])
        ):
            best = span
    return best


def _graft_orphans(spans: Sequence[Record], root: Record) -> Dict[int, int]:
    """Resolve every span's effective parent within the trace.

    Returns ``sid -> parent sid`` (0 for the root).  A span whose
    recorded parent is not a same-trace span is grafted into the
    smallest same-trace span whose interval contains it (ties broken by
    sid; identical intervals graft later sids under earlier ones, which
    also keeps the relation acyclic).  Orphans nothing contains become
    children of the root.
    """
    sids = {span["sid"] for span in spans}
    parents: Dict[int, int] = {}
    for span in spans:
        sid = span["sid"]
        if sid == root["sid"]:
            parents[sid] = 0
            continue
        parent = span["parent"]
        if parent in sids and parent != sid:
            parents[sid] = parent
            continue
        best = None
        for candidate in spans:
            if candidate["sid"] == sid:
                continue
            if not (candidate["t0"] <= span["t0"]
                    and span["t1"] <= candidate["t1"]):
                continue
            same = (candidate["t0"] == span["t0"]
                    and candidate["t1"] == span["t1"])
            if same and candidate["sid"] > sid:
                continue  # the earlier sid hosts; avoids a 2-cycle
            key = (candidate["t1"] - candidate["t0"], candidate["sid"])
            if best is None or key < best[0]:
                best = (key, candidate)
        parents[sid] = best[1]["sid"] if best is not None else root["sid"]
    return parents


def span_dag(
    records: Iterable[Record], trace: str
) -> Tuple[Record, Dict[int, int]]:
    """The trace's span DAG: ``(root record, sid -> parent sid)``.

    The parent map is post-grafting, so in a well-formed trace every
    span's parent chain terminates at the root (parent 0).
    """
    spans = trace_spans(records, trace)
    if not spans:
        raise ValueError("no spans recorded for trace %r" % trace)
    root = _find_root(spans)
    return root, _graft_orphans(spans, root)


class CriticalPath:
    """The critical path of one trace: tiling segments + breakdown."""

    def __init__(self, trace: str, root: Record,
                 segments: List[Tuple[float, float, str, int]],
                 span_count: int):
        self.trace = trace
        self.root = root
        #: ``(t0, t1, category, sid)`` segments tiling the root interval,
        #: in reverse-chronological discovery order.
        self.segments = segments
        self.span_count = span_count
        self.total = root["t1"] - root["t0"]
        breakdown = {category: 0.0 for category in CATEGORIES}
        for t0, t1, category, _sid in segments:
            breakdown[category] += t1 - t0
        self.breakdown = breakdown

    @property
    def outcome(self) -> Optional[str]:
        return (self.root.get("args") or {}).get("outcome")


def critical_path(records: Iterable[Record], trace: str) -> CriticalPath:
    """Compute the critical path of ``trace``; raises if it has no spans."""
    records = list(records)
    spans = trace_spans(records, trace)
    if not spans:
        raise ValueError("no spans recorded for trace %r" % trace)
    root = _find_root(spans)
    parents = _graft_orphans(spans, root)
    children: Dict[int, List[Record]] = {}
    for span in spans:
        if span["sid"] != root["sid"]:
            children.setdefault(parents[span["sid"]], []).append(span)

    segments: List[Tuple[float, float, str, int]] = []

    def walk(span: Record, lo: float, hi: float) -> None:
        """Attribute ``[lo, hi]`` of ``span``, descending into the child
        that finished last ("last finisher" backward sweep)."""
        own = categorize(span)
        # Largest end first; ties to the longer child, then higher sid.
        kids = sorted(
            children.get(span["sid"], ()),
            key=lambda c: (c["t1"], c["t1"] - c["t0"], c["sid"]),
        )
        cursor = hi
        while kids and cursor > lo:
            child = kids.pop()
            child_end = min(child["t1"], cursor)
            child_start = max(child["t0"], lo)
            if child_end <= child_start:
                continue
            if child_end < cursor:
                segments.append((child_end, cursor, own, span["sid"]))
            walk(child, child_start, child_end)
            cursor = child_start
        if cursor > lo:
            segments.append((lo, cursor, own, span["sid"]))

    walk(root, root["t0"], root["t1"])
    path = CriticalPath(trace, root, segments, len(spans))
    _carve_tee(path, records, {span["sid"]: span for span in spans})
    return path


def _carve_tee(path: CriticalPath, records: Iterable[Record],
               by_sid: Dict[int, Record]) -> None:
    """Move modelled TEE costs out of their containing segments.

    Cat ``tee`` events (world switches, EPC paging, message-buffer
    shielding) carry their charged cost; each event lands in exactly one
    critical-path segment (same trace, same node, timestamp inside the
    segment) and its cost — capped at the segment's length — moves from
    the segment's category into ``tee``.  The total is preserved.
    """
    events = [
        rec for rec in records
        if rec["type"] == "event" and rec["cat"] == "tee"
        and rec.get("trace") == path.trace
        and (rec.get("args") or {}).get("cost")
    ]
    if not events:
        return
    remaining = {
        index: t1 - t0
        for index, (t0, t1, _category, _sid) in enumerate(path.segments)
    }
    for event in events:
        t = event["t"]
        node = event.get("node")
        for index, (t0, t1, category, sid) in enumerate(path.segments):
            if category == "tee":
                continue
            if not (t0 <= t < t1 or (t == t1 == path.root["t1"])):
                continue
            span = by_sid.get(sid)
            if span is not None and span.get("node") != node:
                continue
            carve = min(
                float((event.get("args") or {}).get("cost", 0.0)),
                remaining[index],
            )
            if carve > 0.0:
                remaining[index] -= carve
                path.breakdown[category] -= carve
                path.breakdown["tee"] += carve
            break


def transaction_traces(
    records: Iterable[Record], outcome: Optional[str] = None
) -> List[str]:
    """Trace ids with a ``twopc/txn`` root span, in commit order.

    ``outcome`` filters on the root span's recorded outcome
    ("commit"/"abort"); None keeps every distributed transaction.
    """
    traces: List[str] = []
    seen = set()
    for rec in records:
        if rec["type"] != "span" or rec["cat"] != "twopc":
            continue
        if rec["name"] != "txn" or not rec.get("trace"):
            continue
        if outcome is not None and (rec.get("args") or {}).get(
                "outcome") != outcome:
            continue
        if rec["trace"] not in seen:
            seen.add(rec["trace"])
            traces.append(rec["trace"])
    return traces


def percentile(values: Sequence[float], p: float) -> float:
    """Interpolated percentile, ``p`` in [0, 100] (0.0 for no samples)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def aggregate_critical_paths(
    records: Iterable[Record], traces: Optional[Sequence[str]] = None
) -> Dict[str, Any]:
    """Per-category latency samples across many transactions.

    Returns ``{"count", "categories": {cat: [seconds per txn]},
    "totals": [seconds per txn]}`` for the given traces (default: every
    committed distributed transaction in the records).
    """
    records = list(records)
    if traces is None:
        traces = transaction_traces(records, outcome="commit")
    categories: Dict[str, List[float]] = {
        category: [] for category in CATEGORIES
    }
    totals: List[float] = []
    for trace in traces:
        path = critical_path(records, trace)
        totals.append(path.total)
        for category in CATEGORIES:
            categories[category].append(path.breakdown[category])
    return {"count": len(totals), "categories": categories, "totals": totals}


# -- rendering -----------------------------------------------------------------

def _table(title: str, headers: Sequence[str],
           rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["=== %s ===" % title,
             "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
             "  ".join("-" * w for w in widths)]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_breakdown(path: CriticalPath) -> str:
    """One transaction's critical path as a per-category table."""
    rows = []
    for category in CATEGORIES:
        seconds = path.breakdown[category]
        if seconds <= 0.0:
            continue
        rows.append((
            category,
            "%.6f" % (seconds * 1e3),
            "%5.1f%%" % (seconds / path.total * 100 if path.total else 0.0),
        ))
    rows.append(("total", "%.6f" % (path.total * 1e3), "100.0%"))
    title = "critical path: txn %s (%s, %d spans)" % (
        path.trace, path.outcome or "?", path.span_count
    )
    return _table(title, ("category", "ms", "share"), rows)


def format_phase_table(aggregate: Dict[str, Any]) -> str:
    """The bench reports' "where does a millisecond go" p50/p99 table."""
    totals = aggregate["totals"]
    grand_total = sum(totals) or 1.0
    rows = []
    for category in CATEGORIES:
        samples = aggregate["categories"][category]
        if not any(samples):
            continue
        rows.append((
            category,
            "%.3f" % (percentile(samples, 50) * 1e3),
            "%.3f" % (percentile(samples, 99) * 1e3),
            "%5.1f%%" % (sum(samples) / grand_total * 100),
        ))
    rows.append((
        "total",
        "%.3f" % (percentile(totals, 50) * 1e3),
        "%.3f" % (percentile(totals, 99) * 1e3),
        "100.0%",
    ))
    title = ("critical path: where does a millisecond go "
             "(%d committed distributed txns)" % aggregate["count"])
    return _table(title, ("category", "p50 ms", "p99 ms", "share"), rows)
