"""repro.obs — deterministic tracing, metrics, and runtime verification.

The observability subsystem has five parts:

* :mod:`repro.obs.tracer` — structured spans/events on the sim clock,
  zero-cost when disabled;
* :mod:`repro.obs.critpath` — critical-path analysis over a
  transaction's cross-node span DAG, attributing commit latency to
  network / crypto / counter / lock / group-commit / storage / TEE /
  compute;
* :mod:`repro.obs.registry` — per-node counters/gauges/histograms plus
  snapshot-time probes, aggregated by a :class:`MetricsHub`;
* :mod:`repro.obs.export` — JSONL, Chrome ``chrome://tracing`` trace
  events, and plain-text summary tables;
* :mod:`repro.obs.monitor` — an online 2PC invariant monitor that
  verifies protocol safety as the simulation runs.

:class:`Observability` bundles them and installs onto a simulator;
:class:`~repro.core.cluster.TreatyCluster` builds one from its
:class:`~repro.config.ClusterConfig` (``tracing`` / ``monitor`` fields).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .critpath import (
    CATEGORIES,
    CriticalPath,
    aggregate_critical_paths,
    critical_path,
    format_breakdown,
    format_phase_table,
    transaction_traces,
)
from .export import (
    chrome_trace,
    load_chrome_trace,
    summary_table,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .monitor import InvariantMonitor, MonitorViolation
from .registry import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsHub,
    MetricsRegistry,
    SIZE_BUCKETS_BYTES,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer, tracer_of

__all__ = [
    "Observability",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "tracer_of",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsHub",
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS_BYTES",
    "InvariantMonitor",
    "MonitorViolation",
    "CATEGORIES",
    "CriticalPath",
    "critical_path",
    "transaction_traces",
    "aggregate_critical_paths",
    "format_breakdown",
    "format_phase_table",
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "summary_table",
    "enable_monitor_by_default",
    "monitor_enabled_by_default",
]

#: process-wide default for new clusters; the test suite flips it on in
#: ``tests/conftest.py`` so every existing test runs under the monitor.
_MONITOR_BY_DEFAULT = False


def enable_monitor_by_default(enabled: bool = True) -> None:
    """Make every subsequently built cluster install the invariant monitor."""
    global _MONITOR_BY_DEFAULT
    _MONITOR_BY_DEFAULT = enabled


def monitor_enabled_by_default() -> bool:
    return _MONITOR_BY_DEFAULT


class Observability:
    """One deployment's tracer + metrics hub + invariant monitor.

    ``tracing`` retains records for export; ``monitor`` runs the
    invariant checks.  Either alone installs a tracer on the simulator
    (the monitor consumes the event stream without recording it); with
    both off the simulator keeps ``tracer = None`` and instrumented
    components fall back to the free null tracer.
    """

    def __init__(
        self,
        sim,
        tracing: bool = False,
        monitor: bool = False,
        require_stabilization: bool = False,
        strict_monitor: bool = True,
        trace_processes: bool = False,
        liveness_timeout: Optional[float] = None,
    ):
        self.sim = sim
        self.hub = MetricsHub()
        self.tracer: Optional[Tracer] = None
        self.monitor: Optional[InvariantMonitor] = None
        if tracing or monitor:
            self.tracer = Tracer(
                sim, record=tracing, trace_processes=trace_processes
            )
            sim.tracer = self.tracer
        if monitor:
            self.monitor = InvariantMonitor(
                require_stabilization=require_stabilization,
                strict=strict_monitor,
                liveness_timeout=liveness_timeout,
            ).attach(self.tracer)
        sim.obs = self

    @property
    def tracing(self) -> bool:
        return self.tracer is not None and self.tracer.record

    def records(self):
        return self.tracer.records if self.tracer is not None else []

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return self.hub.snapshot()

    def summary(self, title: str = "metrics") -> str:
        return summary_table(self.snapshot(), title=title)
