"""repro.obs — deterministic tracing, metrics, and runtime verification.

The observability subsystem has five parts:

* :mod:`repro.obs.tracer` — structured spans/events on the sim clock,
  zero-cost when disabled;
* :mod:`repro.obs.critpath` — critical-path analysis over a
  transaction's cross-node span DAG, attributing commit latency to
  network / crypto / counter / lock / group-commit / storage / TEE /
  compute;
* :mod:`repro.obs.registry` — per-node counters/gauges/histograms plus
  snapshot-time probes, aggregated by a :class:`MetricsHub`;
* :mod:`repro.obs.export` — JSONL, Chrome ``chrome://tracing`` trace
  events, and plain-text summary tables;
* :mod:`repro.obs.monitor` — an online 2PC invariant monitor that
  verifies protocol safety as the simulation runs.

:class:`Observability` bundles them and installs onto a simulator;
:class:`~repro.core.cluster.TreatyCluster` builds one from its
:class:`~repro.config.ClusterConfig` (``tracing`` / ``monitor`` fields).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .critpath import (
    CATEGORIES,
    CriticalPath,
    aggregate_critical_paths,
    critical_path,
    format_breakdown,
    format_phase_table,
    transaction_traces,
)
from .export import (
    chrome_trace,
    load_chrome_trace,
    prometheus_text,
    summary_table,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .incidents import INCIDENT_KINDS, IncidentLog
from .monitor import InvariantMonitor, MonitorViolation
from .recorder import FlightRecorder, P2Quantile
from .registry import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsHub,
    MetricsRegistry,
    SIZE_BUCKETS_BYTES,
    bucket_quantile,
)
from .timeseries import TimeSeriesRecorder
from .tracer import NULL_TRACER, NullTracer, Span, Tracer, tracer_of

__all__ = [
    "Observability",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "tracer_of",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsHub",
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS_BYTES",
    "InvariantMonitor",
    "MonitorViolation",
    "CATEGORIES",
    "CriticalPath",
    "critical_path",
    "transaction_traces",
    "aggregate_critical_paths",
    "format_breakdown",
    "format_phase_table",
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "summary_table",
    "prometheus_text",
    "bucket_quantile",
    "FlightRecorder",
    "P2Quantile",
    "TimeSeriesRecorder",
    "IncidentLog",
    "INCIDENT_KINDS",
    "enable_monitor_by_default",
    "monitor_enabled_by_default",
]

#: process-wide default for new clusters; the test suite flips it on in
#: ``tests/conftest.py`` so every existing test runs under the monitor.
_MONITOR_BY_DEFAULT = False


def enable_monitor_by_default(enabled: bool = True) -> None:
    """Make every subsequently built cluster install the invariant monitor."""
    global _MONITOR_BY_DEFAULT
    _MONITOR_BY_DEFAULT = enabled


def monitor_enabled_by_default() -> bool:
    return _MONITOR_BY_DEFAULT


class Observability:
    """One deployment's tracer + metrics hub + invariant monitor.

    ``tracing`` retains records for export; ``monitor`` runs the
    invariant checks.  Either alone installs a tracer on the simulator
    (the monitor consumes the event stream without recording it); with
    both off the simulator keeps ``tracer = None`` and instrumented
    components fall back to the free null tracer.
    """

    def __init__(
        self,
        sim,
        tracing: bool = False,
        monitor: bool = False,
        require_stabilization: bool = False,
        strict_monitor: bool = True,
        trace_processes: bool = False,
        liveness_timeout: Optional[float] = None,
        flight_recorder: bool = False,
        trace_ring_spans: int = 50_000,
        timeseries: bool = False,
        timeseries_window_s: float = 0.005,
        incidents: bool = False,
        tail_quantile: float = 0.99,
        tail_warmup: int = 32,
        max_exemplars: int = 16,
        incident_occ_storm_conflicts: int = 20,
        incident_lock_convoy_s: float = 0.01,
    ):
        self.sim = sim
        self.hub = MetricsHub()
        self.tracer: Optional[Tracer] = None
        self.monitor: Optional[InvariantMonitor] = None
        self.recorder: Optional[FlightRecorder] = None
        self.timeseries: Optional[TimeSeriesRecorder] = None
        self.incidents: Optional[IncidentLog] = None
        need_tracer = (tracing or monitor or flight_recorder
                       or timeseries or incidents)
        if need_tracer:
            # The flight recorder needs retained records to retro-dump
            # exemplars from; without full tracing it runs on a bounded
            # ring (`trace_ring_spans`, 0 = unbounded) so it is safe to
            # leave on.  Explicit tracing keeps the full buffer — the
            # export tests byte-compare complete traces.
            ring = (trace_ring_spans or None) if (
                flight_recorder and not tracing
            ) else None
            self.tracer = Tracer(
                sim, record=tracing or flight_recorder,
                trace_processes=trace_processes, ring_max=ring,
            )
            sim.tracer = self.tracer
        if monitor:
            self.monitor = InvariantMonitor(
                require_stabilization=require_stabilization,
                strict=strict_monitor,
                liveness_timeout=liveness_timeout,
            ).attach(self.tracer)
        if flight_recorder:
            self.recorder = FlightRecorder(
                self.tracer, tail_quantile=tail_quantile,
                warmup=tail_warmup, max_exemplars=max_exemplars,
            ).attach()
        if timeseries:
            self.timeseries = TimeSeriesRecorder(
                sim, self.hub, window_s=timeseries_window_s
            ).attach(self.tracer)
        if incidents:
            self.incidents = IncidentLog(
                recorder=self.recorder,
                occ_storm_conflicts=incident_occ_storm_conflicts,
                lock_convoy_s=incident_lock_convoy_s,
            ).attach(self.tracer)
            if self.timeseries is not None:
                self.timeseries.on_window.append(
                    self.incidents.observe_window
                )
            if self.monitor is not None:
                self.monitor.on_violation = self.incidents.monitor_violation
        sim.obs = self

    @property
    def tracing(self) -> bool:
        return self.tracer is not None and self.tracer.record

    def records(self):
        return self.tracer.records if self.tracer is not None else []

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return self.hub.snapshot()

    def summary(self, title: str = "metrics") -> str:
        return summary_table(self.snapshot(), title=title)
