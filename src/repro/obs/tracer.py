"""Deterministic structured tracer keyed to the simulation clock.

Every timestamp a span or event carries is the *simulated* time of the
:class:`~repro.sim.core.Simulator` the tracer is bound to, so two runs
with the same seed produce byte-identical trace files — the property the
export tests pin down.  Wall-clock time never enters a record.

Zero cost when disabled: components resolve their tracer once (at
construction) via :func:`tracer_of`, which returns the shared
:data:`NULL_TRACER` when no tracer is installed on the simulator.  The
null tracer's methods are no-ops and its spans are a single reusable
object, so the instrumentation in the hot paths costs one attribute
lookup plus one no-op call.

Records are plain dicts with two shapes:

``{"type": "event", "t": <sim s>, "cat": ..., "name": ..., "node": ...,
  "txn": ..., "args": {...}}`` — a point event, recorded when emitted.

``{"type": "span", "t0": ..., "t1": ..., "cat": ..., "name": ...,
  "node": ..., "txn": ..., "sid": n, "parent": m, "args": {...}}`` — a
closed span; ``parent`` is the innermost span still open when this one
was opened (0 at top level), giving the nesting the exporters render.

Subscribers (the invariant monitor) receive every record as it is
finalized, whether or not the tracer retains records for export.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "tracer_of"]

Subscriber = Callable[[Dict[str, Any]], None]


class Span:
    """One open interval of simulated time; close it (or use ``with``)."""

    __slots__ = ("tracer", "cat", "name", "node", "txn", "start", "args",
                 "sid", "parent", "_closed")

    def __init__(self, tracer, cat, name, node, txn, start, args, sid, parent):
        self.tracer = tracer
        self.cat = cat
        self.name = name
        self.node = node
        self.txn = txn
        self.start = start
        self.args = args
        self.sid = sid
        self.parent = parent
        self._closed = False

    def close(self, **extra: Any) -> None:
        """Finalize the span at the current simulated instant."""
        if self._closed:
            return
        self._closed = True
        if extra:
            self.args.update(extra)
        self.tracer._close_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class Tracer:
    """Records spans and point events against the simulation clock.

    ``record=False`` keeps the tracer's dispatch (subscribers still see
    every record — how the invariant monitor runs without the memory
    cost of retaining a full trace) but drops the records themselves.
    """

    enabled = True

    def __init__(self, sim, record: bool = True, trace_processes: bool = False):
        self.sim = sim
        self.record = record
        #: emit sim-process start/finish events (chatty; off by default).
        self.trace_processes = trace_processes
        self.records: List[Dict[str, Any]] = []
        self.subscribers: List[Subscriber] = []
        self._ids = itertools.count(1)
        #: innermost-open-first stack used to assign span parents.
        self._open: List[Span] = []
        self.spans_closed = 0
        self.events_emitted = 0

    # -- wiring ------------------------------------------------------------
    def subscribe(self, subscriber: Subscriber) -> None:
        """Call ``subscriber(record)`` for every finalized record."""
        self.subscribers.append(subscriber)

    def _emit(self, rec: Dict[str, Any]) -> None:
        if self.record:
            self.records.append(rec)
        for subscriber in self.subscribers:
            subscriber(rec)

    # -- spans -------------------------------------------------------------
    def span(self, cat: str, name: str, node: Optional[str] = None,
             txn: Optional[str] = None, **args: Any) -> Span:
        """Open a span at the current instant; ``close()`` ends it."""
        parent = self._open[-1].sid if self._open else 0
        span = Span(self, cat, name, node, txn, self.sim.now, args,
                    next(self._ids), parent)
        self._open.append(span)
        return span

    def _close_span(self, span: Span) -> None:
        # Remove by identity: interleaved fibers may close out of order.
        for index in range(len(self._open) - 1, -1, -1):
            if self._open[index] is span:
                del self._open[index]
                break
        self.spans_closed += 1
        self._emit({
            "type": "span", "cat": span.cat, "name": span.name,
            "t0": span.start, "t1": self.sim.now, "node": span.node,
            "txn": span.txn, "sid": span.sid, "parent": span.parent,
            "args": span.args,
        })

    # -- point events ------------------------------------------------------
    def event(self, cat: str, name: str, node: Optional[str] = None,
              txn: Optional[str] = None, **args: Any) -> None:
        """Emit a point event at the current instant."""
        self.events_emitted += 1
        self._emit({
            "type": "event", "cat": cat, "name": name, "t": self.sim.now,
            "node": node, "txn": txn, "args": args,
        })

    # -- sim process hooks (called from repro.sim.core) --------------------
    def process_started(self, process) -> None:
        if self.trace_processes:
            self.event("sim", "process_start", process=process.name)

    def process_finished(self, process) -> None:
        if self.trace_processes:
            self.event("sim", "process_end", process=process.name)


class _NullSpan:
    """Reusable do-nothing span handed out by the null tracer."""

    __slots__ = ()

    def close(self, **extra: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False
    record = False
    records: List[Dict[str, Any]] = []

    __slots__ = ()

    def subscribe(self, subscriber: Subscriber) -> None:
        raise RuntimeError("cannot subscribe to the null tracer")

    def span(self, cat: str, name: str, node: Optional[str] = None,
             txn: Optional[str] = None, **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, cat: str, name: str, node: Optional[str] = None,
              txn: Optional[str] = None, **args: Any) -> None:
        pass

    def process_started(self, process) -> None:
        pass

    def process_finished(self, process) -> None:
        pass


NULL_TRACER = NullTracer()


def tracer_of(sim) -> Any:
    """The tracer installed on ``sim``, or the shared null tracer.

    Components call this once at construction and keep the result, so
    the disabled path costs nothing per operation.
    """
    return getattr(sim, "tracer", None) or NULL_TRACER
