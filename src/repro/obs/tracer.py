"""Deterministic structured tracer keyed to the simulation clock.

Every timestamp a span or event carries is the *simulated* time of the
:class:`~repro.sim.core.Simulator` the tracer is bound to, so two runs
with the same seed produce byte-identical trace files — the property the
export tests pin down.  Wall-clock time never enters a record.

Zero cost when disabled: components resolve their tracer once (at
construction) via :func:`tracer_of`, which returns the shared
:data:`NULL_TRACER` when no tracer is installed on the simulator.  The
null tracer's methods are no-ops and its spans are a single reusable
object, so the instrumentation in the hot paths costs one attribute
lookup plus one no-op call.

Records are plain dicts with two shapes:

``{"type": "event", "t": <sim s>, "cat": ..., "name": ..., "node": ...,
  "txn": ..., "trace": ..., "args": {...}}`` — a point event, recorded
when emitted.

``{"type": "span", "t0": ..., "t1": ..., "cat": ..., "name": ...,
  "node": ..., "txn": ..., "trace": ..., "sid": n, "parent": m,
  "args": {...}}`` — a closed span.

Parent/trace assignment is **fiber-local**: each simulator process (the
paper's SCONE fiber) carries its own open-span stack, so interleaved
fibers no longer steal each other's parents the way the original single
global stack allowed.  A span's ``parent`` is the innermost span still
open *in the opening fiber*; a fiber spawned while a span is open
inherits that span's ``(trace, sid)`` as its starting context, so
background processes (group-commit leaders, counter round drivers,
recovery redrives) chain under the work that spawned them.  Cross-node
edges are established explicitly: the RPC layer stamps the sender's
context into the sealed message metadata and the receiving fiber calls
:meth:`Tracer.adopt` — see ``docs/OBSERVABILITY.md`` for the wire
format.  ``trace`` is the transaction-scoped trace id (the hex global
transaction id for 2PC work) grouping one causal DAG per transaction.

Subscribers (the invariant monitor) receive every record as it is
finalized, whether or not the tracer retains records for export.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "tracer_of"]

Subscriber = Callable[[Dict[str, Any]], None]


class Span:
    """One open interval of simulated time; close it (or use ``with``)."""

    __slots__ = ("tracer", "cat", "name", "node", "txn", "start", "args",
                 "sid", "parent", "trace", "_stack", "_closed")

    def __init__(self, tracer, cat, name, node, txn, start, args, sid,
                 parent, trace, stack):
        self.tracer = tracer
        self.cat = cat
        self.name = name
        self.node = node
        self.txn = txn
        self.start = start
        self.args = args
        self.sid = sid
        self.parent = parent
        self.trace = trace
        self._stack = stack
        self._closed = False

    def close(self, **extra: Any) -> None:
        """Finalize the span at the current simulated instant."""
        if self._closed:
            return
        self._closed = True
        if extra:
            self.args.update(extra)
        self.tracer._close_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class Tracer:
    """Records spans and point events against the simulation clock.

    ``record=False`` keeps the tracer's dispatch (subscribers still see
    every record — how the invariant monitor runs without the memory
    cost of retaining a full trace) but drops the records themselves.
    """

    enabled = True

    def __init__(self, sim, record: bool = True, trace_processes: bool = False,
                 ring_max: Optional[int] = None):
        self.sim = sim
        self.record = record
        #: emit sim-process start/finish events (chatty; off by default).
        self.trace_processes = trace_processes
        #: flight-recorder mode: retain at most ``ring_max`` records,
        #: evicting the oldest (FIFO in emission order, so eviction is
        #: exactly as deterministic as emission).  ``None`` = unbounded.
        self.ring_max = ring_max
        if ring_max is not None:
            self.records: Any = deque(maxlen=ring_max)
        else:
            self.records = []
        self.records_evicted = 0
        self.subscribers: List[Subscriber] = []
        self._ids = itertools.count(1)
        #: open-span stack for code running outside any process.
        self._open: List[Span] = []
        #: per-process open-span stacks (fiber-local parent assignment).
        self._proc_open: Dict[Any, List[Span]] = {}
        #: per-process inherited/adopted ``(trace, parent sid)`` context,
        #: captured at spawn time or set by :meth:`adopt`.
        self._proc_ctx: Dict[Any, Tuple[Optional[str], int]] = {}
        self.spans_closed = 0
        self.events_emitted = 0

    # -- wiring ------------------------------------------------------------
    def subscribe(self, subscriber: Subscriber) -> None:
        """Call ``subscriber(record)`` for every finalized record."""
        self.subscribers.append(subscriber)

    def _emit(self, rec: Dict[str, Any]) -> None:
        if self.record:
            if (self.ring_max is not None
                    and len(self.records) == self.ring_max):
                self.records_evicted += 1
            self.records.append(rec)
        for subscriber in self.subscribers:
            subscriber(rec)

    # -- fiber-local context -----------------------------------------------
    def _current_stack(self) -> List[Span]:
        process = getattr(self.sim, "current_process", None)
        if process is None:
            return self._open
        stack = self._proc_open.get(process)
        if stack is None:
            stack = self._proc_open[process] = []
        return stack

    def current_context(self) -> Tuple[Optional[str], int]:
        """The ``(trace, parent sid)`` a new span here would attach to.

        Resolution order: the innermost span open in the current fiber,
        then the fiber's inherited/adopted context, then the innermost
        span on the off-process stack, else ``(None, 0)``.
        """
        process = getattr(self.sim, "current_process", None)
        if process is not None:
            stack = self._proc_open.get(process)
            if stack:
                top = stack[-1]
                return top.trace, top.sid
            context = self._proc_ctx.get(process)
            if context is not None:
                return context
        if self._open:
            top = self._open[-1]
            return top.trace, top.sid
        return None, 0

    def adopt(self, trace: Optional[str], parent: int) -> None:
        """Adopt a remote ``(trace, parent sid)`` as this fiber's context.

        Called by the RPC layer when a message carrying a trace context
        is dispatched to a handler fiber: spans the fiber (and fibers it
        spawns) opens chain under the sender's span, joining the
        transaction's cross-node DAG.
        """
        process = getattr(self.sim, "current_process", None)
        if process is not None:
            self._proc_ctx[process] = (trace, parent)

    # -- spans -------------------------------------------------------------
    def span(self, cat: str, name: str, node: Optional[str] = None,
             txn: Optional[str] = None, parent: Optional[int] = None,
             trace: Optional[str] = None, **args: Any) -> Span:
        """Open a span at the current instant; ``close()`` ends it.

        ``parent``/``trace`` override the fiber-local context — used at
        adoption points (RPC handlers, counter round drivers) to attach
        a span to an explicitly carried remote context.
        """
        if parent is None or trace is None:
            inherited_trace, inherited_parent = self.current_context()
            if parent is None:
                parent = inherited_parent
            if trace is None:
                trace = inherited_trace
        stack = self._current_stack()
        span = Span(self, cat, name, node, txn, self.sim.now, args,
                    next(self._ids), parent, trace, stack)
        stack.append(span)
        return span

    def _close_span(self, span: Span) -> None:
        # Remove by identity from the owning fiber's stack: a span may be
        # closed from a different fiber (or after its fiber finished).
        stack = span._stack
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is span:
                del stack[index]
                break
        span._stack = None
        self.spans_closed += 1
        self._emit({
            "type": "span", "cat": span.cat, "name": span.name,
            "t0": span.start, "t1": self.sim.now, "node": span.node,
            "txn": span.txn, "trace": span.trace, "sid": span.sid,
            "parent": span.parent, "args": span.args,
        })

    # -- point events ------------------------------------------------------
    def event(self, cat: str, name: str, node: Optional[str] = None,
              txn: Optional[str] = None, trace: Optional[str] = None,
              **args: Any) -> None:
        """Emit a point event at the current instant.

        The event is stamped with the current fiber's trace id unless an
        explicit ``trace`` is given, so point events (counter advances,
        TEE transitions) land inside their transaction's DAG.
        """
        if trace is None:
            trace = self.current_context()[0]
        self.events_emitted += 1
        self._emit({
            "type": "event", "cat": cat, "name": name, "t": self.sim.now,
            "node": node, "txn": txn, "trace": trace, "args": args,
        })

    # -- sim process hooks (called from repro.sim.core) --------------------
    def process_started(self, process) -> None:
        # Process.__init__ runs in the *spawning* fiber, so the current
        # context here is the spawner's — capture it as the new fiber's
        # inherited context (background work chains under its creator).
        trace, parent = self.current_context()
        if trace is not None or parent:
            self._proc_ctx[process] = (trace, parent)
        if self.trace_processes:
            self.event("sim", "process_start", process=process.name)

    def process_finished(self, process) -> None:
        self._proc_open.pop(process, None)
        self._proc_ctx.pop(process, None)
        if self.trace_processes:
            self.event("sim", "process_end", process=process.name)


class _NullSpan:
    """Reusable do-nothing span handed out by the null tracer."""

    __slots__ = ()

    sid = 0
    parent = 0
    trace = None

    def close(self, **extra: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False
    record = False
    records: List[Dict[str, Any]] = []
    ring_max: Optional[int] = None
    records_evicted = 0

    __slots__ = ()

    def subscribe(self, subscriber: Subscriber) -> None:
        raise RuntimeError("cannot subscribe to the null tracer")

    def span(self, cat: str, name: str, node: Optional[str] = None,
             txn: Optional[str] = None, parent: Optional[int] = None,
             trace: Optional[str] = None, **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, cat: str, name: str, node: Optional[str] = None,
              txn: Optional[str] = None, trace: Optional[str] = None,
              **args: Any) -> None:
        pass

    def current_context(self) -> Tuple[Optional[str], int]:
        return None, 0

    def adopt(self, trace: Optional[str], parent: int) -> None:
        pass

    def process_started(self, process) -> None:
        pass

    def process_finished(self, process) -> None:
        pass


NULL_TRACER = NullTracer()


def tracer_of(sim) -> Any:
    """The tracer installed on ``sim``, or the shared null tracer.

    Components call this once at construction and keep the result, so
    the disabled path costs nothing per operation.
    """
    return getattr(sim, "tracer", None) or NULL_TRACER
