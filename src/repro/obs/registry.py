"""Per-node metrics registry: counters, gauges, fixed-bucket histograms.

Components publish where simulated time and bytes go — 2PC phase
latencies, stabilization round trips, enclave transitions, lock waits,
log/SSTable bytes, RPC frames — into a :class:`MetricsRegistry`.  Two
publication styles keep the hot paths cheap:

* *active* — ``registry.counter("x").inc()`` / ``histogram.observe(v)``
  for quantities that need per-sample resolution (latencies);
* *probes* — ``registry.probe("x", fn)`` registers a callable sampled
  only at :meth:`MetricsRegistry.snapshot` time, so existing attribute
  counters (``enclave.transitions``, ``fabric.delivered_frames``) are
  surfaced with zero added cost on the paths that maintain them.

A :class:`MetricsHub` aggregates one registry per node (plus the fabric
and other cluster-wide components) and snapshots them all for reports.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsHub",
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS_BYTES",
    "bucket_quantile",
]

#: default latency bucket upper edges, in simulated seconds (1 µs – 10 s).
LATENCY_BUCKETS_S = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 1.0, 10.0,
)

#: default size bucket upper edges, in bytes (64 B – 16 MiB).
SIZE_BUCKETS_BYTES = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
)


def bucket_quantile(
    edges: Sequence[float],
    counts: Sequence[int],
    q: float,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> float:
    """Interpolated quantile over fixed-bucket counts.

    ``counts[i]`` counts observations ``<= edges[i]`` (``counts[-1]`` is
    the overflow bucket).  The estimate interpolates linearly *within*
    the covering bucket — between its lower and upper edge, proportional
    to the rank's position among the bucket's observations — the same
    estimator :func:`repro.obs.critpath.percentile` applies to raw
    samples, so registry and critical-path percentiles agree to within
    one bucket's resolution instead of the old upper-edge bias.

    ``lo``/``hi`` bound the first bucket's lower edge and the overflow
    bucket's upper edge (typically the observed min/max).
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    running = 0
    for index, count in enumerate(counts):
        below = running
        running += count
        if running >= rank and count > 0:
            if index < len(edges):
                upper = edges[index]
                lower = edges[index - 1] if index > 0 else (
                    lo if lo is not None else 0.0
                )
            else:
                lower = edges[-1]
                upper = hi if hi is not None else edges[-1]
            lower = min(lower, upper)
            fraction = (rank - below) / count
            return lower + (upper - lower) * fraction
    last = hi if hi is not None else edges[-1]
    return last


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can move in either direction."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-bucket histogram with ``value <= edge`` bucket semantics.

    ``counts[i]`` counts observations with ``value <= edges[i]`` (and
    greater than ``edges[i-1]``); ``counts[-1]`` is the overflow bucket
    for observations beyond the last edge.
    """

    __slots__ = ("edges", "counts", "total", "sum", "min", "max")

    def __init__(self, edges: Sequence[float]):
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        ordered = tuple(edges)
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.edges = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.total = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated quantile within the covering bucket.

        Previously this returned the covering bucket's *upper edge*,
        biasing every estimate high by up to a full bucket width (a
        2.1 ms p50 reported as 5 ms with the default latency edges).
        Now it interpolates (:func:`bucket_quantile`), clamped to the
        observed min/max.
        """
        if self.total == 0:
            return 0.0
        estimate = bucket_quantile(
            self.edges, self.counts, q, lo=self.min, hi=self.max
        )
        if self.min is not None:
            estimate = max(estimate, self.min)
        if self.max is not None:
            estimate = min(estimate, self.max)
        return estimate

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "sum": self.sum,
            "mean": self.mean(),
            "min": self.min,
            "max": self.max,
            "edges": list(self.edges),
            "counts": list(self.counts),
        }


class MetricsRegistry:
    """One component's named metrics (typically one registry per node)."""

    def __init__(self, name: str = ""):
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._probes: Dict[str, Callable[[], Any]] = {}

    # -- get-or-create ----------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str,
                  edges: Sequence[float] = LATENCY_BUCKETS_S) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(edges)
        return histogram

    def probe(self, name: str, fn: Callable[[], Any]) -> None:
        """Register ``fn`` to be sampled at snapshot time."""
        self._probes[name] = fn

    # -- reporting --------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """All metrics as a sorted, JSON-serializable dict."""
        out: Dict[str, Any] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, fn in self._probes.items():
            out[name] = fn()
        for name, histogram in self._histograms.items():
            out[name] = histogram.as_dict()
        return {key: out[key] for key in sorted(out)}


class MetricsHub:
    """Registries from every component, keyed by component name."""

    def __init__(self):
        self._registries: Dict[str, MetricsRegistry] = {}

    def add(self, name: str, registry: MetricsRegistry) -> MetricsRegistry:
        """Attach (or replace, e.g. after a node recovers) a registry."""
        registry.name = name
        self._registries[name] = registry
        return registry

    def registry(self, name: str) -> MetricsRegistry:
        registry = self._registries.get(name)
        if registry is None:
            registry = self._registries[name] = MetricsRegistry(name)
        return registry

    def names(self) -> List[str]:
        return sorted(self._registries)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {name: self._registries[name].snapshot()
                for name in sorted(self._registries)}
