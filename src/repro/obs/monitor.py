"""Online 2PC invariant monitor.

Subscribes to the tracer's event stream and checks Treaty's safety
argument *while the simulation runs* — the runtime-verification stance
of LCM-style rollback detectors and Fides, rather than test-only
assertions.  Invariants:

I1 **decision-before-apply** — no participant applies a commit before
   the coordinator logged the decision to its Clog and (under
   stabilization profiles) the decision entry is rollback-protected.
I2 **stable-before-ack** — no participant ACKs a prepare before the
   prepare record's trusted counter is stable (§V-A: "participants
   delay replying back to the coordinator until the prepare entry in
   the log is stabilized").
I3 **counter monotonicity** — trusted-counter stable values and replica
   confirmations never regress.
I4 **recovery resolution** — every node that recovers with prepared
   transactions eventually resolves all of them (checked by
   :meth:`InvariantMonitor.check_quiescent` at end of run).
I5 **bounded liveness** — absent crashes, every prepare-ACKed
   transaction reaches a logged decision within ``liveness_timeout``
   simulated seconds, so a stuck 2PC fiber trips the monitor instead of
   a test timeout.  Obligations are tracked *per coordinator*: a crash
   clears only the transactions whose coordinator (or, lacking that
   attribution, any node) went down — a bystander's crash must not
   blind the monitor to a genuinely stuck transaction.

Under cross-node piggybacking (``twopc_piggyback``) participants emit
``prepare_target`` instead of ``prepare_ack``: the prepare's counter is
deliberately *not* yet stable at ACK time (it rides the coordinator's
group-wide round), so I2 is deferred — the target must be stable by the
time that participant applies the commit (checked at ``commit_apply``
alongside I1).

The monitor learns stability from the counter service's own ``advance``
events, *not* from the components under check — a broken stabilization
path (one that returns without running the echo-broadcast protocol)
therefore trips I1/I2 instead of being taken at its word.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

__all__ = ["MonitorViolation", "InvariantMonitor"]


class MonitorViolation(AssertionError):
    """A protocol-safety invariant was observed to fail."""


class InvariantMonitor:
    """Checks 2PC safety invariants against the live event stream."""

    def __init__(self, require_stabilization: bool = False,
                 strict: bool = True,
                 liveness_timeout: Optional[float] = None):
        #: when True, I1/I2 require counter stability, not just logging
        #: (set from the profile: only stabilization profiles promise it).
        self.require_stabilization = require_stabilization
        #: raise :class:`MonitorViolation` at the violating instant;
        #: False collects into :attr:`violations` instead.
        self.strict = strict
        #: I5 horizon in simulated seconds; ``None`` disables the check.
        self.liveness_timeout = liveness_timeout
        #: optional ``callback(sim_time, message)`` invoked for every
        #: violation before it is raised/collected — the incident log's
        #: hook (repro.obs.incidents).
        self.on_violation: Optional[Any] = None
        self.reset()

    def reset(self) -> None:
        """Forget all observed protocol state (configuration is kept).

        A monitor instance reused across sim runs in one process — the
        model checker resets the world thousands of times — must start
        each run blank: stale counter views or I5 obligations from a
        previous world would otherwise surface as phantom violations.
        """
        self.violations: List[str] = []
        self.events_seen = 0
        #: timestamp of the last record seen (what on_violation reports).
        self.last_seen_t = 0.0
        #: highest stable counter value observed per log name (the
        #: monitor's global knowledge, max over all observers).
        self.stable: Dict[str, int] = {}
        #: highest advance per (observer node, log): with cross-node
        #: piggybacking any node stabilizes any log, and a lagging
        #: observer legitimately advances its *local* view to a value
        #: below the global maximum — only a regression within one
        #: observer's own view is an I3 violation.
        self.advance_views: Dict[Any, int] = {}
        #: highest confirmed value per (replica, log).
        self.confirmed: Dict[Any, int] = {}
        #: txn -> {"kind", "log", "counter"} from coordinator Clog writes.
        self.decisions: Dict[str, Dict[str, Any]] = {}
        #: node -> set of prepared txns recovered but not yet resolved.
        self.unresolved: Dict[str, Set[str]] = {}
        #: txn -> (time of its first prepare ACK, coordinator numeric id
        #: or None) awaiting a decision (insertion-ordered, so the front
        #: is always the oldest).
        self.awaiting_decision: Dict[str, Any] = {}
        #: (txn, node) -> (log, counter) of a piggybacked prepare whose
        #: I2 check is deferred to that node's commit apply.
        self.deferred_prepares: Dict[Any, Any] = {}

    # -- wiring ------------------------------------------------------------
    def attach(self, tracer) -> "InvariantMonitor":
        tracer.subscribe(self.on_record)
        return self

    @property
    def green(self) -> bool:
        return not self.violations

    def _violate(self, message: str) -> None:
        self.violations.append(message)
        if self.on_violation is not None:
            self.on_violation(self.last_seen_t, message)
        if self.strict:
            raise MonitorViolation(message)

    # -- event dispatch ----------------------------------------------------
    def on_record(self, rec: Dict[str, Any]) -> None:
        if rec["type"] != "event":
            return
        self.last_seen_t = rec["t"]
        self.events_seen += 1
        key = (rec["cat"], rec["name"])
        handler = _HANDLERS.get(key)
        if handler is not None:
            handler(self, rec)
        if self.liveness_timeout is not None:
            self._check_liveness(rec["t"])

    # -- invariant checks --------------------------------------------------
    def _on_stable_advance(self, rec: Dict[str, Any]) -> None:
        log = rec["args"]["log"]
        value = rec["args"]["value"]
        view = (rec["node"], log)
        previous = self.advance_views.get(view, 0)
        if value < previous:
            self._violate(
                "I3: stable counter for %s regressed from %d to %d "
                "(observer %s)" % (log, previous, value, rec["node"])
            )
            return
        self.advance_views[view] = value
        if value > self.stable.get(log, 0):
            self.stable[log] = value

    def _on_counter_confirm(self, rec: Dict[str, Any]) -> None:
        replica = rec["args"]["replica"]
        log = rec["args"]["log"]
        value = rec["args"]["value"]
        previous = self.confirmed.get((replica, log), 0)
        if value < previous:
            self._violate(
                "I3: replica %s confirmed counter for %s regressed %d -> %d"
                % (replica, log, previous, value)
            )
            return
        self.confirmed[(replica, log)] = value
        # A CONFIRM is also a stability witness: the source only
        # confirms after a quorum of echoes, so the value is rollback-
        # protected by construction even if the confirming client dies
        # before emitting its own advance event.  Survivors trust
        # replica-confirmed values (gate init) — the monitor must too,
        # or a completer finishing a dead coordinator's transaction
        # trips I1 on a decision entry that IS protected.
        if value > self.stable.get(log, 0):
            self.stable[log] = value

    def _await_decision(self, rec: Dict[str, Any]) -> None:
        txn = rec.get("txn")
        if txn is not None and txn not in self.decisions:
            self.awaiting_decision.setdefault(
                txn, (rec["t"], rec["args"].get("coord"))
            )

    def _on_prepare_ack(self, rec: Dict[str, Any]) -> None:
        self._await_decision(rec)
        if not self.require_stabilization:
            return
        log = rec["args"]["log"]
        counter = rec["args"]["counter"]
        if self.stable.get(log, 0) < counter:
            self._violate(
                "I2: %s ACKed prepare of txn %s before entry %d of %s was "
                "stable (stable=%d)"
                % (rec["node"], rec["txn"], counter, log,
                   self.stable.get(log, 0))
            )

    def _on_prepare_target(self, rec: Dict[str, Any]) -> None:
        """A piggybacked prepare: I2 moves to this node's commit apply."""
        self._await_decision(rec)
        self.deferred_prepares[(rec["txn"], rec["node"])] = (
            rec["args"]["log"], rec["args"]["counter"]
        )

    def _on_decision(self, rec: Dict[str, Any]) -> None:
        self.decisions[rec["txn"]] = {
            "kind": rec["args"]["kind"],
            "log": rec["args"]["log"],
            "counter": rec["args"]["counter"],
        }
        self.awaiting_decision.pop(rec["txn"], None)

    def _on_commit_apply(self, rec: Dict[str, Any]) -> None:
        txn = rec["txn"]
        self._resolve(rec["node"], txn)
        deferred = self.deferred_prepares.pop((txn, rec["node"]), None)
        decision = self.decisions.get(txn)
        if decision is None or decision["kind"] != "commit":
            self._violate(
                "I1: %s applied commit of txn %s without a logged commit "
                "decision" % (rec["node"], txn)
            )
            return
        if self.require_stabilization:
            log, counter = decision["log"], decision["counter"]
            if self.stable.get(log, 0) < counter:
                self._violate(
                    "I1: %s applied commit of txn %s before decision entry "
                    "%d of %s was stable (stable=%d)"
                    % (rec["node"], txn, counter, log, self.stable.get(log, 0))
                )
            if deferred is not None:
                # Deferred I2: the piggybacked prepare target must have
                # become stable (via the coordinator's group-wide round)
                # before this participant applies the commit.
                log, counter = deferred
                if self.stable.get(log, 0) < counter:
                    self._violate(
                        "I2: %s applied commit of txn %s before its "
                        "piggybacked prepare entry %d of %s was stable "
                        "(stable=%d)"
                        % (rec["node"], txn, counter, log,
                           self.stable.get(log, 0))
                    )

    def _on_abort_apply(self, rec: Dict[str, Any]) -> None:
        self._resolve(rec["node"], rec["txn"])
        self.deferred_prepares.pop((rec["txn"], rec["node"]), None)
        # Presumed abort: a participant may abort without the
        # coordinator ever logging a decision entry.
        self.awaiting_decision.pop(rec["txn"], None)

    def _on_recover_done(self, rec: Dict[str, Any]) -> None:
        prepared = rec["args"].get("prepared") or []
        if prepared:
            self.unresolved.setdefault(rec["node"], set()).update(prepared)

    def _on_prepared_resolved(self, rec: Dict[str, Any]) -> None:
        self._resolve(rec["node"], rec["txn"])
        self.awaiting_decision.pop(rec["txn"], None)

    def _on_crash(self, rec: Dict[str, Any]) -> None:
        # I5 promises bounded liveness *absent crashes* — but only the
        # crashed coordinator's obligations are excused: a bystander's
        # crash must not mask a transaction stuck on a healthy
        # coordinator.  Events without attribution (no ``node_id`` on
        # the crash, or no ``coord`` on the prepare) fall back to the
        # conservative legacy behaviour of clearing everything they
        # cannot attribute.
        # The crashed node's enclave (and its counter-client view) is
        # gone: its next advance starts from a fresh gate and may be
        # below its pre-crash view without any rollback having happened.
        node = rec.get("node")
        if node is not None:
            for view in [v for v in self.advance_views if v[0] == node]:
                del self.advance_views[view]
        crashed = rec["args"].get("node_id")
        if crashed is None:
            self.awaiting_decision.clear()
            return
        for txn in [
            txn for txn, (_since, coord) in self.awaiting_decision.items()
            if coord is None or coord == crashed
        ]:
            del self.awaiting_decision[txn]

    # -- I5: bounded liveness ----------------------------------------------
    def _check_liveness(self, now: float) -> None:
        """Flag prepares that outlived the decision horizon.

        ``awaiting_decision`` is insertion-ordered, so scanning stops at
        the first entry inside the horizon — the common case is O(1).
        """
        overdue = []
        for txn, (since, _coord) in self.awaiting_decision.items():
            if now - since <= self.liveness_timeout:
                break
            overdue.append((txn, since))
        for txn, since in overdue:
            # Remove first: a strict monitor raises on the first one,
            # and a lenient one must not re-report it every event.
            del self.awaiting_decision[txn]
        for txn, since in overdue:
            self._violate(
                "I5: txn %s was prepare-ACKed at t=%.6f but reached no "
                "decision by t=%.6f (> %.1fs liveness bound)"
                % (txn, since, now, self.liveness_timeout)
            )

    def _resolve(self, node: Optional[str], txn: Optional[str]) -> None:
        pending = self.unresolved.get(node)
        if pending is not None:
            pending.discard(txn)
            if not pending:
                del self.unresolved[node]

    # -- end-of-run checks -------------------------------------------------
    def check_quiescent(self, now: Optional[float] = None) -> None:
        """I4: assert every recovered node resolved its prepared txns.

        With ``now`` (final sim time), also runs a last I5 sweep so a
        transaction that stalled near the end of the run is still caught
        even though no later event advanced the monitor's clock.
        """
        for node, pending in sorted(self.unresolved.items()):
            self._violate(
                "I4: node %s still has unresolved prepared txns after "
                "recovery: %s" % (node, sorted(pending))
            )
        if now is not None and self.liveness_timeout is not None:
            self._check_liveness(now)

    def summary(self) -> Dict[str, Any]:
        return {
            "events_seen": self.events_seen,
            "decisions": len(self.decisions),
            "stable_logs": len(self.stable),
            "violations": list(self.violations),
            "green": self.green,
        }


_HANDLERS = {
    ("stabilize", "advance"): InvariantMonitor._on_stable_advance,
    ("counter", "confirm"): InvariantMonitor._on_counter_confirm,
    ("twopc", "prepare_ack"): InvariantMonitor._on_prepare_ack,
    ("twopc", "prepare_target"): InvariantMonitor._on_prepare_target,
    ("twopc", "decision"): InvariantMonitor._on_decision,
    ("twopc", "commit_apply"): InvariantMonitor._on_commit_apply,
    ("twopc", "abort_apply"): InvariantMonitor._on_abort_apply,
    ("node", "recover_done"): InvariantMonitor._on_recover_done,
    ("twopc", "prepared_resolved"): InvariantMonitor._on_prepared_resolved,
    ("node", "crash"): InvariantMonitor._on_crash,
}
