"""Flight recorder: streaming tail estimation + p99 outlier exemplars.

The tracer's ring buffer (``Tracer(ring_max=...)``) makes tracing safe
to leave on — memory is capped, old records fall off the back — but a
capped ring is useless for post-hoc forensics precisely *because* the
interesting transaction's spans may already be gone by the time anyone
looks.  The :class:`FlightRecorder` closes that gap: it watches the
record stream, keeps a streaming estimate of the commit-latency tail
(:class:`P2Quantile` — the P² algorithm, pure arithmetic, no samples
retained), and the instant a committed transaction exceeds the running
tail threshold it *retro-dumps* that transaction's full span DAG out of
the ring — before eviction can eat it — together with its critical-path
breakdown.  The captured exemplar answers "why was this one slow" with
zero always-on memory cost beyond the ring itself.

Everything here is driven by the tracer's synchronous subscriber
dispatch: no fibers, no timers, no perturbation of the simulation.  Two
runs with the same seed capture byte-identical exemplars.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from .critpath import CATEGORIES, critical_path

__all__ = ["P2Quantile", "FlightRecorder"]

Record = Dict[str, Any]


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm (Jain & Chlamtac).

    Five markers track the running quantile without retaining samples;
    every update is pure arithmetic on the observation stream, so the
    estimate is a deterministic function of the (deterministic) stream.
    Exact for the first five observations, O(1) per update after.
    """

    __slots__ = ("q", "count", "_heights", "_positions", "_desired",
                 "_increments")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.q = q
        self.count = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def add(self, value: float) -> None:
        self.count += 1
        if len(self._heights) < 5:
            self._heights.append(value)
            self._heights.sort()
            return
        heights, positions = self._heights, self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        for index in range(5):
            self._desired[index] += self._increments[index]
        for index in (1, 2, 3):
            drift = self._desired[index] - positions[index]
            ahead = positions[index + 1] - positions[index]
            behind = positions[index - 1] - positions[index]
            if (drift >= 1.0 and ahead > 1.0) or (drift <= -1.0 and behind < -1.0):
                step = 1.0 if drift >= 1.0 else -1.0
                adjusted = self._parabolic(index, step)
                if heights[index - 1] < adjusted < heights[index + 1]:
                    heights[index] = adjusted
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        return heights[index] + step / (
            positions[index + 1] - positions[index - 1]
        ) * (
            (positions[index] - positions[index - 1] + step)
            * (heights[index + 1] - heights[index])
            / (positions[index + 1] - positions[index])
            + (positions[index + 1] - positions[index] - step)
            * (heights[index] - heights[index - 1])
            / (positions[index] - positions[index - 1])
        )

    def _linear(self, index: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        other = index + int(step)
        return heights[index] + step * (heights[other] - heights[index]) / (
            positions[other] - positions[index]
        )

    def value(self) -> float:
        """The current estimate (0.0 before any observation)."""
        if not self._heights:
            return 0.0
        if len(self._heights) < 5:
            # Exact small-sample quantile: interpolate order statistics.
            rank = self.q * (len(self._heights) - 1)
            low = int(rank)
            high = min(low + 1, len(self._heights) - 1)
            fraction = rank - low
            return (self._heights[low] * (1 - fraction)
                    + self._heights[high] * fraction)
        return self._heights[2]


class FlightRecorder:
    """Captures p99 outlier exemplars from the tracer's (ring) buffer.

    Subscribe it to a tracer (:meth:`attach`).  Every committed
    distributed transaction's root span feeds the streaming p50/p99
    estimators; once ``warmup`` commits have been seen, any commit whose
    latency exceeds the running ``tail_quantile`` estimate is captured:
    its span DAG is copied out of the tracer's record buffer (the ring
    may evict it seconds later — the copy is the flight recorder's whole
    point) and its critical-path breakdown computed.  At most
    ``max_exemplars`` are kept, evicting the *fastest* exemplar first,
    so the retained set is always the worst tail observed.
    """

    def __init__(self, tracer, tail_quantile: float = 0.99,
                 warmup: int = 32, max_exemplars: int = 16):
        self.tracer = tracer
        self.tail_quantile = tail_quantile
        self.warmup = max(1, warmup)
        self.max_exemplars = max(1, max_exemplars)
        self.p50 = P2Quantile(0.5)
        self.tail = P2Quantile(tail_quantile)
        self.commits_seen = 0
        self.exemplars_dropped = 0
        #: captured exemplars in capture order (deterministic).
        self.exemplars: List[Dict[str, Any]] = []

    def attach(self, tracer=None) -> "FlightRecorder":
        (tracer or self.tracer).subscribe(self.observe_record)
        return self

    # -- the subscriber ------------------------------------------------------
    def observe_record(self, rec: Record) -> None:
        if (rec.get("type") != "span" or rec.get("cat") != "twopc"
                or rec.get("name") != "txn"):
            return
        if (rec.get("args") or {}).get("outcome") != "commit":
            return
        latency = rec["t1"] - rec["t0"]
        threshold = self.tail.value()
        self.commits_seen += 1
        if (self.commits_seen > self.warmup and latency > threshold
                and rec.get("trace")):
            self._capture(rec, latency, threshold)
        self.p50.add(latency)
        self.tail.add(latency)

    def _capture(self, rec: Record, latency: float, threshold: float) -> None:
        trace = rec["trace"]
        # Retro-dump: copy the transaction's records out of the ring
        # before eviction.  The scan also picks up same-trace tee events
        # so the breakdown's tee carve-out stays intact.
        records = [r for r in self.tracer.records if r.get("trace") == trace]
        try:
            path = critical_path(records, trace)
        except ValueError:
            return  # root already evicted: nothing to explain
        breakdown = {
            category: path.breakdown[category]
            for category in CATEGORIES
            if path.breakdown[category] > 0.0
        }
        dominant = max(
            CATEGORIES, key=lambda c: (path.breakdown[c], -CATEGORIES.index(c))
        )
        exemplar = {
            "trace": trace,
            "t1": rec["t1"],
            "node": rec.get("node"),
            "latency_s": latency,
            "threshold_s": threshold,
            "p50_s": self.p50.value(),
            "dominant": dominant,
            "breakdown": breakdown,
            "span_count": path.span_count,
            "records": records,
        }
        if len(self.exemplars) >= self.max_exemplars:
            fastest = min(
                range(len(self.exemplars)),
                key=lambda i: (self.exemplars[i]["latency_s"], -i),
            )
            if self.exemplars[fastest]["latency_s"] >= latency:
                self.exemplars_dropped += 1
                return
            del self.exemplars[fastest]
            self.exemplars_dropped += 1
        self.exemplars.append(exemplar)

    # -- reporting -----------------------------------------------------------
    def exemplar_for(self, trace: str) -> Optional[Dict[str, Any]]:
        for exemplar in self.exemplars:
            if exemplar["trace"] == trace:
                return exemplar
        return None

    def category_table(self) -> List[Dict[str, Any]]:
        """Per-category view of the captured tail: which phase dominates.

        One row per category that dominates at least one exemplar, worst
        offender first: count of exemplars it dominates, their mean
        latency, and the category's mean share of those exemplars.
        """
        rows: List[Dict[str, Any]] = []
        for category in CATEGORIES:
            dominated = [e for e in self.exemplars
                         if e["dominant"] == category]
            if not dominated:
                continue
            latencies = [e["latency_s"] for e in dominated]
            shares = [
                e["breakdown"].get(category, 0.0) / e["latency_s"]
                for e in dominated if e["latency_s"] > 0.0
            ]
            rows.append({
                "category": category,
                "exemplars": len(dominated),
                "mean_latency_s": sum(latencies) / len(latencies),
                "mean_share": sum(shares) / len(shares) if shares else 0.0,
            })
        rows.sort(key=lambda row: (-row["mean_latency_s"], row["category"]))
        return rows

    def summary(self) -> Dict[str, Any]:
        return {
            "commits": self.commits_seen,
            "p50_ms": self.p50.value() * 1e3,
            "tail_ms": self.tail.value() * 1e3,
            "tail_quantile": self.tail_quantile,
            "exemplars": len(self.exemplars),
            "exemplars_dropped": self.exemplars_dropped,
            "ring_evicted": getattr(self.tracer, "records_evicted", 0),
        }

    def exemplars_jsonl(self) -> str:
        """Exemplars (without raw records) as byte-stable JSON lines."""
        import json

        lines = []
        for exemplar in self.exemplars:
            slim = {key: value for key, value in exemplar.items()
                    if key != "records"}
            lines.append(json.dumps(slim, sort_keys=True,
                                    separators=(",", ":")))
        return "\n".join(lines) + ("\n" if lines else "")
