"""Structured incident records derived from the trace + timeline streams.

An *incident* is a named, machine-readable "something notable happened"
record: a participant took over a dead coordinator's commit, a coverage
promise outlived its shard lease and fell back to a synchronous counter
round, a window saw an OCC retry storm, a lock wait degenerated into a
convoy, throughput stalled while the fabric stayed busy, or the online
invariant monitor flagged a violation.  Each record carries the sim
time, the node, the transaction trace id (the link to its flight-
recorder exemplar, when one was captured), and kind-specific details —
emitted to a deterministic incident log (same seed ⇒ identical bytes).

Detection is purely stream-driven (tracer subscription + time-series
window callbacks), so it can also run *post hoc* over a saved record
list (:meth:`IncidentLog.from_records`) — how the crash-conformance
sweep attaches an incident log to a failing seed's artifacts without
having had the detector enabled up front.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Optional, Union

__all__ = ["IncidentLog", "INCIDENT_KINDS"]

Record = Dict[str, Any]

#: every incident kind the detectors can emit.
INCIDENT_KINDS = (
    "completer-takeover",
    "lease-expiry-fallback",
    "occ-retry-storm",
    "lock-convoy",
    "stalled-window",
    "monitor-violation",
)


class IncidentLog:
    """Stream-driven incident detection + a deterministic incident log.

    Wire it up with :meth:`attach` (tracer subscription), optionally
    register :meth:`observe_window` on a
    :class:`~repro.obs.timeseries.TimeSeriesRecorder` for the windowed
    detectors, and point the invariant monitor's ``on_violation`` hook
    at :meth:`monitor_violation`.  ``recorder`` (a
    :class:`~repro.obs.recorder.FlightRecorder`) upgrades the ``trace``
    link on each incident to ``exemplar`` when a captured exemplar
    exists for that transaction.
    """

    def __init__(self, recorder=None,
                 occ_storm_conflicts: int = 20,
                 lock_convoy_s: float = 0.01):
        self.recorder = recorder
        self.occ_storm_conflicts = max(1, occ_storm_conflicts)
        self.lock_convoy_s = lock_convoy_s
        self.incidents: List[Dict[str, Any]] = []
        self._seen_commit_window = False

    def attach(self, tracer) -> "IncidentLog":
        tracer.subscribe(self.observe_record)
        return self

    # -- emission ------------------------------------------------------------
    def _emit(self, t: float, kind: str, node: Optional[str],
              trace: Optional[str], **details: Any) -> None:
        self.incidents.append({
            "seq": len(self.incidents),
            "t_ms": round(t * 1e3, 6),
            "kind": kind,
            "node": node,
            "trace": trace,
            "details": details,
        })

    def link_exemplars(self) -> None:
        """Resolve each incident's flight-recorder exemplar link.

        Called at export time: exemplars are captured when the root span
        *closes*, which is after most incident-triggering records (a
        takeover or lease expiry happens mid-transaction), so the lookup
        must run once the run is over.
        """
        if self.recorder is None:
            return
        for incident in self.incidents:
            trace = incident.get("trace")
            if not trace or "exemplar" in incident:
                continue
            exemplar = self.recorder.exemplar_for(trace)
            if exemplar is not None:
                incident["exemplar"] = {
                    "latency_ms": round(exemplar["latency_s"] * 1e3, 6),
                    "dominant": exemplar["dominant"],
                }

    # -- trace-stream detectors ----------------------------------------------
    def observe_record(self, rec: Record) -> None:
        if rec["type"] == "event":
            if rec["cat"] == "twopc" and rec["name"] == "completer_takeover":
                args = rec.get("args") or {}
                # The trace id of a distributed txn is its hex gid, so
                # the event's txn field links the trace even when the
                # watchdog fiber carries no inherited context.
                self._emit(
                    rec["t"], "completer-takeover", rec.get("node"),
                    rec.get("trace") or rec.get("txn"), txn=rec.get("txn"),
                    **{key: args[key] for key in sorted(args) if key != "txn"}
                )
            elif (rec["cat"] == "counter" and rec["name"] == "lease"
                    and (rec.get("args") or {}).get("state") == "expired"):
                args = rec.get("args") or {}
                self._emit(
                    rec["t"], "lease-expiry-fallback", rec.get("node"),
                    rec.get("trace"),
                    shard=args.get("shard"), targets=args.get("targets"),
                    epoch=args.get("epoch"),
                )
            return
        if (rec["cat"] == "locks" and self.lock_convoy_s > 0.0
                and rec["t1"] - rec["t0"] >= self.lock_convoy_s):
            self._emit(
                rec["t1"], "lock-convoy", rec.get("node"), rec.get("trace"),
                txn=rec.get("txn"),
                wait_ms=round((rec["t1"] - rec["t0"]) * 1e3, 6),
            )

    # -- windowed detectors (TimeSeriesRecorder.on_window) --------------------
    def observe_window(self, window: Dict[str, Any]) -> None:
        t = window["t1_ms"] / 1e3
        if window["occ_conflicts"] >= self.occ_storm_conflicts:
            self._emit(
                t, "occ-retry-storm", None, None,
                window=window["window"],
                conflicts=window["occ_conflicts"],
                commits=window["commits"],
            )
        if window["commits"] > 0:
            self._seen_commit_window = True
        elif self._seen_commit_window and window["frames_per_s"] > 0.0:
            self._emit(
                t, "stalled-window", None, None,
                window=window["window"],
                frames_per_s=window["frames_per_s"],
            )

    # -- monitor hook ---------------------------------------------------------
    def monitor_violation(self, t: float, message: str) -> None:
        self._emit(t, "monitor-violation", None, None, message=message)

    # -- post-hoc replay -------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[Record],
                     **thresholds: Any) -> "IncidentLog":
        """Run the trace-stream detectors over a saved record list.

        Windowed detectors need the live metrics hub and do not run
        here; the record-driven kinds (takeover, lease expiry, lock
        convoy) are exactly reproduced.
        """
        log = cls(**thresholds)
        for rec in records:
            log.observe_record(rec)
        return log

    # -- reporting -------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for incident in self.incidents:
            out[incident["kind"]] = out.get(incident["kind"], 0) + 1
        return {kind: out[kind] for kind in sorted(out)}

    def to_jsonl(self) -> str:
        """The incident log as byte-stable JSON lines."""
        self.link_exemplars()
        lines = [json.dumps(incident, sort_keys=True, separators=(",", ":"))
                 for incident in self.incidents]
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path_or_fp: Union[str, IO]) -> None:
        text = self.to_jsonl()
        if hasattr(path_or_fp, "write"):
            path_or_fp.write(text)
        else:
            with open(path_or_fp, "w") as fp:
                fp.write(text)
