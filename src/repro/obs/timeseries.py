"""Windowed time-series over the metrics hub and the trace stream.

End-of-run snapshots explain *how much*; they cannot explain *when* — a
lease-expiry storm during a crash sweep and a steady trickle of
fallbacks produce the same final counters.  The
:class:`TimeSeriesRecorder` adds the time axis: it partitions simulated
time into fixed windows and derives, per window, the rates and gauges a
timeline view needs (tps, aborts/s, frames/s, seal ops/s, counter
rounds/s, lock-wait p50, group-commit occupancy, per-shard counter
pending, decision-ledger slots, OCC conflicts).

Sampling is **subscriber-driven**: the recorder watches the tracer's
record stream and closes windows as records cross boundaries, sampling
the :class:`~repro.obs.registry.MetricsHub` at each close and diffing
against the previous sample.  No fiber, no timer — the recorder adds
nothing to the simulator's event heap, so it cannot perturb the
simulation (enabling it leaves every simulated result bit-identical)
and cannot mask a genuine deadlock by keeping the heap non-empty.  The
cost is boundary resolution: a window closes at the first record past
its end, so metric deltas landing in the inter-record gap are credited
to the window containing the records that caused them — exactly the
attribution a timeline wants.

Deterministic: windows are keyed to the sim clock and driven by the
(deterministic) record stream, so two runs with one seed export
byte-identical JSONL/CSV.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, IO, List, Optional, Union

from .critpath import percentile

__all__ = ["TimeSeriesRecorder", "WINDOW_FIELDS"]

Record = Dict[str, Any]

#: column order of the CSV export (and the timeline table).
WINDOW_FIELDS = (
    "window",
    "t0_ms",
    "t1_ms",
    "commits",
    "aborts",
    "tps",
    "aborts_per_s",
    "frames_per_s",
    "seal_ops_per_s",
    "counter_rounds_per_s",
    "occ_conflicts",
    "lock_wait_p50_ms",
    "group_commit_occupancy",
    "counter_pending",
    "decision_slots",
)


def _scalar_total(snapshot: Dict[str, Dict[str, Any]], name: str) -> float:
    """Sum one scalar metric across every component registry."""
    total = 0.0
    for metrics in snapshot.values():
        value = metrics.get(name)
        if isinstance(value, (int, float)):
            total += value
    return total


def _prefixed_total(snapshot: Dict[str, Dict[str, Any]], prefix: str) -> float:
    """Sum every scalar metric whose name starts with ``prefix``."""
    total = 0.0
    for metrics in snapshot.values():
        for name, value in metrics.items():
            if name.startswith(prefix) and isinstance(value, (int, float)):
                total += value
    return total


def _histogram_totals(snapshot: Dict[str, Dict[str, Any]],
                      name: str) -> Dict[str, float]:
    """Cluster-wide (total observations, sum) of one histogram metric."""
    count = 0.0
    value_sum = 0.0
    for metrics in snapshot.values():
        hist = metrics.get(name)
        if isinstance(hist, dict) and "counts" in hist:
            count += hist["total"]
            value_sum += hist["sum"]
    return {"total": count, "sum": value_sum}


class TimeSeriesRecorder:
    """Fixed-window rates/gauges derived from hub snapshots + the trace.

    Attach to a tracer (:meth:`attach`); call :meth:`flush` before
    exporting to close the trailing partial window.  ``on_window``
    subscribers (the incident detector) receive each window dict as it
    closes, in order.
    """

    def __init__(self, sim, hub, window_s: float = 0.005):
        if window_s <= 0.0:
            raise ValueError("window must be positive")
        self.sim = sim
        self.hub = hub
        self.window_s = window_s
        self.windows: List[Dict[str, Any]] = []
        self.on_window: List[Callable[[Dict[str, Any]], None]] = []
        self._index = 0
        self._previous = self._sample()
        self._commits = 0
        self._aborts = 0
        self._lock_waits: List[float] = []
        self._flushed_through = 0.0

    def attach(self, tracer) -> "TimeSeriesRecorder":
        tracer.subscribe(self.observe_record)
        return self

    # -- sampling ------------------------------------------------------------
    def _sample(self) -> Dict[str, float]:
        snapshot = self.hub.snapshot()
        group_commit = _histogram_totals(snapshot, "group_commit.batch_size")
        return {
            "frames": _scalar_total(snapshot, "net.delivered_frames"),
            "seal_ops": _scalar_total(snapshot, "net.seal_ops"),
            "counter_rounds": _scalar_total(snapshot, "counter.rounds_executed"),
            "occ_conflicts": _scalar_total(snapshot, "occ.conflicts"),
            "counter_pending": _prefixed_total(snapshot, "counter.pending."),
            "decision_slots": _scalar_total(snapshot, "decision.slots"),
            "gc_batches": group_commit["total"],
            "gc_txns": group_commit["sum"],
        }

    def observe_record(self, rec: Record) -> None:
        t = rec["t1"] if rec["type"] == "span" else rec["t"]
        self._roll_to(t)
        if rec["type"] != "span":
            return
        if rec["cat"] == "twopc" and rec["name"] == "txn":
            outcome = (rec.get("args") or {}).get("outcome")
            if outcome == "commit":
                self._commits += 1
            elif outcome == "abort":
                self._aborts += 1
        elif rec["cat"] == "locks":
            self._lock_waits.append(rec["t1"] - rec["t0"])

    def _roll_to(self, t: float) -> None:
        """Close every window that ends at or before ``t``."""
        while t >= (self._index + 1) * self.window_s:
            self._close_window()

    def _close_window(self) -> None:
        current = self._sample()
        previous = self._previous
        w = self.window_s
        t0 = self._index * w
        gc_batches = current["gc_batches"] - previous["gc_batches"]
        gc_txns = current["gc_txns"] - previous["gc_txns"]
        window = {
            "window": self._index,
            "t0_ms": round(t0 * 1e3, 6),
            "t1_ms": round((t0 + w) * 1e3, 6),
            "commits": self._commits,
            "aborts": self._aborts,
            "tps": round(self._commits / w, 3),
            "aborts_per_s": round(self._aborts / w, 3),
            "frames_per_s": round(
                (current["frames"] - previous["frames"]) / w, 3
            ),
            "seal_ops_per_s": round(
                (current["seal_ops"] - previous["seal_ops"]) / w, 3
            ),
            "counter_rounds_per_s": round(
                (current["counter_rounds"] - previous["counter_rounds"]) / w, 3
            ),
            "occ_conflicts": int(
                current["occ_conflicts"] - previous["occ_conflicts"]
            ),
            "lock_wait_p50_ms": round(
                percentile(self._lock_waits, 50) * 1e3, 6
            ),
            "group_commit_occupancy": round(
                gc_txns / gc_batches if gc_batches else 0.0, 3
            ),
            "counter_pending": int(current["counter_pending"]),
            "decision_slots": int(current["decision_slots"]),
        }
        self.windows.append(window)
        self._previous = current
        self._commits = 0
        self._aborts = 0
        self._lock_waits = []
        self._index += 1
        for subscriber in self.on_window:
            subscriber(window)

    def flush(self, now: Optional[float] = None) -> None:
        """Close windows through ``now`` (default: the sim clock).

        Call once at end of run: the trailing window closes even though
        no record has crossed its boundary yet.
        """
        if now is None:
            now = self.sim.now
        self._roll_to(now)
        if (self._commits or self._aborts or self._lock_waits
                or now > self._index * self.window_s):
            self._close_window()

    # -- export --------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Windows as byte-stable JSON lines (sorted keys, same seed ⇒
        identical bytes)."""
        lines = [json.dumps(window, sort_keys=True, separators=(",", ":"))
                 for window in self.windows]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_csv(self) -> str:
        lines = [",".join(WINDOW_FIELDS)]
        for window in self.windows:
            lines.append(",".join(str(window[field])
                                  for field in WINDOW_FIELDS))
        return "\n".join(lines) + "\n"

    def write(self, path_or_fp: Union[str, IO], csv: bool = False) -> None:
        text = self.to_csv() if csv else self.to_jsonl()
        if hasattr(path_or_fp, "write"):
            path_or_fp.write(text)
        else:
            with open(path_or_fp, "w") as fp:
                fp.write(text)

    def summary(self) -> Dict[str, Any]:
        """Headline timeline numbers for bench reports."""
        if not self.windows:
            return {"windows": 0, "window_s": self.window_s}
        tps = [window["tps"] for window in self.windows]
        commits = sum(window["commits"] for window in self.windows)
        active = [t for t in tps if t > 0.0]
        stalled = sum(
            1 for window in self.windows
            if window["commits"] == 0 and window["frames_per_s"] > 0.0
        )
        return {
            "windows": len(self.windows),
            "window_s": self.window_s,
            "commits": commits,
            "tps_mean": round(sum(active) / len(active), 3) if active else 0.0,
            "tps_peak": round(max(tps), 3),
            "stalled_windows": stalled,
        }
