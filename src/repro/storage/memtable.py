"""MemTable: a concurrent skip list with the enclave/host value split.

Treaty adapts SPEICHER's MemTable "by separating the keys from the
values.  We keep keys along with their version number inside the enclave,
while we place the encrypted values in the untrusted host.  To access
values and prove their authenticity we similarly keep a pointer to the
value as well as its secure hash value along with the key" (§V-B).

This module implements exactly that: a skip list whose nodes (keys,
sequence numbers, value pointers, value hashes) are charged against
enclave memory, and a host-memory value arena holding sealed blobs that
the adversary can tamper with — tampering is detected on read.
"""

from __future__ import annotations

from hashlib import sha256
from typing import Any, Dict, Generator, Iterator, List, Optional, Tuple

from ..crypto.keys import KeyRing
from ..errors import IntegrityError
from ..sim.core import Event
from ..sim.rng import SeededRng
from ..tee.runtime import NodeRuntime

__all__ = ["SkipList", "MemTable", "TOMBSTONE"]

Gen = Generator[Event, Any, Any]

#: Sentinel for deletions ("no value, key removed").
TOMBSTONE = object()

_MAX_LEVEL = 16
#: Modelled per-entry enclave overhead: node pointers, seq, hash, vptr.
_NODE_OVERHEAD = 64


class _Node:
    __slots__ = ("key", "entry", "forward")

    def __init__(self, key: Optional[bytes], level: int):
        self.key = key
        self.entry: Any = None
        self.forward: List[Optional["_Node"]] = [None] * level


class SkipList:
    """An ordered map from bytes keys to entry objects."""

    def __init__(self, rng: Optional[SeededRng] = None):
        self._rng = rng or SeededRng(0, "skiplist")
        self._head = _Node(None, _MAX_LEVEL)
        self._level = 1
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < 0.25:
            level += 1
        return level

    def _find_predecessors(self, key: bytes) -> List[_Node]:
        update = [self._head] * _MAX_LEVEL
        node = self._head
        for i in range(self._level - 1, -1, -1):
            while node.forward[i] is not None and node.forward[i].key < key:
                node = node.forward[i]
            update[i] = node
        return update

    def insert(self, key: bytes, entry: Any) -> bool:
        """Insert or overwrite; returns True if the key was new."""
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            candidate.entry = entry
            return False
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, level)
        node.entry = entry
        for i in range(level):
            node.forward[i] = update[i].forward[i]
            update[i].forward[i] = node
        self._size += 1
        return True

    def get(self, key: bytes) -> Any:
        node = self._head
        for i in range(self._level - 1, -1, -1):
            while node.forward[i] is not None and node.forward[i].key < key:
                node = node.forward[i]
        node = node.forward[0]
        if node is not None and node.key == key:
            return node.entry
        return None

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        """All (key, entry) pairs in sorted key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.entry
            node = node.forward[0]

    def range_items(
        self, start: bytes, end: Optional[bytes] = None
    ) -> Iterator[Tuple[bytes, Any]]:
        """Sorted pairs with ``start <= key < end``."""
        update = self._find_predecessors(start)
        node = update[0].forward[0]
        while node is not None and (end is None or node.key < end):
            yield node.key, node.entry
            node = node.forward[0]


class _MemEntry:
    """Enclave-resident record: seq + pointer + hash of the host value."""

    __slots__ = ("seq", "value_id", "value_hash", "is_tombstone", "value_len")

    def __init__(self, seq, value_id, value_hash, is_tombstone, value_len):
        self.seq = seq
        self.value_id = value_id
        self.value_hash = value_hash
        self.is_tombstone = is_tombstone
        self.value_len = value_len


class MemTable:
    """The active in-memory level of the LSM tree."""

    def __init__(
        self,
        runtime: NodeRuntime,
        keyring: KeyRing,
        name: str = "memtable",
        rng: Optional[SeededRng] = None,
    ):
        self.runtime = runtime
        self.name = name
        self._aead = keyring.storage_aead()
        self._skip = SkipList(rng)
        #: sealed value blobs living in *untrusted* host memory; exposed
        #: so attack tests can tamper with them.
        self.host_values: Dict[int, bytes] = {}
        self._next_value_id = 0
        self._allocations = []
        self.approximate_bytes = 0

    @property
    def encrypted(self) -> bool:
        return self.runtime.profile.encryption

    def __len__(self) -> int:
        return len(self._skip)

    # -- write path -----------------------------------------------------------
    def put(self, key: bytes, value: Optional[bytes], seq: int) -> Gen:
        """Insert ``key -> value`` at sequence ``seq`` (None = tombstone)."""
        is_tombstone = value is None
        plain = b"" if is_tombstone else value
        if self.encrypted:
            yield from self.runtime.seal_cost(len(plain))
            yield from self.runtime.hash_cost(len(plain))
            iv = b"mval" + seq.to_bytes(8, "little")
            stored = self._aead.seal(iv, plain, aad=key)
        else:
            stored = plain
        yield from self.runtime.compute(self.runtime.costs.memtable_insert_cpu)
        value_id = self._next_value_id
        self._next_value_id += 1
        self.host_values[value_id] = stored
        value_hash = sha256(stored).digest() if self.encrypted else b""
        entry = _MemEntry(seq, value_id, value_hash, is_tombstone, len(plain))
        # Enclave accounting: key + node overhead; host gets the value.
        self._allocations.append(
            self.runtime.enclave.memory.allocate(len(key) + _NODE_OVERHEAD)
        )
        self._allocations.append(self.runtime.host_memory.allocate(len(stored)))
        if self.runtime.profile.in_enclave:
            yield from self.runtime.touch_enclave(len(key) + _NODE_OVERHEAD)
        self._skip.insert(key, entry)
        self.approximate_bytes += len(key) + len(stored) + _NODE_OVERHEAD

    # -- read path --------------------------------------------------------------
    def _load_value(self, key: bytes, entry: _MemEntry) -> Gen:
        stored = self.host_values[entry.value_id]
        if self.encrypted:
            yield from self.runtime.hash_cost(len(stored))
            if sha256(stored).digest() != entry.value_hash:
                raise IntegrityError(
                    "MemTable value for %r modified in host memory" % key
                )
            yield from self.runtime.seal_cost(len(stored))
            plain = self._aead.open(stored, aad=key)
        else:
            plain = stored
        return plain

    def get(self, key: bytes) -> Gen:
        """Look up a key.

        Returns ``None`` when the key is absent from this MemTable,
        ``(TOMBSTONE, seq)`` for a deletion marker, or ``(value, seq)``.
        """
        if self.runtime.profile.in_enclave:
            yield from self.runtime.touch_enclave(len(key) + _NODE_OVERHEAD)
        entry = self._skip.get(key)
        if entry is None:
            return None
        if entry.is_tombstone:
            return (TOMBSTONE, entry.seq)
        plain = yield from self._load_value(key, entry)
        return (plain, entry.seq)

    def seq_of(self, key: bytes) -> Optional[int]:
        """Latest sequence number for ``key`` (no value access)."""
        entry = self._skip.get(key)
        return None if entry is None else entry.seq

    # -- flush support -----------------------------------------------------------
    def entries(self) -> Gen:
        """All live entries, sorted, decrypted — for flushing to an SSTable.

        Returns ``[(key, value_or_TOMBSTONE, seq), ...]``.
        """
        result = []
        for key, entry in self._skip.items():
            if entry.is_tombstone:
                result.append((key, TOMBSTONE, entry.seq))
            else:
                plain = yield from self._load_value(key, entry)
                result.append((key, plain, entry.seq))
        return result

    def range_scan(self, start: bytes, end: Optional[bytes]) -> Gen:
        """Entries in ``[start, end)`` as ``[(key, value|TOMBSTONE, seq)]``."""
        result = []
        for key, entry in self._skip.range_items(start, end):
            if entry.is_tombstone:
                result.append((key, TOMBSTONE, entry.seq))
            else:
                plain = yield from self._load_value(key, entry)
                result.append((key, plain, entry.seq))
        return result

    def clear(self) -> None:
        """Drop all state (after a successful flush); frees both regions."""
        for allocation in self._allocations:
            allocation.free()
        self._allocations.clear()
        self.host_values.clear()
        self._skip = SkipList()
        self.approximate_bytes = 0
