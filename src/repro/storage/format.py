"""Binary record formats shared by logs, SSTables and the wire.

A tiny length-prefixed codec: every variable field is written as
``u32 length || bytes``, integers as little-endian u64.  Log entries are
framed as ``u64 counter || u32 length || payload || tag(32 B)`` so a
reader can walk a log byte-exactly and the authentication chain covers
counter+payload of each entry.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import CorruptLogError

__all__ = [
    "Writer",
    "Reader",
    "LogEntry",
    "frame_log_entry",
    "iter_log_entries",
    "pack_kv",
    "unpack_kv",
]

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
TAG_BYTES = 32


class Writer:
    """Append-only binary builder."""

    def __init__(self):
        self._parts: List[bytes] = []

    def u32(self, value: int) -> "Writer":
        self._parts.append(_U32.pack(value))
        return self

    def u64(self, value: int) -> "Writer":
        self._parts.append(_U64.pack(value))
        return self

    def blob(self, data: bytes) -> "Writer":
        self._parts.append(_U32.pack(len(data)))
        self._parts.append(data)
        return self

    def raw(self, data: bytes) -> "Writer":
        self._parts.append(data)
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class Reader:
    """Sequential binary parser with bounds checking."""

    def __init__(self, data: bytes, offset: int = 0):
        self.data = data
        self.offset = offset

    def _take(self, nbytes: int) -> bytes:
        end = self.offset + nbytes
        if end > len(self.data):
            raise CorruptLogError(
                "truncated record (wanted %d bytes at offset %d, have %d)"
                % (nbytes, self.offset, len(self.data))
            )
        chunk = self.data[self.offset : end]
        self.offset = end
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def blob(self) -> bytes:
        return self._take(self.u32())

    def raw(self, nbytes: int) -> bytes:
        return self._take(nbytes)

    @property
    def exhausted(self) -> bool:
        return self.offset >= len(self.data)


@dataclass(frozen=True)
class LogEntry:
    """One parsed log entry."""

    counter: int
    payload: bytes
    tag: bytes
    offset: int  # byte offset of the entry in its file


def frame_log_entry(counter: int, payload: bytes, tag: bytes) -> bytes:
    """Serialize one log entry (counter, payload, chain tag)."""
    if len(tag) != TAG_BYTES:
        raise ValueError("log tag must be %d bytes" % TAG_BYTES)
    return _U64.pack(counter) + _U32.pack(len(payload)) + payload + tag


def iter_log_entries(data: bytes) -> Iterator[LogEntry]:
    """Walk a log file's bytes, yielding entries in order."""
    reader = Reader(data)
    while not reader.exhausted:
        offset = reader.offset
        counter = reader.u64()
        payload = reader.blob()
        tag = reader.raw(TAG_BYTES)
        yield LogEntry(counter, payload, tag, offset)


def pack_kv(key: bytes, value: bytes) -> bytes:
    """Encode one key/value pair."""
    return Writer().blob(key).blob(value).getvalue()


def unpack_kv(data: bytes) -> Tuple[bytes, bytes]:
    reader = Reader(data)
    return reader.blob(), reader.blob()
