"""Authenticated SSTables: encrypted blocks + hash footer (SPEICHER model).

"SPEICHER stores encrypted blocks of KV pairs as well as a footer with
the blocks' hash values (for integrity checks)" (§V-A).  The footer's
own hash is recorded in the MANIFEST, which recovery verifies first —
so the chain of trust runs MANIFEST → footer → block → entry, and any
modified byte on the untrusted SSD is detected on access.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import sha256
from typing import Any, Generator, List, Optional, Tuple

from ..crypto.keys import KeyRing
from ..errors import IntegrityError, StorageError
from ..sim.core import Event
from ..tee.runtime import NodeRuntime
from .disk import Disk
from .format import Reader, Writer
from .memtable import TOMBSTONE

__all__ = ["SSTableMeta", "build_sstable", "SSTableReader"]

Gen = Generator[Event, Any, Any]

_FOOTER_AAD = b"sst-footer"
_BLOCK_AAD = b"sst-block"


@dataclass
class SSTableMeta:
    """What the MANIFEST records about one SSTable."""

    filename: str
    level: int
    footer_hash: bytes
    min_key: bytes
    max_key: bytes
    max_seq: int
    entry_count: int
    file_bytes: int

    def encode(self) -> bytes:
        return (
            Writer()
            .blob(self.filename.encode())
            .u32(self.level)
            .blob(self.footer_hash)
            .blob(self.min_key)
            .blob(self.max_key)
            .u64(self.max_seq)
            .u32(self.entry_count)
            .u64(self.file_bytes)
            .getvalue()
        )

    @classmethod
    def decode(cls, data: bytes) -> "SSTableMeta":
        reader = Reader(data)
        return cls(
            filename=reader.blob().decode(),
            level=reader.u32(),
            footer_hash=reader.blob(),
            min_key=reader.blob(),
            max_key=reader.blob(),
            max_seq=reader.u64(),
            entry_count=reader.u32(),
            file_bytes=reader.u64(),
        )

    def overlaps(self, start: bytes, end: Optional[bytes]) -> bool:
        """Whether this table may contain keys in ``[start, end)``."""
        if end is not None and self.min_key >= end:
            return False
        return self.max_key >= start

    def covers_key(self, key: bytes) -> bool:
        return self.min_key <= key <= self.max_key


def _encode_block(entries: List[Tuple[bytes, Any, int]]) -> bytes:
    writer = Writer().u32(len(entries))
    for key, value, seq in entries:
        tombstone = 1 if value is TOMBSTONE else 0
        writer.blob(key).u32(tombstone).blob(b"" if tombstone else value).u64(seq)
    return writer.getvalue()


def _decode_block(data: bytes) -> List[Tuple[bytes, Any, int]]:
    reader = Reader(data)
    count = reader.u32()
    entries = []
    for _ in range(count):
        key = reader.blob()
        tombstone = reader.u32()
        value = reader.blob()
        seq = reader.u64()
        entries.append((key, TOMBSTONE if tombstone else value, seq))
    return entries


def build_sstable(
    runtime: NodeRuntime,
    disk: Disk,
    keyring: KeyRing,
    filename: str,
    level: int,
    entries: List[Tuple[bytes, Any, int]],
    block_bytes: int,
) -> Gen:
    """Write ``entries`` (sorted by key) as an SSTable; returns its meta.

    ``entries`` are ``(key, value_or_TOMBSTONE, seq)`` tuples.
    """
    if not entries:
        raise StorageError("refusing to build an empty SSTable")
    encrypted = runtime.profile.encryption
    aead = keyring.storage_aead()

    blocks: List[bytes] = []
    block_index: List[Tuple[bytes, int, int, bytes]] = []  # first_key, off, len, hash
    current: List[Tuple[bytes, Any, int]] = []
    current_bytes = 0
    offset = 0

    def finish_block():
        nonlocal current, current_bytes, offset
        if not current:
            return None
        plain = _encode_block(current)
        if encrypted:
            iv = sha256(filename.encode() + len(blocks).to_bytes(4, "little")).digest()[:12]
            stored = aead.seal(iv, plain, aad=_BLOCK_AAD)
        else:
            stored = plain
        block_index.append((current[0][0], offset, len(stored), sha256(stored).digest()))
        blocks.append(stored)
        offset += len(stored)
        out = plain
        current, current_bytes = [], 0
        return out

    for key, value, seq in entries:
        current.append((key, value, seq))
        current_bytes += len(key) + (0 if value is TOMBSTONE else len(value)) + 16
        if current_bytes >= block_bytes:
            plain = finish_block()
            yield from runtime.seal_cost(len(plain))
            yield from runtime.hash_cost(len(plain))
    plain = finish_block()
    if plain is not None:
        yield from runtime.seal_cost(len(plain))
        yield from runtime.hash_cost(len(plain))

    footer_writer = Writer().u32(len(block_index))
    for first_key, off, length, block_hash in block_index:
        footer_writer.blob(first_key).u64(off).u64(length).blob(block_hash)
    footer_plain = footer_writer.getvalue()
    if encrypted:
        iv = sha256(filename.encode() + b"footer").digest()[:12]
        footer_stored = aead.seal(iv, footer_plain, aad=_FOOTER_AAD)
    else:
        footer_stored = footer_plain
    yield from runtime.seal_cost(len(footer_plain))

    body = b"".join(blocks)
    file_bytes = (
        body
        + footer_stored
        + len(footer_stored).to_bytes(4, "little")
    )
    disk.write(filename, file_bytes)
    yield from runtime.ssd_write(len(file_bytes))

    return SSTableMeta(
        filename=filename,
        level=level,
        footer_hash=sha256(footer_stored).digest(),
        min_key=entries[0][0],
        max_key=entries[-1][0],
        max_seq=max(seq for _, _, seq in entries),
        entry_count=len(entries),
        file_bytes=len(file_bytes),
    )


class SSTableReader:
    """Verified access to one on-disk SSTable."""

    def __init__(
        self,
        runtime: NodeRuntime,
        disk: Disk,
        keyring: KeyRing,
        meta: SSTableMeta,
    ):
        self.runtime = runtime
        self.disk = disk
        self.meta = meta
        self._aead = keyring.storage_aead()
        self._index: Optional[List[Tuple[bytes, int, int, bytes]]] = None

    @property
    def encrypted(self) -> bool:
        return self.runtime.profile.encryption

    # -- footer ------------------------------------------------------------
    def _load_footer(self) -> Gen:
        if self._index is not None:
            return self._index
        file_size = self.disk.size(self.meta.filename)
        footer_len = int.from_bytes(
            self.disk.read_range(self.meta.filename, file_size - 4, 4), "little"
        )
        stored = self.disk.read_range(
            self.meta.filename, file_size - 4 - footer_len, footer_len
        )
        yield from self.runtime.ssd_read(footer_len)
        yield from self.runtime.hash_cost(footer_len)
        # The MANIFEST is the root of trust for the footer.
        if self.encrypted and sha256(stored).digest() != self.meta.footer_hash:
            raise IntegrityError(
                "SSTable %s: footer does not match MANIFEST" % self.meta.filename
            )
        if self.encrypted:
            yield from self.runtime.seal_cost(footer_len)
            plain = self._aead.open(stored, aad=_FOOTER_AAD)
        else:
            plain = stored
        reader = Reader(plain)
        count = reader.u32()
        index = []
        for _ in range(count):
            index.append((reader.blob(), reader.u64(), reader.u64(), reader.blob()))
        self._index = index
        return index

    # -- blocks ---------------------------------------------------------------
    def _load_block(self, block_no: int) -> Gen:
        index = yield from self._load_footer()
        _first_key, offset, length, block_hash = index[block_no]
        stored = self.disk.read_range(self.meta.filename, offset, length)
        yield from self.runtime.ssd_read(length)
        if self.encrypted:
            yield from self.runtime.hash_cost(length)
            if sha256(stored).digest() != block_hash:
                raise IntegrityError(
                    "SSTable %s: block %d modified on disk"
                    % (self.meta.filename, block_no)
                )
            yield from self.runtime.seal_cost(length)
            plain = self._aead.open(stored, aad=_BLOCK_AAD)
        else:
            plain = stored
        return _decode_block(plain)

    def _block_for_key(self, index, key: bytes) -> int:
        lo, hi = 0, len(index) - 1
        result = 0
        while lo <= hi:
            mid = (lo + hi) // 2
            if index[mid][0] <= key:
                result = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return result

    # -- queries -----------------------------------------------------------------
    def get(self, key: bytes) -> Gen:
        """Returns ``(value_or_TOMBSTONE, seq)`` or None if absent."""
        if not self.meta.covers_key(key):
            return None
        index = yield from self._load_footer()
        block_no = self._block_for_key(index, key)
        entries = yield from self._load_block(block_no)
        lo, hi = 0, len(entries) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            if entries[mid][0] == key:
                return (entries[mid][1], entries[mid][2])
            if entries[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid - 1
        return None

    def scan(self, start: bytes, end: Optional[bytes]) -> Gen:
        """All entries with ``start <= key < end``."""
        if not self.meta.overlaps(start, end):
            return []
        index = yield from self._load_footer()
        result = []
        first_block = self._block_for_key(index, start)
        for block_no in range(first_block, len(index)):
            if end is not None and index[block_no][0] >= end:
                break
            entries = yield from self._load_block(block_no)
            for key, value, seq in entries:
                if key < start:
                    continue
                if end is not None and key >= end:
                    return result
                result.append((key, value, seq))
        return result

    def all_entries(self) -> Gen:
        """Every entry, in order (compaction input)."""
        index = yield from self._load_footer()
        result = []
        for block_no in range(len(index)):
            entries = yield from self._load_block(block_no)
            result.extend(entries)
        return result
