"""In-memory, storage-less engine for protocol-isolation experiments.

Figure 4 evaluates "TREATY's 2PC protocol designed over eRPC ... without
any underlying storage to isolate the protocol's overheads".  This
engine implements the slice of the :class:`~repro.storage.engine.LSMEngine`
interface the transaction layer uses, keeps everything in enclave
memory, and charges no storage costs — network and crypto costs remain.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..sim.core import Event
from ..tee.runtime import NodeRuntime

__all__ = ["NullStorageEngine"]

Gen = Generator[Event, Any, Any]


class NullLog:
    """Counter-stamped log stub (Clog stand-in for protocol-only runs)."""

    def __init__(self, runtime: NodeRuntime, log_name: str):
        self.runtime = runtime
        self.log_name = log_name
        self.filename = log_name
        self.next_counter = 1

    @property
    def last_counter(self) -> int:
        return self.next_counter - 1

    def append(self, payload: bytes) -> Gen:
        yield from self.runtime.op_overhead()
        counter = self.next_counter
        self.next_counter += 1
        return counter

    def append_many(self, payloads) -> Gen:
        counters = []
        for payload in payloads:
            counters.append((yield from self.append(payload)))
        return counters

    def replay(self, up_to_counter=None) -> Gen:
        yield from self.runtime.op_overhead()
        return []

    def on_disk_max_counter(self) -> int:
        return self.last_counter


class NullStorageEngine:
    """A KV map with WAL/MANIFEST stubs (no persistence, no I/O cost)."""

    def __init__(self, runtime: NodeRuntime, name: str = "node0"):
        self.runtime = runtime
        self.name = name
        self._data: Dict[bytes, Tuple[Optional[bytes], int]] = {}
        self._seq = 0
        self._counter = 0
        self.prepared_txns: Dict[bytes, List] = {}

    # -- sequence numbers ----------------------------------------------------
    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def current_seq(self) -> int:
        return self._seq

    # -- logging stubs ----------------------------------------------------------
    @property
    def wal_log_name(self) -> str:
        return "%s/null-wal" % self.name

    @property
    def manifest_log_name(self) -> str:
        return "%s/null-manifest" % self.name

    def _next_counter(self) -> int:
        self._counter += 1
        return self._counter

    def log_commit(self, txn_id: bytes, writes) -> Gen:
        yield from self.runtime.op_overhead()
        self.prepared_txns.pop(txn_id, None)
        return self._next_counter()

    def log_commits(self, records) -> Gen:
        yield from self.runtime.op_overhead()
        counters = []
        for txn_id, _writes in records:
            self.prepared_txns.pop(txn_id, None)
            counters.append(self._next_counter())
        return counters

    def log_prepare(self, txn_id: bytes, writes) -> Gen:
        yield from self.runtime.op_overhead()
        self.prepared_txns[txn_id] = list(writes)
        return self._next_counter(), self.wal_log_name

    def forget_prepared(self, txn_id: bytes) -> None:
        self.prepared_txns.pop(txn_id, None)

    # -- data access -------------------------------------------------------------
    def apply_writes(self, writes) -> Gen:
        yield from self.runtime.op_overhead()
        for key, value, seq in writes:
            self._data[key] = (value, seq)

    def get_with_seq(self, key: bytes) -> Gen:
        yield from self.runtime.op_overhead()
        value, seq = self._data.get(key, (None, 0))
        return (value, seq)

    def get(self, key: bytes) -> Gen:
        value, _seq = yield from self.get_with_seq(key)
        return value

    def seq_of(self, key: bytes) -> Gen:
        _value, seq = yield from self.get_with_seq(key)
        return seq

    def scan(self, start: bytes, end: Optional[bytes], limit=None) -> Gen:
        yield from self.runtime.op_overhead()
        rows = [
            (key, value)
            for key, (value, _seq) in sorted(self._data.items())
            if key >= start and (end is None or key < end) and value is not None
        ]
        if limit is not None:
            rows = rows[:limit]
        return rows
