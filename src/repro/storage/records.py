"""WAL record formats: committed batches and prepared transactions.

"WAL stores the MemTable updates and the prepared Txs" (§V-A).  Two
record kinds exist:

* ``COMMIT`` — a durably committed write batch (applied to the MemTable
  on replay);
* ``PREPARE`` — a distributed transaction's buffered writes persisted at
  the participant's prepare phase; on recovery these re-initialize the
  prepared-transaction table and are resolved with the coordinator (§VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import CorruptLogError
from .format import Reader, Writer

__all__ = ["WalRecord", "WriteOp"]

#: One write: (key, value-or-None-for-delete, sequence number).
WriteOp = Tuple[bytes, Optional[bytes], int]

_TOMBSTONE_FLAG = 1


@dataclass
class WalRecord:
    """One write-ahead-log record."""

    KIND_COMMIT = 1
    KIND_PREPARE = 2

    kind: int
    txn_id: bytes  # global transaction id (coordinator node + local id)
    writes: List[WriteOp]

    @classmethod
    def commit(cls, txn_id: bytes, writes: List[WriteOp]) -> "WalRecord":
        return cls(cls.KIND_COMMIT, txn_id, writes)

    @classmethod
    def prepare(cls, txn_id: bytes, writes: List[WriteOp]) -> "WalRecord":
        return cls(cls.KIND_PREPARE, txn_id, writes)

    def encode(self) -> bytes:
        writer = Writer().u32(self.kind).blob(self.txn_id).u32(len(self.writes))
        for key, value, seq in self.writes:
            flags = _TOMBSTONE_FLAG if value is None else 0
            writer.u32(flags).blob(key).blob(value or b"").u64(seq)
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "WalRecord":
        reader = Reader(data)
        kind = reader.u32()
        if kind not in (cls.KIND_COMMIT, cls.KIND_PREPARE):
            raise CorruptLogError("unknown WAL record kind %d" % kind)
        txn_id = reader.blob()
        count = reader.u32()
        writes: List[WriteOp] = []
        for _ in range(count):
            flags = reader.u32()
            key = reader.blob()
            value = reader.blob()
            seq = reader.u64()
            writes.append((key, None if flags & _TOMBSTONE_FLAG else value, seq))
        return cls(kind, txn_id, writes)

    def payload_bytes(self) -> int:
        """Approximate serialized size (for cost estimation)."""
        return sum(len(k) + len(v or b"") + 16 for k, v, _ in self.writes) + 16
