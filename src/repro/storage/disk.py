"""Simulated persistent storage device (the untrusted SSD).

A :class:`Disk` is byte-accurate, persistent state that survives node
crashes (the crash-fail model of §III: in-memory state is lost, SSD
content preserved).  Because the device is *untrusted*, the adversary
gets first-class hooks:

* :meth:`Disk.tamper` — flip bytes of any file,
* :meth:`Disk.snapshot` / :meth:`Disk.restore` — the rollback attack
  ("revert nodes to a stale state by intentionally shutting them down
  and replaying older logs"),
* :meth:`Disk.delete` — remove logs outright.

Treaty must *detect* all of these at recovery; tests assert exactly that.
Timing is charged by callers through the node runtime (``ssd_write`` /
``ssd_read``) — the disk itself is pure state.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import StorageError

__all__ = ["Disk", "DiskSnapshot"]


class DiskSnapshot:
    """A frozen copy of the device contents (for crashes and rollbacks)."""

    def __init__(self, files: Dict[str, bytes]):
        self.files = files


class Disk:
    """An SSD as a named collection of byte files."""

    def __init__(self, name: str = "ssd"):
        self.name = name
        self._files: Dict[str, bytearray] = {}
        self.bytes_written = 0

    # -- normal operation ---------------------------------------------------
    def create(self, filename: str) -> None:
        if filename in self._files:
            raise StorageError("file %r already exists" % filename)
        self._files[filename] = bytearray()

    def append(self, filename: str, data: bytes) -> int:
        """Append ``data``; returns the offset it was written at."""
        if filename not in self._files:
            self._files[filename] = bytearray()
        offset = len(self._files[filename])
        self._files[filename].extend(data)
        self.bytes_written += len(data)
        return offset

    def write(self, filename: str, data: bytes) -> None:
        """Replace a file's contents (used for whole-file objects)."""
        self._files[filename] = bytearray(data)
        self.bytes_written += len(data)

    def read(self, filename: str) -> bytes:
        try:
            return bytes(self._files[filename])
        except KeyError:
            raise StorageError("no such file: %r" % filename) from None

    def read_range(self, filename: str, offset: int, length: int) -> bytes:
        data = self.read(filename)
        if offset + length > len(data):
            raise StorageError(
                "short read from %r (offset=%d length=%d size=%d)"
                % (filename, offset, length, len(data))
            )
        return data[offset : offset + length]

    def delete(self, filename: str) -> None:
        self._files.pop(filename, None)

    def exists(self, filename: str) -> bool:
        return filename in self._files

    def size(self, filename: str) -> int:
        return len(self._files.get(filename, b""))

    def list_files(self, prefix: str = "") -> List[str]:
        return sorted(name for name in self._files if name.startswith(prefix))

    def total_bytes(self) -> int:
        return sum(len(data) for data in self._files.values())

    # -- adversary hooks (§III) ------------------------------------------------
    def tamper(self, filename: str, offset: int, xor_mask: int = 0x01) -> None:
        """Flip bits of one byte in place — unauthorized modification."""
        data = self._files.get(filename)
        if not data:
            raise StorageError("cannot tamper with empty/missing %r" % filename)
        data[offset % len(data)] ^= xor_mask

    def snapshot(self) -> DiskSnapshot:
        """Copy the full device state (adversary or test checkpoint)."""
        return DiskSnapshot({name: bytes(data) for name, data in self._files.items()})

    def restore(self, snapshot: DiskSnapshot) -> None:
        """Roll the device back to an earlier snapshot (rollback attack)."""
        self._files = {name: bytearray(data) for name, data in snapshot.files.items()}

    def truncate(self, filename: str, length: int) -> None:
        """Cut a file short (torn write / log truncation attack)."""
        if filename in self._files:
            del self._files[filename][length:]
