"""MANIFEST: the authenticated root of the persistent-state tree.

"MANIFEST logs the changes in the state of the persistent storage
(e.g., compactions, live logs)" (§V-A).  Recovery replays it first: it
rebuilds the SSTable hierarchy, loads the footer hashes used to verify
every SSTable access, and identifies the live WAL and Clog files
(§VI, crash consistency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..errors import CorruptLogError
from ..sim.core import Event
from .format import Reader, Writer
from .log import SecureLog
from .sstable import SSTableMeta

__all__ = ["ManifestEdit", "VersionState", "Manifest"]

Gen = Generator[Event, Any, Any]


class ManifestEdit:
    """One state transition of the persistent storage."""

    ADD_TABLE = 1
    DEL_TABLE = 2
    NEW_LOG = 3
    DEL_LOG = 4

    def __init__(
        self,
        kind: int,
        table: Optional[SSTableMeta] = None,
        filename: str = "",
        log_kind: str = "",
    ):
        self.kind = kind
        self.table = table
        self.filename = filename
        self.log_kind = log_kind  # "wal" or "clog"

    # -- constructors --------------------------------------------------------
    @classmethod
    def add_table(cls, table: SSTableMeta) -> "ManifestEdit":
        return cls(cls.ADD_TABLE, table=table)

    @classmethod
    def del_table(cls, filename: str) -> "ManifestEdit":
        return cls(cls.DEL_TABLE, filename=filename)

    @classmethod
    def new_log(cls, log_kind: str, filename: str) -> "ManifestEdit":
        return cls(cls.NEW_LOG, filename=filename, log_kind=log_kind)

    @classmethod
    def del_log(cls, log_kind: str, filename: str) -> "ManifestEdit":
        return cls(cls.DEL_LOG, filename=filename, log_kind=log_kind)

    # -- codec ------------------------------------------------------------------
    def encode(self) -> bytes:
        writer = Writer().u32(self.kind)
        if self.kind == self.ADD_TABLE:
            writer.blob(self.table.encode())
        else:
            writer.blob(self.filename.encode()).blob(self.log_kind.encode())
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "ManifestEdit":
        reader = Reader(data)
        kind = reader.u32()
        if kind == cls.ADD_TABLE:
            return cls(kind, table=SSTableMeta.decode(reader.blob()))
        if kind in (cls.DEL_TABLE, cls.NEW_LOG, cls.DEL_LOG):
            filename = reader.blob().decode()
            log_kind = reader.blob().decode()
            return cls(kind, filename=filename, log_kind=log_kind)
        raise CorruptLogError("unknown manifest edit kind %d" % kind)


@dataclass
class VersionState:
    """The storage state reconstructed by replaying the MANIFEST."""

    tables: Dict[int, List[SSTableMeta]] = field(default_factory=dict)
    live_wals: List[str] = field(default_factory=list)
    live_clogs: List[str] = field(default_factory=list)

    def apply(self, edit: ManifestEdit) -> None:
        if edit.kind == ManifestEdit.ADD_TABLE:
            self.tables.setdefault(edit.table.level, []).append(edit.table)
        elif edit.kind == ManifestEdit.DEL_TABLE:
            for level_tables in self.tables.values():
                level_tables[:] = [
                    t for t in level_tables if t.filename != edit.filename
                ]
        elif edit.kind == ManifestEdit.NEW_LOG:
            target = self.live_wals if edit.log_kind == "wal" else self.live_clogs
            if edit.filename not in target:
                target.append(edit.filename)
        elif edit.kind == ManifestEdit.DEL_LOG:
            target = self.live_wals if edit.log_kind == "wal" else self.live_clogs
            if edit.filename in target:
                target.remove(edit.filename)

    def max_seq(self) -> int:
        return max(
            (t.max_seq for tables in self.tables.values() for t in tables),
            default=0,
        )


class Manifest:
    """The MANIFEST file: a :class:`SecureLog` of :class:`ManifestEdit`s."""

    def __init__(self, log: SecureLog):
        self.log = log

    def record(self, edit: ManifestEdit) -> Gen:
        """Append one edit; returns its trusted counter value."""
        counter = yield from self.log.append(edit.encode())
        return counter

    def replay(self, up_to_counter: Optional[int] = None) -> Gen:
        """Rebuild the :class:`VersionState` from the on-disk MANIFEST."""
        entries = yield from self.log.replay(up_to_counter)
        state = VersionState()
        for _counter, payload in entries:
            state.apply(ManifestEdit.decode(payload))
        return state
