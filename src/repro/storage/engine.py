"""The LSM storage engine (RocksDB stand-in + SPEICHER extensions).

One :class:`LSMEngine` instance runs per node.  Under a native profile
with encryption off it behaves like stock RocksDB — plaintext WAL,
MemTable and SSTables — and serves as the DS-RocksDB baseline.  Under
SCONE profiles the same code paths charge enclave costs, and with
encryption on every persistent byte is sealed and authenticated
(SPEICHER's data model, §V-B/§VII-B).

Layout per node on the simulated SSD::

    <name>/MANIFEST          authenticated edit log (root of trust)
    <name>/wal-<n>.log       write-ahead logs (rotated at flush)
    <name>/clog-<n>.log      coordinator 2PC log (owned by repro.core)
    <name>/sst-<n>.sst       SSTables, leveled

Deletions are deferred until the MANIFEST entries recording the
replacement state are *stabilized* (rollback-protected), per §VI.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..config import ClusterConfig
from ..crypto.keys import KeyRing
from ..errors import FreshnessError, StorageError
from ..sim.core import Event
from ..sim.rng import SeededRng
from ..sim.sync import Resource
from ..tee.runtime import NodeRuntime
from .disk import Disk
from .log import SecureLog
from .manifest import Manifest, ManifestEdit
from .memtable import MemTable, TOMBSTONE
from .records import WalRecord, WriteOp
from .sstable import SSTableMeta, SSTableReader, build_sstable

__all__ = ["LSMEngine"]

Gen = Generator[Event, Any, Any]

#: L0 table count that triggers compaction into L1.
_L0_COMPACTION_TRIGGER = 4
#: Per-level table-count triggers beyond L0 (grows by this ratio).
_LEVEL_RATIO = 10
_MAX_LEVEL = 6
#: Grace period before physically deleting replaced files, so in-flight
#: readers (cooperative fibers) drain first.
_DELETE_GRACE = 0.05

# A stabilizer makes one log entry rollback-protected; injected by the
# stabilization protocol (repro.core.stabilization).  ``None`` means the
# profile runs without stabilization.
Stabilizer = Callable[[str, int], Generator[Event, Any, None]]


class LSMEngine:
    """A per-node LSM key-value engine with authenticated persistence."""

    def __init__(
        self,
        runtime: NodeRuntime,
        disk: Disk,
        keyring: KeyRing,
        config: ClusterConfig,
        name: str = "node0",
        stabilizer: Optional[Stabilizer] = None,
    ):
        self.runtime = runtime
        self.disk = disk
        self.keyring = keyring
        self.config = config
        self.name = name
        self.stabilizer = stabilizer
        self._rng = SeededRng(config.seed, name, "engine")

        self.manifest = Manifest(
            SecureLog(runtime, disk, self._path("MANIFEST"), keyring,
                      log_name=name + "/MANIFEST")
        )
        self.wal: Optional[SecureLog] = None
        self.levels: Dict[int, List[SSTableMeta]] = {}
        self.memtable = MemTable(runtime, keyring, rng=self._rng.child("memtable"))
        self._readers: Dict[str, SSTableReader] = {}
        self._seq = 0
        self._file_seq = 0
        self._wal_seq = 0
        self._flush_lock = Resource(runtime.sim, capacity=1)
        #: prepared-but-unresolved distributed transactions (txn_id -> writes)
        self.prepared_txns: Dict[bytes, List[WriteOp]] = {}
        self.flush_count = 0
        self.compaction_count = 0
        self._started = False
        self.tracer = runtime.tracer
        runtime.metrics.probe("storage.flush_count", lambda: self.flush_count)
        runtime.metrics.probe("storage.compaction_count",
                              lambda: self.compaction_count)
        runtime.metrics.probe(
            "storage.live_sstables",
            lambda: sum(len(tables) for tables in self.levels.values()),
        )

    # -- paths / ids ---------------------------------------------------------
    def _path(self, filename: str) -> str:
        return "%s/%s" % (self.name, filename)

    def _next_wal_name(self) -> str:
        self._wal_seq += 1
        return "wal-%06d.log" % self._wal_seq

    def _next_table_name(self) -> str:
        self._file_seq += 1
        return "sst-%06d.sst" % self._file_seq

    def next_seq(self) -> int:
        """Allocate the next global sequence number (version)."""
        self._seq += 1
        return self._seq

    def current_seq(self) -> int:
        return self._seq

    # -- lifecycle ---------------------------------------------------------------
    def bootstrap(self) -> Gen:
        """Initialize a fresh engine (first boot, empty disk)."""
        if self._started:
            raise StorageError("engine already started")
        self._started = True
        yield from self._open_new_wal()

    def _open_new_wal(self) -> Gen:
        wal_path = self._path(self._next_wal_name())
        self.wal = SecureLog(
            self.runtime, self.disk, wal_path, self.keyring, log_name=wal_path
        )
        counter = yield from self.manifest.record(ManifestEdit.new_log("wal", wal_path))
        return counter

    # -- write path -------------------------------------------------------------
    def log_commit(self, txn_id: bytes, writes: List[WriteOp]) -> Gen:
        """Persist a commit record to the WAL; returns its counter value."""
        record = WalRecord.commit(txn_id, writes)
        counter = yield from self.wal.append(record.encode())
        self.prepared_txns.pop(txn_id, None)
        return counter

    def log_commits(self, records: List[Tuple[bytes, List[WriteOp]]]) -> Gen:
        """Group commit: persist several commit records in one write."""
        payloads = [WalRecord.commit(t, w).encode() for t, w in records]
        counters = yield from self.wal.append_many(payloads)
        for txn_id, _writes in records:
            self.prepared_txns.pop(txn_id, None)
        return counters

    def log_prepare(self, txn_id: bytes, writes: List[WriteOp]) -> Gen:
        """Persist a distributed transaction's prepare record (§V-A).

        Returns ``(counter, log_name)``.  The WAL reference is captured
        *before* the device write: a concurrent flush may rotate
        ``self.wal`` while this fiber waits in the write, and the
        stabilization that follows must target the log that actually
        holds the record.
        """
        record = WalRecord.prepare(txn_id, writes)
        wal = self.wal
        counter = yield from wal.append(record.encode())
        self.prepared_txns[txn_id] = list(writes)
        return counter, wal.log_name

    def forget_prepared(self, txn_id: bytes) -> None:
        """Drop a prepared transaction after it resolved (commit/abort)."""
        self.prepared_txns.pop(txn_id, None)

    @property
    def wal_log_name(self) -> str:
        return self.wal.log_name

    @property
    def manifest_log_name(self) -> str:
        return self.manifest.log.log_name

    def apply_writes(self, writes: List[WriteOp]) -> Gen:
        """Apply already-logged writes to the MemTable; flush if full."""
        for key, value, seq in writes:
            yield from self.memtable.put(key, value, seq)
        if self.memtable.approximate_bytes >= self.config.memtable_limit_bytes:
            yield from self.flush()

    # -- read path ----------------------------------------------------------------
    def _reader(self, meta: SSTableMeta) -> SSTableReader:
        reader = self._readers.get(meta.filename)
        if reader is None:
            reader = SSTableReader(self.runtime, self.disk, self.keyring, meta)
            self._readers[meta.filename] = reader
        return reader

    def get_with_seq(self, key: bytes) -> Gen:
        """Return ``(value_or_None, seq)``; seq 0 when never written."""
        yield from self.runtime.op_overhead()
        found = yield from self.memtable.get(key)
        if found is not None:
            value, seq = found
            return (None if value is TOMBSTONE else value, seq)
        # L0: newest table first (they may overlap).
        for meta in reversed(self.levels.get(0, [])):
            hit = yield from self._reader(meta).get(key)
            if hit is not None:
                value, seq = hit
                return (None if value is TOMBSTONE else value, seq)
        # Deeper levels: at most one covering table per level.
        for level in range(1, _MAX_LEVEL + 1):
            for meta in self.levels.get(level, []):
                if meta.covers_key(key):
                    hit = yield from self._reader(meta).get(key)
                    if hit is not None:
                        value, seq = hit
                        return (None if value is TOMBSTONE else value, seq)
                    break
        return (None, 0)

    def get(self, key: bytes) -> Gen:
        value, _seq = yield from self.get_with_seq(key)
        return value

    def scan(
        self, start: bytes, end: Optional[bytes], limit: Optional[int] = None
    ) -> Gen:
        """Merged range scan ``[start, end)`` across all levels.

        Returns ``[(key, value)]`` sorted by key, tombstones elided.
        """
        yield from self.runtime.op_overhead()
        best: Dict[bytes, Tuple[Any, int]] = {}

        def consider(key, value, seq):
            current = best.get(key)
            if current is None or seq > current[1]:
                best[key] = (value, seq)

        mem_entries = yield from self.memtable.range_scan(start, end)
        for key, value, seq in mem_entries:
            consider(key, value, seq)
        for level, tables in sorted(self.levels.items()):
            for meta in tables:
                if not meta.overlaps(start, end):
                    continue
                entries = yield from self._reader(meta).scan(start, end)
                for key, value, seq in entries:
                    consider(key, value, seq)
        result = [
            (key, value)
            for key, (value, _seq) in sorted(best.items())
            if value is not TOMBSTONE
        ]
        if limit is not None:
            result = result[:limit]
        return result

    def seq_of(self, key: bytes) -> Gen:
        """Current version of ``key`` (for OCC validation)."""
        _value, seq = yield from self.get_with_seq(key)
        return seq

    # -- flush / compaction ------------------------------------------------------
    def flush(self) -> Gen:
        """Flush the MemTable to a new L0 SSTable and rotate the WAL."""
        yield self._flush_lock.request()
        span = None
        try:
            if len(self.memtable) == 0:
                return
            span = self.tracer.span("storage", "flush", node=self.name)
            entries = yield from self.memtable.entries()
            meta = yield from build_sstable(
                self.runtime,
                self.disk,
                self.keyring,
                self._path(self._next_table_name()),
                0,
                entries,
                self.config.block_bytes,
            )
            old_wal = self.wal
            yield from self._open_new_wal()
            # Carry unresolved prepared transactions into the new WAL so
            # their records survive the old WAL's garbage collection.
            for txn_id, writes in list(self.prepared_txns.items()):
                yield from self.wal.append(
                    WalRecord.prepare(txn_id, writes).encode()
                )
            counter = yield from self.manifest.record(ManifestEdit.add_table(meta))
            yield from self.manifest.record(
                ManifestEdit.del_log("wal", old_wal.filename)
            )
            self.levels.setdefault(0, []).append(meta)
            self.memtable.clear()
            self.flush_count += 1
            self._defer_delete([old_wal.filename], after_manifest_counter=counter)
            span.close(table=meta.filename, bytes=meta.file_bytes)
        finally:
            if span is not None:
                span.close()
            self._flush_lock.release()
        if len(self.levels.get(0, [])) >= _L0_COMPACTION_TRIGGER:
            yield from self.compact(0)

    def compact(self, level: int) -> Gen:
        """Merge ``level`` into ``level+1`` (cascading if needed, §II-A)."""
        inputs = list(self.levels.get(level, []))
        if not inputs:
            return
        span = self.tracer.span(
            "storage", "compact", node=self.name, level=level,
            inputs=len(inputs),
        )
        target = level + 1
        overlapping = [
            meta
            for meta in self.levels.get(target, [])
            if any(
                meta.overlaps(inp.min_key, inp.max_key + b"\x00") for inp in inputs
            )
        ]
        merged: Dict[bytes, Tuple[Any, int]] = {}
        for meta in overlapping + inputs:  # inputs are newer: applied last wins
            entries = yield from self._reader(meta).all_entries()
            for key, value, seq in entries:
                current = merged.get(key)
                if current is None or seq > current[1]:
                    merged[key] = (value, seq)
        # Tombstones can be dropped once nothing deeper may hold the key.
        deeper_data = any(
            self.levels.get(deep) for deep in range(target + 1, _MAX_LEVEL + 1)
        )
        output = [
            (key, value, seq)
            for key, (value, seq) in sorted(merged.items())
            if not (value is TOMBSTONE and not deeper_data)
        ]
        new_metas: List[SSTableMeta] = []
        max_output_bytes = 4 * self.config.memtable_limit_bytes
        chunk: List[Tuple[bytes, Any, int]] = []
        chunk_bytes = 0
        for entry in output:
            chunk.append(entry)
            chunk_bytes += len(entry[0]) + (
                0 if entry[1] is TOMBSTONE else len(entry[1])
            )
            if chunk_bytes >= max_output_bytes:
                new_metas.append(
                    (yield from self._build_level_table(target, chunk))
                )
                chunk, chunk_bytes = [], 0
        if chunk:
            new_metas.append((yield from self._build_level_table(target, chunk)))

        last_counter = 0
        for meta in new_metas:
            last_counter = yield from self.manifest.record(
                ManifestEdit.add_table(meta)
            )
        obsolete = inputs + overlapping
        for meta in obsolete:
            last_counter = yield from self.manifest.record(
                ManifestEdit.del_table(meta.filename)
            )
        self.levels[level] = [m for m in self.levels.get(level, []) if m not in inputs]
        kept = [m for m in self.levels.get(target, []) if m not in overlapping]
        self.levels[target] = kept + new_metas
        self.compaction_count += 1
        self._defer_delete(
            [m.filename for m in obsolete], after_manifest_counter=last_counter
        )
        for meta in obsolete:
            self._readers.pop(meta.filename, None)
        span.close(outputs=len(new_metas))
        # Cascade when the target level itself overflowed (§II-A).
        trigger = _L0_COMPACTION_TRIGGER * (_LEVEL_RATIO ** target)
        if target < _MAX_LEVEL and len(self.levels.get(target, [])) > trigger:
            yield from self.compact(target)

    def _build_level_table(self, level: int, entries) -> Gen:
        table_file = self._next_table_name()
        meta = yield from build_sstable(
            self.runtime,
            self.disk,
            self.keyring,
            self._path(table_file),
            level,
            entries,
            self.config.block_bytes,
        )
        return meta

    def _defer_delete(self, filenames: List[str], after_manifest_counter: int):
        """GC: delete replaced files only once the MANIFEST edit is stable.

        "TREATY's garbage collector only deletes SSTable files when the
        newly compacted ones refer to stabilized entries in MANIFEST."
        """

        def gc():
            if self.stabilizer is not None:
                yield from self.stabilizer(
                    self.manifest_log_name, after_manifest_counter
                )
            else:
                yield self.runtime.sim.timeout(_DELETE_GRACE)
            for filename in filenames:
                self.disk.delete(filename)

        self.runtime.sim.process(gc(), name="gc@%s" % self.name)

    # -- recovery -----------------------------------------------------------------
    def recover(self, stable_counters=None) -> Gen:
        """Rebuild engine state from the untrusted disk after a crash.

        ``stable_counters`` bounds each log's recovery to its trusted
        stable prefix (entries beyond it were never acknowledged).  It
        may be ``None`` (trust everything — native baselines), a mapping
        ``log_name -> value``, or a *resolver*: a generator function
        ``(log_name) -> Optional[int]`` that queries the trusted counter
        service lazily (used by :mod:`repro.core.recovery`).

        Freshness (§VI): for every log with a known stable value, the
        bytes on disk must reach that value; a rolled-back disk raises
        :class:`FreshnessError`.

        Returns ``(version_state, prepared_txn_ids)``.
        """
        if self._started:
            raise StorageError("recover() must run on a fresh engine instance")
        self._started = True

        def limit_for(log_name: str) -> Gen:
            if stable_counters is None:
                return None
            if callable(stable_counters):
                value = yield from stable_counters(log_name)
                return value
            return stable_counters.get(log_name)

        def check_fresh(log: SecureLog, stable: Optional[int]) -> None:
            if stable is not None and log.on_disk_max_counter() < stable:
                raise FreshnessError(
                    "log %s rolled back: disk has %d entries, %d are stable"
                    % (log.log_name, log.on_disk_max_counter(), stable)
                )

        # MANIFEST: the whole authenticated chain is trusted — its
        # entries are structural edits whose *effects* are protected by
        # the GC invariant (files are only deleted once the edit is
        # stable), so an unstable suffix is always safely replayable.
        # Freshness still applies: the disk must reach the stable value.
        manifest_stable = yield from limit_for(self.manifest_log_name)
        check_fresh(self.manifest.log, manifest_stable)
        state = yield from self.manifest.replay()
        manifest_entries = yield from self.manifest.log.replay()
        self.manifest.log.reset_from_replay(manifest_entries)

        # A vector-capable resolver (core.recovery.StableCounterResolver)
        # fetches every live log's stable value with one quorum read now
        # that the MANIFEST told us which logs exist; the per-log
        # ``limit_for`` calls below then hit its cache.
        prefetch = getattr(stable_counters, "prefetch", None)
        if prefetch is not None and (state.live_wals or state.live_clogs):
            yield from prefetch(list(state.live_wals) + list(state.live_clogs))

        self.levels = {}
        for level, tables in state.tables.items():
            self.levels[level] = list(tables)

        # Resume file numbering beyond anything present on disk before
        # any new file can be created.
        for filename in self.disk.list_files(prefix=self.name + "/"):
            stem = filename.rsplit("/", 1)[1]
            if stem.startswith("sst-"):
                self._file_seq = max(self._file_seq, int(stem[4:10]))
            elif stem.startswith("wal-"):
                self._wal_seq = max(self._wal_seq, int(stem[4:10]))

        max_seq = state.max_seq()
        for wal_path in state.live_wals:
            wal = SecureLog(
                self.runtime, self.disk, wal_path, self.keyring, log_name=wal_path
            )
            wal_stable = yield from limit_for(wal_path)
            check_fresh(wal, wal_stable)
            # The full authenticated chain is kept on disk; only entries
            # within the stable prefix are *applied*.  An unstable
            # commit record stays invisible (its client was never
            # acknowledged) but must not discard the prepare it resolves
            # — with cross-node piggybacking a prepare's stabilization
            # may be in flight in the coordinator's group-wide round
            # while this node crashes, and its counter can become stable
            # globally at any moment.  Keeping the chain means a later
            # stable value can never make this disk look rolled back,
            # and prepare records are re-adopted regardless of counter:
            # their fate comes from the coordinator (TXN_RESOLVE), which
            # stabilizes the decision and any piggybacked targets before
            # answering commit.
            entries = yield from wal.replay()
            for counter, payload in entries:
                yield from self.runtime.compute(
                    self.runtime.costs.recovery_record_cpu
                    + len(payload) * self.runtime.costs.copy_per_byte
                )
                record = WalRecord.decode(payload)
                applied = wal_stable is None or counter <= wal_stable
                if record.kind == WalRecord.KIND_PREPARE:
                    self.prepared_txns[record.txn_id] = record.writes
                elif applied:
                    self.prepared_txns.pop(record.txn_id, None)
                    for key, value, seq in record.writes:
                        yield from self.memtable.put(key, value, seq)
                        max_seq = max(max_seq, seq)
                else:
                    # Unstable commit suffix: keep the record (chain
                    # integrity) but leave the prepare adoptable and the
                    # memtable untouched; still reserve its sequence
                    # numbers so re-commits never reuse them.
                    for _key, _value, seq in record.writes:
                        max_seq = max(max_seq, seq)
            if wal_path == state.live_wals[-1]:
                wal.reset_from_replay(entries)
                self.wal = wal
        if self.wal is None:
            yield from self._open_new_wal()
        self._seq = max_seq

        # Drop orphaned files no recovered state references (e.g. an
        # SSTable from a flush whose MANIFEST entry never stabilized).
        referenced = {m.filename for ts in self.levels.values() for m in ts}
        referenced.update(state.live_wals)
        referenced.update(state.live_clogs)
        referenced.add(self.manifest.log.filename)
        if self.wal is not None:
            referenced.add(self.wal.filename)
        for filename in self.disk.list_files(prefix=self.name + "/"):
            stem = filename.rsplit("/", 1)[1]
            if filename in referenced or stem.startswith("clog"):
                continue
            if stem.endswith(".sealed"):
                # Sealed enclave state (the counter replica's confirmed
                # values) lives under the node prefix but is not LSM
                # state: deleting it would roll the replica back to zero
                # on its next boot.
                continue
            self.disk.delete(filename)
        return state, list(self.prepared_txns.keys())

    # -- statistics ----------------------------------------------------------------
    def table_count(self) -> int:
        return sum(len(tables) for tables in self.levels.values())

    def describe_levels(self) -> Dict[int, int]:
        return {level: len(tables) for level, tables in self.levels.items() if tables}
