"""Storage substrate: disk, logs, MemTable, SSTables, the LSM engine."""

from .disk import Disk, DiskSnapshot
from .engine import LSMEngine
from .format import LogEntry, Reader, Writer, iter_log_entries, pack_kv, unpack_kv
from .log import SecureLog
from .manifest import Manifest, ManifestEdit, VersionState
from .memtable import MemTable, SkipList, TOMBSTONE
from .records import WalRecord
from .sstable import SSTableMeta, SSTableReader, build_sstable

__all__ = [
    "Disk",
    "DiskSnapshot",
    "LSMEngine",
    "LogEntry",
    "Manifest",
    "ManifestEdit",
    "MemTable",
    "Reader",
    "SSTableMeta",
    "SSTableReader",
    "SecureLog",
    "SkipList",
    "TOMBSTONE",
    "VersionState",
    "WalRecord",
    "Writer",
    "build_sstable",
    "iter_log_entries",
    "pack_kv",
    "unpack_kv",
]
