"""Authenticated, counter-stamped persistent logs (WAL / MANIFEST / Clog).

Every Treaty log entry carries "a unique, monotonic and deterministically
increased trusted counter value" (§VI) and an authentication tag that
chains it to its predecessor.  Recovery walks a log and detects:

* *tampering* — an entry's tag no longer verifies,
* *deletion / reordering* — the chain breaks (each tag covers the
  previous tag),
* *rollback* — the last counter is behind the trusted counter service's
  stable value (checked by :mod:`repro.core.recovery`).

With encryption disabled (baseline profiles) entries are written in
plaintext with zero tags and no verification or crypto cost — the same
code path RocksDB's WAL would take.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence, Tuple

from ..crypto.hashing import LogChain
from ..crypto.keys import KeyRing
from ..errors import CorruptLogError, IntegrityError
from ..sim.core import Event
from ..tee.runtime import NodeRuntime
from .disk import Disk
from .format import TAG_BYTES, frame_log_entry, iter_log_entries

__all__ = ["SecureLog"]

Gen = Generator[Event, Any, Any]

_ZERO_TAG = b"\x00" * TAG_BYTES
_IV_PREFIX = b"log!"


class SecureLog:
    """An append-only log on the untrusted disk."""

    def __init__(
        self,
        runtime: NodeRuntime,
        disk: Disk,
        filename: str,
        keyring: KeyRing,
        log_name: Optional[str] = None,
    ):
        self.runtime = runtime
        self.disk = disk
        self.filename = filename
        self.log_name = log_name or filename
        self._keyring = keyring
        self._aead = keyring.log_aead(self.log_name)
        self._chain = LogChain(keyring.log_auth_key(self.log_name))
        self.next_counter = 1
        self.appended_bytes = 0
        self.tracer = runtime.tracer
        self._bytes_counter = runtime.metrics.counter("storage.log_bytes")

    # -- helpers -----------------------------------------------------------
    @property
    def secured(self) -> bool:
        return self.runtime.profile.encryption

    @property
    def last_counter(self) -> int:
        """Counter value of the most recently appended entry (0 if none)."""
        return self.next_counter - 1

    def _seal_payload(self, counter: int, payload: bytes) -> bytes:
        iv = _IV_PREFIX + counter.to_bytes(8, "little")
        return self._aead.seal(iv, payload, aad=self.log_name.encode())

    def _encode_entry(self, payload: bytes) -> Tuple[int, bytes]:
        counter = self.next_counter
        self.next_counter += 1
        if self.secured:
            sealed = self._seal_payload(counter, payload)
            tag = self._chain.append(counter, sealed)
        else:
            sealed, tag = payload, _ZERO_TAG
        return counter, frame_log_entry(counter, sealed, tag)

    # -- writing -----------------------------------------------------------
    def append(self, payload: bytes) -> Gen:
        """Append one entry; returns its trusted counter value."""
        counters = yield from self.append_many([payload])
        return counters[0]

    def append_many(self, payloads: Sequence[bytes]) -> Gen:
        """Append a batch in one device write (group commit, §VII-B)."""
        span = self.tracer.span(
            "storage", "log_append", node=self.runtime.name or None,
            log=self.log_name, entries=len(payloads),
        )
        frames: List[bytes] = []
        counters: List[int] = []
        for payload in payloads:
            if self.secured:
                yield from self.runtime.seal_cost(len(payload))
                yield from self.runtime.hash_cost(len(payload))
            counter, frame = self._encode_entry(payload)
            counters.append(counter)
            frames.append(frame)
        blob = b"".join(frames)
        self.disk.append(self.filename, blob)
        self.appended_bytes += len(blob)
        self._bytes_counter.inc(len(blob))
        yield from self.runtime.ssd_write(len(blob))
        span.close(bytes=len(blob))
        return counters

    # -- reading -------------------------------------------------------------
    def replay(self, up_to_counter: Optional[int] = None) -> Gen:
        """Read and verify the log; returns ``[(counter, payload), ...]``.

        ``up_to_counter`` bounds recovery to the stable prefix; entries
        beyond it were never acknowledged and are discarded.  Raises
        :class:`IntegrityError` on any tamper/reorder/deletion and
        :class:`CorruptLogError` on unparseable framing.
        """
        if not self.disk.exists(self.filename):
            return []
        data = self.disk.read(self.filename)
        yield from self.runtime.ssd_read(len(data))
        chain = LogChain(self._keyring.log_auth_key(self.log_name))
        entries: List[Tuple[int, bytes]] = []
        expected_counter = 1
        for entry in iter_log_entries(data):
            if entry.counter != expected_counter:
                raise IntegrityError(
                    "log %s: counter gap (expected %d, found %d)"
                    % (self.log_name, expected_counter, entry.counter)
                )
            expected_counter += 1
            if self.secured:
                yield from self.runtime.hash_cost(len(entry.payload))
                chain.verify_next(entry.counter, entry.payload, entry.tag)
                yield from self.runtime.seal_cost(len(entry.payload))
                iv = _IV_PREFIX + entry.counter.to_bytes(8, "little")
                payload = self._aead.open(entry.payload, aad=self.log_name.encode())
            else:
                payload = entry.payload
            if up_to_counter is not None and entry.counter > up_to_counter:
                continue  # unstable suffix: legitimately discarded
            entries.append((entry.counter, payload))
        return entries

    def on_disk_max_counter(self) -> int:
        """Highest counter present on disk (0 if the file is missing).

        Used by the freshness check: a disk rolled back to a stale
        snapshot has ``on_disk_max_counter() < stable_value``.
        """
        if not self.disk.exists(self.filename):
            return 0
        last = 0
        for entry in iter_log_entries(self.disk.read(self.filename)):
            last = entry.counter
        return last

    def reset_from_replay(self, entries: List[Tuple[int, bytes]]) -> None:
        """After recovery, continue appending after the recovered prefix.

        Re-seals the recovered prefix so the on-disk chain matches the
        writer state (discarded unstable suffixes are dropped from disk).
        """
        self._chain = LogChain(self._keyring.log_auth_key(self.log_name))
        self.next_counter = 1
        frames = []
        for _counter, payload in entries:
            counter, frame = self._encode_entry(payload)
            assert counter == _counter
            frames.append(frame)
        self.disk.write(self.filename, b"".join(frames))
