"""Cryptographic primitives: AEAD, log chains, key hierarchy, signatures."""

from .aead import IV_BYTES, KEY_BYTES, MAC_BYTES, Aead, xor_bytes
from .hashing import DIGEST_BYTES, ChainState, LogChain, digest
from .keys import KeyRing, derive_key
from .signature import SIGNATURE_BYTES, SigningKey, VerifyKey, generate_keypair

__all__ = [
    "Aead",
    "ChainState",
    "DIGEST_BYTES",
    "IV_BYTES",
    "KEY_BYTES",
    "KeyRing",
    "LogChain",
    "MAC_BYTES",
    "SIGNATURE_BYTES",
    "SigningKey",
    "VerifyKey",
    "derive_key",
    "digest",
    "generate_keypair",
    "xor_bytes",
]
