"""Key hierarchy and key distribution.

The CAS hands each attested node the cluster secrets (§VI: "network key,
nodes' IPs, etc.").  We model a single 32-byte cluster *root key* from
which purpose-specific subkeys are derived — network sealing, per-log
authentication keys, storage block encryption, and sealing keys — so that
compromising one derived key does not reveal the others.
"""

from __future__ import annotations

import hmac
from hashlib import sha256
from typing import Dict

from .aead import KEY_BYTES, Aead

__all__ = ["derive_key", "KeyRing"]


def derive_key(root: bytes, *labels: str) -> bytes:
    """HKDF-style derivation of a subkey from ``root`` and a label path."""
    key = root
    for label in labels:
        key = hmac.new(key, label.encode("utf-8"), sha256).digest()
    return key[:KEY_BYTES]


class KeyRing:
    """All keys a Treaty node holds inside its enclave.

    Only attested enclaves ever receive the root (enforced by
    :mod:`repro.core.cas`); everything else in the node — host memory,
    disk, NIC — sees only ciphertext produced with derived keys.
    """

    def __init__(self, root: bytes):
        if len(root) != KEY_BYTES:
            raise ValueError("root key must be %d bytes" % KEY_BYTES)
        self._root = root
        self._aeads: Dict[str, Aead] = {}

    def subkey(self, *labels: str) -> bytes:
        return derive_key(self._root, *labels)

    def aead(self, *labels: str) -> Aead:
        """Cached AEAD instance for a derived key."""
        name = "/".join(labels)
        if name not in self._aeads:
            self._aeads[name] = Aead(self.subkey(*labels))
        return self._aeads[name]

    # Named accessors for the keys the design calls out explicitly.
    def network_aead(self) -> Aead:
        """Sealing key for Treaty's secure message format (§VII-A)."""
        return self.aead("network")

    def storage_aead(self) -> Aead:
        """Encryption key for SSTable blocks and host-memory values."""
        return self.aead("storage")

    def log_auth_key(self, log_name: str) -> bytes:
        """Authentication (HMAC-chain) key for one persistent log."""
        return self.subkey("log", log_name)

    def log_aead(self, log_name: str) -> Aead:
        """Encryption key for one persistent log's entry payloads."""
        return self.aead("log-enc", log_name)
