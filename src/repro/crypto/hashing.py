"""Hashing utilities: digests, authenticated log chains, block footers.

Treaty's persistent logs (MANIFEST, WAL, Clog) and SSTable blocks carry
cryptographic hashes that recovery re-verifies (§V-A, §VI).  We model the
log authentication as an HMAC chain: each entry's tag covers the entry
body, its trusted-counter value, and the previous tag, so deletion,
reordering or in-place modification of any entry breaks the chain.
"""

from __future__ import annotations

import hmac
from hashlib import sha256
from typing import Optional

from ..errors import IntegrityError

__all__ = ["DIGEST_BYTES", "digest", "ChainState", "LogChain"]

DIGEST_BYTES = 32


def digest(data: bytes) -> bytes:
    """Plain SHA-256 digest (SSTable block footers, measurements)."""
    return sha256(data).digest()


class ChainState:
    """Immutable-ish cursor into a log chain (last tag + entry count)."""

    __slots__ = ("tag", "count")

    def __init__(self, tag: bytes = b"\x00" * DIGEST_BYTES, count: int = 0):
        self.tag = tag
        self.count = count

    def copy(self) -> "ChainState":
        return ChainState(self.tag, self.count)


class LogChain:
    """HMAC chain over log entries, keyed with the log's authentication key.

    ``tag_i = HMAC(key, tag_{i-1} || counter_i || body_i)``.
    """

    def __init__(self, key: bytes, state: Optional[ChainState] = None):
        self._key = key
        self.state = state or ChainState()

    def _tag(self, previous: bytes, counter: int, body: bytes) -> bytes:
        mac = hmac.new(self._key, digestmod=sha256)
        mac.update(previous)
        mac.update(counter.to_bytes(8, "little"))
        mac.update(body)
        return mac.digest()

    def append(self, counter: int, body: bytes) -> bytes:
        """Extend the chain with an entry; returns the entry's tag."""
        tag = self._tag(self.state.tag, counter, body)
        self.state = ChainState(tag, self.state.count + 1)
        return tag

    def verify_next(self, counter: int, body: bytes, tag: bytes) -> None:
        """Verify ``tag`` is the correct continuation; advance the cursor.

        Raises :class:`IntegrityError` on mismatch — a modified, dropped
        or reordered log entry.
        """
        expected = self._tag(self.state.tag, counter, body)
        if not hmac.compare_digest(expected, tag):
            raise IntegrityError(
                "log chain broken at entry %d (tamper/reorder/deletion)"
                % self.state.count
            )
        self.state = ChainState(tag, self.state.count + 1)
