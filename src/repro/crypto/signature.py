"""Simulated digital signatures for attestation quotes.

Real SGX quotes are ECDSA/EPID signatures rooted in fused device keys.
No asymmetric primitives ship with the Python stdlib, so we *simulate*
signatures with an HMAC construction plus an explicit trust registry:

* a :class:`SigningKey` holds the secret and can sign;
* the matching :class:`VerifyKey` embeds the same secret but is treated,
  by convention of the simulation, as safely publishable — the threat
  model code never hands a ``VerifyKey``'s internals to the adversary,
  only the ability to call :meth:`VerifyKey.verify`.

Functionally this preserves what the reproduction needs: a quote can only
be produced by the holder of the signing key, and any byte flip in the
signed body is detected.
"""

from __future__ import annotations

import hmac
from hashlib import sha256

from ..errors import AuthenticationError

__all__ = ["SIGNATURE_BYTES", "SigningKey", "VerifyKey", "generate_keypair"]

SIGNATURE_BYTES = 32


class VerifyKey:
    """Verification half of a simulated signature keypair."""

    def __init__(self, secret: bytes, key_id: str):
        self._secret = secret
        self.key_id = key_id

    def verify(self, message: bytes, signature: bytes) -> None:
        expected = hmac.new(self._secret, message, sha256).digest()
        if not hmac.compare_digest(expected, signature):
            raise AuthenticationError(
                "signature verification failed for key %r" % self.key_id
            )

    def fingerprint(self) -> bytes:
        """Stable public identifier for this key (safe to distribute)."""
        return sha256(b"fp" + self._secret).digest()[:16]


class SigningKey:
    """Signing half of a simulated signature keypair."""

    def __init__(self, secret: bytes, key_id: str):
        if len(secret) < 16:
            raise ValueError("signing secret too short")
        self._secret = secret
        self.key_id = key_id

    def sign(self, message: bytes) -> bytes:
        return hmac.new(self._secret, message, sha256).digest()

    def verify_key(self) -> VerifyKey:
        return VerifyKey(self._secret, self.key_id)


def generate_keypair(seed: bytes, key_id: str):
    """Deterministically derive a keypair for ``key_id`` from ``seed``."""
    secret = hmac.new(seed, ("keypair/" + key_id).encode(), sha256).digest()
    signing = SigningKey(secret, key_id)
    return signing, signing.verify_key()
