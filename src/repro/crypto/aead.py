"""Authenticated encryption with associated data (AEAD).

The paper encrypts messages, log entries, SSTable blocks and host-memory
values with AES-GCM (via OpenSSL) using a 12-byte IV and a 16-byte MAC
(§VII-A).  Hardware AES is not available here, so we build a *real* AEAD
from stdlib primitives — an HMAC-SHA256 keystream in counter mode plus an
encrypt-then-MAC tag — with exactly the paper's wire sizes.  Security
properties relevant to the reproduction hold functionally: ciphertext
reveals nothing without the key, and any bit flip in IV, ciphertext or
associated data fails authentication.

This module is pure computation; the *time* cost of sealing/opening is
charged by callers through :meth:`repro.config.CostModel.aead_cost`.
"""

from __future__ import annotations

import hmac
import struct
from hashlib import sha256
from ..errors import IntegrityError

__all__ = ["IV_BYTES", "MAC_BYTES", "KEY_BYTES", "Aead", "xor_bytes"]

IV_BYTES = 12  # §VII-A: 12 B initialization vector
MAC_BYTES = 16  # §VII-A: 16 B MAC
KEY_BYTES = 32

_BLOCK = 32  # keystream block = one SHA-256 digest


def xor_bytes(data: bytes, keystream: bytes) -> bytes:
    """XOR ``data`` with a keystream of at least the same length."""
    length = len(data)
    if length == 0:
        return b""
    left = int.from_bytes(data, "little")
    right = int.from_bytes(keystream[:length], "little")
    return (left ^ right).to_bytes(length, "little")


class Aead:
    """An AEAD cipher bound to one 32-byte key.

    Layout produced by :meth:`seal`: ``IV (12 B) || ciphertext || MAC (16 B)``
    — the same on-the-wire framing as Treaty's secure message format.
    """

    def __init__(self, key: bytes):
        if len(key) != KEY_BYTES:
            raise ValueError("AEAD key must be %d bytes" % KEY_BYTES)
        # Independent subkeys for the keystream and the MAC, derived the
        # usual KDF way so a single 32-byte master key is enough.
        self._enc_key = hmac.new(key, b"treaty-enc", sha256).digest()
        self._mac_key = hmac.new(key, b"treaty-mac", sha256).digest()

    # -- internals -----------------------------------------------------------
    def _keystream(self, iv: bytes, length: int) -> bytes:
        blocks = []
        for counter in range((length + _BLOCK - 1) // _BLOCK):
            blocks.append(
                hmac.new(
                    self._enc_key, iv + struct.pack("<I", counter), sha256
                ).digest()
            )
        return b"".join(blocks)[:length]

    def _tag(self, iv: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        mac = hmac.new(self._mac_key, digestmod=sha256)
        mac.update(struct.pack("<II", len(aad), len(ciphertext)))
        mac.update(iv)
        mac.update(aad)
        mac.update(ciphertext)
        return mac.digest()[:MAC_BYTES]

    # -- public API -----------------------------------------------------------
    def seal(self, iv: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ``IV || ciphertext || MAC``."""
        if len(iv) != IV_BYTES:
            raise ValueError("IV must be %d bytes" % IV_BYTES)
        ciphertext = xor_bytes(plaintext, self._keystream(iv, len(plaintext)))
        return iv + ciphertext + self._tag(iv, aad, ciphertext)

    def open(self, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt; raises :class:`IntegrityError` on any tamper."""
        if len(sealed) < IV_BYTES + MAC_BYTES:
            raise IntegrityError("sealed blob too short to be authentic")
        iv = sealed[:IV_BYTES]
        ciphertext = sealed[IV_BYTES : len(sealed) - MAC_BYTES]
        tag = sealed[len(sealed) - MAC_BYTES :]
        expected = self._tag(iv, aad, ciphertext)
        if not hmac.compare_digest(tag, expected):
            raise IntegrityError("AEAD authentication failed")
        return xor_bytes(ciphertext, self._keystream(iv, len(ciphertext)))

    @staticmethod
    def sealed_size(plaintext_len: int) -> int:
        """Total bytes :meth:`seal` produces for a plaintext of this size."""
        return IV_BYTES + plaintext_len + MAC_BYTES
