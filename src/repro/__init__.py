"""Treaty: Secure Distributed Transactions (DSN 2022) — reproduction.

A distributed transactional key-value store with serializable ACID
transactions and strong security properties (confidentiality, integrity,
freshness) over untrusted storage, network and machines, reproduced as a
deterministic simulation with real protocol/crypto/log behaviour and a
calibrated TEE cost model.

Quickstart::

    from repro import TreatyCluster, TREATY_FULL

    cluster = TreatyCluster(profile=TREATY_FULL).start()
    machine = cluster.client_machine()
    session = cluster.session(machine, coordinator=0)

    def workload():
        txn = session.begin()
        yield from txn.put(b"alice", b"100")
        yield from txn.put(b"bob", b"200")
        yield from txn.commit()

    cluster.run(workload())
"""

from .config import (
    ClusterConfig,
    CostModel,
    DS_ROCKSDB,
    EnvProfile,
    NATIVE_TREATY,
    NATIVE_TREATY_ENC,
    PROFILES,
    TREATY_ENC,
    TREATY_FULL,
    TREATY_NO_ENC,
)
from .core import (
    ClientSession,
    GlobalTxn,
    TreatyCluster,
    TreatyNode,
    hash_partitioner,
)
from .errors import (
    AttestationError,
    AuthenticationError,
    ConflictError,
    FreshnessError,
    IntegrityError,
    LockTimeout,
    ReplayError,
    ReproError,
    SecurityError,
    TransactionAborted,
)

__version__ = "1.0.0"

__all__ = [
    "AttestationError",
    "AuthenticationError",
    "ClientSession",
    "ClusterConfig",
    "ConflictError",
    "CostModel",
    "DS_ROCKSDB",
    "EnvProfile",
    "FreshnessError",
    "GlobalTxn",
    "IntegrityError",
    "LockTimeout",
    "NATIVE_TREATY",
    "NATIVE_TREATY_ENC",
    "PROFILES",
    "ReplayError",
    "ReproError",
    "SecurityError",
    "TransactionAborted",
    "TREATY_ENC",
    "TREATY_FULL",
    "TREATY_NO_ENC",
    "TreatyCluster",
    "TreatyNode",
    "__version__",
]
