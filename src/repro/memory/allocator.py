"""Mempool allocator for transaction buffers (§VII-D).

The paper implements "a scalable memory allocator for host and enclave
memory that relies on a mempool", assigning threads to heaps by a hash of
their id and recycling unused memory.  We reproduce that structure: size
classes, per-heap free lists, recycling statistics.  The allocator is
functional bookkeeping; its performance effect is that recycled buffers
do not grow the mapped working set (and hence do not add EPC pressure).
"""

from __future__ import annotations

from typing import Dict, List

from .regions import Allocation, MemoryRegion

__all__ = ["MempoolAllocator", "PooledBuffer"]

# Power-of-two size classes from 64 B to 8 MiB, like a slab allocator.
_MIN_CLASS = 64
_MAX_CLASS = 8 * 1024 * 1024


def _size_class(nbytes: int) -> int:
    size = _MIN_CLASS
    while size < nbytes:
        size *= 2
    return size


class PooledBuffer:
    """A buffer leased from a :class:`MempoolAllocator`."""

    __slots__ = ("allocator", "heap_id", "size_class", "requested", "_released")

    def __init__(self, allocator, heap_id, size_class, requested):
        self.allocator = allocator
        self.heap_id = heap_id
        self.size_class = size_class
        self.requested = requested
        self._released = False

    def release(self) -> None:
        """Return the buffer to its heap's free list for recycling."""
        if not self._released:
            self._released = True
            self.allocator._recycle(self)


class MempoolAllocator:
    """Size-classed pooling allocator over a :class:`MemoryRegion`.

    ``heaps`` mirrors the paper's thread-to-heap hashing: callers pass a
    thread/fiber id and the allocator picks ``hash(id) % heaps``.
    """

    def __init__(self, region: MemoryRegion, heaps: int = 8):
        if heaps < 1:
            raise ValueError("heaps must be >= 1")
        self.region = region
        self.heaps = heaps
        self._free: Dict[int, Dict[int, List[Allocation]]] = {
            h: {} for h in range(heaps)
        }
        self.alloc_count = 0
        self.recycle_hits = 0

    def _heap_of(self, thread_id: int) -> int:
        return hash(thread_id) % self.heaps

    def alloc(self, nbytes: int, thread_id: int = 0) -> PooledBuffer:
        if nbytes > _MAX_CLASS:
            raise ValueError("allocation beyond the largest mempool class")
        heap = self._heap_of(thread_id)
        size = _size_class(nbytes)
        self.alloc_count += 1
        free_list = self._free[heap].get(size)
        if free_list:
            free_list.pop()  # reuse a previously mapped slab
            self.recycle_hits += 1
        else:
            self.region.allocate(size)  # stays mapped for the pool's lifetime
        return PooledBuffer(self, heap, size, nbytes)

    def _recycle(self, buffer: PooledBuffer) -> None:
        placeholder = Allocation(self.region, 0)
        self._free[buffer.heap_id].setdefault(buffer.size_class, []).append(
            placeholder
        )

    def mapped_bytes(self) -> int:
        """Bytes of region memory this allocator has ever mapped."""
        return self.region.total_allocated

    def recycle_rate(self) -> float:
        if self.alloc_count == 0:
            return 0.0
        return self.recycle_hits / self.alloc_count
