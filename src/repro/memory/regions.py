"""Memory regions: enclave (EPC-limited) vs untrusted host memory.

Treaty splits its in-memory state deliberately (§VII-D): keys and
transaction metadata stay in the enclave; values, network message buffers
and caches live encrypted in host memory to relieve EPC pressure.  These
region objects do the byte accounting that drives the EPC paging model.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Allocation", "MemoryRegion", "EnclaveMemory", "HostMemory"]


class Allocation:
    """A live allocation inside a region; ``free()`` returns the bytes."""

    __slots__ = ("region", "nbytes", "_freed")

    def __init__(self, region: "MemoryRegion", nbytes: int):
        self.region = region
        self.nbytes = nbytes
        self._freed = False

    def free(self) -> None:
        if not self._freed:
            self._freed = True
            self.region._release(self.nbytes)

    @property
    def freed(self) -> bool:
        return self._freed


class MemoryRegion:
    """Byte-accounted memory area with optional soft pressure threshold."""

    def __init__(self, name: str, soft_limit: Optional[int] = None):
        self.name = name
        self.soft_limit = soft_limit
        self.used = 0
        self.peak = 0
        self.total_allocated = 0

    def allocate(self, nbytes: int) -> Allocation:
        if nbytes < 0:
            raise ValueError("negative allocation")
        self.used += nbytes
        self.total_allocated += nbytes
        if self.used > self.peak:
            self.peak = self.used
        return Allocation(self, nbytes)

    def _release(self, nbytes: int) -> None:
        self.used -= nbytes

    @property
    def over_limit_bytes(self) -> int:
        """How far the working set exceeds the soft limit (0 if within)."""
        if self.soft_limit is None:
            return 0
        return max(0, self.used - self.soft_limit)

    def pressure(self) -> float:
        """Fraction of the working set that does not fit (0.0 — ~1.0).

        This is the probability that touching a random resident page
        requires an EPC page-in, which is how the enclave charges paging.
        """
        if self.soft_limit is None or self.used <= self.soft_limit:
            return 0.0
        return self.over_limit_bytes / self.used


class EnclaveMemory(MemoryRegion):
    """The EPC-backed enclave heap (94 MiB usable on SGXv1)."""

    def __init__(self, epc_bytes: int):
        super().__init__("enclave", soft_limit=epc_bytes)


class HostMemory(MemoryRegion):
    """Untrusted host memory (unbounded for our purposes)."""

    def __init__(self):
        super().__init__("host", soft_limit=None)
