"""Memory management: enclave/host regions and the mempool allocator."""

from .allocator import MempoolAllocator, PooledBuffer
from .regions import Allocation, EnclaveMemory, HostMemory, MemoryRegion

__all__ = [
    "Allocation",
    "EnclaveMemory",
    "HostMemory",
    "MempoolAllocator",
    "MemoryRegion",
    "PooledBuffer",
]
