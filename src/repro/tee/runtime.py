"""Per-node execution runtime: the single place where costs are charged.

Every Treaty component (storage engine, transaction layer, network
library, 2PC) performs its work through a :class:`NodeRuntime`, which

* scales CPU work by the enclave slowdown when running under SCONE,
* charges syscalls at the native or async-SCONE rate,
* charges AEAD/hash time only when the profile enables encryption,
* converts EPC over-subscription into paging time,
* models SSD access as an async syscall plus device latency.

Keeping all charging here means an :class:`~repro.config.EnvProfile`
swap is the *only* difference between "DS-RocksDB" and "Treaty w/ Enc
w/ Stab" — exactly how the paper isolates its overheads.
"""

from __future__ import annotations

from typing import Any, Generator

from ..config import ClusterConfig, CostModel, EnvProfile
from ..memory.regions import HostMemory
from ..obs.registry import MetricsRegistry
from ..obs.tracer import tracer_of
from ..sim.core import Event, Simulator
from ..sim.cpu import CpuPool
from .enclave import Enclave

__all__ = ["NodeRuntime"]

Gen = Generator[Event, Any, None]


class NodeRuntime:
    """Cost-charging execution context for one node."""

    def __init__(self, sim: Simulator, profile: EnvProfile,
                 config: ClusterConfig, name: str = ""):
        self.sim = sim
        self.profile = profile
        self.config = config
        #: owning node's name; labels trace records ("" for anonymous
        #: runtimes such as client machines and unit-test harnesses).
        self.name = name
        self.costs: CostModel = config.costs
        factor = (
            self.costs.enclave_speed_factor if profile.in_enclave else 1.0
        )
        self.cpu = CpuPool(sim, config.cores_per_node, speed_factor=factor)
        self.enclave = Enclave(self.costs)
        self.host_memory = HostMemory()
        self.tracer = tracer_of(sim)
        self.metrics = MetricsRegistry()
        self.metrics.probe("runtime.syscalls", lambda: self.syscalls)
        self.metrics.probe("runtime.crypto_ops", lambda: self.crypto_ops)
        self.metrics.probe("runtime.io_bytes_written",
                           lambda: self.io_bytes_written)
        self.metrics.probe("tee.transitions",
                           lambda: self.enclave.transitions)
        self.metrics.probe("tee.page_faults",
                           lambda: round(self.enclave.page_faults, 3))
        # Statistics for reports / ablations.
        self.syscalls = 0
        self.crypto_ops = 0
        self.io_bytes_written = 0
        #: gauge of client requests currently being handled on this node
        #: (drives the SCONE fiber-resume delay under load, §VII-C).
        self.active_requests = 0
        #: set when the full storage engine is loaded into this enclave:
        #: SPEICHER-style LSM state plus SCONE runtime exceed the EPC, and
        #: under that pressure the SCONE scheduler's wake-up latency for
        #: fibers blocked on I/O degrades with load.  The storage-less
        #: protocol benchmark (Figure 4) fits in the EPC and is exempt —
        #: which is exactly why the paper measures only ~2x there but
        #: 9-15x for the full system.
        self.heavy_enclave = False

    def fiber_resume_delay(self) -> float:
        """Scheduling delay before a blocked enclave fiber runs again."""
        if not self.profile.in_enclave or not self.heavy_enclave:
            return 0.0
        load = min(self.active_requests, self.costs.scone_resume_load_cap)
        return load * self.costs.scone_fiber_resume_quantum

    # -- basic CPU ---------------------------------------------------------
    def compute(self, seconds: float) -> Gen:
        """Charge ``seconds`` of CPU work (enclave-scaled via the pool)."""
        yield from self.cpu.consume(seconds)

    def touch_enclave(self, nbytes: int) -> Gen:
        """Charge paging for touching enclave-resident data under pressure."""
        cost = self.enclave.touch_cost(nbytes) if self.profile.in_enclave else 0.0
        if cost > 0.0:
            self.tracer.event("tee", "epc_paging", node=self.name or None,
                              bytes=nbytes, cost=round(cost, 9))
            yield from self.cpu.consume(cost)

    # -- syscalls ------------------------------------------------------------
    def syscall(self, nbytes: int = 0) -> Gen:
        """One syscall moving ``nbytes`` through the kernel boundary."""
        self.syscalls += 1
        yield from self.cpu.consume(
            self.costs.syscall_cost(self.profile.in_enclave, nbytes)
        )

    def world_switch(self) -> Gen:
        """A full enclave exit/enter (only on naive OCALL paths)."""
        if self.profile.in_enclave:
            cost = self.enclave.transition_cost()
            self.tracer.event("tee", "world_switch", node=self.name or None,
                              cost=round(cost, 9))
            yield from self.cpu.consume(cost)

    def msgbuf_shield(self, nbytes: int) -> Gen:
        """Stage message-buffer bytes between enclave and host hugepages.

        Only charged under SCONE: the DMA-able buffers live in host
        memory (§VII-A) so the enclave copies payloads across the
        boundary instead of paging EPC.
        """
        if self.profile.in_enclave and nbytes > 0:
            cost = (
                self.costs.scone_net_handling
                + nbytes * self.costs.scone_msgbuf_copy_per_byte
            )
            self.tracer.event("tee", "msgbuf_shield", node=self.name or None,
                              bytes=nbytes, cost=round(cost, 9))
            yield from self.cpu.consume(cost)

    # -- cryptography ----------------------------------------------------------
    def seal_cost(self, nbytes: int) -> Gen:
        """Charge one AEAD seal/open if the profile encrypts."""
        if self.profile.encryption:
            self.crypto_ops += 1
            yield from self.cpu.consume(self.costs.aead_cost(nbytes))

    def hash_cost(self, nbytes: int) -> Gen:
        """Charge one integrity hash if the profile encrypts."""
        if self.profile.encryption:
            self.crypto_ops += 1
            yield from self.cpu.consume(self.costs.hash_cost(nbytes))

    # -- storage I/O -------------------------------------------------------------
    @property
    def _spdk(self) -> bool:
        return self.config.storage_io == "spdk"

    def ssd_write(self, nbytes: int) -> Gen:
        """Write ``nbytes`` to the SSD.

        Syscall mode: async-syscall CPU, then device time off-core.
        SPDK mode: cheap userspace submission, same device time.
        """
        self.io_bytes_written += nbytes
        if self._spdk:
            yield from self.cpu.consume(self.costs.spdk_submit_cpu)
        else:
            yield from self.syscall(nbytes)
        yield self.sim.timeout(self.costs.ssd_write_cost(nbytes))

    def ssd_read(self, nbytes: int, cached: bool = True) -> Gen:
        """Read ``nbytes``.

        Syscall mode hits the kernel page cache (§V-A: "the database
        fits entirely in the kernel page cache"); SPDK bypasses the
        kernel entirely, so every read pays the device (§V-A's reason
        for not using it here).
        """
        if self._spdk:
            yield from self.cpu.consume(self.costs.spdk_submit_cpu)
            yield self.sim.timeout(self.costs.ssd_read_cost(nbytes, cached=False))
        else:
            yield from self.syscall(nbytes)
            yield self.sim.timeout(self.costs.ssd_read_cost(nbytes, cached=cached))

    # -- convenience ----------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def op_overhead(self) -> Gen:
        """Fixed request-handling bookkeeping per KV operation."""
        yield from self.cpu.consume(self.costs.op_base_cpu)

    def copy(self, nbytes: int) -> Gen:
        """Charge a memory copy of ``nbytes``."""
        if nbytes > 0:
            yield from self.cpu.consume(nbytes * self.costs.copy_per_byte)
