"""SGX primitives: measurements, report/quote structures, sealing.

These are the building blocks the attestation flow (§VI) composes:

* a *measurement* identifies the code loaded into an enclave,
* a *report* binds a measurement to caller-chosen report data,
* a *quote* is a report signed by a quoting authority (Intel's QE, or
  Treaty's per-node LAS after CAS bootstrap),
* *sealing* encrypts enclave state to the local sealing key so it can be
  stored on untrusted media (used for counter-state persistence).
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import sha256

from ..crypto.aead import Aead
from ..crypto.keys import derive_key
from ..crypto.signature import SigningKey, VerifyKey
from ..errors import AttestationError

__all__ = ["measure", "Report", "Quote", "SealingKey"]


def measure(code_identity: str) -> bytes:
    """MRENCLAVE-style measurement of an enclave's code identity."""
    return sha256(("enclave:" + code_identity).encode("utf-8")).digest()


@dataclass(frozen=True)
class Report:
    """An enclave-produced report (pre-signature)."""

    measurement: bytes
    report_data: bytes

    def serialize(self) -> bytes:
        return (
            len(self.measurement).to_bytes(2, "little")
            + self.measurement
            + self.report_data
        )


@dataclass(frozen=True)
class Quote:
    """A signed report, verifiable against the quoting authority's key."""

    report: Report
    signature: bytes
    authority_id: str

    @staticmethod
    def create(report: Report, authority_key: SigningKey) -> "Quote":
        return Quote(
            report=report,
            signature=authority_key.sign(report.serialize()),
            authority_id=authority_key.key_id,
        )

    def verify(self, authority_verify_key: VerifyKey, expected_measurement: bytes):
        """Check the signature and the measurement; raise on mismatch."""
        authority_verify_key.verify(self.report.serialize(), self.signature)
        if self.report.measurement != expected_measurement:
            raise AttestationError(
                "unexpected enclave measurement (wrong or modified code)"
            )


class SealingKey:
    """Per-enclave sealing: encrypt state to the platform+measurement."""

    def __init__(self, platform_secret: bytes, measurement: bytes):
        key = derive_key(platform_secret, "seal", measurement.hex())
        self._aead = Aead(key)
        self._counter = 0

    def seal(self, plaintext: bytes) -> bytes:
        self._counter += 1
        iv = self._counter.to_bytes(12, "little")
        return self._aead.seal(iv, plaintext, aad=b"sealed-state")

    def unseal(self, sealed: bytes) -> bytes:
        return self._aead.open(sealed, aad=b"sealed-state")
