"""SGX hardware monotonic counters — the rejected baseline (§III).

The paper lists three reasons these cannot back Treaty's stabilization:
increments take up to ~250 ms, counters wear out after days of high-rate
use, and they are private per CPU so they cannot protect a distributed
group.  We implement them faithfully so the ablation benchmark
(`bench_ablation_counters`) can show the gap against the ROTE-style
service that Treaty actually uses.
"""

from __future__ import annotations

from typing import Any, Generator

from ..config import CostModel
from ..errors import StorageError
from ..sim.core import Event, Simulator

__all__ = ["HardwareMonotonicCounter"]

#: Writes after which the counter's backing NVRAM is considered worn out.
#: (ROTE §2: "at high rate, counters wear out after a couple of days";
#: scaled down so tests can exercise the failure mode.)
DEFAULT_WEAR_LIMIT = 1_000_000


class HardwareMonotonicCounter:
    """A per-CPU monotonic counter with slow, wearing increments."""

    def __init__(
        self,
        sim: Simulator,
        costs: CostModel,
        wear_limit: int = DEFAULT_WEAR_LIMIT,
    ):
        self.sim = sim
        self.costs = costs
        self.value = 0
        self.writes = 0
        self.wear_limit = wear_limit

    def increment(self) -> Generator[Event, Any, int]:
        """Increment and return the new value (blocks ~100 ms simulated)."""
        if self.writes >= self.wear_limit:
            raise StorageError("monotonic counter worn out (NVRAM exhausted)")
        yield self.sim.timeout(self.costs.sgx_counter_increment)
        self.writes += 1
        self.value += 1
        return self.value

    def read(self) -> int:
        """Reads are fast and do not wear the counter."""
        return self.value
