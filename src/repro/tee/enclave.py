"""Enclave model: EPC accounting, paging charges, world switches.

An :class:`Enclave` tracks the enclave-resident working set through an
:class:`~repro.memory.regions.EnclaveMemory` region and converts EPC
over-subscription into paging CPU time, the dominant cost the paper's
memory layout (§VII-D) is designed to avoid.
"""

from __future__ import annotations

from typing import Dict

from ..config import CostModel
from ..memory.regions import EnclaveMemory

__all__ = ["Enclave"]


class Enclave:
    """One node's SGX enclave (memory + transition cost bookkeeping)."""

    def __init__(self, costs: CostModel):
        self.costs = costs
        self.memory = EnclaveMemory(costs.epc_bytes)
        self.transitions = 0
        self.page_faults = 0

    def transition_cost(self) -> float:
        """CPU seconds for one world switch (EENTER/EEXIT pair)."""
        self.transitions += 1
        return self.costs.world_switch

    def touch_cost(self, nbytes: int) -> float:
        """Paging CPU seconds for touching ``nbytes`` of enclave data.

        Under EPC pressure a fraction of touched pages miss and must be
        paged in through the SGX paging path (encrypt/evict + load).
        """
        pressure = self.memory.pressure()
        if pressure <= 0.0 or nbytes <= 0:
            return 0.0
        pages = max(1, nbytes // self.costs.page_bytes)
        faults = pages * pressure
        self.page_faults += faults
        return faults * self.costs.epc_page_fault

    def stats(self) -> Dict[str, float]:
        """Transition/paging counters for reports and ``repro info``."""
        return {
            "transitions": self.transitions,
            "page_faults": round(self.page_faults, 3),
            "resident_bytes": self.memory.used,
            "epc_bytes": self.memory.soft_limit,
        }
