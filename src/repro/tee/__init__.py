"""TEE substrate: enclave model, SGX primitives, attestation, runtime."""

from .attestation import IntelAttestationService, PlatformQuotingEnclave
from .counters import HardwareMonotonicCounter
from .enclave import Enclave
from .runtime import NodeRuntime
from .sgx import Quote, Report, SealingKey, measure

__all__ = [
    "Enclave",
    "HardwareMonotonicCounter",
    "IntelAttestationService",
    "NodeRuntime",
    "PlatformQuotingEnclave",
    "Quote",
    "Report",
    "SealingKey",
    "measure",
]
