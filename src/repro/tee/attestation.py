"""Intel Attestation Service (IAS) simulation.

IAS verifies quotes produced by the platform Quoting Enclave.  The paper
avoids per-node IAS round trips (high latency, §IV-B#3) by attesting only
the CAS against IAS and letting a per-node LAS sign subsequent quotes.
This module provides the slow, single-node IAS path that CAS bootstraps
through, plus the platform QE key registry.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from ..config import CostModel
from ..crypto.signature import SigningKey, VerifyKey, generate_keypair
from ..errors import AttestationError
from ..sim.core import Event, Simulator
from .sgx import Quote

__all__ = ["IntelAttestationService", "PlatformQuotingEnclave"]


class PlatformQuotingEnclave:
    """The per-platform QE whose key Intel provisioned at manufacture."""

    def __init__(self, platform_id: str, manufacturer_seed: bytes):
        self.platform_id = platform_id
        self._signing, self._verify = generate_keypair(
            manufacturer_seed, "qe/" + platform_id
        )

    @property
    def signing_key(self) -> SigningKey:
        return self._signing

    @property
    def verify_key(self) -> VerifyKey:
        return self._verify


class IntelAttestationService:
    """Verifies platform quotes; one round trip costs ~hundreds of ms."""

    def __init__(self, sim: Simulator, costs: CostModel, manufacturer_seed: bytes):
        self.sim = sim
        self.costs = costs
        self._manufacturer_seed = manufacturer_seed
        self._platforms: Dict[str, VerifyKey] = {}
        self.verifications = 0

    def register_platform(self, qe: PlatformQuotingEnclave) -> None:
        """Record a genuine platform (models Intel's provisioning DB)."""
        self._platforms[qe.verify_key.key_id] = qe.verify_key

    def verify_quote(
        self, quote: Quote, expected_measurement: bytes
    ) -> Generator[Event, Any, bool]:
        """Verify a quote over the (slow) IAS round trip."""
        yield self.sim.timeout(self.costs.ias_round_trip)
        self.verifications += 1
        verify_key = self._platforms.get(quote.authority_id)
        if verify_key is None:
            raise AttestationError(
                "quote from unknown platform %r" % quote.authority_id
            )
        quote.verify(verify_key, expected_measurement)
        return True
