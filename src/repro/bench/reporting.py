"""Result tables: measured numbers next to the paper's reported ranges."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = [
    "PaperRow",
    "ComparisonTable",
    "format_table",
    "format_phase_breakdown",
]


@dataclass
class PaperRow:
    """One system's result in one experiment."""

    system: str
    value: float
    unit: str = ""
    #: the paper's expected band (min, max) for this quantity, if the
    #: paper reports one (slowdowns, ratios); None for absolute values.
    paper_range: Optional[tuple] = None
    note: str = ""

    def within_paper_range(self) -> Optional[bool]:
        if self.paper_range is None:
            return None
        low, high = self.paper_range
        return low <= self.value <= high


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Fixed-width text table (what the benchmark scripts print)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = ["", "=== %s ===" % title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_phase_breakdown(obs_info: dict) -> str:
    """Render a harness ``extra_info["obs"]`` phase/enclave breakdown.

    ``obs_info`` is the dict produced by the bench harness: per-phase
    ``{count, mean_ms, max_ms}`` aggregates plus enclave counters.
    """
    rows = [
        (name, str(stats["count"]), "%.3f" % stats["mean_ms"],
         "%.3f" % stats["max_ms"])
        for name, stats in sorted(obs_info.get("phases", {}).items())
    ]
    text = format_table(
        "2PC phase breakdown", ["phase", "count", "mean ms", "max ms"], rows
    )
    enclave = obs_info.get("enclave", {})
    if enclave:
        text += "\n" + "  ".join(
            "%s=%s" % (name, enclave[name]) for name in sorted(enclave)
        )
    return text


class ComparisonTable:
    """Collects rows for one figure/table and renders the comparison."""

    def __init__(self, title: str, metric_name: str = "slowdown"):
        self.title = title
        self.metric_name = metric_name
        self.rows: List[PaperRow] = []

    def add(
        self,
        system: str,
        value: float,
        unit: str = "x",
        paper_range: Optional[tuple] = None,
        note: str = "",
    ) -> None:
        self.rows.append(PaperRow(system, value, unit, paper_range, note))

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            if row.paper_range is not None:
                expected = "%.2f-%.2f" % row.paper_range
                verdict = "OK" if row.within_paper_range() else "off"
            else:
                expected, verdict = "-", "-"
            table_rows.append(
                (
                    row.system,
                    "%.2f%s" % (row.value, row.unit),
                    expected,
                    verdict,
                    row.note,
                )
            )
        return format_table(
            self.title,
            ["system", self.metric_name, "paper", "match", "note"],
            table_rows,
        )

    def results(self) -> dict:
        """Machine-readable form (stored into benchmark extra_info)."""
        return {
            row.system: {
                "value": row.value,
                "unit": row.unit,
                "paper_range": row.paper_range,
                "within": row.within_paper_range(),
            }
            for row in self.rows
        }
