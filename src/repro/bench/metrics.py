"""Throughput / latency collection for experiments."""

from __future__ import annotations

import math
from typing import List, Optional

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Accumulates per-transaction samples over a measurement window."""

    def __init__(self, name: str = ""):
        self.name = name
        self.latencies: List[float] = []
        self.committed = 0
        self.aborted = 0
        self._measure_start: Optional[float] = None
        self._measure_end: Optional[float] = None
        #: free-form auxiliary data (e.g. obs registry snapshots) carried
        #: alongside the core samples and included in ``summary()``.
        self.extra_info: dict = {}

    # -- recording ---------------------------------------------------------
    def measure_from(self, start_time: float) -> None:
        """Ignore samples before ``start_time`` (warm-up)."""
        self._measure_start = start_time

    def record(self, start: float, end: float) -> None:
        if self._measure_start is not None and start < self._measure_start:
            return
        self.committed += 1
        self.latencies.append(end - start)

    def record_abort(self, start: Optional[float] = None) -> None:
        """Count one aborted transaction.

        ``start`` is the transaction's begin timestamp; aborts that began
        during the warm-up window are excluded just like commits, so the
        abort *rate* compares like with like.  Calls without ``start``
        are always counted (legacy behaviour).
        """
        if (
            start is not None
            and self._measure_start is not None
            and start < self._measure_start
        ):
            return
        self.aborted += 1

    def finish(self, end_time: float) -> None:
        self._measure_end = end_time

    # -- summaries -----------------------------------------------------------
    @property
    def window(self) -> float:
        if self._measure_start is None or self._measure_end is None:
            return 0.0
        return self._measure_end - self._measure_start

    def throughput(self) -> float:
        """Committed transactions per second over the window."""
        if self.window <= 0:
            return 0.0
        return self.committed / self.window

    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile(self, p: float) -> float:
        """Latency percentile, ``p`` in [0, 100]."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction

    def abort_rate(self) -> float:
        total = self.committed + self.aborted
        if total == 0:
            return 0.0
        return self.aborted / total

    def summary(self) -> dict:
        out = {
            "name": self.name,
            "committed": self.committed,
            "aborted": self.aborted,
            "throughput_tps": self.throughput(),
            "mean_latency_ms": self.mean_latency() * 1e3,
            "p50_ms": self.percentile(50) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
            "abort_rate": self.abort_rate(),
        }
        if self.extra_info:
            out["extra_info"] = self.extra_info
        return out
