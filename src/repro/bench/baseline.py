"""Performance baseline: record headline numbers, gate regressions.

``repro bench baseline`` runs one deterministic distributed YCSB
workload on the full Treaty profile *with tracing enabled*, derives the
headline metrics —

* throughput (committed txns / measured second),
* p99 commit latency,
* delivered network frames per committed transaction,
* AEAD seal operations per committed transaction,
* trusted-counter rounds per committed transaction,
* the critical-path per-category p50/p99 breakdown
  (:mod:`repro.obs.critpath`),

— and writes them to ``BENCH_treaty.json``.  ``--check`` compares a
fresh run against the checked-in file with direction-aware tolerances
(throughput may not drop, cost counters may not grow, beyond
``tolerance``) and fails CI on a regression.  The run is seeded and the
simulator is deterministic, so a freshly written baseline always passes
its own check exactly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..config import ClusterConfig, TREATY_FULL
from ..core.cluster import TreatyCluster
from ..obs.critpath import CATEGORIES, aggregate_critical_paths, percentile
from ..workloads.ycsb import YcsbConfig, bulk_load, run_ycsb
from .harness import _attach_phase_breakdown, bench_scale, transport_stats
from .metrics import MetricsCollector

__all__ = [
    "BASELINE_PATH",
    "BASELINE_BACKEND",
    "BASELINE_SHARDS",
    "GATED_METRICS",
    "WORKLOAD_PROFILES",
    "WORKLOAD_GATED_METRICS",
    "run_baseline",
    "run_workload_profiles",
    "check_baseline",
    "format_baseline_deltas",
    "write_baseline",
    "load_baseline",
]

#: default location of the checked-in baseline (repo root).
BASELINE_PATH = "BENCH_treaty.json"

#: headline metrics the ``--check`` gate compares, with direction:
#: ``"min"`` — regression is the value *dropping* below (1 - tol) x ref;
#: ``"max"`` — regression is the value *growing* above (1 + tol) x ref.
GATED_METRICS = (
    ("throughput_tps", "min"),
    ("p99_commit_latency_ms", "max"),
    ("frames_per_txn", "max"),
    ("seal_ops_per_txn", "max"),
    ("counter_rounds_per_txn", "max"),
    # p99/p50 critical-path total: the tail may not detach from the
    # median (a convoy or a stalled background driver shows up here
    # before it moves the p99 absolute number past its band).
    ("tail_amplification_x", "max"),
)

#: default regression tolerance.  Same-seed runs reproduce exactly; the
#: slack absorbs intentional cross-PR behaviour drift without letting a
#: real regression (a dropped batch path, an extra counter round per
#: txn) through.
DEFAULT_TOLERANCE = 0.25


#: the backend/sharding the headline baseline is recorded under.  The
#: per-cluster *default* stays ``counter-sync`` (conservative); the
#: bench frontier runs the async coverage-promise backend over sharded
#: counter groups — the configuration the ROADMAP's "counter off the
#: critical path" gate targets.
BASELINE_BACKEND = "counter-async"
BASELINE_SHARDS = 4

#: read-mostly mixes recorded as per-workload baseline sections; each
#: pairs the snapshot-read/OCC run with a locking-2PC run on the same
#: seed so the section carries the measured gain.
WORKLOAD_PROFILES = ("ycsb-b", "ycsb-c")

#: gated metrics inside each per-workload section (same band semantics
#: as :data:`GATED_METRICS`, failure names prefixed with the workload).
WORKLOAD_GATED_METRICS = (
    ("throughput_tps", "min"),
    ("p50_ms", "max"),
    ("cluster_frames_per_txn", "max"),
)


def run_baseline(
    num_clients: Optional[int] = None,
    duration: Optional[float] = None,
    seed: int = 11,
    backend: Optional[str] = None,
    shards: Optional[int] = None,
    workloads: bool = True,
) -> Dict[str, Any]:
    """One traced YCSB run on TREATY_FULL; returns the baseline document.

    ``workloads`` additionally records the read-mostly per-workload
    sections (:func:`run_workload_profiles`).
    """
    num_clients = num_clients or 24
    duration = duration or (0.2 if bench_scale() == "quick" else 0.6)
    backend = backend or BASELINE_BACKEND
    shards = shards if shards is not None else BASELINE_SHARDS
    config = ClusterConfig(
        tracing=True,
        seed=seed,
        rollback_backend=backend,
        counter_shards=shards,
        flight_recorder=True,
        timeseries=True,
        incidents=True,
    )
    cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
    ycsb = YcsbConfig(read_proportion=0.5, num_keys=2_000)
    cluster.run(bulk_load(cluster, ycsb), name="load")
    metrics = MetricsCollector("baseline")
    run_ycsb(
        cluster,
        ycsb,
        metrics,
        num_clients=num_clients,
        duration=duration,
        warmup=duration * 0.25,
    )
    _attach_phase_breakdown(metrics, cluster)

    summary = metrics.summary()
    committed = max(1, metrics.committed)
    transport = transport_stats(cluster)
    durability = metrics.extra_info["obs"]["durability"]
    records = cluster.obs.records()
    aggregate = aggregate_critical_paths(records)
    obs = cluster.obs
    obs.timeseries.flush()
    timeline = dict(obs.timeseries.summary())
    timeline["incidents"] = obs.incidents.counts()
    tail = _tail_breakdown(aggregate)

    critical_path: Dict[str, Any] = {
        "txns": aggregate["count"],
        "total_ms": {
            "p50": round(percentile(aggregate["totals"], 50) * 1e3, 6),
            "p99": round(percentile(aggregate["totals"], 99) * 1e3, 6),
        },
        "categories": {},
    }
    grand_total = sum(aggregate["totals"]) or 1.0
    for category in CATEGORIES:
        samples = aggregate["categories"][category]
        critical_path["categories"][category] = {
            "p50_ms": round(percentile(samples, 50) * 1e3, 6),
            "p99_ms": round(percentile(samples, 99) * 1e3, 6),
            "share": round(sum(samples) / grand_total, 6),
        }

    document = {
        "meta": {
            "profile": TREATY_FULL.name,
            "workload": "ycsb-50/50-distributed",
            "seed": seed,
            "clients": num_clients,
            "duration_s": duration,
            "scale": bench_scale(),
            "rollback_backend": backend,
            "counter_shards": shards,
        },
        "metrics": {
            "throughput_tps": round(summary["throughput_tps"], 3),
            "p99_commit_latency_ms": round(summary["p99_ms"], 6),
            "mean_commit_latency_ms": round(summary["mean_latency_ms"], 6),
            "committed": metrics.committed,
            "aborted": metrics.aborted,
            "frames_per_txn": round(
                transport["delivered_frames"] / committed, 6
            ),
            "seal_ops_per_txn": round(transport["seal_ops"] / committed, 6),
            "counter_rounds_per_txn": round(
                durability.get("rounds_per_committed_txn", 0.0), 6
            ),
            "tail_amplification_x": tail["amplification_x"],
        },
        "critical_path": critical_path,
        "timeline": timeline,
        "tail": tail,
        "_aggregate": aggregate,  # stripped before serialization
        "_timeseries": obs.timeseries,
        "_incidents": obs.incidents,
        "_recorder": obs.recorder,
    }
    if workloads:
        document["workloads"] = run_workload_profiles(
            num_clients=num_clients, duration=duration, seed=seed
        )
    return document


def _tail_breakdown(aggregate: Dict[str, Any]) -> Dict[str, Any]:
    """p99-vs-p50 critical-path comparison: where the tail's time goes.

    Splits the per-transaction critical-path totals at their p99 and
    compares, per category, the tail transactions' share of time against
    the overall share — the section that answers "the p99 is 3x the p50;
    which phase is responsible".
    """
    totals = aggregate["totals"]
    if not totals:
        return {"txns": 0, "amplification_x": 1.0, "categories": {}}
    p50 = percentile(totals, 50)
    p99 = percentile(totals, 99)
    tail_index = [i for i, total in enumerate(totals) if total >= p99]
    tail_time = sum(totals[i] for i in tail_index) or 1.0
    all_time = sum(totals) or 1.0
    categories: Dict[str, Any] = {}
    for category in CATEGORIES:
        samples = aggregate["categories"][category]
        share_all = sum(samples) / all_time
        share_tail = sum(samples[i] for i in tail_index) / tail_time
        if share_all == 0.0 and share_tail == 0.0:
            continue
        categories[category] = {
            "share": round(share_all, 6),
            "tail_share": round(share_tail, 6),
            "delta_pp": round((share_tail - share_all) * 100, 3),
        }
    return {
        "txns": len(tail_index),
        "p50_ms": round(p50 * 1e3, 6),
        "p99_ms": round(p99 * 1e3, 6),
        "amplification_x": round(p99 / p50 if p50 else 1.0, 3),
        "categories": categories,
    }


def run_workload_profiles(
    num_clients: Optional[int] = None,
    duration: Optional[float] = None,
    seed: int = 11,
) -> Dict[str, Any]:
    """Per-workload baseline sections (read-mostly mixes).

    Each section runs the mix twice on the same seed — snapshot-read
    fast path on, then plain locking 2PC — and records the snapshot
    run's gated metrics plus the measured gain over locking.
    """
    from .harness import ycsb_variant_run

    sections: Dict[str, Any] = {}
    for name in WORKLOAD_PROFILES:
        variant = name.rsplit("-", 1)[-1]
        _, snap = ycsb_variant_run(
            variant, True, num_clients, duration, seed=seed
        )
        _, lock = ycsb_variant_run(
            variant, False, num_clients, duration, seed=seed
        )
        sections[name] = {
            "metrics": {
                "throughput_tps": round(snap["throughput_tps"], 3),
                "p50_ms": round(snap["p50_ms"], 6),
                "p99_ms": round(snap["p99_ms"], 6),
                "committed": snap["committed"],
                "aborted": snap["aborted"],
                "cluster_frames_per_txn": round(
                    snap["cluster_frames_per_txn"], 6
                ),
            },
            "counters": snap["counters"],
            "locking": {
                "throughput_tps": round(lock["throughput_tps"], 3),
                "p50_ms": round(lock["p50_ms"], 6),
                "p99_ms": round(lock["p99_ms"], 6),
                "committed": lock["committed"],
                "cluster_frames_per_txn": round(
                    lock["cluster_frames_per_txn"], 6
                ),
            },
            "gain": {
                "throughput_x": round(
                    snap["throughput_tps"]
                    / max(lock["throughput_tps"], 1e-9),
                    3,
                ),
                "p50_reduction": round(
                    1.0 - snap["p50_ms"] / max(lock["p50_ms"], 1e-9), 3
                ),
            },
        }
    return sections


def write_baseline(document: Dict[str, Any], path: str = BASELINE_PATH) -> None:
    serializable = {
        key: value for key, value in document.items()
        if not key.startswith("_")
    }
    with open(path, "w") as fp:
        json.dump(serializable, fp, indent=2, sort_keys=True)
        fp.write("\n")


def load_baseline(path: str = BASELINE_PATH) -> Dict[str, Any]:
    with open(path) as fp:
        return json.load(fp)


def format_baseline_deltas(
    current: Dict[str, Any],
    reference: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> str:
    """Per-metric deltas table vs the reference, printed even on success.

    A passing ``--check`` that only says "PASSED" hides how much
    headroom is left; this table shows each gated metric's drift
    against its allowed band, plus critical-path category share drift
    (informational — share shifts are not gated).
    """
    from .reporting import format_table

    current_metrics = current["metrics"]
    reference_metrics = reference["metrics"]
    rows = []
    gated = [
        (name, direction, current_metrics, reference_metrics)
        for name, direction in GATED_METRICS
    ]
    reference_workloads = reference.get("workloads") or {}
    for workload, section in (current.get("workloads") or {}).items():
        ref_section = reference_workloads.get(workload) or {}
        for name, direction in WORKLOAD_GATED_METRICS:
            gated.append((
                "%s.%s" % (workload, name),
                direction,
                section["metrics"],
                ref_section.get("metrics", {}),
            ))
    for name, direction, cur_metrics, ref_metrics in gated:
        short = name.rsplit(".", 1)[-1]
        if short not in ref_metrics:
            rows.append((name, "-", "%.3f" % float(cur_metrics[short]),
                         "-", direction, "n/a"))
            continue
        ref = float(ref_metrics[short])
        cur = float(cur_metrics[short])
        delta = (cur - ref) / ref if ref else 0.0
        if direction == "min":
            regressed = cur < ref * (1.0 - tolerance)
        else:
            regressed = cur > ref * (1.0 + tolerance) and cur - ref > 1e-9
        rows.append((
            name,
            "%.3f" % ref,
            "%.3f" % cur,
            "%+.1f%%" % (delta * 100),
            "%s %.0f%%" % (direction, tolerance * 100),
            "FAIL" if regressed else "ok",
        ))
    lines = [format_table(
        "baseline deltas (tolerance %.0f%%)" % (tolerance * 100),
        ("metric", "baseline", "current", "delta", "gate", "status"),
        rows,
    )]

    ref_cats = reference.get("critical_path", {}).get("categories", {})
    cur_cats = current.get("critical_path", {}).get("categories", {})
    shared = [c for c in cur_cats if c in ref_cats]
    if shared:
        share_rows = []
        for category in shared:
            ref_share = float(ref_cats[category].get("share", 0.0))
            cur_share = float(cur_cats[category].get("share", 0.0))
            share_rows.append((
                category,
                "%.1f%%" % (ref_share * 100),
                "%.1f%%" % (cur_share * 100),
                "%+.1f pp" % ((cur_share - ref_share) * 100),
            ))
        lines.append(format_table(
            "critical-path share drift (informational)",
            ("category", "baseline", "current", "delta"),
            share_rows,
        ))
    return "\n\n".join(lines)


def _gate_one(
    name: str,
    cur: float,
    ref: float,
    direction: str,
    tolerance: float,
    failures: List[str],
) -> None:
    """Apply one direction-aware band check, appending any failure."""
    if direction == "min":
        floor = ref * (1.0 - tolerance)
        if cur < floor:
            failures.append(
                "%s regressed: %.3f < %.3f (baseline %.3f - %.0f%%)"
                % (name, cur, floor, ref, tolerance * 100)
            )
    else:
        ceiling = ref * (1.0 + tolerance)
        # An absolute epsilon keeps near-zero baselines (e.g. a
        # profile without stabilization, or the snapshot path's ~0
        # frames/txn) from gating on noise.
        if cur > ceiling and cur - ref > 1e-9:
            failures.append(
                "%s regressed: %.3f > %.3f (baseline %.3f + %.0f%%)"
                % (name, cur, ceiling, ref, tolerance * 100)
            )


def check_baseline(
    current: Dict[str, Any],
    reference: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Direction-aware regression check; returns failure descriptions.

    Workload-aware: per-workload sections present in both documents are
    gated on :data:`WORKLOAD_GATED_METRICS` in addition to the headline
    metrics; failure names carry the workload prefix.
    """
    failures: List[str] = []
    current_metrics = current["metrics"]
    reference_metrics = reference["metrics"]
    for name, direction in GATED_METRICS:
        if name not in reference_metrics:
            continue  # older baseline file: nothing to gate against
        _gate_one(
            name,
            float(current_metrics[name]),
            float(reference_metrics[name]),
            direction,
            tolerance,
            failures,
        )
    reference_workloads = reference.get("workloads") or {}
    for workload, section in (current.get("workloads") or {}).items():
        ref_section = reference_workloads.get(workload)
        if not ref_section:
            continue  # new workload: nothing to gate against yet
        for name, direction in WORKLOAD_GATED_METRICS:
            if name not in ref_section["metrics"]:
                continue
            _gate_one(
                "%s.%s" % (workload, name),
                float(section["metrics"][name]),
                float(ref_section["metrics"][name]),
                direction,
                tolerance,
                failures,
            )
    return failures
