"""Experiment runners shared by the benchmark scripts.

One function per experiment family.  Every runner builds a fresh,
deterministic cluster, runs the workload for a configurable amount of
*simulated* time, and returns a :class:`MetricsCollector` (plus
auxiliary data where a figure needs it).  Scale knobs default to values
that keep the full benchmark suite's wall-clock time reasonable; the
``REPRO_BENCH_SCALE=full`` environment variable switches to paper-scale
client counts and durations.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..config import ClusterConfig, EnvProfile
from ..core.cluster import TreatyCluster
from ..workloads.tpcc import TpccScale, load_tpcc, run_tpcc, tpcc_partitioner
from ..workloads.ycsb import YcsbConfig, bulk_load, run_ycsb
from .metrics import MetricsCollector

__all__ = [
    "bench_scale",
    "cluster_nic_tx_frames",
    "ycsb_distributed",
    "ycsb_variant_run",
    "ycsb_single_node",
    "tpcc_distributed",
    "tpcc_single_node",
    "twopc_only",
    "recovery_experiment",
    "durability_smoke",
    "sweep_group_commit_window",
    "transport_stats",
    "netbatch_compare",
    "scaleout_sweep",
]


def bench_scale() -> str:
    """'quick' (default) or 'full' (paper-scale clients/durations)."""
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def _scaled(quick, full):
    return full if bench_scale() == "full" else quick


def _attach_phase_breakdown(metrics: MetricsCollector, cluster) -> None:
    """Store a cross-node 2PC phase/latency breakdown in ``extra_info``.

    Registry histograms are always live (only the *tracer* is gated on
    ``ClusterConfig.tracing``), so every bench run gets the breakdown
    for free.  Aggregates each phase histogram across nodes to
    ``{count, mean_ms, max_ms}`` plus the enclave counters.
    """
    snapshot = cluster.obs.snapshot()
    phases = {}
    for name in ("twopc.prepare_s", "twopc.decision_s", "twopc.commit_s",
                 "stabilize.wait_s", "locks.wait_s"):
        count, total, peak = 0, 0.0, 0.0
        for component in snapshot.values():
            hist = component.get(name)
            if not isinstance(hist, dict):
                continue
            count += hist["total"]
            total += hist["sum"]
            if hist["max"] is not None:
                peak = max(peak, hist["max"])
        if count:
            phases[name] = {
                "count": count,
                "mean_ms": total / count * 1e3,
                "max_ms": peak * 1e3,
            }
    enclave = {
        name: sum(
            component.get(name, 0) for component in snapshot.values()
        )
        for name in ("tee.transitions", "tee.page_faults")
    }
    durability = {
        "rounds_executed": sum(
            component.get("counter.rounds_executed", 0)
            for component in snapshot.values()
        )
    }
    for name in ("stabilize.batch_size", "group_commit.batch_size"):
        count, total, peak = 0, 0.0, 0.0
        for component in snapshot.values():
            hist = component.get(name)
            if not isinstance(hist, dict):
                continue
            count += hist["total"]
            total += hist["sum"]
            if hist["max"] is not None:
                peak = max(peak, hist["max"])
        if count:
            durability[name] = {
                "count": count,
                "mean": total / count,
                "max": peak,
            }
    if metrics.committed:
        durability["rounds_per_committed_txn"] = (
            durability["rounds_executed"] / metrics.committed
        )
    metrics.extra_info["obs"] = {
        "phases": phases,
        "enclave": enclave,
        "durability": durability,
    }


# --- YCSB ---------------------------------------------------------------------


def ycsb_distributed(
    profile: EnvProfile,
    read_proportion: float,
    num_clients: Optional[int] = None,
    duration: Optional[float] = None,
    num_keys: int = 10_000,
    optimistic: bool = False,
) -> MetricsCollector:
    """Distributed YCSB on a 3-node cluster (Figures 4 & 5 substrate)."""
    num_clients = num_clients or _scaled(48, 96)
    duration = duration or _scaled(0.3, 1.0)
    cluster = TreatyCluster(profile=profile).start()
    config = YcsbConfig(
        read_proportion=read_proportion, num_keys=num_keys, optimistic=optimistic
    )
    cluster.run(bulk_load(cluster, config), name="load")
    metrics = MetricsCollector(profile.name)
    run_ycsb(
        cluster,
        config,
        metrics,
        num_clients=num_clients,
        duration=duration,
        warmup=duration * 0.25,
    )
    _attach_phase_breakdown(metrics, cluster)
    return metrics


def ycsb_single_node(
    profile: EnvProfile,
    read_proportion: float,
    num_clients: Optional[int] = None,
    duration: Optional[float] = None,
    optimistic: bool = False,
) -> MetricsCollector:
    """Single-node YCSB (Figures 6 & 7): one node, local transactions."""
    num_clients = num_clients or _scaled(24, 32)
    duration = duration or _scaled(0.3, 1.0)
    cluster = TreatyCluster(profile=profile, num_nodes=1).start()
    config = YcsbConfig(
        read_proportion=read_proportion, num_keys=10_000, optimistic=optimistic
    )
    cluster.run(bulk_load(cluster, config), name="load")
    metrics = MetricsCollector(profile.name)
    run_ycsb(
        cluster,
        config,
        metrics,
        num_clients=num_clients,
        duration=duration,
        warmup=duration * 0.25,
    )
    _attach_phase_breakdown(metrics, cluster)
    return metrics


def cluster_nic_tx_frames(cluster: TreatyCluster) -> int:
    """Frames transmitted on the cluster fabric (node NICs only).

    Client traffic rides separate front NICs, so differencing this
    counter over a run isolates inter-node protocol traffic — the
    quantity the snapshot-read fast path drives to zero.
    """
    total = 0
    for node in cluster.nodes:
        nic = cluster.fabric._nics.get(node.name)
        if nic is not None:
            total += nic.tx_frames
    return total


def ycsb_variant_run(
    variant: str,
    snapshot: bool,
    num_clients: Optional[int] = None,
    duration: Optional[float] = None,
    seed: Optional[int] = None,
) -> Tuple[MetricsCollector, dict]:
    """One standard YCSB mix ("a"/"b"/"c"/"e") on TREATY_FULL.

    ``snapshot`` toggles the coordinator-free read path (and distributed
    OCC) so callers can compare against the plain locking 2PC baseline
    on the identical seed.  Returns the collector plus a stats dict with
    cluster-fabric frame accounting and the read-only/OCC counters.
    """
    from ..config import TREATY_FULL

    num_clients = num_clients or _scaled(24, 48)
    duration = duration or _scaled(0.2, 0.6)
    kwargs = dict(read_only_snapshot=snapshot, occ_distributed=snapshot)
    if seed is not None:
        kwargs["seed"] = seed
    cluster = TreatyCluster(
        profile=TREATY_FULL, config=ClusterConfig(**kwargs)
    ).start()
    ycsb = YcsbConfig.variant(variant, num_keys=2_000)
    cluster.run(bulk_load(cluster, ycsb), name="load")
    frames_before = cluster_nic_tx_frames(cluster)
    metrics = MetricsCollector(
        "ycsb-%s-%s" % (variant, "snapshot" if snapshot else "locking")
    )
    run_ycsb(
        cluster,
        ycsb,
        metrics,
        num_clients=num_clients,
        duration=duration,
        warmup=duration * 0.25,
    )
    frames = cluster_nic_tx_frames(cluster) - frames_before
    committed = max(1, metrics.committed)
    counters: dict = {}
    for node in cluster.nodes:
        for name in (
            "txn.readonly.local",
            "txn.readonly.upgraded",
            "txn.readonly.conflicts",
            "occ.validated",
            "occ.conflicts",
            "occ.retries",
        ):
            counters[name] = (
                counters.get(name, 0)
                + node.runtime.metrics.counter(name).value
            )
    stats = {
        "committed": metrics.committed,
        "aborted": metrics.aborted,
        "throughput_tps": metrics.throughput(),
        "p50_ms": metrics.percentile(50) * 1e3,
        "p99_ms": metrics.percentile(99) * 1e3,
        "cluster_frames": frames,
        "cluster_frames_per_txn": frames / committed,
        "counters": counters,
    }
    return metrics, stats


# --- TPC-C ---------------------------------------------------------------------


def tpcc_distributed(
    profile: EnvProfile,
    warehouses: int = 10,
    num_clients: Optional[int] = None,
    duration: Optional[float] = None,
) -> MetricsCollector:
    """Distributed TPC-C on 3 nodes with warehouse partitioning (Fig. 3).

    Both warehouse scales run the same client count so the panels are
    comparable under the load-dependent SCONE model (the paper scales
    clients per system to its saturation point instead; see
    EXPERIMENTS.md for the resulting deviation).
    """
    if num_clients is None:
        num_clients = _scaled(10, 20)
    duration = duration or _scaled(0.5, 1.5)
    scale = TpccScale(warehouses=warehouses)
    cluster = TreatyCluster(
        profile=profile, partitioner=tpcc_partitioner(3)
    ).start()
    cluster.run(load_tpcc(cluster, scale), name="load")
    metrics = MetricsCollector(profile.name)
    run_tpcc(
        cluster,
        scale,
        metrics,
        num_clients=num_clients,
        duration=duration,
        warmup=duration * 0.25,
    )
    _attach_phase_breakdown(metrics, cluster)
    return metrics


def tpcc_single_node(
    profile: EnvProfile,
    num_clients: Optional[int] = None,
    duration: Optional[float] = None,
    optimistic: bool = False,
) -> MetricsCollector:
    """Single-node TPC-C, 10 warehouses (Figures 6 & 7)."""
    num_clients = num_clients or _scaled(10, 16)
    duration = duration or _scaled(0.5, 1.5)
    scale = TpccScale(warehouses=10)
    cluster = TreatyCluster(profile=profile, num_nodes=1).start()
    cluster.run(load_tpcc(cluster, scale), name="load")
    metrics = MetricsCollector(profile.name)
    _run_tpcc_mode(
        cluster, scale, metrics, num_clients, duration, optimistic=optimistic
    )
    _attach_phase_breakdown(metrics, cluster)
    return metrics


def _run_tpcc_mode(cluster, scale, metrics, num_clients, duration, optimistic):
    if not optimistic:
        run_tpcc(
            cluster,
            scale,
            metrics,
            num_clients=num_clients,
            duration=duration,
            warmup=duration * 0.25,
        )
        return
    # Optimistic mode (Figure 7): terminals open OCC sessions.
    from ..workloads.tpcc import TpccTerminal
    from ..sim.rng import SeededRng
    from ..errors import TransactionAborted

    machines = [cluster.client_machine() for _ in range(3)]
    sim = cluster.sim
    end_time = sim.now + duration * 1.25
    metrics.measure_from(sim.now + duration * 0.25)

    class OccSession:
        """Session wrapper forcing optimistic transactions."""

        def __init__(self, inner):
            self.inner = inner
            self.machine = inner.machine
            self.client_id = inner.client_id

        def begin(self):
            return self.inner.begin(optimistic=True)

    def terminal_loop(index):
        machine = machines[index % len(machines)]
        home_w = (index % scale.warehouses) + 1
        session = OccSession(cluster.session(machine, coordinator=0))
        rng = SeededRng(cluster.config.seed, "tpcc-occ", str(index))
        terminal = TpccTerminal(session, scale, home_w, rng)
        while sim.now < end_time:
            txn_type = terminal.choose_type()
            started = sim.now
            committed = False
            for _attempt in range(4):
                try:
                    committed = yield from terminal.execute(txn_type)
                    break
                except TransactionAborted:
                    continue
            if committed:
                metrics.record(started, sim.now)
            else:
                metrics.record_abort(started)

    for i in range(num_clients):
        sim.process(terminal_loop(i), name="tpcc-occ-%d" % i)
    sim.run(until=end_time)
    metrics.finish(sim.now)


# --- 2PC-only (Figure 4) ----------------------------------------------------------


def twopc_only(
    profile: EnvProfile,
    num_clients: Optional[int] = None,
    duration: Optional[float] = None,
) -> MetricsCollector:
    """YCSB 50R/50W through the 2PC protocol with no storage engine.

    The paper saturates all four versions with 300 clients; to keep the
    simulation's wall-clock time tractable we reach the same *saturated*
    regime with fewer clients on fewer cores — the throughput ratios at
    saturation are independent of the core count.
    """
    num_clients = num_clients or _scaled(80, 160)
    duration = duration or _scaled(0.3, 1.0)
    config = ClusterConfig(storage_engine="null", cores_per_node=2)
    cluster = TreatyCluster(profile=profile, config=config).start()
    ycsb = YcsbConfig(read_proportion=0.5, num_keys=10_000)
    cluster.run(bulk_load_null(cluster, ycsb), name="load")
    metrics = MetricsCollector(profile.name)
    run_ycsb(
        cluster,
        ycsb,
        metrics,
        num_clients=num_clients,
        duration=duration,
        warmup=duration * 0.25,
    )
    _attach_phase_breakdown(metrics, cluster)
    return metrics


def bulk_load_null(cluster: TreatyCluster, config: YcsbConfig):
    """Preload the storage-less engines directly."""
    per_node: List[List[Tuple[bytes, bytes]]] = [[] for _ in cluster.nodes]
    for index in range(config.num_keys):
        key = config.key(index)
        per_node[cluster.partitioner(key)].append((key, config.value(index, 0)))
    for node, pairs in zip(cluster.nodes, per_node):
        engine = node.engine
        batch = [(key, value, engine.next_seq()) for key, value in pairs]
        yield from engine.apply_writes(batch)


# --- durability pipeline (smoke + window sweep) ------------------------------


def durability_smoke(
    num_clients: int = 24,
    duration: float = 0.2,
    vectoring: bool = True,
    flight_recorder: bool = False,
) -> MetricsCollector:
    """Short deterministic YCSB run on TREATY_FULL under the monitor.

    Exercises the whole durability pipeline — vectored counter rounds,
    stabilization-aware group commit, and the I1–I5 invariant monitor —
    in a few wall-clock seconds.  CI runs this and fails the build on
    any monitor violation; ``extra_info["obs"]["durability"]`` carries
    the rounds-per-committed-transaction amortization number.

    ``flight_recorder`` additionally turns on the always-on observability
    stack (ring-buffered tracer + time-series + incident detection) and
    stores its summaries in ``extra_info["flight"]`` — the CI overhead
    gate runs the smoke this way to prove the recorder does not move the
    workload (the simulation is untouched: recording is subscriber-
    driven and adds nothing to the event heap).
    """
    from ..config import TREATY_FULL

    config = ClusterConfig(
        monitor=True,
        counter_vectoring=vectoring,
        monitor_liveness_timeout_s=duration,
        flight_recorder=flight_recorder,
        timeseries=flight_recorder,
        incidents=flight_recorder,
    )
    cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
    ycsb = YcsbConfig(read_proportion=0.5, num_keys=2_000)
    cluster.run(bulk_load(cluster, ycsb), name="load")
    metrics = MetricsCollector("durability-smoke")
    run_ycsb(
        cluster,
        ycsb,
        metrics,
        num_clients=num_clients,
        duration=duration,
        warmup=duration * 0.25,
    )
    monitor = cluster.obs.monitor
    monitor.check_quiescent(now=cluster.sim.now)
    _attach_phase_breakdown(metrics, cluster)
    metrics.extra_info["monitor"] = monitor.summary()
    if flight_recorder:
        obs = cluster.obs
        obs.timeseries.flush()
        metrics.extra_info["flight"] = {
            "recorder": obs.recorder.summary(),
            "timeline": obs.timeseries.summary(),
            "incidents": obs.incidents.counts(),
        }
    return metrics


def sweep_group_commit_window(
    windows: Optional[List[Optional[float]]] = None,
    num_clients: Optional[int] = None,
    duration: Optional[float] = None,
    arrivals: str = "closed",
) -> List[Tuple[str, MetricsCollector]]:
    """Sweep the group-commit window and report the latency/throughput
    frontier.

    ``None`` in ``windows`` selects the adaptive (trace-informed)
    window; ``0.0`` is the legacy immediate-dispatch behaviour; positive
    values are fixed windows in simulated seconds.  ``arrivals`` picks
    the YCSB arrival process (``"closed"`` or ``"bursty"`` on-off with
    Pareto idle gaps — the case where the adaptive window's EWMAs move).
    """
    from ..config import TREATY_FULL

    if windows is None:
        windows = [0.0, 5e-5, 1e-4, 2e-4, 4e-4, None]
    num_clients = num_clients or _scaled(32, 64)
    duration = duration or _scaled(0.2, 0.6)
    results: List[Tuple[str, MetricsCollector]] = []
    for window in windows:
        label = "adaptive" if window is None else "%.0fus" % (window * 1e6)
        config = ClusterConfig(group_commit_window=window)
        cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
        ycsb = YcsbConfig(read_proportion=0.5, num_keys=5_000)
        cluster.run(bulk_load(cluster, ycsb), name="load")
        metrics = MetricsCollector(label)
        run_ycsb(
            cluster,
            ycsb,
            metrics,
            num_clients=num_clients,
            duration=duration,
            warmup=duration * 0.25,
            arrivals=arrivals,
        )
        _attach_phase_breakdown(metrics, cluster)
        windows_seen = sorted(
            node.manager.group.window_delay() for node in cluster.nodes
        )
        metrics.extra_info["adaptive_window"] = {
            "delays_s": windows_seen,
            "gap_ewma_s": [
                node.manager.group._gap_ewma for node in cluster.nodes
            ],
            "stab_ewma_s": [
                node.manager.group._stab_ewma for node in cluster.nodes
            ],
        }
        results.append((label, metrics))
    return results


# --- transport batching (frames + seal-op accounting) ------------------------


def transport_stats(cluster: TreatyCluster) -> dict:
    """Fabric and AEAD accounting for one finished run.

    Sums the per-runtime transport counters (``net.seal_ops`` — actual
    AEAD passes; ``net.messages_sealed`` — messages protected;
    ``net.batches_sent`` / ``net.frames_saved``) across every node and
    client machine, merges the batch-occupancy histograms, and reads the
    fabric's crash-proof cumulative frame/byte counters.
    """
    from ..net.erpc import BATCH_OCCUPANCY_BUCKETS

    runtimes = [
        node.runtime for node in cluster.nodes if node.runtime is not None
    ]
    runtimes.extend(machine.runtime for machine in cluster.client_machines)

    def total(name: str) -> int:
        return sum(rt.metrics.counter(name).value for rt in runtimes)

    occupancy = {
        "edges": list(BATCH_OCCUPANCY_BUCKETS),
        "counts": [0] * (len(BATCH_OCCUPANCY_BUCKETS) + 1),
        "total": 0,
        "sum": 0.0,
        "max": None,
    }
    for rt in runtimes:
        hist = rt.metrics.histogram(
            "net.batch_occupancy", edges=BATCH_OCCUPANCY_BUCKETS
        )
        for index, count in enumerate(hist.counts):
            occupancy["counts"][index] += count
        occupancy["total"] += hist.total
        occupancy["sum"] += hist.sum
        if hist.max is not None:
            occupancy["max"] = max(occupancy["max"] or 0, hist.max)
    occupancy["mean"] = (
        occupancy["sum"] / occupancy["total"] if occupancy["total"] else 0.0
    )
    return {
        "delivered_frames": cluster.fabric.delivered_frames,
        "dropped_frames": cluster.fabric.dropped_frames,
        "tx_bytes": cluster.fabric.tx_bytes_total,
        "seal_ops": total("net.seal_ops"),
        "messages_sealed": total("net.messages_sealed"),
        "batches_sent": total("net.batches_sent"),
        "frames_saved": total("net.frames_saved"),
        "batch_occupancy": occupancy,
    }


def netbatch_compare(
    num_clients: Optional[int] = None,
    duration: Optional[float] = None,
    read_proportion: float = 0.5,
    locality: float = 0.0,
) -> dict:
    """Same deterministic YCSB run with transport batching off, then on.

    Returns per-configuration throughput plus :func:`transport_stats`,
    and the headline ratios the CI smoke gate asserts on: delivered
    frames and AEAD seal operations per committed transaction must both
    shrink with batching enabled.
    """
    from ..config import TREATY_FULL

    num_clients = num_clients or _scaled(24, 48)
    duration = duration or _scaled(0.15, 0.5)
    results: dict = {}
    for label, batching in (("off", False), ("on", True)):
        config = ClusterConfig(
            monitor=True,
            net_batching=batching,
            monitor_liveness_timeout_s=duration,
        )
        cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
        ycsb = YcsbConfig(
            read_proportion=read_proportion,
            num_keys=2_000,
            locality=locality,
        )
        cluster.run(bulk_load(cluster, ycsb), name="load")
        metrics = MetricsCollector("netbatch-%s" % label)
        run_ycsb(
            cluster,
            ycsb,
            metrics,
            num_clients=num_clients,
            duration=duration,
            warmup=duration * 0.25,
        )
        monitor = cluster.obs.monitor
        monitor.check_quiescent(now=cluster.sim.now)
        stats = transport_stats(cluster)
        stats["committed"] = metrics.committed
        stats["aborted"] = metrics.aborted
        stats["throughput"] = metrics.throughput()
        stats["monitor"] = monitor.summary()
        committed = max(1, metrics.committed)
        stats["frames_per_txn"] = stats["delivered_frames"] / committed
        stats["seals_per_txn"] = stats["seal_ops"] / committed
        results[label] = stats
    off, on = results["off"], results["on"]
    results["reduction"] = {
        "frames_per_txn": 1.0 - on["frames_per_txn"] / off["frames_per_txn"],
        "seals_per_txn": 1.0 - on["seals_per_txn"] / off["seals_per_txn"],
    }
    return results


def scaleout_sweep(
    nodes: Tuple[int, ...] = (3, 5, 7, 9),
    num_clients: Optional[int] = None,
    duration: Optional[float] = None,
    locality: float = 0.9,
) -> List[Tuple[int, dict]]:
    """Cluster-size sweep (ROADMAP: scale-out) under transport batching.

    Runs a partitioned YCSB workload (``locality`` fraction of
    transactions single-shard) on TREATY_FULL clusters of growing size
    and reports, per committed transaction, the counter-round and
    delivered-frame counts — the quantities that must grow sublinearly
    with cluster size for batching to pay off at scale.
    """
    from ..config import TREATY_FULL

    num_clients = num_clients or _scaled(12, 32)
    duration = duration or _scaled(0.08, 0.3)
    results: List[Tuple[int, dict]] = []
    for num_nodes in nodes:
        config = ClusterConfig(
            monitor=True, monitor_liveness_timeout_s=duration
        )
        cluster = TreatyCluster(
            profile=TREATY_FULL, config=config, num_nodes=num_nodes
        ).start()
        ycsb = YcsbConfig(
            read_proportion=0.5, num_keys=1_000, locality=locality
        )
        cluster.run(bulk_load(cluster, ycsb), name="load")
        metrics = MetricsCollector("scaleout-%d" % num_nodes)
        run_ycsb(
            cluster,
            ycsb,
            metrics,
            num_clients=num_clients,
            duration=duration,
            warmup=duration * 0.25,
        )
        monitor = cluster.obs.monitor
        monitor.check_quiescent(now=cluster.sim.now)
        _attach_phase_breakdown(metrics, cluster)
        stats = transport_stats(cluster)
        stats["committed"] = metrics.committed
        stats["aborted"] = metrics.aborted
        stats["throughput"] = metrics.throughput()
        stats["monitor"] = monitor.summary()
        committed = max(1, metrics.committed)
        stats["frames_per_txn"] = stats["delivered_frames"] / committed
        stats["seals_per_txn"] = stats["seal_ops"] / committed
        durability = metrics.extra_info["obs"]["durability"]
        stats["counter_rounds_per_txn"] = (
            durability.get("rounds_per_committed_txn", 0.0)
        )
        results.append((num_nodes, stats))
    return results


# --- recovery (Table I) --------------------------------------------------------------


def recovery_experiment(
    profile: EnvProfile,
    num_entries: Optional[int] = None,
    entry_bytes: int = 100,
) -> Tuple[float, int]:
    """Write ``num_entries`` small WAL records, crash, time the recovery.

    Returns ``(recovery_sim_seconds, log_bytes)``.  The paper uses 800 k
    entries of ~100 B; the default is scaled down (same per-entry work,
    so the *ratios* are preserved) — ``REPRO_BENCH_SCALE=full`` raises it.
    """
    num_entries = num_entries or _scaled(20_000, 100_000)
    cluster = TreatyCluster(profile=profile, num_nodes=3).start()
    node = cluster.nodes[0]
    engine = node.engine

    def fill():
        batch_size = 200
        payload = b"x" * (entry_bytes - 28)
        index = 0
        for _ in range(num_entries // batch_size):
            records = []
            for _ in range(batch_size):
                index += 1
                key = b"rec-%010d" % index
                records.append((key, [(key, payload, engine.next_seq())]))
            yield from engine.log_commits(records)
            # Keep the MemTable bounded without flushing (recovery should
            # replay the log, not the SSTables).

    cluster.run(fill(), name="fill")
    log_bytes = node.disk.size(engine.wal.filename)
    cluster.crash_node(0)
    start = cluster.sim.now
    cluster.run(cluster.recover_node(0))
    return cluster.sim.now - start, log_bytes
