"""Benchmark harness: metrics, experiment runners, paper-comparison tables."""

from .metrics import MetricsCollector

__all__ = ["MetricsCollector"]
