"""Network-stack throughput experiment (Figure 8).

Implements the paper's iPerf methodology: saturating senders stream
fixed-size messages from one machine to another over the 40 GbE fabric
and the receiver counts delivered payload bytes.  Seven stacks:

* ``udp-native`` / ``udp-scone``   — iPerf-UDP over kernel sockets,
* ``tcp-native`` / ``tcp-scone``   — iPerf-TCP over kernel sockets,
* ``erpc-native`` / ``erpc-scone`` — the client/server iPerf built on eRPC,
* ``treaty``                       — Treaty's secure networking (eRPC +
  SCONE + the sealed message format).

Native and SCONE socket/eRPC variants carry no security; only the
``treaty`` stack encrypts — matching §VIII-E's setup.
"""

from __future__ import annotations

from typing import Dict

from ..config import ClusterConfig, DS_ROCKSDB, TREATY_ENC, TREATY_NO_ENC
from ..crypto.keys import KeyRing
from ..net.erpc import ErpcEndpoint
from ..net.message import MsgType, TxMessage
from ..net.secure_rpc import SecureRpc
from ..net.simnet import Fabric
from ..net.sockets import SocketStack
from ..sim.core import Simulator
from ..tee.runtime import NodeRuntime

__all__ = ["STACKS", "network_throughput", "run_figure8"]

STACKS = [
    "udp-native",
    "udp-scone",
    "tcp-native",
    "tcp-scone",
    "erpc-native",
    "erpc-scone",
    "treaty",
]

_ACK_BYTES = 16
#: outstanding requests each eRPC stream keeps in flight.
_PIPELINE_DEPTH = 16


def _profile_for(stack: str):
    if stack == "treaty":
        return TREATY_ENC
    return TREATY_NO_ENC if stack.endswith("scone") else DS_ROCKSDB


def network_throughput(
    stack: str,
    message_bytes: int,
    duration: float = 2e-3,
    warmup: float = 5e-4,
    streams: int = 8,
    config: ClusterConfig = None,
) -> float:
    """Measured goodput in Gbit/s for one stack and message size."""
    if stack not in STACKS:
        raise ValueError("unknown stack %r" % stack)
    config = config or ClusterConfig()
    profile = _profile_for(stack)
    sim = Simulator()
    fabric = Fabric(sim, mtu=config.costs.net_mtu)
    sender_rt = NodeRuntime(sim, profile, config)
    receiver_rt = NodeRuntime(sim, profile, config)
    sender_nic = fabric.attach(
        "sender", config.costs.net_bandwidth, config.costs.net_propagation
    )
    receiver_nic = fabric.attach(
        "receiver", config.costs.net_bandwidth, config.costs.net_propagation
    )

    measure_start = warmup
    end_time = warmup + duration
    delivered = {"bytes": 0}

    def count(nbytes: int) -> None:
        if sim.now >= measure_start:
            delivered["bytes"] += nbytes

    if stack.startswith(("udp", "tcp")):
        protocol = stack.split("-")[0]
        sender = SocketStack(sender_rt, fabric, sender_nic, protocol)
        receiver = SocketStack(receiver_rt, fabric, receiver_nic, protocol)

        def send_loop():
            while sim.now < end_time:
                ok = yield from sender.send("receiver", message_bytes)
                if not ok:
                    continue  # dropped UDP datagram: no goodput

        def recv_loop():
            while True:
                frame = yield from receiver.recv()
                count(frame.wire_bytes)

        for _ in range(streams):
            sim.process(send_loop())
            sim.process(recv_loop())  # parallel streams, parallel readers
    else:
        endpoint_s = ErpcEndpoint(sender_rt, fabric, sender_nic)
        endpoint_r = ErpcEndpoint(receiver_rt, fabric, receiver_nic)
        if stack == "treaty":
            keyring = KeyRing(bytes(range(32)))
            rpc_s = SecureRpc(sender_rt, endpoint_s, keyring, 1)
            rpc_r = SecureRpc(receiver_rt, endpoint_r, keyring, 2)

            def handler(message, src):
                count(len(message.body))
                if False:
                    yield None
                return TxMessage(
                    MsgType.ACK, message.node_id, message.txn_id, message.op_id
                )

            rpc_r.register(MsgType.TXN_WRITE, handler)
            body = b"x" * message_bytes

            def send_loop(stream_id):
                # Pipelined: eRPC keeps a window of outstanding requests.
                op = 0
                window = []
                while sim.now < end_time:
                    while len(window) < _PIPELINE_DEPTH:
                        op += 1
                        window.append(
                            rpc_s.enqueue(
                                "receiver",
                                TxMessage(
                                    MsgType.TXN_WRITE, 1, stream_id, op, body
                                ),
                            )
                        )
                    yield sim.any_of(window)
                    window = [e for e in window if not e.triggered]

            for i in range(streams):
                sim.process(send_loop(i + 1))
        else:

            def handler(payload, src):
                count(len(payload))
                if False:
                    yield None
                return b"", _ACK_BYTES

            endpoint_r.register_handler(1, handler)
            payload = b"x" * message_bytes

            def send_loop():
                window = []
                while sim.now < end_time:
                    while len(window) < _PIPELINE_DEPTH:
                        window.append(
                            endpoint_s.enqueue_request(
                                "receiver", 1, payload, message_bytes
                            )
                        )
                    yield sim.any_of(window)
                    window = [e for e in window if not e.triggered]

            for _ in range(streams):
                sim.process(send_loop())

    sim.run(until=end_time)
    return delivered["bytes"] * 8 / duration / 1e9


def run_figure8(
    sizes=(64, 256, 1024, 1460, 2048, 4096),
    duration: float = 2e-3,
    streams: int = 8,
) -> Dict[str, Dict[int, float]]:
    """The full Figure 8 grid: Gbps per stack per message size."""
    results: Dict[str, Dict[int, float]] = {}
    for stack in STACKS:
        results[stack] = {}
        for size in sizes:
            results[stack][size] = network_throughput(
                stack, size, duration=duration, streams=streams
            )
    return results
