"""Exception hierarchy for the Treaty reproduction.

Security violations (integrity/freshness/authentication) are modelled as
exceptions so that tests can assert *detection*: per the paper's threat
model, Treaty detects — but cannot prevent — tampering with untrusted
state, and turns every detected violation into a hard fault.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SecurityError",
    "IntegrityError",
    "FreshnessError",
    "AuthenticationError",
    "AttestationError",
    "ReplayError",
    "TransactionError",
    "TransactionAborted",
    "LockTimeout",
    "ConflictError",
    "StorageError",
    "CorruptLogError",
    "NetworkError",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


# --- security ------------------------------------------------------------


class SecurityError(ReproError):
    """A violation of Treaty's security properties was detected."""


class IntegrityError(SecurityError):
    """Unauthorized modification detected (MAC/hash verification failed)."""


class FreshnessError(SecurityError):
    """Stale state detected (rollback / fork: trusted counter mismatch)."""


class AuthenticationError(SecurityError):
    """A peer or client failed authentication."""


class AttestationError(SecurityError):
    """Enclave attestation failed (wrong measurement or unverified quote)."""


class ReplayError(SecurityError):
    """A message or operation was observed more than once (at-most-once)."""


# --- transactions ----------------------------------------------------------


class TransactionError(ReproError):
    """Base class for transaction-level failures."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back (caller may retry)."""

    def __init__(self, reason: str = "aborted"):
        super().__init__(reason)
        self.reason = reason


class LockTimeout(TransactionAborted):
    """A lock could not be acquired within the configured timeframe (§V-B)."""

    def __init__(self, key: bytes = b""):
        super().__init__("lock timeout on key %r" % (key,))
        self.key = key


class ConflictError(TransactionAborted):
    """Optimistic validation failed: a read key changed before commit."""

    def __init__(self, key: bytes = b""):
        super().__init__("optimistic conflict on key %r" % (key,))
        self.key = key


# --- storage / network ------------------------------------------------------


class StorageError(ReproError):
    """A storage-engine fault that is not a security violation."""


class CorruptLogError(StorageError):
    """A log could not be parsed (distinct from a *detected* tamper)."""


class NetworkError(ReproError):
    """Transport-level failure (timeouts, unreachable peer)."""
