"""YCSB workload generator and driver (§VIII-A).

The paper's YCSB configuration: 10 operations per transaction, 1000 B
values, 10 k unique keys, uniform distribution — with read fractions of
20 % (write-heavy), 50 % (the 2PC microbenchmark) and 80 % (read-heavy).

The driver runs N concurrent closed-loop clients against the cluster's
client API and reports committed-transaction throughput and latency
percentiles through a :class:`~repro.bench.metrics.MetricsCollector`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Tuple

from ..core.cluster import TreatyCluster
from ..errors import TransactionAborted
from ..sim.core import Event
from ..sim.rng import SeededRng
from .zipf import (
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)

__all__ = [
    "YcsbConfig",
    "YcsbWorkload",
    "run_ycsb",
    "bulk_load",
    "shard_key_indices",
]

Gen = Generator[Event, Any, Any]


@dataclass(frozen=True)
class YcsbConfig:
    """One YCSB experiment's parameters (defaults: the paper's §VIII-D)."""

    read_proportion: float = 0.5
    ops_per_txn: int = 10
    value_size: int = 1000
    num_keys: int = 10_000
    distribution: str = "uniform"  # or "zipfian"
    key_prefix: bytes = b"usertable/"
    optimistic: bool = False
    #: fraction of transactions whose keys all live on the client's
    #: coordinator shard (0.0 disables).  A partitioned deployment
    #: (ROADMAP: partitioned workloads) keeps ~90 % of transactions
    #: single-shard; the rest fan out through 2PC as usual.
    locality: float = 0.0
    #: probability that an operation is a range scan (YCSB-E); drawn
    #: before the read/update split.
    scan_proportion: float = 0.0
    #: scan lengths are zipf-bounded in ``[1, max_scan_length]`` (short
    #: scans dominate, the standard YCSB-E shape).
    max_scan_length: int = 100
    #: run transactions that turn out write-free as coordinator-free
    #: snapshot reads (client-routed; requires ``read_only_snapshot``).
    read_only: bool = False

    #: the standard YCSB mixes.  E replaces inserts with updates (the
    #: simulated keyspace is fixed); B/C/E default to the read-only
    #: snapshot path for their write-free transactions.
    VARIANTS = {
        "a": dict(read_proportion=0.5),
        "b": dict(read_proportion=0.95, read_only=True),
        "c": dict(read_proportion=1.0, read_only=True),
        "e": dict(
            read_proportion=0.0, scan_proportion=0.95, read_only=True
        ),
    }

    @classmethod
    def variant(cls, name: str, **overrides) -> "YcsbConfig":
        """The named standard mix ("a"/"b"/"c"/"e"), with overrides."""
        params = dict(cls.VARIANTS[name.lower()])
        params.update(overrides)
        return cls(**params)

    def key(self, index: int) -> bytes:
        return self.key_prefix + b"user%08d" % index

    def value(self, index: int, op: int) -> bytes:
        seed = b"%d:%d|" % (index, op)
        reps = self.value_size // len(seed) + 1
        return (seed * reps)[: self.value_size]


def shard_key_indices(
    config: YcsbConfig, partitioner, num_shards: int
) -> List[List[int]]:
    """Key indices per shard under ``partitioner`` (for locality mode)."""
    shards: List[List[int]] = [[] for _ in range(num_shards)]
    for index in range(config.num_keys):
        shards[partitioner(config.key(index))].append(index)
    return shards


class YcsbWorkload:
    """Generates per-transaction operation lists.

    With ``config.locality > 0`` and ``shard_keys``/``home_shard`` set,
    that fraction of transactions draws every key uniformly from the
    home shard's slice of the keyspace (single-shard commit path); the
    remainder uses the global key generator and crosses shards.
    """

    def __init__(
        self,
        config: YcsbConfig,
        rng: SeededRng,
        shard_keys: Optional[List[List[int]]] = None,
        home_shard: Optional[int] = None,
    ):
        self.config = config
        self.rng = rng
        if config.distribution == "uniform":
            self._keygen = UniformGenerator(config.num_keys, rng.child("keys"))
        elif config.distribution == "zipfian":
            self._keygen = ScrambledZipfianGenerator(
                config.num_keys, rng.child("keys")
            )
        else:
            raise ValueError("unknown distribution %r" % config.distribution)
        self._scan_len: Optional[ZipfianGenerator] = None
        if config.scan_proportion > 0.0:
            # Plain (unscrambled) zipfian so rank 0 — the hottest draw —
            # maps to the shortest scan: short ranges dominate.
            self._scan_len = ZipfianGenerator(
                config.max_scan_length, rng.child("scan-len")
            )
        self._home_keys: Optional[List[int]] = None
        if config.locality > 0.0 and shard_keys is not None:
            if home_shard is None:
                raise ValueError("locality mode needs a home shard")
            home = shard_keys[home_shard]
            self._home_keys = home if home else None
        self._op_counter = 0

    def next_transaction(self) -> List[Tuple[str, bytes, Any]]:
        """A list of (kind, key, argument) operations.

        Kinds: ``('read', key, None)``, ``('update', key, value)``,
        ``('scan', start_key, length)`` — the scan length is the third
        slot (zipf-bounded; short ranges dominate).
        """
        local = (
            self._home_keys is not None
            and self.rng.random() < self.config.locality
        )
        ops = []
        for _ in range(self.config.ops_per_txn):
            if local:
                home = self._home_keys
                index = home[int(self.rng.random() * len(home)) % len(home)]
            else:
                index = self._keygen.next()
            key = self.config.key(index)
            if (
                self._scan_len is not None
                and self.rng.random() < self.config.scan_proportion
            ):
                ops.append(("scan", key, 1 + self._scan_len.next()))
            elif self.rng.random() < self.config.read_proportion:
                ops.append(("read", key, None))
            else:
                self._op_counter += 1
                ops.append(
                    ("update", key, self.config.value(index, self._op_counter))
                )
        return ops

    @staticmethod
    def is_read_only(ops: List[Tuple[str, bytes, Any]]) -> bool:
        """Whether a transaction's operation list is write-free."""
        return all(kind != "update" for kind, _, _ in ops)


def bulk_load(cluster: TreatyCluster, config: YcsbConfig) -> Gen:
    """Preload the keyspace directly through each node's engine.

    Load-phase work is not part of any measured figure, so it bypasses
    the client network (like preloading the store before an experiment).
    """
    per_node: List[List[Tuple[bytes, Optional[bytes], int]]] = [
        [] for _ in cluster.nodes
    ]
    for index in range(config.num_keys):
        key = config.key(index)
        owner = cluster.partitioner(key)
        per_node[owner].append((key, config.value(index, 0)))
    for node, pairs in zip(cluster.nodes, per_node):
        engine = node.engine
        batch = [(key, value, engine.next_seq()) for key, value in pairs]
        # Load in chunks so MemTable flushes interleave realistically.
        chunk = 500
        for start in range(0, len(batch), chunk):
            part = batch[start : start + chunk]
            yield from engine.log_commit(b"load", part)
            yield from engine.apply_writes(part)
        # Load-phase writes bypass the group committer, so no freshness
        # mark covers their seqs; advance the snapshot-read floor like
        # bootstrap does, or read-only commits would wait forever on a
        # write-free workload.
        if node.pipeline is not None:
            node.pipeline.witness.advance_floor(engine.current_seq())


#: bursty arrivals: mean transactions per on-burst (geometric).
_BURST_MEAN_TXNS = 8
#: bursty arrivals: Pareto idle-gap scale (seconds) and shape.  Shape
#: 1.5 gives the heavy tail that makes arrival-gap EWMAs actually move.
_BURST_IDLE_SCALE = 2.0e-3
_BURST_IDLE_SHAPE = 1.5
#: cap on a single idle gap so a run is not one long silence.
_BURST_IDLE_CAP = 5.0e-2


def _pareto_gap(rng: SeededRng) -> float:
    """One Pareto(shape, scale) idle gap via inverse-transform sampling."""
    u = rng.random()
    gap = _BURST_IDLE_SCALE * (1.0 - u) ** (-1.0 / _BURST_IDLE_SHAPE)
    return min(gap, _BURST_IDLE_CAP)


def run_ycsb(
    cluster: TreatyCluster,
    config: YcsbConfig,
    metrics,
    num_clients: int = 32,
    duration: float = 2.0,
    warmup: float = 0.2,
    max_retries: int = 3,
    arrivals: str = "closed",
) -> None:
    """Run closed-loop YCSB clients until ``duration`` simulated seconds.

    Clients are spread over three client machines (the testbed's layout)
    and round-robin across coordinator nodes.  ``metrics`` receives one
    sample per committed transaction.

    ``arrivals`` selects the arrival process: ``"closed"`` is the
    classic closed loop (next transaction immediately after the last);
    ``"bursty"`` is an on-off process — geometric bursts of back-to-back
    transactions separated by Pareto-distributed idle gaps, the
    heavy-tailed shape under which an adaptive group-commit window has
    something to adapt to.
    """
    if arrivals not in ("closed", "bursty"):
        raise ValueError("unknown arrival process %r" % arrivals)
    machines = [cluster.client_machine() for _ in range(3)]
    sim = cluster.sim
    start_time = sim.now
    end_time = start_time + warmup + duration
    metrics.measure_from(start_time + warmup)
    shard_keys = (
        shard_key_indices(config, cluster.partitioner, cluster.num_nodes)
        if config.locality > 0.0
        else None
    )

    def client_loop(client_index: int):
        machine = machines[client_index % len(machines)]
        coordinator = client_index % cluster.num_nodes
        session = cluster.session(machine, coordinator=coordinator)
        retry_counter = cluster.nodes[coordinator].runtime.metrics.counter(
            "occ.retries"
        )
        rng = SeededRng(cluster.config.seed, "ycsb-client", str(client_index))
        workload = YcsbWorkload(
            config, rng, shard_keys=shard_keys, home_shard=coordinator
        )
        burst_rng = rng.child("arrivals")
        burst_left = 1 + int(burst_rng.random() * 2 * _BURST_MEAN_TXNS)
        while sim.now < end_time:
            if arrivals == "bursty":
                if burst_left <= 0:
                    yield sim.timeout(_pareto_gap(burst_rng))
                    burst_left = 1 + int(
                        burst_rng.random() * 2 * _BURST_MEAN_TXNS
                    )
                    continue
                burst_left -= 1
            ops = workload.next_transaction()
            read_only = (
                config.read_only
                and session.snapshot_reads
                and YcsbWorkload.is_read_only(ops)
            )
            txn_start = sim.now
            committed = False
            for _attempt in range(max_retries + 1):
                txn = session.begin(
                    optimistic=config.optimistic and not read_only,
                    read_only=read_only,
                )
                try:
                    for kind, key, value in ops:
                        if kind == "read":
                            yield from txn.get(key)
                        elif kind == "scan":
                            yield from txn.scan(key, None, limit=value)
                        else:
                            yield from txn.put(key, value)
                    yield from txn.commit()
                    committed = True
                    break
                except TransactionAborted:
                    if _attempt < max_retries:
                        retry_counter.inc()
                    continue
            if committed:
                metrics.record(txn_start, sim.now)
            else:
                metrics.record_abort(txn_start)

    workers = [
        sim.process(client_loop(i), name="ycsb-client-%d" % i)
        for i in range(num_clients)
    ]
    sim.run(until=end_time)
    metrics.finish(sim.now)
