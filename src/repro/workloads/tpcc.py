"""TPC-C benchmark over Treaty's transactional KV API (§VIII-A).

Implements all five TPC-C transaction profiles (New-Order, Payment,
Order-Status, Delivery, Stock-Level) with the standard 45/43/4/4/4 mix,
the standard remote-access rates (1 % remote stock lines, 15 % remote
payments) and the 1 % intentionally-aborted New-Orders, over a
relational-to-KV encoding with warehouse-based partitioning — the usual
way distributed KV stores run TPC-C.

Scaling: the paper runs 10 and 100 warehouses with the full 100 k-item
catalog.  A discrete-event simulation cannot hold 1 M stock rows per
run, so the catalog and customer population are scaled down by a
constant factor (defaults below).  Contention *structure* is preserved:
the district ``next_o_id`` counter remains the hot row that makes 10
warehouses write-contended, and scaling warehouses up (10 → 100) still
spreads that contention out, which is the effect Figure 3 measures.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Generator, List, Tuple

from ..core.cluster import TreatyCluster
from ..errors import TransactionAborted
from ..sim.core import Event
from ..sim.rng import SeededRng

__all__ = [
    "TpccScale",
    "tpcc_partitioner",
    "load_tpcc",
    "run_tpcc",
    "TpccTerminal",
    "MIX",
]

Gen = Generator[Event, Any, Any]

#: standard transaction mix (cumulative probabilities).
MIX = [
    ("new_order", 0.45),
    ("payment", 0.88),
    ("order_status", 0.92),
    ("delivery", 0.96),
    ("stock_level", 1.00),
]

_SYLLABLES = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
]


def last_name(number: int) -> bytes:
    """Standard TPC-C last-name generation from a 3-digit number."""
    return (
        _SYLLABLES[(number // 100) % 10]
        + _SYLLABLES[(number // 10) % 10]
        + _SYLLABLES[number % 10]
    ).encode()


@dataclass(frozen=True)
class TpccScale:
    """Scaled-down TPC-C population (see module docstring)."""

    warehouses: int = 10
    districts_per_warehouse: int = 10
    customers_per_district: int = 30
    items: int = 200
    initial_orders_per_district: int = 5


# --- key encoding -----------------------------------------------------------


def warehouse_key(w: int) -> bytes:
    return b"w/%04d" % w


def district_key(w: int, d: int) -> bytes:
    return b"d/%04d/%02d" % (w, d)


def customer_key(w: int, d: int, c: int) -> bytes:
    return b"c/%04d/%02d/%04d" % (w, d, c)


def customer_index_key(w: int, d: int, lastname: bytes, c: int) -> bytes:
    return b"ci/%04d/%02d/%s/%04d" % (w, d, lastname, c)


def stock_key(w: int, i: int) -> bytes:
    return b"s/%04d/%06d" % (w, i)


def item_key(i: int) -> bytes:
    return b"i/%06d" % i


def order_key(w: int, d: int, o: int) -> bytes:
    return b"o/%04d/%02d/%08d" % (w, d, o)


def new_order_key(w: int, d: int, o: int) -> bytes:
    return b"no/%04d/%02d/%08d" % (w, d, o)


def order_line_key(w: int, d: int, o: int, line: int) -> bytes:
    return b"ol/%04d/%02d/%08d/%02d" % (w, d, o, line)


def customer_last_order_key(w: int, d: int, c: int) -> bytes:
    return b"co/%04d/%02d/%04d" % (w, d, c)


def history_key(w: int, d: int, unique: bytes) -> bytes:
    return b"h/%04d/%02d/%s" % (w, d, unique)


def tpcc_partitioner(num_nodes: int):
    """Warehouse-based sharding; the read-only item catalog is hashed."""
    import zlib

    def partition(key: bytes) -> int:
        parts = key.split(b"/")
        if parts[0] == b"i":
            return zlib.crc32(key) % num_nodes
        return int(parts[1]) % num_nodes

    return partition


# --- row codecs (money in integer cents, timestamps in integer µs) ------------

_WAREHOUSE = struct.Struct("<q")  # ytd
_DISTRICT = struct.Struct("<qqi")  # next_o_id, ytd, tax basis points
_CUSTOMER = struct.Struct("<qqii")  # balance, ytd_payment, payment_cnt, delivery_cnt
_STOCK = struct.Struct("<iqii")  # quantity, ytd, order_cnt, remote_cnt
_ITEM = struct.Struct("<q")  # price
_ORDER = struct.Struct("<iqii")  # c_id, entry_us, carrier_id, ol_cnt
_ORDER_LINE = struct.Struct("<iiiqq")  # i_id, supply_w, qty, amount, delivery_us


@dataclass
class WarehouseRow:
    ytd: int = 0

    def encode(self) -> bytes:
        return _WAREHOUSE.pack(self.ytd)

    @classmethod
    def decode(cls, data: bytes) -> "WarehouseRow":
        return cls(*_WAREHOUSE.unpack(data))


@dataclass
class DistrictRow:
    next_o_id: int = 1
    ytd: int = 0
    tax_bp: int = 1000  # 10.00 %

    def encode(self) -> bytes:
        return _DISTRICT.pack(self.next_o_id, self.ytd, self.tax_bp)

    @classmethod
    def decode(cls, data: bytes) -> "DistrictRow":
        return cls(*_DISTRICT.unpack(data))


@dataclass
class CustomerRow:
    balance: int = -1000  # -10.00 per spec
    ytd_payment: int = 1000
    payment_cnt: int = 1
    delivery_cnt: int = 0
    lastname: bytes = b""

    def encode(self) -> bytes:
        return (
            _CUSTOMER.pack(
                self.balance, self.ytd_payment, self.payment_cnt, self.delivery_cnt
            )
            + self.lastname
        )

    @classmethod
    def decode(cls, data: bytes) -> "CustomerRow":
        fields = _CUSTOMER.unpack(data[: _CUSTOMER.size])
        return cls(*fields, lastname=data[_CUSTOMER.size :])


@dataclass
class StockRow:
    quantity: int = 50
    ytd: int = 0
    order_cnt: int = 0
    remote_cnt: int = 0

    def encode(self) -> bytes:
        return _STOCK.pack(self.quantity, self.ytd, self.order_cnt, self.remote_cnt)

    @classmethod
    def decode(cls, data: bytes) -> "StockRow":
        return cls(*_STOCK.unpack(data))


@dataclass
class ItemRow:
    price: int = 100

    def encode(self) -> bytes:
        return _ITEM.pack(self.price)

    @classmethod
    def decode(cls, data: bytes) -> "ItemRow":
        return cls(*_ITEM.unpack(data))


@dataclass
class OrderRow:
    c_id: int = 0
    entry_us: int = 0
    carrier_id: int = 0  # 0 = not delivered
    ol_cnt: int = 0

    def encode(self) -> bytes:
        return _ORDER.pack(self.c_id, self.entry_us, self.carrier_id, self.ol_cnt)

    @classmethod
    def decode(cls, data: bytes) -> "OrderRow":
        return cls(*_ORDER.unpack(data))


@dataclass
class OrderLineRow:
    i_id: int = 0
    supply_w: int = 0
    qty: int = 0
    amount: int = 0
    delivery_us: int = 0

    def encode(self) -> bytes:
        return _ORDER_LINE.pack(
            self.i_id, self.supply_w, self.qty, self.amount, self.delivery_us
        )

    @classmethod
    def decode(cls, data: bytes) -> "OrderLineRow":
        return cls(*_ORDER_LINE.unpack(data))


# --- initial population --------------------------------------------------------


def initial_rows(scale: TpccScale) -> List[Tuple[bytes, bytes]]:
    """Every row of the initial database, as (key, value) pairs."""
    rows: List[Tuple[bytes, bytes]] = []
    for i in range(1, scale.items + 1):
        rows.append((item_key(i), ItemRow(price=100 + (i % 900)).encode()))
    for w in range(1, scale.warehouses + 1):
        rows.append((warehouse_key(w), WarehouseRow().encode()))
        for i in range(1, scale.items + 1):
            rows.append((stock_key(w, i), StockRow(quantity=50 + i % 50).encode()))
        for d in range(1, scale.districts_per_warehouse + 1):
            rows.append(
                (
                    district_key(w, d),
                    DistrictRow(
                        next_o_id=scale.initial_orders_per_district + 1
                    ).encode(),
                )
            )
            for c in range(1, scale.customers_per_district + 1):
                name = last_name(c % 1000)
                rows.append(
                    (customer_key(w, d, c), CustomerRow(lastname=name).encode())
                )
                rows.append((customer_index_key(w, d, name, c), b"%d" % c))
            for o in range(1, scale.initial_orders_per_district + 1):
                c = (o % scale.customers_per_district) + 1
                rows.append(
                    (
                        order_key(w, d, o),
                        OrderRow(c_id=c, carrier_id=1, ol_cnt=5).encode(),
                    )
                )
                rows.append((customer_last_order_key(w, d, c), b"%d" % o))
                for line in range(1, 6):
                    rows.append(
                        (
                            order_line_key(w, d, o, line),
                            OrderLineRow(
                                i_id=(o * 7 + line) % scale.items + 1,
                                supply_w=w,
                                qty=5,
                                amount=500,
                                delivery_us=1,
                            ).encode(),
                        )
                    )
    return rows


def load_tpcc(cluster: TreatyCluster, scale: TpccScale) -> Gen:
    """Bulk-load the initial database directly through the engines."""
    per_node: List[List[Tuple[bytes, bytes]]] = [[] for _ in cluster.nodes]
    for key, value in initial_rows(scale):
        per_node[cluster.partitioner(key)].append((key, value))
    for node, pairs in zip(cluster.nodes, per_node):
        engine = node.engine
        chunk = 500
        for start in range(0, len(pairs), chunk):
            batch = [
                (key, value, engine.next_seq())
                for key, value in pairs[start : start + chunk]
            ]
            yield from engine.log_commit(b"tpcc-load", batch)
            yield from engine.apply_writes(batch)


# --- the five transactions ---------------------------------------------------


class TpccTerminal:
    """One TPC-C terminal bound to a home warehouse."""

    def __init__(self, session, scale: TpccScale, home_w: int, rng: SeededRng):
        self.session = session
        self.scale = scale
        self.home_w = home_w
        self.rng = rng
        self._history_seq = 0
        self.per_type_commits = {name: 0 for name, _ in MIX}

    # -- helpers ------------------------------------------------------------
    def _rand_district(self) -> int:
        return self.rng.randint(1, self.scale.districts_per_warehouse)

    def _rand_customer(self) -> int:
        return self.rng.randint(1, self.scale.customers_per_district)

    def _rand_item(self) -> int:
        return self.rng.randint(1, self.scale.items)

    def choose_type(self) -> str:
        roll = self.rng.random()
        for name, cumulative in MIX:
            if roll <= cumulative:
                return name
        return MIX[-1][0]

    def execute(self, txn_type: str) -> Gen:
        handler = getattr(self, txn_type)
        committed = yield from handler()
        if committed:
            self.per_type_commits[txn_type] += 1
        return committed

    # -- New-Order (45 %) ------------------------------------------------------
    def new_order(self) -> Gen:
        w, scale = self.home_w, self.scale
        d = self._rand_district()
        c = self._rand_customer()
        ol_cnt = self.rng.randint(5, 15)
        invalid = self.rng.random() < 0.01  # 1 % rolled back per spec
        txn = self.session.begin()
        # District: read + increment the (hot) next_o_id counter.
        district = DistrictRow.decode((yield from txn.get(district_key(w, d))))
        o_id = district.next_o_id
        district.next_o_id += 1
        yield from txn.put(district_key(w, d), district.encode())
        yield from txn.get(customer_key(w, d, c))
        total = 0
        for line in range(1, ol_cnt + 1):
            i_id = self._rand_item()
            # 1 % of lines are supplied by a remote warehouse.
            supply_w = w
            if scale.warehouses > 1 and self.rng.random() < 0.01:
                supply_w = self.rng.choice(
                    [x for x in range(1, scale.warehouses + 1) if x != w]
                )
            item_value = yield from txn.get(item_key(i_id))
            if item_value is None or (invalid and line == ol_cnt):
                yield from txn.rollback()
                return False
            item = ItemRow.decode(item_value)
            stock = StockRow.decode((yield from txn.get(stock_key(supply_w, i_id))))
            qty = self.rng.randint(1, 10)
            if stock.quantity >= qty + 10:
                stock.quantity -= qty
            else:
                stock.quantity = stock.quantity - qty + 91
            stock.ytd += qty
            stock.order_cnt += 1
            if supply_w != w:
                stock.remote_cnt += 1
            yield from txn.put(stock_key(supply_w, i_id), stock.encode())
            amount = qty * item.price
            total += amount
            yield from txn.put(
                order_line_key(w, d, o_id, line),
                OrderLineRow(i_id, supply_w, qty, amount, 0).encode(),
            )
        entry_us = int(self.session.machine.sim.now * 1e6)
        yield from txn.put(
            order_key(w, d, o_id), OrderRow(c, entry_us, 0, ol_cnt).encode()
        )
        yield from txn.put(new_order_key(w, d, o_id), b"1")
        yield from txn.put(customer_last_order_key(w, d, c), b"%d" % o_id)
        yield from txn.commit()
        return True

    # -- Payment (43 %) ----------------------------------------------------------
    def payment(self) -> Gen:
        w, scale = self.home_w, self.scale
        d = self._rand_district()
        # 15 % of payments are for a customer of a remote warehouse.
        c_w, c_d = w, d
        if scale.warehouses > 1 and self.rng.random() < 0.15:
            c_w = self.rng.choice(
                [x for x in range(1, scale.warehouses + 1) if x != w]
            )
            c_d = self._rand_district()
        amount = self.rng.randint(100, 500000)
        txn = self.session.begin()
        warehouse = WarehouseRow.decode((yield from txn.get(warehouse_key(w))))
        warehouse.ytd += amount
        yield from txn.put(warehouse_key(w), warehouse.encode())
        district = DistrictRow.decode((yield from txn.get(district_key(w, d))))
        district.ytd += amount
        yield from txn.put(district_key(w, d), district.encode())
        # 60 % select the customer by last name, 40 % by id.
        if self.rng.random() < 0.60:
            name = last_name(self._rand_customer() % 1000)
            prefix = b"ci/%04d/%02d/%s/" % (c_w, c_d, name)
            matches = yield from txn.scan(prefix, prefix + b"\xff")
            if not matches:
                c = self._rand_customer()
            else:
                c = int(matches[len(matches) // 2][1])  # middle match per spec
        else:
            c = self._rand_customer()
        customer = CustomerRow.decode(
            (yield from txn.get(customer_key(c_w, c_d, c)))
        )
        customer.balance -= amount
        customer.ytd_payment += amount
        customer.payment_cnt += 1
        yield from txn.put(customer_key(c_w, c_d, c), customer.encode())
        self._history_seq += 1
        unique = b"%d-%d" % (self.session.client_id, self._history_seq)
        yield from txn.put(history_key(w, d, unique), b"%d" % amount)
        yield from txn.commit()
        return True

    # -- Order-Status (4 %) ----------------------------------------------------------
    def order_status(self) -> Gen:
        w = self.home_w
        d = self._rand_district()
        c = self._rand_customer()
        txn = self.session.begin()
        yield from txn.get(customer_key(w, d, c))
        last_order = yield from txn.get(customer_last_order_key(w, d, c))
        if last_order is not None:
            o_id = int(last_order)
            yield from txn.get(order_key(w, d, o_id))
            prefix = b"ol/%04d/%02d/%08d/" % (w, d, o_id)
            yield from txn.scan(prefix, prefix + b"\xff")
        yield from txn.commit()
        return True

    # -- Delivery (4 %) ---------------------------------------------------------------
    def delivery(self) -> Gen:
        w = self.home_w
        carrier = self.rng.randint(1, 10)
        now_us = int(self.session.machine.sim.now * 1e6)
        txn = self.session.begin()
        for d in range(1, self.scale.districts_per_warehouse + 1):
            prefix = b"no/%04d/%02d/" % (w, d)
            oldest = yield from txn.scan(prefix, prefix + b"\xff", limit=1)
            if not oldest:
                continue
            no_key = oldest[0][0]
            o_id = int(no_key.rsplit(b"/", 1)[1])
            yield from txn.delete(no_key)
            order = OrderRow.decode((yield from txn.get(order_key(w, d, o_id))))
            order.carrier_id = carrier
            yield from txn.put(order_key(w, d, o_id), order.encode())
            ol_prefix = b"ol/%04d/%02d/%08d/" % (w, d, o_id)
            lines = yield from txn.scan(ol_prefix, ol_prefix + b"\xff")
            total = 0
            for line_key, line_value in lines:
                line = OrderLineRow.decode(line_value)
                total += line.amount
                line.delivery_us = now_us
                yield from txn.put(line_key, line.encode())
            customer = CustomerRow.decode(
                (yield from txn.get(customer_key(w, d, order.c_id)))
            )
            customer.balance += total
            customer.delivery_cnt += 1
            yield from txn.put(customer_key(w, d, order.c_id), customer.encode())
        yield from txn.commit()
        return True

    # -- Stock-Level (4 %) ----------------------------------------------------------------
    def stock_level(self) -> Gen:
        w = self.home_w
        d = self._rand_district()
        threshold = self.rng.randint(10, 20)
        txn = self.session.begin()
        district = DistrictRow.decode((yield from txn.get(district_key(w, d))))
        newest = district.next_o_id - 1
        oldest = max(1, newest - 19)  # the last 20 orders
        start = b"ol/%04d/%02d/%08d/" % (w, d, oldest)
        end = b"ol/%04d/%02d/%08d/" % (w, d, newest + 1)
        lines = yield from txn.scan(start, end)
        item_ids = {OrderLineRow.decode(value).i_id for _key, value in lines}
        low = 0
        for i_id in sorted(item_ids):
            stock = StockRow.decode((yield from txn.get(stock_key(w, i_id))))
            if stock.quantity < threshold:
                low += 1
        yield from txn.commit()
        return low >= 0


def run_tpcc(
    cluster: TreatyCluster,
    scale: TpccScale,
    metrics,
    num_clients: int = 10,
    duration: float = 5.0,
    warmup: float = 0.5,
    max_retries: int = 3,
) -> None:
    """Run closed-loop TPC-C terminals for ``duration`` simulated seconds."""
    machines = [cluster.client_machine() for _ in range(3)]
    sim = cluster.sim
    end_time = sim.now + warmup + duration
    metrics.measure_from(sim.now + warmup)

    def terminal_loop(index: int):
        machine = machines[index % len(machines)]
        home_w = (index % scale.warehouses) + 1
        coordinator = (home_w - 1) % cluster.num_nodes
        session = cluster.session(machine, coordinator=coordinator)
        rng = SeededRng(cluster.config.seed, "tpcc-terminal", str(index))
        terminal = TpccTerminal(session, scale, home_w, rng)
        while sim.now < end_time:
            txn_type = terminal.choose_type()
            started = sim.now
            committed = False
            for _attempt in range(max_retries + 1):
                try:
                    committed = yield from terminal.execute(txn_type)
                    break
                except TransactionAborted:
                    continue
            if committed:
                metrics.record(started, sim.now)
            else:
                metrics.record_abort(started)

    for i in range(num_clients):
        sim.process(terminal_loop(i), name="tpcc-terminal-%d" % i)
    sim.run(until=end_time)
    metrics.finish(sim.now)
