"""Benchmark workloads: YCSB and TPC-C, plus key distributions."""

from .tpcc import (
    TpccScale,
    TpccTerminal,
    load_tpcc,
    run_tpcc,
    tpcc_partitioner,
)
from .ycsb import YcsbConfig, YcsbWorkload, bulk_load, run_ycsb
from .zipf import ScrambledZipfianGenerator, UniformGenerator, ZipfianGenerator

__all__ = [
    "ScrambledZipfianGenerator",
    "TpccScale",
    "TpccTerminal",
    "UniformGenerator",
    "YcsbConfig",
    "YcsbWorkload",
    "ZipfianGenerator",
    "bulk_load",
    "load_tpcc",
    "run_tpcc",
    "run_ycsb",
    "tpcc_partitioner",
]
