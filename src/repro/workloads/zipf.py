"""Key-distribution generators (YCSB-style).

Implements the standard YCSB generators: uniform, zipfian (Gray et al.'s
incremental algorithm) and scrambled zipfian (hot keys spread over the
keyspace).  All are deterministic given a :class:`~repro.sim.SeededRng`.
"""

from __future__ import annotations

from hashlib import sha256

from ..sim.rng import SeededRng

__all__ = ["UniformGenerator", "ZipfianGenerator", "ScrambledZipfianGenerator"]

ZIPFIAN_CONSTANT = 0.99


class UniformGenerator:
    """Uniform integers in ``[0, item_count)``."""

    def __init__(self, item_count: int, rng: SeededRng):
        if item_count < 1:
            raise ValueError("item_count must be >= 1")
        self.item_count = item_count
        self.rng = rng

    def next(self) -> int:
        return self.rng.randrange(self.item_count)


class ZipfianGenerator:
    """Zipf-distributed integers in ``[0, item_count)`` (0 is hottest)."""

    def __init__(
        self,
        item_count: int,
        rng: SeededRng,
        theta: float = ZIPFIAN_CONSTANT,
    ):
        if item_count < 1:
            raise ValueError("item_count must be >= 1")
        self.item_count = item_count
        self.rng = rng
        self.theta = theta
        self.zeta_n = self._zeta(item_count, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.zeta_2 = self._zeta(2, theta)
        if item_count <= 2:
            # Degenerate keyspaces: the incremental formula divides by
            # zero at n=2; fall back to uniform choice.
            self.eta = None
        else:
            self.eta = (1 - (2.0 / item_count) ** (1 - theta)) / (
                1 - self.zeta_2 / self.zeta_n
            )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        if self.eta is None:
            return self.rng.randrange(self.item_count)
        u = self.rng.random()
        uz = u * self.zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(
            self.item_count * ((self.eta * u - self.eta + 1) ** self.alpha)
        )


class ScrambledZipfianGenerator:
    """Zipfian popularity spread uniformly over the keyspace (YCSB)."""

    def __init__(self, item_count: int, rng: SeededRng):
        self.item_count = item_count
        self._zipf = ZipfianGenerator(item_count, rng)

    def next(self) -> int:
        rank = self._zipf.next()
        digest = sha256(rank.to_bytes(8, "little")).digest()
        return int.from_bytes(digest[:8], "little") % self.item_count
