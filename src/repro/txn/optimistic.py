"""Optimistic (OCC) transactions (§II-A, §V-B).

"Optimistic Txs use sequence numbers to identify conflicts at the commit
phase.  For optimistic Txs, each key has a seq. number showing its latest
version and is atomically increased during the commit phase."

Execution takes no locks.  At commit, inside the group-commit leader's
critical section, the transaction validates that (a) every key it read
still carries the version it observed, and (b) no key it writes has been
committed past the transaction's begin snapshot.  Either violation
raises :class:`~repro.errors.ConflictError` and the transaction aborts
(callers typically retry).

:class:`DistributedOccTxn` is the participant-local half of a
*distributed* OCC transaction (``ClusterConfig.occ_distributed``): the
coordinator executes lock-free (stateless versioned reads, writes
buffered coordinator-side) and ships each participant its read-set
versions and write-set inside the PREPARE message.  The participant
loads them into this transaction and validates inside its prepare
critical section — no-wait version pins plus sequence comparison — so a
conflict turns into a PREPARE NACK and presumed abort, never a blocked
lock queue.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from ..errors import ConflictError, TransactionAborted
from ..sim.core import Event
from .base import LocalTransaction
from .locks import LockMode
from .pessimistic import PessimisticTxn
from .types import TxnStatus

__all__ = ["OptimisticTxn", "DistributedOccTxn"]

Gen = Generator[Event, Any, Any]


class OptimisticTxn(LocalTransaction):
    """An OCC transaction over one node's storage engine."""

    def __init__(self, manager, txn_id: bytes):
        super().__init__(manager, txn_id)
        #: versions committed after this point conflict with our writes.
        self.snapshot_seq = manager.engine.current_seq()

    def _commit_validator(self):
        def validate() -> Gen:
            for key, observed_seq in self.reads.items():
                current = yield from self.engine.seq_of(key)
                if current != observed_seq:
                    raise ConflictError(key)
            for key in self.buffer.keys():
                if key in self.reads:
                    continue  # already validated above
                current = yield from self.engine.seq_of(key)
                if current > self.snapshot_seq:
                    raise ConflictError(key)
            return

        return validate


class DistributedOccTxn(PessimisticTxn):
    """Participant-local half of a distributed OCC transaction.

    Created by :class:`~repro.core.twopc.Participant` when a PREPARE
    arrives carrying validate/write sets.  The sets are installed with
    :meth:`load`, then :meth:`validate_and_pin` runs inside the prepare
    critical section:

    1. *Pin* every touched key with a **no-wait** lock (shared for
       reads, exclusive for writes, sorted order).  The pins freeze the
       validated versions through the validate → decision → apply
       window without ever queueing behind another transaction — a
       contended key aborts immediately (→ PREPARE NACK), so distributed
       OCC cannot deadlock and never blocks a lock queue.
    2. *Validate* each read: the key's current sequence number must
       still equal the version the coordinator observed during
       execution; any mismatch raises
       :class:`~repro.errors.ConflictError` (→ PREPARE NACK, presumed
       abort).

    After that the transaction behaves exactly like a pessimistic
    participant half: :meth:`PessimisticTxn.prepare` persists the write
    set, and commit/abort resolution releases the pins via
    ``_finalize``.  A participant that only *read* for this transaction
    prepares nothing (counter 0) and its commit is a pure release.
    """

    # Execution already happened lock-free at the coordinator; the local
    # half never reads or writes through the normal operation path.
    def _before_read(self, key: bytes) -> Gen:
        return
        yield  # pragma: no cover

    def _before_write(self, key: bytes) -> Gen:
        return
        yield  # pragma: no cover

    def load(
        self,
        reads: List[Tuple[bytes, int]],
        writes: List[Tuple[bytes, Optional[bytes]]],
    ) -> None:
        """Install the coordinator-shipped validate and write sets."""
        for key, seq in reads:
            self.reads.record(key, seq)
        for key, value in writes:
            self.buffer.record(key, value)

    def validate_and_pin(self) -> Gen:
        """No-wait version pinning + read-set validation (§II-A, §V-B).

        Raises :class:`~repro.errors.TransactionAborted` (and rolls the
        local half back) on any conflict; the caller turns that into a
        PREPARE NACK.
        """
        self._check_active()
        write_keys = set(self.buffer.keys())
        modes = {key: LockMode.SHARED for key, _ in self.reads.items()}
        for key in write_keys:
            modes[key] = LockMode.EXCLUSIVE
        try:
            for key in sorted(modes):
                # timeout=0.0: no-wait — never queue behind another txn.
                yield from self.manager.locks.acquire(
                    self.txn_id, key, modes[key], timeout=0.0
                )
            for key, observed_seq in self.reads.items():
                current = yield from self.engine.seq_of(key)
                if current != observed_seq:
                    raise ConflictError(key)
        except TransactionAborted:
            yield from self.rollback()
            raise

    def prepare(self) -> Gen:
        """Persist the write set; read-only halves prepare nothing."""
        if not len(self.buffer):
            self._check_active()
            self.status = TxnStatus.PREPARED
            # Counter 0 is filtered out of stabilization target vectors:
            # nothing was logged, there is nothing to protect.
            return 0, self.engine.wal_log_name
        result = yield from super().prepare()
        return result

    def commit_prepared(self) -> Gen:
        if self.status == TxnStatus.PREPARED and not len(self.buffer):
            yield from self.runtime.op_overhead()
            self._finalize(TxnStatus.COMMITTED)
            return 0
        result = yield from super().commit_prepared()
        return result

    def commit_prepared_async(self, defer_stabilization: bool = False) -> Gen:
        """Commit; a read-only half just releases its pins."""
        if self.status == TxnStatus.PREPARED and not len(self.buffer):
            yield from self.runtime.op_overhead()
            self._finalize(TxnStatus.COMMITTED)
            if defer_stabilization:
                return 0, self.engine.wal_log_name
            return 0
        result = yield from super().commit_prepared_async(defer_stabilization)
        return result

    def abort_prepared(self) -> Gen:
        if self.status == TxnStatus.PREPARED and not len(self.buffer):
            yield from self.runtime.op_overhead()
            self._finalize(TxnStatus.ABORTED)
            return
        yield from super().abort_prepared()
