"""Optimistic (OCC) transactions (§II-A, §V-B).

"Optimistic Txs use sequence numbers to identify conflicts at the commit
phase.  For optimistic Txs, each key has a seq. number showing its latest
version and is atomically increased during the commit phase."

Execution takes no locks.  At commit, inside the group-commit leader's
critical section, the transaction validates that (a) every key it read
still carries the version it observed, and (b) no key it writes has been
committed past the transaction's begin snapshot.  Either violation
raises :class:`~repro.errors.ConflictError` and the transaction aborts
(callers typically retry).
"""

from __future__ import annotations

from typing import Any, Generator

from ..errors import ConflictError
from ..sim.core import Event
from .base import LocalTransaction

__all__ = ["OptimisticTxn"]

Gen = Generator[Event, Any, Any]


class OptimisticTxn(LocalTransaction):
    """An OCC transaction over one node's storage engine."""

    def __init__(self, manager, txn_id: bytes):
        super().__init__(manager, txn_id)
        #: versions committed after this point conflict with our writes.
        self.snapshot_seq = manager.engine.current_seq()

    def _commit_validator(self):
        def validate() -> Gen:
            for key, observed_seq in self.reads.items():
                current = yield from self.engine.seq_of(key)
                if current != observed_seq:
                    raise ConflictError(key)
            for key in self.buffer.keys():
                if key in self.reads:
                    continue  # already validated above
                current = yield from self.engine.seq_of(key)
                if current > self.snapshot_seq:
                    raise ConflictError(key)
            return

        return validate
