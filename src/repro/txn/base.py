"""Shared machinery of single-node transactions (§V-B).

Both concurrency-control flavours buffer their writes in enclave-resident
:class:`~repro.txn.types.TxnBuffer` streams, serve read-my-own-writes
from that buffer, and commit through the node's group committer.  Locks
are released as soon as the commit is applied; the *stabilization* wait
(rollback protection) happens afterwards, before the client is
acknowledged — the paper notes this window is what lets "w/ Stab"
configurations serve more concurrent clients.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..errors import TransactionAborted, TransactionError
from ..sim.core import Event
from .types import ReadSet, TxnBuffer, TxnStatus

__all__ = ["LocalTransaction"]

Gen = Generator[Event, Any, Any]


class LocalTransaction:
    """Base class for pessimistic and optimistic single-node transactions."""

    def __init__(self, manager, txn_id: bytes):
        self.manager = manager
        self.engine = manager.engine
        self.runtime = manager.runtime
        self.txn_id = txn_id
        self.buffer = TxnBuffer(self.runtime.enclave.memory)
        self.reads = ReadSet()
        self.status = TxnStatus.ACTIVE
        self.wal_counter: Optional[int] = None

    # -- hooks for subclasses ------------------------------------------------
    def _before_read(self, key: bytes) -> Gen:
        return
        yield  # pragma: no cover

    def _before_write(self, key: bytes) -> Gen:
        return
        yield  # pragma: no cover

    def _commit_validator(self):
        """Return a validator generator-factory for OCC, or None."""
        return None

    # -- operations ---------------------------------------------------------------
    def _check_active(self) -> None:
        if self.status != TxnStatus.ACTIVE:
            raise TransactionError(
                "transaction %r is %s" % (self.txn_id, self.status)
            )

    def get(self, key: bytes) -> Gen:
        """TXNGET: read a key (read-my-own-writes honoured)."""
        self._check_active()
        hit, value = self.buffer.get(key)
        if hit:
            return value
        try:
            yield from self._before_read(key)
        except TransactionAborted:
            yield from self.rollback()
            raise
        value, seq = yield from self.engine.get_with_seq(key)
        self.reads.record(key, seq)
        return value

    def put(self, key: bytes, value: bytes) -> Gen:
        """TXNPUT: buffer a write."""
        if value is None:
            raise ValueError("use delete() for deletions")
        yield from self._write(key, value)

    def delete(self, key: bytes) -> Gen:
        """Buffer a deletion (tombstone at commit)."""
        yield from self._write(key, None)

    def _write(self, key: bytes, value: Optional[bytes]) -> Gen:
        self._check_active()
        try:
            yield from self._before_write(key)
        except TransactionAborted:
            yield from self.rollback()
            raise
        yield from self.runtime.compute(
            self.runtime.costs.op_base_cpu
            + (len(key) + len(value or b"")) * self.runtime.costs.copy_per_byte
        )
        self.buffer.record(key, value)

    def scan(self, start: bytes, end: Optional[bytes], limit=None) -> Gen:
        """Range scan ``[start, end)``, overlaid with this txn's writes.

        Scans run lock-free at read-committed isolation (TPC-C permits
        this for its scan-heavy transactions; point reads stay
        serializable through their normal lock/validation paths).
        """
        self._check_active()
        yield from self.runtime.op_overhead()
        rows = yield from self.engine.scan(start, end, limit=None)
        merged = dict(rows)
        for key, value in self.buffer.items():
            if key >= start and (end is None or key < end):
                if value is None:
                    merged.pop(key, None)
                else:
                    merged[key] = value
        result = sorted(merged.items())
        if limit is not None:
            result = result[:limit]
        return result

    # -- lifecycle -------------------------------------------------------------------
    def commit(self) -> Gen:
        """TXNCOMMIT: make every buffered write durable, atomically.

        Returns the WAL counter of the commit record (0 for read-only
        transactions).  The transaction is rollback-protected (stable)
        when this returns, under profiles with stabilization enabled.
        """
        self._check_active()
        writes = self.buffer.items()
        if not writes:
            self._finalize(TxnStatus.COMMITTED)
            return 0
        try:
            counter, log_name, stable_event = yield from self.manager.group.submit(
                self.txn_id, writes, self._commit_validator(), wait_stable=True
            )
        except TransactionAborted:
            yield from self.rollback()
            raise
        self.wal_counter = counter
        # Release locks *before* the stabilization wait (§VIII-C).
        self._finalize(TxnStatus.COMMITTED)
        if stable_event is not None:
            # The whole group-commit batch shares this one wait, driven
            # by a single pipeline stabilization request.
            yield stable_event
        else:
            yield from self.manager.stabilize(log_name, counter)
        return counter

    def rollback(self) -> Gen:
        """TXNROLLBACK: discard buffered writes and release locks."""
        if self.status != TxnStatus.ACTIVE:
            return
        yield from self.runtime.op_overhead()
        self._finalize(TxnStatus.ABORTED)

    def _finalize(self, status: str) -> None:
        self.manager.locks.release_all(self.txn_id)
        self.buffer.release()
        self.status = status
