"""Transaction handles, buffers and status tracking.

Treaty keeps "the updates of uncommitted in-progress Txs into local
buffers ... implemented as a stream of bytes that allocate continuous
memory to eliminate paging" (§VII-D).  :class:`TxnBuffer` models that:
writes are appended to one contiguous enclave allocation whose growth is
accounted against EPC, and the key→value view needed for read-my-own-
writes is maintained alongside.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..memory.regions import Allocation, MemoryRegion

__all__ = ["TxnStatus", "TxnBuffer", "ReadSet"]


class TxnStatus:
    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TxnBuffer:
    """Buffered (uncommitted) writes of one transaction."""

    def __init__(self, enclave_region: MemoryRegion):
        self._region = enclave_region
        self._writes: "OrderedDict[bytes, Optional[bytes]]" = OrderedDict()
        self._allocation: Optional[Allocation] = None
        self.byte_size = 0

    def record(self, key: bytes, value: Optional[bytes]) -> None:
        """Buffer ``key -> value`` (None deletes); last write wins."""
        previous = self._writes.get(key)
        self._writes[key] = value
        self._writes.move_to_end(key)
        delta = len(key) + len(value or b"")
        if previous is not None or key in self._writes:
            pass  # contiguous stream: old bytes are not reclaimed until commit
        self.byte_size += delta
        self._reallocate()

    def _reallocate(self) -> None:
        if self._allocation is not None:
            self._allocation.free()
        self._allocation = self._region.allocate(self.byte_size)

    def get(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """(hit, value) — read-my-own-writes lookup."""
        if key in self._writes:
            return True, self._writes[key]
        return False, None

    def items(self) -> List[Tuple[bytes, Optional[bytes]]]:
        return list(self._writes.items())

    def keys(self) -> List[bytes]:
        return list(self._writes)

    def __len__(self) -> int:
        return len(self._writes)

    def release(self) -> None:
        """Free the enclave allocation (commit or rollback)."""
        if self._allocation is not None:
            self._allocation.free()
            self._allocation = None
        self._writes.clear()
        self.byte_size = 0


class ReadSet:
    """Keys read by a transaction with the version observed (for OCC)."""

    def __init__(self):
        self._reads: Dict[bytes, int] = {}

    def record(self, key: bytes, seq: int) -> None:
        # Keep the first observed version: validation must prove it never
        # changed for the duration of the transaction.
        self._reads.setdefault(key, seq)

    def items(self) -> List[Tuple[bytes, int]]:
        return list(self._reads.items())

    def __contains__(self, key: bytes) -> bool:
        return key in self._reads

    def __len__(self) -> int:
        return len(self._reads)
