"""Sharded key lock table (§V-B).

"Nodes store a table of locks for their keys that is divided across
shards, each protected with a lock, by splitting the key space.  TREATY
runs with a big number of shards to avoid locking bottlenecks.  Txs that
fail to acquire a lock within a timeframe, return with a timeout error."

Locks are reader/writer with FIFO waiting and same-transaction upgrade
(R→W).  Deadlocks are resolved by the timeout, exactly as in the paper.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from ..errors import LockTimeout
from ..obs.tracer import tracer_of
from ..sim.core import Event, Simulator

__all__ = ["LockMode", "LockTable"]

Gen = Generator[Event, Any, Any]


class LockMode:
    SHARED = "R"
    EXCLUSIVE = "W"


class _KeyLock:
    """Lock state for a single key."""

    __slots__ = ("owners", "mode", "waiters")

    def __init__(self):
        self.owners: Set[bytes] = set()
        self.mode: Optional[str] = None
        # (txn_id, mode, key, grant_event) in FIFO order.
        self.waiters: List[Tuple[bytes, str, bytes, Event]] = []

    def compatible(self, txn_id: bytes, mode: str) -> bool:
        if not self.owners:
            return True
        if self.owners == {txn_id}:
            return True  # re-entrant / upgrade
        if mode == LockMode.SHARED and self.mode == LockMode.SHARED:
            return True
        return False

    def grant(self, txn_id: bytes, mode: str) -> None:
        self.owners.add(txn_id)
        if self.mode != LockMode.EXCLUSIVE:
            self.mode = mode
        elif mode == LockMode.EXCLUSIVE:
            self.mode = mode

    def is_free(self) -> bool:
        return not self.owners and not self.waiters


class LockTable:
    """Per-node lock manager, sharded by key hash."""

    def __init__(self, sim: Simulator, shards: int = 256, timeout: float = 0.5):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.sim = sim
        self.shards = shards
        self.timeout = timeout
        self._tables: List[Dict[bytes, _KeyLock]] = [dict() for _ in range(shards)]
        self._held: Dict[bytes, Dict[bytes, str]] = defaultdict(OrderedDict)
        self.timeouts = 0
        self.acquisitions = 0
        #: optional Histogram of contended-wait seconds, installed by the
        #: owning TransactionManager (kept optional so unit tests can use
        #: a bare LockTable).
        self.wait_hist = None
        self.tracer = tracer_of(sim)
        #: node label for lock-wait spans, installed by the owning
        #: TransactionManager (None for bare unit-test tables).
        self.node_name: Optional[str] = None

    # -- internals ----------------------------------------------------------
    def _lock_for(self, key: bytes, create: bool = True) -> Optional[_KeyLock]:
        shard = self._tables[hash(key) % self.shards]
        state = shard.get(key)
        if state is None and create:
            state = _KeyLock()
            shard[key] = state
        return state

    def _gc(self, key: bytes) -> None:
        shard = self._tables[hash(key) % self.shards]
        state = shard.get(key)
        if state is not None and state.is_free():
            del shard[key]

    def _wake_waiters(self, state: _KeyLock) -> None:
        while state.waiters:
            txn_id, mode, key, event = state.waiters[0]
            if event.triggered:  # abandoned (timed out)
                state.waiters.pop(0)
                continue
            if not state.compatible(txn_id, mode):
                break
            state.waiters.pop(0)
            state.grant(txn_id, mode)
            self._held[txn_id][key] = mode
            event.succeed(mode)
            if mode == LockMode.EXCLUSIVE:
                break

    # -- public API -----------------------------------------------------------
    def holds(self, txn_id: bytes, key: bytes, mode: Optional[str] = None) -> bool:
        held_mode = self._held.get(txn_id, {}).get(key)
        if held_mode is None:
            return False
        if mode is None:
            return True
        if mode == LockMode.SHARED:
            return True  # W covers R
        return held_mode == LockMode.EXCLUSIVE

    def acquire(
        self, txn_id: bytes, key: bytes, mode: str, timeout: Optional[float] = None
    ) -> Gen:
        """Acquire ``key`` in ``mode`` for ``txn_id`` or raise LockTimeout."""
        if self.holds(txn_id, key, mode):
            return
        state = self._lock_for(key)
        upgrade = (
            mode == LockMode.EXCLUSIVE
            and txn_id in state.owners
            and state.mode == LockMode.SHARED
        )
        if upgrade and state.owners == {txn_id}:
            state.mode = LockMode.EXCLUSIVE
            self._held[txn_id][key] = mode
            self.acquisitions += 1
            return
        if not upgrade and state.compatible(txn_id, mode):
            state.grant(txn_id, mode)
            self._held[txn_id][key] = mode
            self.acquisitions += 1
            return
        # Must wait (possibly for other readers to drain on an upgrade).
        wait_start = self.sim.now
        span = self.tracer.span(
            "locks", "wait", node=self.node_name, mode=mode,
        )
        grant = self.sim.event()
        state.waiters.append((txn_id, mode, key, grant))
        deadline = self.sim.timeout(self.timeout if timeout is None else timeout)
        yield self.sim.any_of([grant, deadline])
        span.close(granted=grant.triggered)
        if self.wait_hist is not None:
            self.wait_hist.observe(self.sim.now - wait_start)
        if not grant.triggered:
            # Timed out: withdraw the waiter entry.
            state.waiters[:] = [w for w in state.waiters if w[3] is not grant]
            grant.succeed(None)  # poison so a late wake-up is skipped
            self._gc(key)
            self.timeouts += 1
            raise LockTimeout(key)
        self.acquisitions += 1

    def release_all(self, txn_id: bytes) -> None:
        """Release every lock ``txn_id`` holds (commit or abort, §IV-A)."""
        held = self._held.pop(txn_id, None)
        if not held:
            return
        for key in held:
            state = self._lock_for(key, create=False)
            if state is None:
                continue
            state.owners.discard(txn_id)
            if not state.owners:
                state.mode = None
            self._wake_waiters(state)
            self._gc(key)

    def held_keys(self, txn_id: bytes) -> List[bytes]:
        return list(self._held.get(txn_id, ()))

    def total_locked_keys(self) -> int:
        return sum(len(shard) for shard in self._tables)
