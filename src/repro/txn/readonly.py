"""Coordinator-free snapshot read-only transactions.

A client transaction opened in read-only mode never touches a
coordinator: each GET is routed to the owner node's front end, executes
against that node's storage snapshot with no locks, and the client
commits by asking every contacted node to certify its own slice of the
read-set.  Certification is local:

1. *Validate* — every key's current sequence number must still equal the
   version this transaction observed.  If node ``n`` validates at time
   ``t_n``, its reads were simultaneously current at ``t_n``; taking
   ``t* = min(t_n)`` over all contacted nodes, **every** read was
   current at ``t*`` (each node's reads are unchanged from observation
   through its own ``t_n ≥ t*``), so the transaction serializes at
   ``t*`` with no cross-node coordination.
2. *Freshness* — the observed seqs must sit under the stabilized counter
   frontier (:class:`~repro.core.stabilization.FreshnessWitness`), or
   the node could be certifying state a rollback attack later denies.  A
   fresh snapshot commits with **zero** 2PC/coordinator rounds
   (``txn.readonly.local``); a stale one joins the covering
   stabilization round already in flight for concurrent writers
   (``txn.readonly.upgraded``) — it waits, it is never wrong.

Scans stay read-committed, exactly like every other transaction flavour
in this codebase (see :meth:`LocalTransaction.scan`).
"""

from __future__ import annotations

from typing import Any, Generator

from ..errors import ConflictError, TransactionError
from ..sim.core import Event
from .base import LocalTransaction
from .types import TxnStatus

__all__ = ["ReadOnlySnapshotTxn"]

Gen = Generator[Event, Any, Any]


class ReadOnlySnapshotTxn(LocalTransaction):
    """One node's slice of a coordinator-free read-only transaction."""

    def _write(self, key, value) -> Gen:
        raise TransactionError("read-only transaction cannot write")
        yield  # pragma: no cover

    def commit(self) -> Gen:
        """Certify this node's read slice; zero coordinator rounds.

        Raises :class:`~repro.errors.ConflictError` if any read is no
        longer current (the client retries the transaction).
        """
        self._check_active()
        metrics = self.runtime.metrics
        max_seq = 0
        for key, observed_seq in self.reads.items():
            current = yield from self.engine.seq_of(key)
            if current != observed_seq:
                metrics.counter("txn.readonly.conflicts").inc()
                yield from self.rollback()
                raise ConflictError(key)
            max_seq = max(max_seq, observed_seq)
        self._finalize(TxnStatus.COMMITTED)
        witness = (
            self.manager.pipeline.witness
            if self.manager.pipeline is not None
            else None
        )
        if witness is None or witness.covers(max_seq):
            metrics.counter("txn.readonly.local").inc()
            return 0
        # Stale snapshot: wait out the covering stabilization round (it
        # is already in flight for the writers that produced these seqs)
        # before acking — never certify state that could be rolled back.
        metrics.counter("txn.readonly.upgraded").inc()
        yield from witness.wait_cover(max_seq)
        return 0
