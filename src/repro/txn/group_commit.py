"""Leader-based group commit (§VII-B).

"We allow group commits for Txs to flush bigger data blocks to the
persistent storage and optimize the SSD throughput.  Each group elects a
leader that merges their and all followers' Txs buffers into a larger
buffer.  The leader then writes this buffer into WAL and MemTable."

A commit request enters the queue; whichever fiber finds no active
leader becomes the leader, waits out the commit window (adaptive by
default: a bounded multiple of the observed submit arrival gap, so a
burst is collected without penalizing an idle node), drains up to
``max_group`` requests (its own included), performs optional OCC
validation, assigns sequence numbers, writes one batched WAL record set,
applies everything to the MemTable and wakes each follower with its
outcome.  Validation + sequence assignment + MemTable application happen
inside the leader's critical section, which is what makes OCC validation
atomic.

When a :class:`~repro.core.pipeline.DurabilityPipeline` is attached, the
leader also submits the batch's stabilization as *one* request — every
member that asked to wait for rollback protection shares a single event
driven by one counter wait on the batch's highest WAL counter, instead
of N per-transaction gate waits racing the round driver.  The shared
wait runs in a background fiber so the leader can drain the next batch
while the ~2 ms counter round is in flight.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Tuple

from ..errors import ConflictError, TransactionAborted
from ..sim.core import Event
from ..storage.engine import LSMEngine
from ..tee.runtime import NodeRuntime

__all__ = ["CommitRequest", "GroupCommitter"]

Gen = Generator[Event, Any, Any]

# Validation callback: runs inside the leader's critical section, raises
# ConflictError to veto the commit.  It is a generator (it may read the
# engine to compare versions).
Validator = Callable[[], Generator[Event, Any, None]]

#: smoothing factor for the submit inter-arrival EWMA.
_GAP_ALPHA = 0.2
#: the adaptive window waits this multiple of the mean arrival gap.
_GAP_MULTIPLE = 4.0
#: smoothing factor for the observed batch-stabilization-wait EWMA.
_STAB_ALPHA = 0.2
#: the adaptive window is also floored at this fraction of the observed
#: stabilization wait: when rollback protection costs ~2 ms anyway,
#: holding the batch open a little longer is nearly free and each extra
#: member amortizes one more counter round (ROADMAP: feed observed
#: ``stabilize.wait_s`` into the EWMA, not just arrival gaps).
_STAB_FRACTION = 0.1

#: bucket edges for the ``group_commit.batch_size`` histogram.
_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


class CommitRequest:
    """One transaction's commit submission."""

    __slots__ = ("txn_id", "writes", "validator", "outcome", "wait_stable")

    def __init__(
        self,
        txn_id: bytes,
        writes: List[Tuple[bytes, Optional[bytes]]],
        validator: Optional[Validator],
        outcome: Event,
        wait_stable: bool = False,
    ):
        self.txn_id = txn_id
        self.writes = writes
        self.validator = validator
        self.outcome = outcome
        self.wait_stable = wait_stable


class GroupCommitter:
    """Batches commit requests into single WAL writes."""

    def __init__(
        self,
        runtime: NodeRuntime,
        engine: LSMEngine,
        max_group: int = 16,
        window: Optional[float] = 0.0,
        window_cap: float = 4.0e-4,
        pipeline=None,
    ):
        self.runtime = runtime
        self.engine = engine
        self.max_group = max_group
        #: ``None`` = adaptive; ``0.0`` = immediate drain; >0 fixed wait.
        self.window = window
        self.window_cap = window_cap
        #: the owning DurabilityPipeline, if the node runs one.
        self.pipeline = pipeline
        self._queue: List[CommitRequest] = []
        self._leader_active = False
        self._last_submit: Optional[float] = None
        self._gap_ewma: Optional[float] = None
        self._stab_ewma: Optional[float] = None
        self.groups_formed = 0
        self.committed = 0
        self._batch_hist = runtime.metrics.histogram(
            "group_commit.batch_size", edges=_BATCH_BUCKETS
        )
        #: batch occupancy = admitted / max_group, one observation per
        #: batch: how full groups run under the current window policy.
        self._occupancy_hist = runtime.metrics.histogram(
            "group_commit.occupancy",
            edges=(0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0),
        )
        runtime.metrics.probe(
            "group_commit.queue_depth", lambda: len(self._queue)
        )

    # -- window -------------------------------------------------------------
    def _observe_arrival(self) -> None:
        now = self.runtime.now
        if self._last_submit is not None:
            gap = now - self._last_submit
            if self._gap_ewma is None:
                self._gap_ewma = gap
            else:
                self._gap_ewma += _GAP_ALPHA * (gap - self._gap_ewma)
        self._last_submit = now

    def window_delay(self) -> float:
        """How long the new leader should wait for followers to join."""
        if len(self._queue) >= self.max_group:
            return 0.0
        if self.window is not None:
            return self.window
        if self._gap_ewma is None:
            # No arrival history yet: drain immediately (idle node).
            return 0.0
        delay = self._gap_ewma * _GAP_MULTIPLE
        if self._stab_ewma is not None:
            delay = max(delay, self._stab_ewma * _STAB_FRACTION)
        return min(self.window_cap, delay)

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        txn_id: bytes,
        writes: List[Tuple[bytes, Optional[bytes]]],
        validator: Optional[Validator] = None,
        wait_stable: bool = False,
    ) -> Gen:
        """Commit ``writes`` durably.

        Returns ``(counter, log_name, stable_event)``: the WAL counter
        value, the WAL's log name, and — iff ``wait_stable`` was set and
        a durability pipeline is attached — the batch's shared
        stabilization event (``None`` otherwise; the caller falls back
        to its own per-transaction stabilization).  The outcome fires as
        soon as the batch's WAL write is durable, so callers can release
        locks *before* waiting out rollback protection (§VIII-C).

        Raises :class:`ConflictError` if the validator vetoes.
        """
        self._observe_arrival()
        # Covers queue wait + window + WAL write up to the outcome — the
        # "group-commit wait" slice of the critical-path breakdown.
        span = self.runtime.tracer.span(
            "storage", "group_commit", node=self.runtime.name or None,
        )
        try:
            outcome = self.runtime.sim.event()
            self._queue.append(
                CommitRequest(txn_id, writes, validator, outcome, wait_stable)
            )
            if not self._leader_active:
                self._leader_active = True
                # This fiber becomes the leader and drives the batch;
                # "defer logging (yield) at commit" lets more requests join.
                yield self.runtime.sim.timeout(self.window_delay())
                yield from self._lead()
            result = yield outcome
        except BaseException as exc:
            span.close(error=type(exc).__name__)
            raise
        span.close()
        return result

    def _lead(self) -> Gen:
        try:
            while self._queue:
                batch = self._queue[: self.max_group]
                del self._queue[: len(batch)]
                yield from self._process(batch)
                self.groups_formed += 1
        finally:
            self._leader_active = False

    def _process(self, batch: List[CommitRequest]) -> Gen:
        # Validate -> sequence -> apply, one request at a time, so each
        # validation observes the writes of earlier batch members (an
        # OCC transaction must conflict with a same-batch writer too).
        admitted: List[CommitRequest] = []
        records = []
        for request in batch:
            if request.validator is not None:
                try:
                    yield from request.validator()
                except TransactionAborted as conflict:
                    if not request.outcome.triggered:
                        request.outcome.fail(conflict)
                        # The submitter may not be waiting yet (the
                        # leader's own request fails before it yields);
                        # it picks the failure up at its `yield`.
                        request.outcome.defuse()
                    continue
            writes = [
                (key, value, self.engine.next_seq())
                for key, value in request.writes
            ]
            yield from self.engine.apply_writes(writes)
            admitted.append(request)
            records.append((request.txn_id, writes))
        if not admitted:
            return
        # One batched WAL write for the whole group; durability order
        # equals apply order because WAL appends are sequential, so a
        # crash can never persist a later batch without this one.
        counters = yield from self.engine.log_commits(records)
        log_name = self.engine.wal_log_name
        self._batch_hist.observe(len(admitted))
        self._occupancy_hist.observe(len(admitted) / self.max_group)
        if self.pipeline is not None:
            # Seqs were assigned in batch order before the WAL counters,
            # and batches are serialized by the leader critical section,
            # so this watermark is monotone in both coordinates — the
            # freshness witness for coordinator-free snapshot reads.
            seqs = [seq for _, writes in records for _, _, seq in writes]
            if seqs:
                self.pipeline.witness.record(
                    log_name, max(counters), max(seqs)
                )
        stable_event = None
        if self.pipeline is not None and self.pipeline.enabled:
            top = max(
                (counter for request, counter in zip(admitted, counters)
                 if request.wait_stable),
                default=0,
            )
            if top > 0:
                stable_event = self.runtime.sim.event()
                self._spawn_batch_stabilize(log_name, top, stable_event)
        for request, counter in zip(admitted, counters):
            self.committed += 1
            if not request.outcome.triggered:
                request.outcome.succeed((
                    counter,
                    log_name,
                    stable_event if request.wait_stable else None,
                ))

    def _spawn_batch_stabilize(
        self, log_name: str, counter: int, stable_event: Event
    ) -> None:
        """One stabilization request for the whole batch, off the
        leader's critical path (the next batch must not queue behind the
        ~2 ms counter round)."""

        def run() -> Gen:
            start = self.runtime.now
            try:
                yield from self.pipeline.stabilize(log_name, counter)
            except BaseException as exc:  # noqa: BLE001 - modelled fault
                stable_event.fail(exc)
                stable_event.defuse()
                return
            wait = self.runtime.now - start
            if self._stab_ewma is None:
                self._stab_ewma = wait
            else:
                self._stab_ewma += _STAB_ALPHA * (wait - self._stab_ewma)
            stable_event.succeed(True)

        self.runtime.sim.process(
            run(), name="gc-stabilize/%s" % log_name
        )
