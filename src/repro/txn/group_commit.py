"""Leader-based group commit (§VII-B).

"We allow group commits for Txs to flush bigger data blocks to the
persistent storage and optimize the SSD throughput.  Each group elects a
leader that merges their and all followers' Txs buffers into a larger
buffer.  The leader then writes this buffer into WAL and MemTable."

A commit request enters the queue; whichever fiber finds no active
leader becomes the leader, drains up to ``max_group`` requests (its own
included), performs optional OCC validation, assigns sequence numbers,
writes one batched WAL record set, applies everything to the MemTable
and wakes each follower with its outcome.  Validation + sequence
assignment + MemTable application happen inside the leader's critical
section, which is what makes OCC validation atomic.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Tuple

from ..errors import ConflictError, TransactionAborted
from ..sim.core import Event
from ..storage.engine import LSMEngine
from ..tee.runtime import NodeRuntime

__all__ = ["CommitRequest", "GroupCommitter"]

Gen = Generator[Event, Any, Any]

# Validation callback: runs inside the leader's critical section, raises
# ConflictError to veto the commit.  It is a generator (it may read the
# engine to compare versions).
Validator = Callable[[], Generator[Event, Any, None]]


class CommitRequest:
    """One transaction's commit submission."""

    __slots__ = ("txn_id", "writes", "validator", "outcome")

    def __init__(
        self,
        txn_id: bytes,
        writes: List[Tuple[bytes, Optional[bytes]]],
        validator: Optional[Validator],
        outcome: Event,
    ):
        self.txn_id = txn_id
        self.writes = writes
        self.validator = validator
        self.outcome = outcome


class GroupCommitter:
    """Batches commit requests into single WAL writes."""

    def __init__(self, runtime: NodeRuntime, engine: LSMEngine, max_group: int = 16):
        self.runtime = runtime
        self.engine = engine
        self.max_group = max_group
        self._queue: List[CommitRequest] = []
        self._leader_active = False
        self.groups_formed = 0
        self.committed = 0

    def submit(
        self,
        txn_id: bytes,
        writes: List[Tuple[bytes, Optional[bytes]]],
        validator: Optional[Validator] = None,
    ) -> Gen:
        """Commit ``writes`` durably; returns the WAL counter value.

        Raises :class:`ConflictError` if the validator vetoes.
        """
        outcome = self.runtime.sim.event()
        self._queue.append(CommitRequest(txn_id, writes, validator, outcome))
        if not self._leader_active:
            self._leader_active = True
            # This fiber becomes the leader and drives the batch;
            # "defer logging (yield) at commit" lets more requests join.
            yield self.runtime.sim.timeout(0)
            yield from self._lead()
        result = yield outcome
        return result

    def _lead(self) -> Gen:
        try:
            while self._queue:
                batch = self._queue[: self.max_group]
                del self._queue[: len(batch)]
                yield from self._process(batch)
                self.groups_formed += 1
        finally:
            self._leader_active = False

    def _process(self, batch: List[CommitRequest]) -> Gen:
        # Validate -> sequence -> apply, one request at a time, so each
        # validation observes the writes of earlier batch members (an
        # OCC transaction must conflict with a same-batch writer too).
        admitted: List[CommitRequest] = []
        records = []
        for request in batch:
            if request.validator is not None:
                try:
                    yield from request.validator()
                except TransactionAborted as conflict:
                    if not request.outcome.triggered:
                        request.outcome.fail(conflict)
                        # The submitter may not be waiting yet (the
                        # leader's own request fails before it yields);
                        # it picks the failure up at its `yield`.
                        request.outcome.defuse()
                    continue
            writes = [
                (key, value, self.engine.next_seq())
                for key, value in request.writes
            ]
            yield from self.engine.apply_writes(writes)
            admitted.append(request)
            records.append((request.txn_id, writes))
        if not admitted:
            return
        # One batched WAL write for the whole group; durability order
        # equals apply order because WAL appends are sequential, so a
        # crash can never persist a later batch without this one.
        counters = yield from self.engine.log_commits(records)
        log_name = self.engine.wal_log_name
        for request, counter in zip(admitted, counters):
            self.committed += 1
            if not request.outcome.triggered:
                request.outcome.succeed((counter, log_name))
