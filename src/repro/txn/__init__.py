"""Single-node transaction layer: locks, 2PL/OCC transactions, group commit."""

from .base import LocalTransaction
from .group_commit import GroupCommitter
from .locks import LockMode, LockTable
from .manager import TransactionManager
from .optimistic import OptimisticTxn
from .pessimistic import PessimisticTxn
from .types import ReadSet, TxnBuffer, TxnStatus

__all__ = [
    "GroupCommitter",
    "LocalTransaction",
    "LockMode",
    "LockTable",
    "OptimisticTxn",
    "PessimisticTxn",
    "ReadSet",
    "TransactionManager",
    "TxnBuffer",
    "TxnStatus",
]
