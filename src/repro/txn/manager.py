"""Per-node transaction manager: the Tx KV engine of Figure 1.

Glues together the storage engine, the sharded lock table, the group
committer and the stabilization hook, and hands out transaction handles
(``BEGINTXN``).  The 2PC layer (:mod:`repro.core.twopc`) drives its
participant-local transactions through this same manager.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Optional

from ..config import ClusterConfig
from ..sim.core import Event
from ..storage.engine import LSMEngine
from ..tee.runtime import NodeRuntime
from .group_commit import GroupCommitter
from .locks import LockTable
from .optimistic import DistributedOccTxn, OptimisticTxn
from .pessimistic import PessimisticTxn
from .readonly import ReadOnlySnapshotTxn

__all__ = ["TransactionManager"]

Gen = Generator[Event, Any, Any]

Stabilizer = Callable[[str, int], Generator[Event, Any, None]]


class TransactionManager:
    """Single-node transactional KV engine (pessimistic + optimistic)."""

    def __init__(
        self,
        runtime: NodeRuntime,
        engine: LSMEngine,
        config: ClusterConfig,
        stabilizer: Optional[Stabilizer] = None,
        name: str = "node0",
        pipeline=None,
    ):
        self.runtime = runtime
        self.engine = engine
        self.config = config
        self.name = name
        self.locks = LockTable(
            runtime.sim, shards=config.lock_shards, timeout=config.lock_timeout
        )
        self.locks.wait_hist = runtime.metrics.histogram("locks.wait_s")
        self.locks.node_name = runtime.name or name
        runtime.metrics.probe("locks.timeouts", lambda: self.locks.timeouts)
        runtime.metrics.probe(
            "locks.acquisitions", lambda: self.locks.acquisitions
        )
        #: the node's DurabilityPipeline, when it runs one — the group
        #: committer is then built by (and bound to) the pipeline so the
        #: batch's stabilization is scheduled as one request.
        self.pipeline = pipeline
        if pipeline is not None:
            self.group = pipeline.attach_engine(engine)
            if stabilizer is None:
                stabilizer = pipeline.stabilizer
        else:
            # Standalone mode (unit tests of lower layers): no pipeline,
            # per-transaction stabilization via the injected hook.
            self.group = GroupCommitter(
                runtime,
                engine,
                max_group=config.group_commit_max,
                window=config.group_commit_window,
                window_cap=config.group_commit_window_cap,
            )
        self.lock_timeout = config.lock_timeout
        self._stabilizer = stabilizer
        self._txn_seq = itertools.count(1)
        self.begun = 0

    # -- transaction creation ---------------------------------------------------
    def _next_txn_id(self, prefix: str) -> bytes:
        return ("%s:%s:%d" % (self.name, prefix, next(self._txn_seq))).encode()

    def begin_pessimistic(self, txn_id: Optional[bytes] = None) -> PessimisticTxn:
        """BEGINTXN with two-phase locking."""
        self.begun += 1
        return PessimisticTxn(self, txn_id or self._next_txn_id("p"))

    def begin_optimistic(self, txn_id: Optional[bytes] = None) -> OptimisticTxn:
        """BEGINTXN with optimistic concurrency control."""
        self.begun += 1
        return OptimisticTxn(self, txn_id or self._next_txn_id("o"))

    def begin_occ_distributed(
        self, txn_id: Optional[bytes] = None
    ) -> DistributedOccTxn:
        """Participant-local half of a distributed OCC transaction."""
        self.begun += 1
        return DistributedOccTxn(self, txn_id or self._next_txn_id("do"))

    def begin_readonly(
        self, txn_id: Optional[bytes] = None
    ) -> ReadOnlySnapshotTxn:
        """One node's slice of a coordinator-free read-only transaction."""
        self.begun += 1
        return ReadOnlySnapshotTxn(self, txn_id or self._next_txn_id("ro"))

    # -- stabilization hook --------------------------------------------------------
    def stabilize(self, log_name: str, counter: int) -> Gen:
        """Wait until ``(log, counter)`` is rollback-protected.

        No-op when the profile runs without stabilization, or when no
        trusted counter service is wired (unit tests of lower layers).
        """
        if counter == 0:
            return
        if self._stabilizer is None or not self.runtime.profile.stabilization:
            return
        yield from self._stabilizer(log_name, counter)

    def set_stabilizer(self, stabilizer: Optional[Stabilizer]) -> None:
        self._stabilizer = stabilizer
