"""Pessimistic (two-phase-locking) transactions (§II-A, §V-B).

"Pessimistic Txs acquire locks as they go along (two-phase locking)."
Reads take shared locks, writes exclusive locks; a lock that cannot be
granted within the configured timeframe aborts the transaction with a
timeout error, which also breaks deadlocks.

Pessimistic transactions additionally expose the participant half of the
2PC protocol: :meth:`prepare` persists the transaction's writes to the
WAL as a prepare record (recoverable across crashes), after which only
:meth:`commit_prepared` or :meth:`abort_prepared` may resolve it.
"""

from __future__ import annotations

from typing import Any, Generator

from ..errors import TransactionError
from ..sim.core import Event
from .base import LocalTransaction
from .locks import LockMode
from .types import TxnStatus

__all__ = ["PessimisticTxn"]

Gen = Generator[Event, Any, Any]


class PessimisticTxn(LocalTransaction):
    """A 2PL transaction over one node's storage engine."""

    def _before_read(self, key: bytes) -> Gen:
        yield from self.manager.locks.acquire(
            self.txn_id, key, LockMode.SHARED, timeout=self.manager.lock_timeout
        )

    def _before_write(self, key: bytes) -> Gen:
        yield from self.manager.locks.acquire(
            self.txn_id, key, LockMode.EXCLUSIVE, timeout=self.manager.lock_timeout
        )

    # -- 2PC participant half (§V-A) -----------------------------------------
    def prepare(self) -> Gen:
        """Persist the prepare record; returns ``(counter, log_name)``.

        After this returns the transaction survives crashes: recovery
        re-initializes it from the WAL and resolves it with the
        coordinator (§VI).  Locks stay held until resolution.
        """
        self._check_active()
        writes = [(key, value, 0) for key, value in self.buffer.items()]
        counter, log_name = yield from self.engine.log_prepare(
            self.txn_id, writes
        )
        self.status = TxnStatus.PREPARED
        return counter, log_name

    def commit_prepared(self) -> Gen:
        """Resolve a prepared transaction as committed."""
        if self.status != TxnStatus.PREPARED:
            raise TransactionError(
                "commit_prepared on %s transaction" % self.status
            )
        writes = self.buffer.items()
        self.engine.forget_prepared(self.txn_id)
        counter, log_name, stable_event = yield from self.manager.group.submit(
            self.txn_id, writes, None, wait_stable=True
        )
        self.wal_counter = counter
        self._finalize(TxnStatus.COMMITTED)
        if stable_event is not None:
            yield stable_event
        else:
            yield from self.manager.stabilize(log_name, counter)
        return counter

    def commit_prepared_async(self, defer_stabilization: bool = False) -> Gen:
        """Resolve a prepared transaction as committed, without waiting
        for the commit record's stabilization.

        §V-A: "We do not need to wait for the commit entry to be stable
        to reply to the client" — the (already stable) prepare record and
        coordinator decision guarantee deterministic re-commit after a
        crash.  Stabilization still proceeds in the background, unless
        ``defer_stabilization`` is set: then no local fiber is spawned
        and ``(counter, log_name)`` is returned so the caller can
        piggyback the target on a 2PC ACK for the coordinator's
        group-wide round.
        """
        if self.status != TxnStatus.PREPARED:
            raise TransactionError(
                "commit_prepared_async on %s transaction" % self.status
            )
        writes = self.buffer.items()
        self.engine.forget_prepared(self.txn_id)
        # wait_stable=False: the commit record needs no rollback
        # protection before the client reply, so this request must not
        # join the batch's shared stabilization wait either.
        counter, log_name, _ = yield from self.manager.group.submit(
            self.txn_id, writes, None, wait_stable=False
        )
        self.wal_counter = counter
        self._finalize(TxnStatus.COMMITTED)
        if defer_stabilization:
            return counter, log_name

        def background_stabilize():
            yield from self.manager.stabilize(log_name, counter)

        self.runtime.sim.process(background_stabilize(), name="bg-stabilize")
        return counter

    def abort_prepared(self) -> Gen:
        """Resolve a prepared transaction as aborted."""
        if self.status != TxnStatus.PREPARED:
            raise TransactionError("abort_prepared on %s transaction" % self.status)
        self.engine.forget_prepared(self.txn_id)
        yield from self.runtime.op_overhead()
        self._finalize(TxnStatus.ABORTED)
