"""Environment profiles and the calibrated cost model.

The paper evaluates points in a three-axis space — runtime (native vs
SCONE/SGX), encryption (on/off) and stabilization (on/off).  An
:class:`EnvProfile` names one point; :class:`CostModel` holds every
latency/bandwidth constant the simulation charges, with the sources used
for calibration noted inline.

All times are in seconds of *simulated* time.  Absolute values matter
less than ratios: EXPERIMENTS.md compares relative overheads against the
paper, which is also how the paper reports its results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

__all__ = [
    "Runtime",
    "EnvProfile",
    "CostModel",
    "ClusterConfig",
    "PROFILES",
    "DS_ROCKSDB",
    "NATIVE_TREATY",
    "NATIVE_TREATY_ENC",
    "TREATY_NO_ENC",
    "TREATY_ENC",
    "TREATY_FULL",
]


class Runtime:
    """Execution runtime for a node's software stack."""

    NATIVE = "native"
    SCONE = "scone"  # SGX enclave via the SCONE libOS


@dataclass(frozen=True)
class EnvProfile:
    """One evaluated system configuration (a bar in the paper's figures)."""

    name: str
    runtime: str = Runtime.NATIVE
    encryption: bool = False
    stabilization: bool = False

    @property
    def in_enclave(self) -> bool:
        return self.runtime == Runtime.SCONE

    def describe(self) -> str:
        parts = ["SCONE" if self.in_enclave else "native"]
        parts.append("w/ Enc" if self.encryption else "w/o Enc")
        if self.stabilization:
            parts.append("w/ Stab")
        return " ".join(parts)


# The six systems of Figures 6/7 (single-node) and the distributed
# baselines of Figures 3/5.  DS-RocksDB and Native Treaty share a profile
# shape (native, no crypto) but are kept distinct for reporting.
DS_ROCKSDB = EnvProfile("DS-RocksDB")
NATIVE_TREATY = EnvProfile("Native Treaty")
NATIVE_TREATY_ENC = EnvProfile("Native Treaty w/ Enc", encryption=True)
TREATY_NO_ENC = EnvProfile("Treaty w/o Enc", runtime=Runtime.SCONE)
TREATY_ENC = EnvProfile("Treaty w/ Enc", runtime=Runtime.SCONE, encryption=True)
TREATY_FULL = EnvProfile(
    "Treaty w/ Enc w/ Stab",
    runtime=Runtime.SCONE,
    encryption=True,
    stabilization=True,
)

PROFILES: Dict[str, EnvProfile] = {
    profile.name: profile
    for profile in (
        DS_ROCKSDB,
        NATIVE_TREATY,
        NATIVE_TREATY_ENC,
        TREATY_NO_ENC,
        TREATY_ENC,
        TREATY_FULL,
    )
}


@dataclass(frozen=True)
class CostModel:
    """Every latency / bandwidth constant charged by the simulation.

    Calibration anchors (paper §VIII): standalone secure 2PC ≈ 2× native;
    encryption ≤ 1.4× on top of SCONE; distributed Txs 6–15× vs
    DS-RocksDB; single-node 2–5×; recovery 1.5× / 2×; ROTE counter ≈ 2 ms.
    """

    # --- CPU ---------------------------------------------------------------
    cpu_ghz: float = 3.6  # i9-9900K base clock (testbed, §VIII-A)
    #: multiplicative slowdown of CPU work inside the enclave (MEE +
    #: SCONE shielding); SPEICHER reports 1.1–1.4x for compute phases.
    enclave_speed_factor: float = 0.78
    #: request-handler bookkeeping per KV operation (parse, dispatch).
    op_base_cpu: float = 1.2e-6
    #: skip-list insert + record bookkeeping per MemTable write.
    memtable_insert_cpu: float = 0.5e-6
    #: per-record CPU during log replay at recovery (parse, validate,
    #: rebuild in-memory indexes); small entries make this dominate,
    #: which is exactly the paper's worst case for Table I.
    recovery_record_cpu: float = 2.5e-6
    #: per-byte cost of moving/copying a payload through the stack.
    copy_per_byte: float = 0.12e-9

    # --- syscalls / enclave transitions --------------------------------------
    syscall_native: float = 0.9e-6  # getpid-style + ctx switch amortized
    #: per-byte kernel copy on the native syscall path.
    syscall_native_per_byte: float = 0.1e-9
    #: SCONE async syscall: no world switch but queueing + helper thread.
    syscall_scone: float = 3.2e-6
    #: the two extra shielded copies (enclave<->host<->kernel, §IV-B#2),
    #: per byte per copy.
    syscall_scone_per_byte: float = 2.0e-9
    #: full enclave world switch (EENTER/EEXIT + TLB flush), used by
    #: naive OCALL paths that Treaty engineers away (e.g. rdtsc removal).
    world_switch: float = 4.0e-6

    # --- EPC paging ---------------------------------------------------------
    epc_bytes: int = 94 * 1024 * 1024  # SGXv1 usable EPC (§II-B)
    page_bytes: int = 4096
    #: cost of evicting+loading one EPC page (encrypt, integrity, exit).
    epc_page_fault: float = 11.0e-6

    # --- cryptography ---------------------------------------------------------
    #: AEAD (AES-GCM-like) throughput, per byte, native.
    encrypt_per_byte: float = 0.45e-9
    #: fixed per-operation cost (key schedule, IV handling, tag finalize).
    encrypt_setup: float = 0.4e-6
    #: SHA-256 hashing per byte (SSTable footers, log chains).
    hash_per_byte: float = 0.30e-9
    hash_setup: float = 0.15e-6
    #: signature create/verify (attestation; simulated ECDSA).
    signature_op: float = 45.0e-6

    # --- cluster fabric (40 GbE QSFP+, §VIII-A) ------------------------------
    net_bandwidth: float = 40e9 / 8  # bytes/second
    net_propagation: float = 2.0e-6  # one-way wire+switch latency
    net_mtu: int = 1460  # payload bytes per Ethernet frame
    #: per-frame NIC/driver/RPC-layer cost with kernel-bypass polling
    #: (eRPC/DPDK).  Calibrated so eRPC trails iPerf-TCP by ~20–30 % at
    #: small/medium sizes and matches it at >= MTU (Figure 8).
    nic_frame_cost: float = 0.9e-6
    #: per-packet kernel network-stack cost (TCP/UDP path, native).
    kernel_packet_cost: float = 1.4e-6
    #: TCP benefits from segmentation offload: per-packet kernel work is
    #: discounted for bulk sends ("TCP/IP stack processing is frequently
    #: offloaded to the network controller", §VIII-E).
    tcp_offload_factor: float = 0.35
    #: UDP gets no offload and pays per-datagram socket work; iPerf-UDP
    #: "performs poorly" across the board (§VIII-E).
    udp_packet_factor: float = 3.0
    #: SCONE shield copy for eRPC message buffers kept in host memory,
    #: per byte (staging between enclave and the DMA-able hugepages).
    scone_msgbuf_copy_per_byte: float = 1.2e-9
    #: fixed per-message overhead of the shielded network path under
    #: SCONE (async-syscall queue interaction, shield checks) beyond the
    #: byte copies.
    scone_net_handling: float = 3.0e-6
    #: SCONE fiber-scheduling delay per *resume* of an enclave fiber that
    #: blocked on a cluster RPC, per concurrently open request (§VII-C
    #: motivates Treaty's userland scheduler with exactly this
    #: starvation/latency problem; it mitigates but does not remove it).
    #: This is the dominant term behind the paper's distributed-vs-
    #: single-node amplification: remote operations block mid-handler and
    #: pay the resume delay, local operations never do.
    scone_fiber_resume_quantum: float = 120e-6
    #: cap on the load counted toward the resume delay.
    scone_resume_load_cap: int = 64
    #: fixed wake-up latency for the fiber serving a newly arrived client
    #: request under SCONE with the storage engine loaded (same §VII-C
    #: scheduler path as the resume delay, but load-independent: the
    #: serving fiber was idle, not queued behind active peers).
    scone_request_dispatch: float = 100e-6

    # --- client access network (1 GbE secondary NIC) --------------------------
    client_bandwidth: float = 1e9 / 8
    client_propagation: float = 50.0e-6

    # --- storage (NVMe SSD via async syscalls, §V-A) ---------------------------
    ssd_write_latency: float = 28.0e-6
    ssd_read_latency: float = 80.0e-6
    ssd_bandwidth: float = 2.0e9  # bytes/second
    #: the paper notes reads hit the kernel page cache; charge RAM speed.
    page_cache_read_per_byte: float = 0.02e-9
    page_cache_hit_latency: float = 1.5e-6
    #: SPDK userspace driver: no syscalls, but every read goes to the
    #: device (no kernel page cache) — §V-A's reason for *not* using it.
    spdk_submit_cpu: float = 0.7e-6

    # --- trusted counters -------------------------------------------------------
    #: ROTE-style distributed counter stabilization latency (§VI: ~2 ms).
    rote_latency_mean: float = 2.0e-3
    rote_latency_jitter: float = 0.4e-3
    #: SGX hardware monotonic counter increment (§III: 60–250 ms).
    sgx_counter_increment: float = 0.10
    #: IAS round trip for remote attestation (§IV: "high latency").
    ias_round_trip: float = 0.35

    # --- derived helpers ---------------------------------------------------------
    def cycles(self, count: float) -> float:
        """Convert a cycle count to seconds at the modelled clock."""
        return count / (self.cpu_ghz * 1e9)

    def syscall_cost(self, in_enclave: bool, nbytes: int = 0) -> float:
        """Cost of one syscall moving ``nbytes`` of payload."""
        if in_enclave:
            return self.syscall_scone + nbytes * self.syscall_scone_per_byte * 2
        return self.syscall_native + nbytes * self.syscall_native_per_byte

    def aead_cost(self, nbytes: int) -> float:
        """Cost of one seal/open of an ``nbytes`` payload."""
        return self.encrypt_setup + nbytes * self.encrypt_per_byte

    def hash_cost(self, nbytes: int) -> float:
        return self.hash_setup + nbytes * self.hash_per_byte

    def ssd_write_cost(self, nbytes: int) -> float:
        return self.ssd_write_latency + nbytes / self.ssd_bandwidth

    def ssd_read_cost(self, nbytes: int, cached: bool = True) -> float:
        if cached:
            return self.page_cache_hit_latency + nbytes * self.page_cache_read_per_byte
        return self.ssd_read_latency + nbytes / self.ssd_bandwidth

    def wire_time(self, nbytes: int) -> float:
        """Serialization time of ``nbytes`` on the cluster fabric."""
        return nbytes / self.net_bandwidth

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy of this model with selected constants replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ClusterConfig:
    """Static deployment parameters (mirrors the paper's testbed)."""

    num_nodes: int = 3
    cores_per_node: int = 8
    memtable_limit_bytes: int = 8 * 1024 * 1024
    lock_shards: int = 256
    #: seconds before a lock wait aborts with a timeout error (§V-B).
    #: Also the deadlock-resolution latency, so it is kept roughly one
    #: order of magnitude above a contended transaction's latency.
    lock_timeout: float = 0.05
    counter_group_size: int = 3  # ROTE protection-group size
    counter_quorum: int = 2
    #: how long one counter round waits for stragglers beyond the quorum;
    #: a crashed group member must not wedge the protocol (§VI).
    counter_round_timeout: float = 0.05
    #: backoff between counter-round retries when the quorum is unreachable.
    counter_retry_backoff: float = 0.1
    #: retries before a stabilization request gives up (FreshnessError).
    counter_max_retries: int = 100
    #: batch stabilization targets for *different* logs (WAL + Clog) into
    #: one vectored echo-broadcast round (the durability pipeline's
    #: amortization).  False falls back to one round driver per log —
    #: the pre-pipeline baseline, kept for comparison benchmarks.
    counter_vectoring: bool = True
    #: rollback-protection backend (repro.core.rollback):
    #: ``"counter-sync"``  — every stabilization request drives (or joins)
    #: a synchronous two-round echo-broadcast and waits for the quorum
    #: CONFIRM (the original behaviour);
    #: ``"counter-async"`` — *coverage promises*: per-shard background
    #: drivers run batched rounds on their own cadence, waiters resolve
    #: at the round's echo quorum (the value is then held in a quorum's
    #: protected memory — the LCM argument), the CONFIRM leg completes in
    #: the background, and a per-shard lease arms a sync fallback when
    #: the driver is dead or partitioned;
    #: ``"lcm"``           — Lightweight-Collective-Memory style single
    #: round: the echo *is* the commit (replicas persist echoed values),
    #: no CONFIRM leg at all.
    rollback_backend: str = "counter-sync"
    #: independent counter groups ("shards") keyed by log-name hash.
    #: Each shard runs its own round pipeline, so disjoint logs stop
    #: serializing through one quorum round.  1 = the original single
    #: group.
    counter_shards: int = 1
    #: coverage-promise lease duration (counter-async/lcm): a successful
    #: echo quorum renews the shard's lease; a waiter whose promise
    #: outlives the lease runs one synchronous round itself.
    counter_lease_s: float = 0.02
    #: concurrent echo rounds in flight per shard (counter-async/lcm
    #: driver pipelining); 1 serializes rounds like the sync driver.
    counter_max_inflight: int = 4
    #: piggyback trusted-counter targets on 2PC messages: participants
    #: return their prepare-record target in the PREPARE-ACK instead of
    #: stabilizing it locally, and the coordinator folds every prepare
    #: target plus its own Clog decision target into one group-wide
    #: echo-broadcast round before instructing COMMIT (apply-side
    #: targets ride the COMMIT/ACK leg symmetrically).  False restores
    #: the per-node behaviour: each participant stabilizes its own
    #: prepare before ACKing and the coordinator stabilizes only its
    #: decision entry.
    twopc_piggyback: bool = True
    #: non-blocking commit (Fides/TFCommit-style transfer of commit): the
    #: coordinator broadcasts its commit/abort decision record to every
    #: participant in the same instant as the piggybacked group
    #: stabilization round (transport batching seals both into one frame)
    #: and waits for a majority quorum of acknowledgements *before*
    #: answering the client.  A participant that holds a replicated
    #: decision — or times out waiting on a dead coordinator — assumes
    #: the completer role and drives COMMIT/abort application, fencing
    #: and lock release for the whole group itself.  False restores the
    #: classic blocking 2PC: participants stay in doubt until the
    #: coordinator (or its recovery) resolves them.
    commit_replication: bool = True
    #: how long a prepared participant waits for the coordinator's
    #: decision before starting completer takeover (plus a deterministic
    #: per-node jitter so simultaneous timeouts de-synchronize).  Kept
    #: above the prepare vote timeout so a slow-but-alive coordinator
    #: never races its own participants.
    decision_timeout_s: float = 3.0
    #: distributed OCC (§II-A, §V-B extended across nodes): client
    #: transactions opened with the OPTIMISTIC flag execute entirely
    #: lock-free — reads are stateless versioned snapshots, writes are
    #: buffered at the coordinator — and the PREPARE message carries each
    #: participant's read-set versions and write-set.  Validation (and
    #: short no-wait version pinning) runs inside the participant's
    #: prepare critical section, riding the existing piggybacked group
    #: stabilization round; a conflict answers PREPARE with a NACK and
    #: presumed abort does the rest.  False restores the pre-extension
    #: behaviour: the OPTIMISTIC flag yields a single-node OCC
    #: transaction on the session's coordinator.
    occ_distributed: bool = True
    #: coordinator-free snapshot reads: client transactions opened in
    #: read-only mode are routed per key to the owner node's front end,
    #: execute against that node's storage snapshot, and commit without
    #: any 2PC/coordinator round — each contacted node revalidates its
    #: own read-set at commit and the stabilized counter frontier proves
    #: the snapshot's freshness window (read-set seqs ≤ stable frontier;
    #: a stale read waits out the covering round — never wrong results).
    #: False makes read-only client transactions take the normal
    #: coordinator path.
    read_only_snapshot: bool = True
    #: coalesce concurrent small messages to the same destination into
    #: one multi-message frame (eRPC TxBurst-style doorbell batching):
    #: one NIC/driver charge, one propagation and one header per batch,
    #: and — with encryption — one AEAD pass over the whole batch.
    #: False restores the one-frame-per-message baseline, kept for
    #: comparison benchmarks.
    net_batching: bool = True
    #: doorbell-batching window: how long a destination's TX queue waits
    #: for more messages to join before sealing the batch.  Calibrated
    #: to the NIC doorbell write-back (~2 us), well under the 2PC vote
    #: timeout and the counter round timeout.
    net_tx_batch_window: float = 2.0e-6
    #: upper bound on messages coalesced into one frame.
    net_tx_batch_max: int = 16
    group_commit_max: int = 16  # transactions merged per group commit
    #: how long a group-commit leader waits for followers to join before
    #: draining the batch.  ``None`` = adaptive (bounded wait keyed off
    #: the observed submit arrival gaps); ``0.0`` = the legacy immediate
    #: drain (yield once, take whatever joined); a positive value fixes
    #: the window.
    group_commit_window: Optional[float] = None
    #: upper bound on the adaptive group-commit window.
    group_commit_window_cap: float = 4.0e-4
    #: bounded-liveness horizon for the invariant monitor (I5): absent
    #: crashes, every prepare must reach a decision within this many
    #: simulated seconds.  Generous by design — it exists to catch stuck
    #: fibers, not slow ones (vote timeout + counter retries can
    #: legitimately take seconds under injected faults).
    monitor_liveness_timeout_s: float = 30.0
    block_bytes: int = 4096  # SSTable block size
    #: "lsm" = full persistent engine; "null" = in-memory stub used to
    #: isolate the 2PC protocol's overheads (Figure 4).
    storage_engine: str = "lsm"
    #: storage I/O mechanism: "syscall" (SCONE async syscalls + kernel
    #: page cache — Treaty's choice, §V-A) or "spdk" (SPEICHER's
    #: userspace direct I/O: no syscalls, but no page cache either).
    storage_io: str = "syscall"
    #: retain structured trace records (repro.obs) for export; off by
    #: default so hot paths stay on the null-tracer fast path.
    tracing: bool = False
    #: run the online 2PC invariant monitor (repro.obs.monitor) against
    #: the live event stream.  ``None`` defers to the process-wide
    #: default (``repro.obs.enable_monitor_by_default``, which the test
    #: suite turns on); True/False force it for this cluster.
    monitor: Optional[bool] = None
    #: always-on flight recorder (repro.obs.recorder): bounded trace
    #: ring + streaming tail estimate + p99 outlier exemplars.  Safe to
    #: leave on — memory is capped by ``trace_ring_spans``.
    flight_recorder: bool = False
    #: span-record cap for the flight recorder's ring buffer (FIFO
    #: eviction); 0 = unbounded.  Ignored when full ``tracing`` is on
    #: (explicit tracing keeps the complete buffer for export).
    trace_ring_spans: int = 50_000
    #: windowed time-series recorder (repro.obs.timeseries): per-window
    #: tps / abort / frame / seal rates and queue gauges.
    timeseries: bool = False
    #: time-series window width, simulated seconds.
    timeseries_window_s: float = 0.005
    #: structured incident detection (repro.obs.incidents): takeovers,
    #: lease-expiry fallbacks, OCC retry storms, lock convoys, stalls.
    incidents: bool = False
    #: quantile the flight recorder tracks for exemplar capture.
    tail_quantile: float = 0.99
    #: commits observed before exemplar capture arms (lets the streaming
    #: estimate settle so early txns aren't all "outliers").
    tail_warmup: int = 32
    #: max captured exemplars; the fastest is evicted first.
    max_exemplars: int = 16
    #: OCC conflicts within one time-series window that count as a
    #: retry storm.
    incident_occ_storm_conflicts: int = 20
    #: lock wait, simulated seconds, that counts as a convoy.
    incident_lock_convoy_s: float = 0.01
    seed: int = 2022
    costs: CostModel = field(default_factory=CostModel)
