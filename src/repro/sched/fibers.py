"""Userland fiber scheduler (§VII-C).

"Each thread spawns one userland thread (fiber) for each connected
client.  Our userland scheduler implements a per-core round-robin (RR)
algorithm for fibers' scheduling and a set of queues (run queue and
sleeping/waiting queue) for the fibers.  [...] Our userland scheduler
does not involve interrupts, syscalls and context/world switches when
scheduling another fiber.  [...] if no fiber is in a running state, our
scheduler sleeps; thereby invoking a syscall.  Our scheduler's sleep
function yields to another SCONE thread and increases the amount of time
before future yields are triggered."

Fibers are generators that yield *fiber operations*:

* ``Compute(seconds)`` — CPU work (charged through the node runtime),
* ``Sleep(seconds)``   — timed sleep (moves to the sleeping queue),
* ``YieldNow()``       — cooperative yield (back of the run queue),
* ``Wait(event)``      — block until a simulation event triggers.

Switching between fibers is free (no syscall, no world switch); only an
*idle* scheduler pays a syscall, with exponentially growing backoff —
both exactly as the paper describes.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Deque, Generator, List, Optional

from ..sim.core import Event
from ..tee.runtime import NodeRuntime

__all__ = ["Compute", "Sleep", "YieldNow", "Wait", "Fiber", "FiberScheduler"]

_IDLE_BACKOFF_START = 10e-6
_IDLE_BACKOFF_MAX = 1e-3


class Compute:
    """Fiber op: consume CPU for ``seconds`` (enclave-scaled)."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        self.seconds = seconds


class Sleep:
    """Fiber op: sleep for ``seconds`` (goes to the sleeping queue)."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        self.seconds = seconds


class YieldNow:
    """Fiber op: go to the back of the run queue."""

    __slots__ = ()


class Wait:
    """Fiber op: block until a simulation event triggers."""

    __slots__ = ("event",)

    def __init__(self, event: Event):
        self.event = event


class Fiber:
    """One userland thread (e.g. one connected client's handler)."""

    _ids = itertools.count(1)

    def __init__(self, body: Generator, name: str = ""):
        self.body = body
        self.fiber_id = next(Fiber._ids)
        self.name = name or "fiber-%d" % self.fiber_id
        self.finished = False
        self.result: Any = None
        self.send_value: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else "alive"
        return "<Fiber %s %s>" % (self.name, state)


class FiberScheduler:
    """A per-core round-robin scheduler for fibers.

    The scheduler itself runs as one simulation process (one enclave
    thread pinned to a core); resuming the next fiber costs nothing.
    """

    def __init__(self, runtime: NodeRuntime, name: str = "sched"):
        self.runtime = runtime
        self.name = name
        self.run_queue: Deque[Fiber] = deque()
        #: (wake_time, seq, fiber) min-heap — the sleeping queue.
        self.sleeping: List = []
        self._sleep_seq = itertools.count()
        self.waiting = 0  # fibers blocked on events
        self.alive = 0
        self.context_switches = 0
        self.idle_syscalls = 0
        self._process = None
        self._wakeup: Optional[Event] = None

    # -- fiber management -----------------------------------------------------
    def spawn(self, body: Generator, name: str = "") -> Fiber:
        """Add a fiber to the run queue (one per connected client)."""
        fiber = Fiber(body, name)
        self.alive += 1
        self.run_queue.append(fiber)
        self._kick()
        return fiber

    def start(self) -> None:
        if self._process is None or self._process.triggered:
            self._process = self.runtime.sim.process(
                self._loop(), name="fiber-sched/%s" % self.name
            )

    def _kick(self) -> None:
        self.start()
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed(None)

    # -- the scheduler loop ------------------------------------------------------
    def _wake_sleepers(self) -> None:
        now = self.runtime.sim.now
        while self.sleeping and self.sleeping[0][0] <= now:
            _when, _seq, fiber = heapq.heappop(self.sleeping)
            self.run_queue.append(fiber)

    def _next_wake_delay(self) -> Optional[float]:
        if not self.sleeping:
            return None
        return max(0.0, self.sleeping[0][0] - self.runtime.sim.now)

    def _loop(self):
        sim = self.runtime.sim
        idle_backoff = _IDLE_BACKOFF_START
        while True:
            self._wake_sleepers()
            if not self.run_queue:
                if self.alive == 0:
                    return  # every fiber finished
                # Idle: the only case that costs a syscall (§VII-C); the
                # backoff grows so an idle scheduler leaves the core to
                # other SCONE threads for longer and longer.
                self.idle_syscalls += 1
                yield from self.runtime.syscall()
                delay = self._next_wake_delay()
                if delay is None:
                    self._wakeup = sim.event()
                    backoff = sim.timeout(idle_backoff)
                    yield sim.any_of([self._wakeup, backoff])
                    self._wakeup = None
                else:
                    yield sim.timeout(min(delay, idle_backoff))
                idle_backoff = min(idle_backoff * 2, _IDLE_BACKOFF_MAX)
                continue
            idle_backoff = _IDLE_BACKOFF_START
            fiber = self.run_queue.popleft()
            self.context_switches += 1
            yield from self._run_fiber_once(fiber)

    def _run_fiber_once(self, fiber: Fiber):
        """Resume one fiber until it blocks, yields or finishes."""
        sim = self.runtime.sim
        while True:
            try:
                op = fiber.body.send(fiber.send_value)
            except StopIteration as stop:
                fiber.finished = True
                fiber.result = stop.value
                self.alive -= 1
                return
            fiber.send_value = None
            if isinstance(op, Compute):
                # The fiber occupies this scheduler's core for the work.
                yield from self.runtime.compute(op.seconds)
            elif isinstance(op, Sleep):
                heapq.heappush(
                    self.sleeping,
                    (sim.now + op.seconds, next(self._sleep_seq), fiber),
                )
                return
            elif isinstance(op, YieldNow):
                self.run_queue.append(fiber)
                return
            elif isinstance(op, Wait):
                self.waiting += 1
                op.event.add_callback(lambda event, f=fiber: self._unblock(f, event))
                return
            else:
                raise TypeError("fiber %s yielded %r" % (fiber.name, op))

    def _unblock(self, fiber: Fiber, event: Event) -> None:
        self.waiting -= 1
        fiber.send_value = event.value
        self.run_queue.append(fiber)
        self._kick()
