"""Userland scheduling: the round-robin fiber scheduler of §VII-C."""

from .fibers import Compute, Fiber, FiberScheduler, Sleep, Wait, YieldNow

__all__ = ["Compute", "Fiber", "FiberScheduler", "Sleep", "Wait", "YieldNow"]
