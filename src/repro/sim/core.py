"""Deterministic discrete-event simulation kernel.

This module is the substrate on which every Treaty component runs.  The
paper executes its protocol on real SGX hardware with SCONE fibers; we
execute the same protocol logic on a virtual clock so that TEE, network
and storage costs can be charged deterministically.

The model is intentionally close to SimPy:

* a :class:`Simulator` owns the clock and the event heap,
* an :class:`Event` is a one-shot occurrence that carries a value or an
  exception,
* a :class:`Process` wraps a generator; the generator *yields* events and
  is resumed with the event's value once it triggers.

Processes double as the paper's *fibers* (userland threads, §VII-C): the
round-robin userland scheduler in :mod:`repro.sched.fibers` is layered on
top of these primitives.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "AllSettled",
    "QuorumOf",
    "Simulator",
    "SimulationError",
]

# A process body is a generator that yields events and receives their values.
ProcessBody = Generator["Event", Any, Any]


class SimulationError(RuntimeError):
    """Raised when the simulation itself is misused (not a modelled fault)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt` (e.g. a lock-timeout marker).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    Events start *pending*; :meth:`succeed` or :meth:`fail` triggers them,
    after which their callbacks run at the current simulation instant.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_ok", "_triggered", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has already occurred."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception when it failed)."""
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled so the simulator does not crash."""
        self._defused = True

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        self._trigger(True, value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters have ``exception`` raised."""
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception instance")
        self._trigger(False, exception)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._ok = ok
        self._value = value
        self.sim._dispatch(self)

    # -- waiting --------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` once the event triggers.

        If the event already triggered, the callback is dispatched at the
        current instant instead of being lost.
        """
        if self._callbacks is None:
            # Already dispatched: deliver asynchronously but immediately.
            self.sim._schedule_call(lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def _consume_callbacks(self) -> List[Callable[["Event"], None]]:
        callbacks, self._callbacks = self._callbacks or [], None
        return callbacks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return "<%s %s at t=%.9f>" % (type(self).__name__, state, self.sim.now)


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError("negative timeout delay: %r" % (delay,))
        super().__init__(sim)
        self.delay = delay
        sim._schedule_at(sim.now + delay, self, True, value)


class Process(Event):
    """A running activity driven by a generator.

    The process is itself an event: it triggers with the generator's
    return value when the generator finishes, or fails with the escaping
    exception.  Other processes may therefore ``yield`` a process to join
    it.
    """

    __slots__ = ("_body", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", body: ProcessBody, name: str = ""):
        super().__init__(sim)
        if not hasattr(body, "send"):
            raise SimulationError("Process body must be a generator")
        self._body = body
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(body, "__name__", "process")
        if sim.tracer is not None:
            sim.tracer.process_started(self)
        # Kick off the body at the current instant (single heap entry).
        sim._schedule_call(self._bootstrap_call)

    @property
    def is_alive(self) -> bool:
        """Whether the generator has not yet finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self._triggered:
            return
        interrupt_event = Event(self.sim)
        interrupt_event.add_callback(self._deliver_interrupt)
        interrupt_event.succeed(cause)

    def _deliver_interrupt(self, event: Event) -> None:
        if self._triggered:
            return
        # Detach from whatever we were waiting on; the stale callback
        # becomes a no-op because _waiting_on no longer matches.
        self._waiting_on = None
        self._step(throw=Interrupt(event.value))

    def _bootstrap_call(self) -> None:
        self._step(send=None)

    def _resume(self, event: Event) -> None:
        if self._triggered or self._waiting_on is not event:
            return  # stale wake-up (e.g. after an interrupt)
        self._waiting_on = None
        if event.ok:
            self._step(send=event.value)
        else:
            event.defuse()
            self._step(throw=event.value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        # Callback execution never nests (all dispatch goes through the
        # heap), so a plain save/restore of current_process is enough even
        # when a step triggers events whose callbacks run later.
        previous = self.sim.current_process
        self.sim.current_process = self
        try:
            if throw is not None:
                target = self._body.throw(throw)
            else:
                target = self._body.send(send)
        except StopIteration as stop:
            if self.sim.tracer is not None:
                self.sim.tracer.process_finished(self)
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - modelled fault propagation
            if self.sim.tracer is not None:
                self.sim.tracer.process_finished(self)
            self.fail(exc)
            return
        finally:
            self.sim.current_process = previous
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    "process %r yielded %r; processes must yield events"
                    % (self.name, target)
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class _ConditionEvent(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _values(self) -> List[Any]:
        return [e.value for e in self.events if e.triggered and e.ok]


class AnyOf(_ConditionEvent):
    """Triggers when the first of ``events`` triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self.succeed(event)


class AllOf(_ConditionEvent):
    """Triggers when all of ``events`` have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._values())


class AllSettled(_ConditionEvent):
    """Triggers once every inner event has triggered, ok or failed.

    Unlike :class:`AllOf`, a failed inner event does not fail the
    composite: it is defused and simply recorded.  The composite's value
    is the inner event list itself — callers inspect ``event.triggered``
    / ``event.ok`` / ``event.value`` per entry.  This is the natural
    shape for fan-out RPC rounds where a crashed destination should look
    like a missing vote, not a coordinator crash.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if not event.ok:
            event.defuse()
        if self._triggered:
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self.events)


class QuorumOf(_ConditionEvent):
    """Triggers once ``needed`` inner events settle acceptably.

    The vote-counting shape for fan-out rounds: the composite fires as
    soon as ``needed`` inner events have settled ok *and* pass the
    ``accept`` predicate (default: any ok settle counts), or — the
    quorum-unreachable backstop — once every inner event has settled.
    Like :class:`AllSettled`, a failed inner event never fails the
    composite; it is defused and counts only toward the backstop.  The
    composite's value is the inner event list; late stragglers keep
    settling (and keep being defused) after the trigger.
    """

    __slots__ = ("needed", "accept", "_accepted")

    def __init__(
        self,
        sim: "Simulator",
        events: Iterable[Event],
        needed: int,
        accept: Optional[Callable[[Any], bool]] = None,
    ):
        self.needed = needed
        self.accept = accept
        self._accepted = 0
        super().__init__(sim, events)
        if not self._triggered and needed <= 0:
            self.succeed(self.events)

    def _check(self, event: Event) -> None:
        if not event.ok:
            event.defuse()
        if self._triggered:
            # Late stragglers only get defused; counting them would let
            # a post-quorum NetworkError settle masquerade as an accept
            # (or skew the all-settled backstop bookkeeping).
            return
        self._pending -= 1
        if event.ok and (self.accept is None or self.accept(event.value)):
            self._accepted += 1
        if self._accepted >= self.needed or self._pending == 0:
            self.succeed(self.events)


class Simulator:
    """Owns the virtual clock and runs events in timestamp order.

    Determinism: ties in time are broken by scheduling order (a strictly
    increasing sequence number), so two runs with the same seed replay an
    identical history.
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Any] = []
        self._seq = itertools.count()
        self._running = False
        #: observability hook points (installed by repro.obs.Observability;
        #: None keeps the simulator dependency-free and the hooks at the
        #: cost of one identity check).
        self.tracer: Optional[Any] = None
        self.obs: Optional[Any] = None
        #: controlled-scheduler hook (installed by repro.mc): consulted
        #: at nondeterministic choice points — same-instant ready-entry
        #: ties here, adversary actions and crash points elsewhere —
        #: instead of leaving them to incidental scheduling order.  The
        #: protocol is duck-typed: ``tie_window`` (int; <= 1 disables
        #: tie picking) and ``pick_ready(count) -> index``.  None keeps
        #: the simulator dependency-free.
        self.chooser: Optional[Any] = None
        #: the process whose generator is currently being stepped (None
        #: between steps and for plain callbacks).  The tracer keys its
        #: per-fiber span stacks and inherited trace contexts off this.
        self.current_process: Optional["Process"] = None

    # -- construction helpers -------------------------------------------
    def event(self) -> Event:
        """Create a pending event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, body: ProcessBody, name: str = "") -> Process:
        """Start running ``body`` as a process at the current instant."""
        return Process(self, body, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once every one of ``events`` has fired."""
        return AllOf(self, events)

    def all_settled(self, events: Iterable[Event]) -> AllSettled:
        """Event that fires once every one of ``events`` has settled.

        Failed inner events are defused rather than propagated; the
        value is the event list for per-event inspection.
        """
        return AllSettled(self, events)

    def quorum_of(
        self,
        events: Iterable[Event],
        needed: int,
        accept: Optional[Callable[[Any], bool]] = None,
    ) -> QuorumOf:
        """Event that fires once ``needed`` of ``events`` settle with an
        acceptable value (or every event has settled, whichever first).
        """
        return QuorumOf(self, events, needed, accept)

    # -- scheduling internals --------------------------------------------
    def _schedule_at(self, when: float, event: Event, ok: bool, value: Any) -> None:
        heapq.heappush(self._heap, (when, next(self._seq), "event", event, ok, value))

    def _dispatch(self, event: Event) -> None:
        heapq.heappush(
            self._heap, (self.now, next(self._seq), "dispatch", event, None, None)
        )

    def _schedule_call(self, fn: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (self.now, next(self._seq), "call", fn, None, None))

    # -- execution --------------------------------------------------------
    def step(self) -> None:
        """Process a single heap entry, advancing the clock if needed."""
        if self.chooser is not None and getattr(self.chooser, "tie_window", 0) > 1:
            entry = self._pop_with_chooser()
        else:
            entry = heapq.heappop(self._heap)
        self._execute(entry)

    def _pop_with_chooser(self) -> Any:
        """Let the controlled scheduler pick among same-instant heap heads.

        Pops up to ``chooser.tie_window`` entries that share the head
        timestamp, asks the chooser which to run, and pushes the rest
        back with their original sequence numbers (so the residual order
        is exactly the uncontrolled one).
        """
        window = self.chooser.tie_window
        ties = [heapq.heappop(self._heap)]
        while (len(ties) < window and self._heap
               and self._heap[0][0] == ties[0][0]):
            ties.append(heapq.heappop(self._heap))
        if len(ties) == 1:
            return ties[0]
        index = self.chooser.pick_ready(len(ties))
        chosen = ties.pop(index)
        for entry in ties:
            heapq.heappush(self._heap, entry)
        return chosen

    def _execute(self, entry: Any) -> None:
        when, _seq, kind, payload, ok, value = entry
        self.now = when
        if kind == "call":
            payload()
            return
        event: Event = payload
        if kind == "event":
            # A Timeout reaching its due time: trigger it now.
            if not event._triggered:
                event._triggered = True
                event._ok = ok
                event._value = value
            self._run_callbacks(event)
        else:  # "dispatch": event was triggered explicitly via succeed/fail
            self._run_callbacks(event)

    def _run_callbacks(self, event: Event) -> None:
        callbacks = event._consume_callbacks()
        if not event.ok and not callbacks and not event._defused:
            raise event.value
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or the clock passes ``until``.

        Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while self._heap:
                if until is not None and self._heap[0][0] > until:
                    self.now = until
                    break
                self.step()
        finally:
            self._running = False
        return self.now

    def run_process(self, body: ProcessBody, name: str = "") -> Any:
        """Convenience: run ``body`` to completion and return its result.

        This drives the whole simulation (other scheduled activity included)
        until the given process finishes.
        """
        proc = self.process(body, name=name)
        while not proc.triggered:
            if not self._heap:
                raise SimulationError(
                    "deadlock: process %r cannot finish (no pending events)"
                    % (proc.name,)
                )
            self.step()
        if not proc.ok:
            proc.defuse()
            raise proc.value
        return proc.value
