"""CPU modelling: per-node core pools with a speed factor.

Each Treaty node in the paper runs on an 8-core (16 HT) i9-9900K; work
executed inside the enclave is slower than native because of memory
encryption and (under pressure) EPC paging.  A :class:`CpuPool` charges
CPU seconds against a fixed number of cores, so that saturation — the
knee in the paper's client-scaling curves — emerges naturally.
"""

from __future__ import annotations

from typing import Any, Generator

from .core import Event, Simulator
from .sync import Resource

__all__ = ["CpuPool"]


class CpuPool:
    """A pool of identical cores consumed by simulation processes."""

    def __init__(self, sim: Simulator, cores: int, speed_factor: float = 1.0):
        if cores < 1:
            raise ValueError("cores must be >= 1")
        if speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        self.sim = sim
        self.cores = cores
        self.speed_factor = speed_factor
        self._resource = Resource(sim, capacity=cores)
        self.busy_seconds = 0.0  # accumulated utilization for reporting

    def consume(self, seconds: float) -> Generator[Event, Any, None]:
        """Occupy one core for ``seconds`` of work (scaled by speed factor).

        Usage inside a process: ``yield from cpu.consume(cost)``.
        """
        if seconds < 0:
            raise ValueError("negative CPU time: %r" % (seconds,))
        if seconds == 0:
            return
        scaled = seconds / self.speed_factor
        resource = self._resource
        if resource.in_use < resource.capacity:
            # Fast path: a core is free — skip the grant event entirely.
            resource.in_use += 1
        else:
            yield resource.request()
        try:
            yield self.sim.timeout(scaled)
            self.busy_seconds += scaled
        finally:
            resource.release()

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a core (saturation indicator)."""
        return self._resource.queue_length

    def utilization(self, elapsed: float) -> float:
        """Average core utilization over ``elapsed`` simulated seconds."""
        if elapsed <= 0:
            return 0.0
        return self.busy_seconds / (elapsed * self.cores)
