"""Synchronization primitives for simulation processes.

These mirror the concurrency building blocks the paper's fibers use:
mutexes/lock tables (:class:`Resource`), message queues between fibers
(:class:`Store`), and broadcast wake-ups for stabilization waiters
(:class:`Gate`).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Tuple

from .core import Event, Simulator

__all__ = ["Resource", "Store", "Gate", "Semaphore"]


class Resource:
    """A counted resource with FIFO admission (capacity >= 1).

    ``request()`` returns an event that fires once a slot is granted;
    ``release()`` hands the slot to the next waiter.  The common usage
    inside a process is::

        yield resource.request()
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    def request(self) -> Event:
        """Ask for a slot; the returned event fires when granted."""
        grant = self.sim.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            grant.succeed(self)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Return a slot, waking the oldest waiter if any."""
        if self.in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        # Hand the slot over directly so in_use never dips below reality.
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.triggered:  # cancelled waiter (e.g. timed out)
                continue
            waiter.succeed(self)
            return
        self.in_use -= 1

    def cancel(self, grant: Event) -> None:
        """Withdraw a request (used for lock timeouts).

        Safe against the race where the grant fired in the same instant
        as the caller's timeout: an already-granted slot is released.
        """
        if grant.triggered:
            if grant.value is self:
                self.release()
        else:
            grant.succeed(None)  # mark consumed; release() skips it

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Semaphore:
    """A counting semaphore (no FIFO guarantee needed by callers)."""

    def __init__(self, sim: Simulator, value: int = 0):
        self.sim = sim
        self._value = value
        self._waiters: Deque[Event] = deque()

    def acquire(self) -> Event:
        event = self.sim.event()
        if self._value > 0:
            self._value -= 1
            event.succeed(None)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.triggered:
                continue
            waiter.succeed(None)
            return
        self._value += 1


class Store:
    """An unbounded FIFO channel between processes."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest getter if one is waiting."""
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (FIFO)."""
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)


class Gate:
    """A broadcast condition: processes wait until the gate value passes a mark.

    The stabilization protocol uses one gate per log: waiters block until
    the stable counter reaches their entry's counter value.
    """

    def __init__(self, sim: Simulator, initial: int = 0):
        self.sim = sim
        self.value = initial
        self._waiters: List[Tuple[int, Event]] = []

    def advance_to(self, value: int) -> None:
        """Raise the gate value; waiters at or below it are released."""
        if value < self.value:
            return
        self.value = value
        still_waiting = []
        for mark, event in self._waiters:
            if mark <= value:
                if not event.triggered:
                    event.succeed(value)
            else:
                still_waiting.append((mark, event))
        self._waiters = still_waiting

    def wait_for(self, mark: int) -> Event:
        """Event that fires once the gate value reaches ``mark``."""
        event = self.sim.event()
        if self.value >= mark:
            event.succeed(self.value)
        else:
            self._waiters.append((mark, event))
        return event


def hold(resource: Resource, work: Generator[Event, Any, Any]):
    """Run ``work`` while holding one slot of ``resource`` (generator helper)."""
    yield resource.request()
    try:
        result = yield from work
    finally:
        resource.release()
    return result
