"""Discrete-event simulation substrate for the Treaty reproduction."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .cpu import CpuPool
from .rng import SeededRng, derive_seed
from .sync import Gate, Resource, Semaphore, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "CpuPool",
    "Event",
    "Gate",
    "Interrupt",
    "Process",
    "Resource",
    "SeededRng",
    "Semaphore",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "derive_seed",
]
