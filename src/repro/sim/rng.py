"""Deterministic randomness helpers.

Every stochastic component (workload generators, network jitter, the
adversary) draws from a :class:`SeededRng` derived from a single root
seed, so that experiments replay bit-identically.
"""

from __future__ import annotations

import random
import struct
from hashlib import sha256

__all__ = ["SeededRng", "derive_seed"]


def derive_seed(root_seed: int, *labels: str) -> int:
    """Derive a child seed from a root seed and a label path.

    Child streams are independent for distinct labels, which lets every
    client/node own its own RNG without coordination.
    """
    hasher = sha256(struct.pack("<Q", root_seed & 0xFFFFFFFFFFFFFFFF))
    for label in labels:
        hasher.update(b"/")
        hasher.update(label.encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "little")


class SeededRng(random.Random):
    """A named, reproducible random stream."""

    def __init__(self, root_seed: int, *labels: str):
        self.labels = labels
        self.seed_value = derive_seed(root_seed, *labels)
        super().__init__(self.seed_value)

    def child(self, *labels: str) -> "SeededRng":
        """Create an independent sub-stream."""
        return SeededRng(self.seed_value, *labels)
