"""The controlled scheduler: replay one choice trace, record all points.

A run of the model checker is one execution of the deterministic sim
under a :class:`TraceController` installed as ``Simulator.chooser``.
The controller is consulted at every nondeterministic choice point:

* **frame points** — a protocol frame entering the fabric
  (``Fabric.route``).  Options are the adversary's enumerated actions
  (deliver / drop / duplicate / delay), option 0 always "deliver".
* **crash points** — a crash-eligible trace event (the
  :mod:`repro.mc.faults` vocabulary) was emitted.  Options are "no
  crash" plus one victim per configured offset, option 0 always "no
  crash".
* **tie points** — optional (``Scope.tie_window > 1``): several heap
  entries are runnable at the same instant and the simulator asks which
  to run first.  Option 0 is the uncontrolled order.

The trace is a list of option indices, indexed by consultation order.
Points beyond the end of the trace choose option 0 (no perturbation),
so a trace is a *finite perturbation prefix* over an otherwise
unperturbed run — the stateless-search representation used by CHESS.

While executing, the controller also maintains the two DPOR structures
the explorer prunes with:

* a **sleep set** of ``(footprint, action)`` pairs inherited from the
  explorer; an entry is evicted when a dependent action executes
  (footprints are dependent when their node sets intersect).  A point's
  snapshot of the sleep set filters which alternatives the explorer
  may branch on there.
* the **visited-state cache** (shared across runs): at each beyond-
  prefix point the cluster digest is looked up; if a previous visit
  reached this state with *strictly more* remaining perturbation
  budget, the whole remainder of this run is subsumed — no further
  digests, and every alternative from here on is counted as pruned.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..net.adversary import NetworkAdversary
from ..net.message import MsgType
from .digest import DiskCrcCache, cluster_digest

__all__ = ["ChoicePoint", "TraceController", "footprint_nodes"]

Footprint = Tuple[Any, ...]


def footprint_nodes(fp: Optional[Footprint]) -> Set[str]:
    """The set of node names an action footprint touches.

    Two actions are *dependent* (may not commute) iff their node sets
    intersect; this is the (node, log/key, message-type) independence
    relation collapsed to its coarsest sound level — everything on one
    node shares logs and lock tables, distinct nodes only interact
    through frames, which are themselves choice points.
    """
    if fp is None:
        return set()
    if fp[0] == "frame":
        return {fp[1].split(".")[0], fp[2].split(".")[0]}
    if fp[0] == "crash":
        return {fp[1]}
    return set()


class ChoicePoint:
    """One consultation of the controller, with everything the explorer
    needs to branch from it."""

    __slots__ = (
        "index", "kind", "label", "options", "chosen", "time",
        "sleep", "expandable",
    )

    def __init__(self, index, kind, label, options, chosen, time,
                 sleep, expandable):
        self.index = index
        self.kind = kind            # "frame" | "crash" | "tie"
        self.label = label          # human-readable, for counterexamples
        #: ``[(action_label, footprint)]`` per option; option 0 is the
        #: no-perturbation default.
        self.options = options
        self.chosen = chosen
        self.time = time            # sim time at the consultation
        self.sleep = sleep          # frozenset snapshot for the explorer
        #: False for prefix replays and post-subsumption points — the
        #: explorer must not branch there.
        self.expandable = expandable

    @property
    def num_options(self) -> int:
        return len(self.options)

    def describe(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "label": self.label,
            "options": [label for label, _fp in self.options],
            "chosen": self.chosen,
            "time": self.time,
        }


class TraceController:
    """Drives one world through a prescribed choice trace."""

    def __init__(self, cluster, scope, trace=(), *, remaining_budget=0,
                 visited=None, sleep0=(), crc_cache=None, adversary=None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.scope = scope
        self.trace = list(trace)
        self.remaining_budget = remaining_budget
        self.visited = visited          # shared digest -> best budget map
        self.sleep: Set[Tuple[Footprint, str]] = set(sleep0)
        self.adversary = adversary or NetworkAdversary()
        self.crc_cache = crc_cache or DiskCrcCache()
        self.tie_window = scope.tie_window

        self.points: List[ChoicePoint] = []
        self.in_flight: Dict[Tuple[str, str, int], int] = {}
        self.frozen = False      # end-state audit: stop perturbing
        self.subsumed = False    # visited-state cache hit: stop digesting
        self.new_states = 0      # digests first seen by this run
        self.suppressed = 0      # alternatives pruned via subsumption
        self.drops = 0           # frames dropped by prescribed choices
        self.crashes: List[Tuple[int, Tuple[str, str], float]] = []

    # -- the choice core ---------------------------------------------------
    def _choose(self, kind: str, label: str,
                options: List[Tuple[str, Optional[Footprint]]]) -> ChoicePoint:
        index = len(self.points)
        in_prefix = index < len(self.trace)
        chosen = 0
        if in_prefix:
            chosen = self.trace[index]
            if not 0 <= chosen < len(options):
                # Shrinking shifts later indices; out-of-range choices
                # degrade to "no perturbation" rather than erroring.
                chosen = 0
        elif not self.subsumed and self.visited is not None:
            digest = cluster_digest(self.cluster, self.in_flight,
                                    self.crc_cache)
            stored = self.visited.get(digest)
            if stored is None:
                self.visited[digest] = self.remaining_budget
                self.new_states += 1
            elif self.remaining_budget > stored:
                self.visited[digest] = self.remaining_budget
            elif stored > self.remaining_budget:
                # A previous visit covered this state with strictly more
                # budget: everything reachable from here was reachable
                # from there.  (Equality must NOT subsume: the earlier
                # visit may be this run's own sibling still in progress.)
                self.subsumed = True
        if self.subsumed:
            self.suppressed += len(options) - 1
        point = ChoicePoint(
            index=index, kind=kind, label=label, options=options,
            chosen=chosen, time=self.sim.now,
            sleep=frozenset(self.sleep),
            expandable=not in_prefix and not self.subsumed and not self.frozen,
        )
        self.points.append(point)
        return point

    def _evolve_sleep(self, fp: Optional[Footprint]) -> None:
        """Evict sleep entries dependent on an executed action."""
        if not self.sleep or fp is None:
            return
        nodes = footprint_nodes(fp)
        self.sleep = {
            entry for entry in self.sleep
            if not (nodes & footprint_nodes(entry[0]))
        }

    # -- frame choice points (Fabric.route) --------------------------------
    def intercept_frame(self, frame):
        meta = frame.meta or {}
        req_type = meta.get("req_type")
        src_node = frame.src.split(".")[0]
        dst_node = frame.dst.split(".")[0]
        eligible = (
            not self.frozen
            and req_type in self.scope.frame_types
            and src_node.startswith("node")
            and dst_node.startswith("node")
        )
        fp = ("frame", frame.src, frame.dst, req_type,
              bool(meta.get("is_request", True)))
        if not eligible:
            self._evolve_sleep(fp)
            return [(frame, 0.0)]
        enumerated = self.adversary.enumerate_actions(
            frame, self.scope.action_delay
        )
        allowed = ("deliver",) + tuple(self.scope.actions)
        actions = [(n, v) for n, v in enumerated if n in allowed]
        direction = "req" if meta.get("is_request", True) else "resp"
        label = "%s:%s %s->%s" % (
            MsgType.NAMES.get(req_type, req_type), direction,
            frame.src, frame.dst,
        )
        point = self._choose(
            "frame", label, [(name, fp) for name, _v in actions]
        )
        name, verdict = actions[point.chosen]
        if name != "deliver":
            verdict = self.adversary.apply_action(
                name, frame, self.scope.action_delay
            )
            if name == "drop":
                self.drops += 1
        self._evolve_sleep(fp)
        return verdict

    # -- crash choice points (trace events) --------------------------------
    def on_record(self, rec) -> None:
        if self.frozen or rec.get("type") != "event":
            return
        event_key = (rec["cat"], rec["name"])
        if event_key not in self.scope.crash_points:
            return
        if len(self.crashes) >= self.scope.max_crashes:
            return
        emitter = rec.get("node") or ""
        if not emitter.startswith("node"):
            return
        emitter_id = int(emitter[4:])
        victims = []
        for offset in self.scope.crash_offsets:
            victim = (emitter_id + offset) % self.cluster.num_nodes
            if victim not in victims and self.cluster.nodes[victim].is_up:
                victims.append(victim)
        if not victims:
            return
        options = [("none", None)] + [
            ("crash-node%d" % victim, ("crash", "node%d" % victim))
            for victim in victims
        ]
        label = "%s/%s@%s" % (rec["cat"], rec["name"], emitter)
        point = self._choose("crash", label, options)
        if point.chosen > 0:
            victim = victims[point.chosen - 1]
            fp = ("crash", "node%d" % victim)
            self.crashes.append((victim, event_key, self.sim.now))
            self._evolve_sleep(fp)
            self.cluster.crash_node(victim)

    # -- tie choice points (Simulator.step) --------------------------------
    def pick_ready(self, count: int) -> int:
        if self.frozen:
            return 0
        options = [("ready-%d" % i, None) for i in range(count)]
        point = self._choose("tie", "tie x%d" % count, options)
        return point.chosen

    # -- in-flight frame accounting (digest input) -------------------------
    def _flight_key(self, frame) -> Tuple[str, str, int]:
        req_type = (frame.meta or {}).get("req_type")
        return (frame.src, frame.dst, -1 if req_type is None else req_type)

    def frame_sent(self, frame) -> None:
        key = self._flight_key(frame)
        self.in_flight[key] = self.in_flight.get(key, 0) + 1

    def frame_delivered(self, frame) -> None:
        key = self._flight_key(frame)
        count = self.in_flight.get(key, 0)
        if count <= 1:
            self.in_flight.pop(key, None)
        else:
            self.in_flight[key] = count - 1

    # -- lifecycle ---------------------------------------------------------
    def freeze(self) -> None:
        """Stop perturbing: the harness is auditing end state."""
        self.frozen = True

    def nonzero_choices(self) -> List[Tuple[int, int]]:
        """``(index, chosen)`` of every executed perturbation."""
        return [(p.index, p.chosen) for p in self.points if p.chosen != 0]
