"""Canonical digests of cluster protocol state.

The explorer's visited-state cache needs to recognise that two choice
traces led the world to the *same* protocol state, so one of the two
subtrees can be skipped.  "Same" is defined by this module: a canonical
per-node summary of everything the protocol can branch on —

* durable bytes (WAL / Clog / SSTables, via a per-file CRC),
* lock tables,
* in-doubt participant transactions and coordinator decisions,
* stable-counter gate values and replica confirmed views,
* the LSM memtable shape and prepared-txn set,
* plus the multiset of frames still in flight on the fabric.

Fields that never influence protocol behaviour (wall-clock-ish metrics,
trace buffers, byte counters) are deliberately excluded; including them
would make every state unique and the cache useless.

Disk files are append-mostly (:class:`repro.storage.disk.Disk` extends
a per-file ``bytearray`` in place), so the CRC is computed
incrementally: a cache keyed by ``(node, filename)`` remembers the
buffer identity, consumed length and running CRC, and only the suffix
appended since the previous digest is hashed.  A rewritten file (new
buffer object or truncation) falls back to a full pass.

Digests are combined with Python's ``hash`` on nested tuples, which is
stable within one process — all the cache ever needs.  For stable
digests *across* processes (CI reruns), run with ``PYTHONHASHSEED=0``;
bytes/str hashing is the only randomized component.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Tuple

__all__ = ["DiskCrcCache", "cluster_digest", "node_digest"]


class DiskCrcCache:
    """Incremental per-file CRC32 over a node's append-mostly disk."""

    def __init__(self):
        # (node_name, filename) -> (buffer id, bytes consumed, crc)
        self._entries: Dict[Tuple[str, str], Tuple[int, int, int]] = {}

    def file_crc(self, node_name: str, filename: str, data) -> int:
        key = (node_name, filename)
        entry = self._entries.get(key)
        length = len(data)
        if entry is not None:
            buf_id, consumed, crc = entry
            if buf_id == id(data) and length >= consumed:
                if length > consumed:
                    crc = zlib.crc32(memoryview(data)[consumed:], crc)
                    self._entries[key] = (buf_id, length, crc)
                return crc
        crc = zlib.crc32(bytes(data))
        self._entries[key] = (id(data), length, crc)
        return crc


def node_digest(node, crc_cache: DiskCrcCache) -> Tuple[Any, ...]:
    """Canonical summary of one node's protocol state."""
    disk_part = tuple(
        (filename, len(data), crc_cache.file_crc(node.name, filename, data))
        for filename, data in sorted(node.disk._files.items())
    )
    if not node.is_up:
        return ("down", node.boot_count, disk_part)

    locks = node.manager.locks
    locks_part = tuple(
        (txn_id, tuple(held.items()))
        for txn_id, held in sorted(locks._held.items())
    )
    active_part = tuple(
        (gid, txn.status)
        for gid, txn in sorted(node.participant.active.items())
    )
    decisions_part = tuple(sorted(node.coordinator.decisions.items()))
    gates_part = tuple(
        (log_name, gate.value)
        for log_name, gate in sorted(node.counter_client._gates.items())
    )
    replica_part = tuple(sorted(node.replica.confirmed.items()))
    clog_part = getattr(node.clog, "next_counter", None)
    engine = node.engine
    prepared_part = tuple(sorted(getattr(engine, "prepared_txns", ())))
    memtable = getattr(engine, "memtable", None)
    memtable_part = (
        (len(memtable), memtable.approximate_bytes)
        if memtable is not None else None
    )
    return (
        "up",
        node.boot_count,
        disk_part,
        locks_part,
        active_part,
        decisions_part,
        gates_part,
        replica_part,
        clog_part,
        prepared_part,
        memtable_part,
    )


def cluster_digest(cluster, in_flight: Dict[Tuple, int],
                   crc_cache: DiskCrcCache) -> int:
    """One hashable digest for the whole cluster + frames in flight."""
    nodes_part = tuple(
        node_digest(node, crc_cache) for node in cluster.nodes
    )
    flight_part = tuple(sorted(in_flight.items()))
    return hash((nodes_part, flight_part))
