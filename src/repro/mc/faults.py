"""Crash-point vocabulary and injection helpers.

Shared between the randomized crash-conformance sweep
(``tests/test_crash_conformance.py``) and the model checker: both crash
nodes at *observable protocol steps* — trace events emitted by the 2PC
and stabilization pipeline — rather than at arbitrary instruction
boundaries, which is exactly the granularity at which the recovery
rules are specified.

The injectable points, in pipeline order:

* ``twopc/prepare_target``  — prepare logged, piggybacked ACK about to
  leave the participant (its counter target is *not* yet stable);
* ``twopc/prepare_ack``     — legacy path: prepare stabilized, ACK sent;
* ``stabilize/group_begin`` — the coordinator's group-wide echo round
  is in flight (targets chosen, nothing stable yet);
* ``twopc/decision``        — decision logged to the Clog, not stable;
* ``twopc/commit_apply``    — a participant applied the commit;
* ``stabilize/advance``     — a stable-counter gate moved;
* ``counter/promise``       — a coverage promise was just registered
  (async/lcm backends only: the waiter is parked on the lease, no round
  of its own in flight — crashing here exercises "coordinator dies with
  an unexpired coverage promise outstanding");
* ``twopc/decision-quorum`` — the coordinator just counted a decision
  replication ACK (``commit_replication`` only: crashing between the
  (k-1)-th and k-th ack exercises every partially-replicated decision
  state the completer protocol must converge from).

Crash model: :meth:`TreatyCluster.crash_node` detaches the node's NICs
— nothing is sent or received afterwards (in-flight frames and zombie
fibers' sends are dropped at the NIC identity check).
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "SCENARIOS",
    "CrashInjector",
    "piggyback_crash_points",
    "legacy_crash_points",
    "coordinator_crash_points",
]

CrashPoint = Tuple[str, str]

#: (trace event to crash on, twopc_piggyback flag).  prepare_target and
#: group_begin only exist under piggybacking; prepare_ack only without;
#: counter/promise only fires under the coverage backends (a sweep run
#: with ``counter-sync`` never sees it, so that scenario degrades to an
#: uninjected baseline run there).
#: ORDER MATTERS: the conformance sweep maps ``seed % len(SCENARIOS)``
#: onto this tuple, so reordering silently reshuffles every seed — new
#: points are appended, never inserted.
SCENARIOS = (
    (("twopc", "prepare_target"), True),
    (("stabilize", "group_begin"), True),
    (("twopc", "decision"), True),
    (("twopc", "commit_apply"), True),
    (("stabilize", "advance"), True),
    (("twopc", "prepare_ack"), False),
    (("twopc", "decision"), False),
    (("twopc", "commit_apply"), False),
    (("counter", "promise"), True),
    (("twopc", "decision-quorum"), True),
)


def piggyback_crash_points() -> Tuple[CrashPoint, ...]:
    """Crash points applicable when ``twopc_piggyback`` is on."""
    return tuple(point for point, piggyback in SCENARIOS if piggyback)


def legacy_crash_points() -> Tuple[CrashPoint, ...]:
    """Crash points applicable on the legacy (per-node rounds) path."""
    return tuple(point for point, piggyback in SCENARIOS if not piggyback)


def coordinator_crash_points() -> Tuple[CrashPoint, ...]:
    """Crash points emitted by the *coordinator* of a transaction.

    The non-blocking-commit battery kills the coordinator (and only
    the coordinator) at each of these, never restarts it, and asserts
    the survivors converge via the completer protocol.
    """
    return (
        ("stabilize", "group_begin"),
        ("twopc", "decision"),
        ("twopc", "decision-quorum"),
    )


class CrashInjector:
    """Crash one node at the N-th occurrence of a trace event.

    ``victim`` (absolute node index) overrides the offset arithmetic —
    the no-restart battery uses it to always kill the coordinator
    regardless of which node emitted the matched event.  ``permanent``
    is bookkeeping for the driver: the injector itself never restarts
    anything, but drivers skip their recovery pass when it is set.
    """

    def __init__(
        self, cluster, point, occurrence, victim_offset,
        victim=None, permanent=False,
    ):
        self.cluster = cluster
        self.point = point
        self.occurrence = occurrence
        #: 0 crashes the node that emitted the event; 1/2 crash a
        #: seeded bystander (same step, different failure domain).
        self.victim_offset = victim_offset
        self.victim = victim
        self.permanent = permanent
        self.seen = 0
        self.crashed = None  # node index, once fired

    def arm(self):
        self.cluster.obs.tracer.subscribe(self._on_record)
        return self

    def _on_record(self, rec):
        if self.crashed is not None or rec["type"] != "event":
            return
        if (rec["cat"], rec["name"]) != self.point:
            return
        emitter = rec.get("node") or ""
        if not emitter.startswith("node"):
            return
        self.seen += 1
        if self.seen != self.occurrence:
            return
        if self.victim is not None:
            victim = self.victim
        else:
            victim = (
                int(emitter[4:]) + self.victim_offset
            ) % self.cluster.num_nodes
        self.crashed = victim
        self.cluster.crash_node(victim)
