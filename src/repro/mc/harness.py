"""One model-checking run: scope, world construction, trace, checks.

A *scope* is the small fixed configuration the checker exhausts:
``txns`` distributed transactions (each writing one key per shard, so
every one is a full 2PC) over ``nodes`` nodes, a set of enumerable
adversary actions, and a set of crash-eligible protocol events from the
shared :mod:`repro.mc.faults` vocabulary.

:func:`run_one` executes a single choice trace against a fresh cluster
and audits the end state:

* **safety** (always): the strict I1–I5 monitor runs online and stops
  the run at the violating instant; afterwards the harness re-reads
  every written key through fresh transactions and checks atomicity
  (all-or-nothing per transaction) and durability (a transaction whose
  ``commit()`` returned success is fully visible).
* **liveness** (drop-free schedules only): quiescence — every node back
  up, no locks held, no in-doubt participant transactions, and the
  monitor's I4/I5 tail sweep.  Dropping a one-shot message (e.g. a
  recovery-redrive resolution, which is deliberately single-round — the
  peer's own recovery covers it) legitimately stalls the protocol, so
  liveness claims are only made for schedules where nothing was
  dropped; crashes, duplicates and delays all preserve convergence.

Mutations (``MUTATIONS``) disable one recovery rule each, so the test
suite can demonstrate that the checker actually finds the resulting
protocol bugs and shrinks them to minimal counterexamples.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

from ..config import ClusterConfig, TREATY_FULL
from ..core import TreatyCluster
from ..core.node import TreatyNode
from ..errors import NetworkError, TransactionAborted
from ..net.adversary import ENUMERATED_DELAY
from ..net.message import MsgType
from ..obs.monitor import MonitorViolation
from .controller import TraceController
from .digest import DiskCrcCache
from .faults import piggyback_crash_points

__all__ = [
    "Scope", "RunResult", "MUTATIONS", "parse_scope", "run_one",
    "mutation_scope", "DEFAULT_FRAME_TYPES",
]

#: Frame kinds the explorer branches on: the 2PC control plane plus the
#: counter-stabilization plane (piggybacked ACKs ride TXN_PREPARE
#: responses; fences and counter echoes are first-class).  Data-plane
#: reads/writes and client traffic are delivered untouched — they carry
#: no protocol decisions.
DEFAULT_FRAME_TYPES = (
    MsgType.TXN_PREPARE,
    MsgType.TXN_COMMIT,
    MsgType.TXN_ABORT,
    MsgType.TXN_FENCE,
    MsgType.TXN_RESOLVE,
    MsgType.COUNTER_UPDATE,
    MsgType.COUNTER_ECHO,
    MsgType.COUNTER_CONFIRM,
)


@dataclass(frozen=True)
class Scope:
    """The bounded world the checker exhausts."""

    txns: int = 2
    nodes: int = 3
    piggyback: bool = True
    seed: int = 2022
    #: rollback-protection backend under test (``ClusterConfig.
    #: rollback_backend``): "counter-sync", "counter-async" or "lcm".
    backend: str = "counter-sync"
    #: independent counter groups (``ClusterConfig.counter_shards``).
    shards: int = 1
    #: adversary actions enumerable per eligible frame ("deliver" is
    #: always option 0 and not listed here).
    actions: Tuple[str, ...] = ("drop", "duplicate", "delay")
    action_delay: float = ENUMERATED_DELAY
    frame_types: Tuple[int, ...] = DEFAULT_FRAME_TYPES
    #: crash-eligible (category, name) trace events; () disables crashes.
    crash_points: Tuple[Tuple[str, str], ...] = field(
        default_factory=piggyback_crash_points
    )
    #: victim offsets relative to the emitting node (0 = the emitter).
    crash_offsets: Tuple[int, ...] = (0,)
    max_crashes: int = 1
    #: decision replication (non-blocking commit) under test.
    commit_replication: bool = True
    #: ``ClusterConfig.decision_timeout_s`` for the run.
    decision_timeout: float = 3.0
    #: crashed nodes stay dead: the recovery pass is skipped and the
    #: survivors must converge on their own via the completer protocol
    #: (liveness is then asserted on the survivors only).
    no_restart: bool = False
    #: optional same-instant ready-set exploration (0/1 disables).
    tie_window: int = 0
    #: sim-seconds for the main workload phase (past the 2 s prepare-vote
    #: timeout plus resolution retries).
    pre_horizon: float = 4.0
    #: sim-seconds after each recovery round.
    post_horizon: float = 3.0
    #: client give-up timeout for a stalled put phase.
    give_up: float = 2.5
    #: I5 bound fed to the monitor.
    liveness_timeout: float = 6.0

    # The horizons are deliberately tight: a crashed node's zombie
    # counter driver raises FreshnessError ~15 sim-seconds after the
    # crash (max_retries x (round timeout + backoff)) out of an unwaited
    # fiber.  Keeping pre + (max_crashes + 1) * post below that bound
    # means the run always ends before any zombie detonates.

    def to_dict(self) -> Dict[str, Any]:
        return {
            f.name: list(v) if isinstance(v := getattr(self, f.name), tuple)
            else v
            for f in fields(self)
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scope":
        kwargs: Dict[str, Any] = {}
        for f in fields(cls):
            if f.name not in data:
                continue
            value = data[f.name]
            if isinstance(value, list):
                value = tuple(
                    tuple(item) if isinstance(item, list) else item
                    for item in value
                )
            kwargs[f.name] = value
        return cls(**kwargs)


def parse_scope(spec: str, **overrides: Any) -> Scope:
    """Parse ``"<txns>x<nodes>"`` (e.g. ``2x3``) into a :class:`Scope`."""
    txns_str, _, nodes_str = spec.lower().partition("x")
    if not nodes_str:
        raise ValueError("scope must look like '2x3' (txns x nodes)")
    return Scope(txns=int(txns_str), nodes=int(nodes_str), **overrides)


# -- mutations: recovery rules the checker should catch when broken ----------

def _disable_method(name: str, doc: str):
    @contextlib.contextmanager
    def patch():
        original = getattr(TreatyNode, name)

        def stub(self, *args, **kwargs):
            # Generator that does nothing: the patched methods are all
            # spawned as fibers (or yielded from), so the stub must be a
            # generator function too.
            if False:
                yield

        stub.__doc__ = doc
        setattr(TreatyNode, name, stub)
        try:
            yield
        finally:
            setattr(TreatyNode, name, original)

    patch.__doc__ = doc
    return patch


def _disable_coordinator_method(name: str, doc: str, result: Any = None):
    @contextlib.contextmanager
    def patch():
        from ..core.twopc import Coordinator

        original = getattr(Coordinator, name)

        def stub(self, *args, **kwargs):
            if False:
                yield
            return result

        stub.__doc__ = doc
        setattr(Coordinator, name, stub)
        try:
            yield
        finally:
            setattr(Coordinator, name, original)

    patch.__doc__ = doc
    return patch


def _disable_pipeline_method(name: str, doc: str):
    @contextlib.contextmanager
    def patch():
        from ..core.pipeline import DurabilityPipeline

        original = getattr(DurabilityPipeline, name)

        def stub(self, *args, **kwargs):
            if False:
                yield

        stub.__doc__ = doc
        setattr(DurabilityPipeline, name, stub)
        try:
            yield
        finally:
            setattr(DurabilityPipeline, name, original)

    patch.__doc__ = doc
    return patch


MUTATIONS = {
    # §VI: a recovering coordinator must re-broadcast decided aborts —
    # the pre-crash coordinator may have logged ABORT and died before
    # any participant heard it.  Disabled, a participant prepared under
    # a twice-crashed coordinator holds its locks forever.
    "no-abort-rebroadcast": _disable_method(
        "_redrive_abort", "mutation: decided aborts are not re-broadcast"
    ),
    # §VI: a recovering coordinator re-drives decided commits so
    # participants that never heard the decision converge.  Disabled, a
    # coordinator that logged COMMIT and died before broadcasting leaves
    # every participant's prepared half (and its locks) in doubt forever.
    "no-commit-redrive": _disable_method(
        "_redrive_commit", "mutation: decided commits are not re-driven"
    ),
    # §VI + coverage promises: a transaction must not be acknowledged
    # before its targets are covered by a stable counter frontier
    # (acked ⇒ covered ⇒ stable-before-externalized).  This stubs out
    # the coordinator's group stabilization, so commits are externalized
    # with no counter coverage at all — the monitor's I1/I2 checks must
    # flag it without any adversary perturbation.
    "ack-before-covered": _disable_pipeline_method(
        "stabilize_group",
        "mutation: transactions ack without lease coverage",
    ),
    # §VII non-blocking commit: the coordinator must not acknowledge the
    # client until its commit decision is sealed on a quorum of attested
    # participants.  This stubs decision replication to report success
    # without sending (or stabilizing) anything, so the commit is
    # externalized with neither a durable decision quorum nor counter
    # coverage — I1/I2 flag the very first unperturbed run.
    "reply-before-decision-quorum": _disable_coordinator_method(
        "_replicate_decision",
        "mutation: client acked before decision quorum",
        result=True,
    ),
}


def mutation_scope(name: str) -> Scope:
    """A focused scope in which ``name``'s bug is reachable quickly.

    Crash-only scopes (no adversary actions) keep liveness checks armed
    — both shipped mutations manifest as stuck locks / unresolved
    in-doubt transactions, which only the drop-free audit asserts.
    """
    # The two legacy recovery mutations target §VI's coordinator-driven
    # redrive rules.  Decision replication (default on) independently
    # converges the same schedules through the completer protocol, so
    # the scopes pin the legacy single-coordinator path to keep each
    # disabled rule's bug demonstrable.
    if name == "no-abort-rebroadcast":
        return Scope(
            actions=(),
            crash_points=(("twopc", "prepare_target"), ("twopc", "decision")),
            max_crashes=2,
            commit_replication=False,
        )
    if name == "no-commit-redrive":
        # The bug needs a coordinator to die exactly between logging
        # COMMIT and broadcasting it — the twopc/decision crash point.
        return Scope(
            actions=(),
            crash_points=(("twopc", "decision"),),
            max_crashes=1,
            commit_replication=False,
        )
    if name == "ack-before-covered":
        # Acking without coverage violates I1/I2 on the very first
        # unperturbed run — no adversary actions or crashes needed; the
        # counterexample is the empty trace under the async backend.
        return Scope(
            actions=(),
            crash_points=(),
            max_crashes=0,
            backend="counter-async",
            shards=2,
        )
    if name == "reply-before-decision-quorum":
        # Under replication the commit targets' counter round rides the
        # piggybacked decision round, so stubbing replication acks the
        # client with neither quorum nor coverage: I1/I2 flag the empty
        # trace immediately.
        return Scope(
            actions=(),
            crash_points=(),
            max_crashes=0,
            backend="counter-async",
            shards=2,
        )
    if name in MUTATIONS:
        return Scope()
    raise ValueError("unknown mutation %r (known: %s)"
                     % (name, ", ".join(sorted(MUTATIONS))))


# -- one run ------------------------------------------------------------------

@dataclass
class RunResult:
    """Everything the explorer needs from one executed trace."""

    trace: List[int]
    points: List[Any]               # ChoicePoint list from the controller
    violations: List[str]
    outcomes: List[str]
    committed: int
    drops: int
    crashes: List[Tuple[int, Tuple[str, str], float]]
    new_states: int
    suppressed: int
    sim_time: float
    liveness_checked: bool
    monitor_summary: Dict[str, Any]
    cluster: Optional[Any] = None   # only when keep_cluster=True

    @property
    def green(self) -> bool:
        return not self.violations


def _distinct_keys(partitioner, node_index: int, count: int, tag: bytes):
    keys, i = [], 0
    while len(keys) < count:
        key = b"%s-%05d" % (tag, i)
        if partitioner(key) == node_index:
            keys.append(key)
        i += 1
    return keys


def _scope_txns(cluster, count: int):
    """``count`` transactions, each writing one key per shard (forced
    2PC), coordinators assigned round-robin."""
    txns = []
    for t in range(count):
        tag = b"mc%02d" % t
        pairs = [
            (_distinct_keys(cluster.partitioner, i, 1, tag)[0], b"val-" + tag)
            for i in range(cluster.num_nodes)
        ]
        txns.append((t % cluster.num_nodes, pairs))
    return txns


_UNREADABLE = object()


def _read_owner(cluster, key):
    """Read ``key`` through a fresh transaction on its owning shard.

    Returns ``_UNREADABLE`` when the read itself aborts (e.g. the key's
    lock is stuck in an in-doubt transaction) — the caller decides
    whether that is legitimate for the schedule under audit.
    """
    owner = cluster.partitioner(key)
    if not cluster.nodes[owner].is_up:
        return _UNREADABLE

    def body():
        txn = cluster.nodes[owner].coordinator.begin()
        value = yield from txn.get(key)
        yield from txn.commit()
        return value

    try:
        return cluster.run(body(), name="mc-read")
    except (TransactionAborted, NetworkError):
        return _UNREADABLE


def run_one(scope: Scope, trace=(), *, mutation: Optional[str] = None,
            remaining_budget: int = 0, visited: Optional[Dict] = None,
            sleep0=(), crc_cache: Optional[DiskCrcCache] = None,
            tracing: bool = False, keep_cluster: bool = False) -> RunResult:
    """Execute one choice trace in a fresh world and audit the end state."""
    patch = MUTATIONS[mutation] if mutation else contextlib.nullcontext
    with patch():
        return _run_one(scope, trace, remaining_budget, visited, sleep0,
                        crc_cache, tracing, keep_cluster)


def _run_one(scope, trace, remaining_budget, visited, sleep0, crc_cache,
             tracing, keep_cluster) -> RunResult:
    config = ClusterConfig(
        seed=scope.seed,
        num_nodes=scope.nodes,
        tracing=tracing,
        monitor=True,
        twopc_piggyback=scope.piggyback,
        rollback_backend=scope.backend,
        counter_shards=scope.shards,
        monitor_liveness_timeout_s=scope.liveness_timeout,
        commit_replication=scope.commit_replication,
        decision_timeout_s=scope.decision_timeout,
    )
    cluster = TreatyCluster(profile=TREATY_FULL, config=config).start()
    sim = cluster.sim
    controller = TraceController(
        cluster, scope, trace,
        remaining_budget=remaining_budget, visited=visited,
        sleep0=sleep0, crc_cache=crc_cache or DiskCrcCache(),
    )
    sim.chooser = controller
    cluster.obs.tracer.subscribe(controller.on_record)

    txns = _scope_txns(cluster, scope.txns)
    outcomes = ["pending"] * len(txns)
    drive_errors: List[Tuple[int, BaseException]] = []
    violations: List[str] = []

    def drive(index, coord, pairs):
        yield sim.timeout(index * 1e-3)
        txn = cluster.nodes[coord].coordinator.begin()
        put_done = [False]

        def put_phase():
            try:
                for key, value in pairs:
                    yield from txn.put(key, value)
            except TransactionAborted:
                outcomes[index] = "aborted"
                return
            put_done[0] = True

        # A real client times out a stalled operation and gives up; a
        # put blocked on a crashed shard would otherwise park forever.
        puts = sim.process(put_phase(), name="mc-puts-%d" % index)
        yield sim.any_of([puts, sim.timeout(scope.give_up)])
        if outcomes[index] == "aborted":
            return
        if not put_done[0]:
            outcomes[index] = "stuck"
            sim.process(txn.rollback(), name="mc-giveup-%d" % index)
            return
        try:
            yield from txn.commit()
        except TransactionAborted:
            outcomes[index] = "aborted"
            return
        outcomes[index] = "committed"

    def absorb(index):
        def callback(event):
            if not event.ok:
                event.defuse()
                drive_errors.append((index, event.value))
                if outcomes[index] == "pending":
                    outcomes[index] = "failed"
        return callback

    for index, (coord, pairs) in enumerate(txns):
        proc = sim.process(drive(index, coord, pairs),
                           name="mc-txn-%d" % index)
        proc.add_callback(absorb(index))

    monitor = cluster.obs.monitor
    stopped_early = False
    try:
        sim.run(until=sim.now + scope.pre_horizon)
        # Recover every crashed node; crashes can also fire during a
        # recovery round's redrives (bounded by max_crashes), hence the
        # loop.  One extra round bounds total sim time safely below the
        # zombie-fiber horizon (see Scope).
        for _round in range(scope.max_crashes + 1):
            down = [
                i for i in range(cluster.num_nodes)
                if not cluster.nodes[i].is_up
            ]
            if not down:
                break
            if scope.no_restart:
                # Crashed nodes stay dead.  The survivors get one settle
                # window to converge via the completer protocol — decision
                # timeouts fire, a completer drives the group outcome.
                sim.run(until=sim.now + scope.post_horizon)
                break
            for i in down:
                cluster.run(cluster.recover_node(i), name="mc-recover-%d" % i)
            sim.run(until=sim.now + scope.post_horizon)
    except MonitorViolation:
        # The strict monitor already recorded it; the trace up to this
        # instant is the counterexample — no end-state audit needed.
        stopped_early = True
    except Exception as exc:  # noqa: BLE001 - a crashed harness must
        # surface as a (shrinkable) counterexample, not kill the search.
        stopped_early = True
        violations.append("harness: unhandled %s: %s"
                          % (type(exc).__name__, exc))

    controller.freeze()
    monitor.strict = False

    if not stopped_early:
        # Drive-fiber failures: expected when the fiber's coordinator
        # node crashed (zombie sends die at the NIC) or when the network
        # path failed mid-crash; anything else is a real bug.
        crashed_nodes = {victim for victim, _point, _t in controller.crashes}
        for index, error in drive_errors:
            coord = txns[index][0]
            if coord in crashed_nodes:
                continue
            if isinstance(error, (TransactionAborted, NetworkError)):
                continue
            if isinstance(error, MonitorViolation):
                continue  # already recorded by the monitor itself
            violations.append(
                "harness: txn %d on live coordinator node%d died: %s: %s"
                % (index, coord, type(error).__name__, error)
            )

        # Liveness-grade audits only for drop-free schedules: dropping a
        # one-shot message (recovery redrives are single-round by
        # design) legitimately wedges the protocol; crashes, duplicates
        # and delays all preserve convergence.
        liveness = controller.drops == 0
        if liveness:
            for i, node in enumerate(cluster.nodes):
                if not node.is_up:
                    # Under no_restart the dead node is the fault model,
                    # not a violation — survivors are what must converge.
                    if not scope.no_restart:
                        violations.append(
                            "liveness: node%d still down at end of run" % i
                        )
                    continue
                held = {
                    txn_id: list(keys)
                    for txn_id, keys in node.manager.locks._held.items()
                    if keys
                }
                if held:
                    violations.append(
                        "liveness: node%d lock table not quiescent: %s"
                        % (i, sorted(
                            txn_id.hex() for txn_id in held))
                    )
                if node.participant.active:
                    violations.append(
                        "liveness: node%d has in-doubt participant txns: %s"
                        % (i, sorted(
                            gid.hex() for gid in node.participant.active))
                    )
            monitor.check_quiescent(now=sim.now)

        # Safety: atomicity + durability, on every schedule.  Reads run
        # after freeze(), so they are never perturbed or recorded.
        for index, (coord, pairs) in enumerate(txns):
            values = [_read_owner(cluster, key) for key, _ in pairs]
            # A key whose owning shard is permanently dead (no_restart)
            # is durable-but-unservable: its half lives in the dead
            # node's sealed storage.  Excuse it from the visibility
            # count; mismatches on live shards still flag.
            excused = sum(
                1 for value, (key, _v) in zip(values, pairs)
                if value is _UNREADABLE and scope.no_restart
                and not cluster.nodes[cluster.partitioner(key)].is_up
            )
            readable = [
                (value == pairs[i][1])
                for i, value in enumerate(values) if value is not _UNREADABLE
            ]
            if outcomes[index] == "committed":
                if len(readable) + excused < len(values) or not all(readable):
                    violations.append(
                        "durability: txn %d committed but writes are not "
                        "all visible: %s" % (index, [
                            "?" if v is _UNREADABLE else repr(v)
                            for v in values
                        ])
                    )
            elif any(readable) and not all(readable):
                violations.append(
                    "atomicity: txn %d (%s) applied on some shards only: %s"
                    % (index, outcomes[index], [
                        "?" if v is _UNREADABLE else repr(v) for v in values
                    ])
                )

    violations.extend(
        v for v in monitor.violations if v not in violations
    )

    result = RunResult(
        trace=list(trace),
        points=controller.points,
        violations=violations,
        outcomes=outcomes,
        committed=sum(1 for o in outcomes if o == "committed"),
        drops=controller.drops,
        crashes=list(controller.crashes),
        new_states=controller.new_states,
        suppressed=controller.suppressed,
        sim_time=sim.now,
        liveness_checked=(not stopped_early and controller.drops == 0),
        monitor_summary=monitor.summary(),
        cluster=cluster if keep_cluster else None,
    )
    return result
