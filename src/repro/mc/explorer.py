"""Iterative-deepening DFS over choice traces, with DPOR-style pruning.

The search space is the tree of choice traces (see
:mod:`repro.mc.controller`): each run's recorded choice points spawn
child traces that flip exactly one beyond-prefix choice to a non-default
option.  Iterative deepening is over the *perturbation budget* — the
number of non-default choices in a trace — so depth ``N`` covers every
schedule with at most ``N`` adversary actions / crashes, the bounded
search CHESS showed finds almost all real schedule bugs at tiny depths.

Pruning:

* **visited-state subsumption** — the controller digests cluster state
  at every beyond-prefix choice point; reaching a digest a previous run
  covered with strictly more remaining budget subsumes the rest of the
  run (its alternatives are counted, not executed).
* **sleep sets** — when alternative ``k`` of a point is expanded, its
  earlier siblings' ``(footprint, action)`` pairs ride along as the
  child's initial sleep set; the controller evicts entries as dependent
  actions execute (node-set intersection), and the explorer refuses to
  branch an alternative still asleep at its point.  Conservative on
  both sides: eviction may be spurious (less pruning), entries only
  ever suppress re-exploration of an action that an already-explored
  sibling covers while nothing dependent ran.

This module is the single place in ``src/repro`` outside the sim's RNG
wrapper that may touch the wall clock (``--budget 60s`` is a real-time
bound on exploration; the *simulated* worlds stay deterministic — the
determinism lint enforces exactly this split).

On violation the trace is shrunk by delta debugging on choice indices
(drop one non-default choice at a time, keep the trace if it still
fails) and exported as replayable JSON; :func:`replay_counterexample`
re-executes it bit-for-bit.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .digest import DiskCrcCache
from .harness import RunResult, Scope, run_one

__all__ = [
    "ExploreStats", "explore", "shrink_trace", "save_counterexample",
    "load_counterexample", "replay_counterexample",
]

COUNTEREXAMPLE_FORMAT = "repro-mc-counterexample-v1"


@dataclass
class ExploreStats:
    """Progress counters, printed by ``repro mc explore``."""

    runs: int = 0
    states: int = 0            # distinct digests in the visited cache
    pruned_sleep: int = 0      # alternatives suppressed by sleep sets
    pruned_visited: int = 0    # alternatives suppressed by subsumption
    deepest_trace: int = 0     # most choice points seen in one run
    depth_reached: int = 0     # perturbation budget of the current pass
    depth_exhausted: Dict[int, bool] = field(default_factory=dict)
    elapsed_s: float = 0.0
    shrink_runs: int = 0
    violation: Optional[str] = None

    @property
    def pruned(self) -> int:
        return self.pruned_sleep + self.pruned_visited

    @property
    def prune_rate(self) -> float:
        considered = self.runs + self.pruned
        return self.pruned / considered if considered else 0.0

    @property
    def runs_per_s(self) -> float:
        return self.runs / self.elapsed_s if self.elapsed_s > 0 else 0.0


def _nonzeros(trace) -> int:
    return sum(1 for choice in trace if choice)


def _trim(trace) -> List[int]:
    trace = list(trace)
    while trace and trace[-1] == 0:
        trace.pop()
    return trace


def _expansions(result: RunResult, prefix_len: int, budget: int,
                stats: ExploreStats) -> List[Tuple[List[int], frozenset]]:
    """Child traces branching off one run, sleep sets attached."""
    if _nonzeros(result.trace) + 1 > budget:
        return []
    children: List[Tuple[List[int], frozenset]] = []
    base = [point.chosen for point in result.points]
    for point in result.points:
        if point.index < prefix_len or not point.expandable:
            continue
        siblings: List[Tuple[Any, str]] = []
        for alt in range(1, point.num_options):
            label, fp = point.options[alt]
            entry = (fp, label)
            if fp is not None and entry in point.sleep:
                stats.pruned_sleep += 1
            else:
                child_trace = base[:point.index] + [alt]
                children.append(
                    (child_trace, frozenset(point.sleep) | set(siblings))
                )
            if fp is not None:
                siblings.append(entry)
    return children


def explore(scope: Scope, *, depth: int = 2,
            budget_s: Optional[float] = None,
            max_runs: Optional[int] = None,
            mutation: Optional[str] = None,
            shrink: bool = True,
            progress: Optional[Callable[[ExploreStats], None]] = None,
            ) -> Tuple[ExploreStats, Optional[Dict[str, Any]]]:
    """Iterative-deepening exhaustive pass over ``scope``.

    Returns ``(stats, counterexample)`` — the counterexample is a
    replayable document (see :func:`save_counterexample`) already shrunk
    to a minimal trace, or ``None`` if every explored schedule was
    clean.
    """
    visited: Dict[int, int] = {}
    crc_cache = DiskCrcCache()
    stats = ExploreStats()
    started = time.monotonic()
    deadline = started + budget_s if budget_s is not None else None

    def out_of_budget() -> bool:
        if deadline is not None and time.monotonic() >= deadline:
            return True
        return max_runs is not None and stats.runs >= max_runs

    def execute(trace, sleep0, budget) -> RunResult:
        result = run_one(
            scope, trace, mutation=mutation,
            remaining_budget=budget - _nonzeros(trace),
            visited=visited, sleep0=sleep0, crc_cache=crc_cache,
        )
        stats.runs += 1
        stats.states = len(visited)
        stats.pruned_visited += result.suppressed
        stats.deepest_trace = max(stats.deepest_trace, len(result.points))
        stats.elapsed_s = time.monotonic() - started
        if progress is not None:
            progress(stats)
        return result

    failing: Optional[RunResult] = None
    for budget in range(1, depth + 1):
        stats.depth_reached = budget
        exhausted = True
        root = execute([], frozenset(), budget)
        if root.violations:
            failing = root
            break
        stack = _expansions(root, 0, budget, stats)
        stack.reverse()  # pop in (earliest point, smallest alt) order
        while stack:
            if out_of_budget():
                exhausted = False
                break
            trace, sleep0 = stack.pop()
            result = execute(trace, sleep0, budget)
            if result.violations:
                failing = result
                break
            grandchildren = _expansions(result, len(trace), budget, stats)
            grandchildren.reverse()
            stack.extend(grandchildren)
        stats.depth_exhausted[budget] = exhausted and failing is None
        if failing is not None or out_of_budget():
            break

    stats.elapsed_s = time.monotonic() - started
    if failing is None:
        return stats, None

    stats.violation = failing.violations[0]
    trace = _trim(failing.trace)
    if shrink:
        trace, failing, shrink_runs = shrink_trace(
            scope, trace, mutation=mutation
        )
        stats.shrink_runs = shrink_runs
        stats.elapsed_s = time.monotonic() - started
    return stats, build_counterexample(scope, trace, failing, mutation)


def shrink_trace(scope: Scope, trace, *, mutation: Optional[str] = None
                 ) -> Tuple[List[int], RunResult, int]:
    """Delta-debug a failing trace to a locally minimal one.

    Repeatedly zeroes one non-default choice; a candidate that still
    fails replaces the current trace.  Terminates when no single removal
    preserves the violation — every remaining perturbation is necessary.
    Returns ``(minimal_trace, its RunResult, runs spent)``.
    """
    current = _trim(trace)
    result = run_one(scope, current, mutation=mutation)
    runs = 1
    if not result.violations:
        raise ValueError("shrink_trace called with a non-failing trace")
    improved = True
    while improved:
        improved = False
        for index in [i for i, choice in enumerate(current) if choice]:
            candidate = _trim(
                current[:index] + [0] + current[index + 1:]
            )
            attempt = run_one(scope, candidate, mutation=mutation)
            runs += 1
            if attempt.violations:
                current, result = candidate, attempt
                improved = True
                break
    return current, result, runs


# -- counterexample documents -------------------------------------------------

def build_counterexample(scope: Scope, trace, result: RunResult,
                         mutation: Optional[str]) -> Dict[str, Any]:
    return {
        "format": COUNTEREXAMPLE_FORMAT,
        "scope": scope.to_dict(),
        "mutation": mutation,
        "trace": list(trace),
        "violations": list(result.violations),
        "outcomes": list(result.outcomes),
        "sim_time": result.sim_time,
        "crashes": [
            {"node": victim, "at": list(point), "time": when}
            for victim, point, when in result.crashes
        ],
        # The perturbed choice points, for humans; replay only needs
        # the trace.
        "choices": [
            point.describe() for point in result.points if point.chosen
        ],
    }


def save_counterexample(path: str, document: Dict[str, Any]) -> None:
    with open(path, "w") as fp:
        json.dump(document, fp, indent=2, sort_keys=True)
        fp.write("\n")


def load_counterexample(path: str) -> Dict[str, Any]:
    with open(path) as fp:
        document = json.load(fp)
    if document.get("format") != COUNTEREXAMPLE_FORMAT:
        raise ValueError(
            "not a counterexample file (format=%r)" % document.get("format")
        )
    return document


def replay_counterexample(document: Dict[str, Any], *,
                          tracing: bool = False,
                          keep_cluster: bool = False,
                          mutation: Optional[str] = "__from_document__",
                          ) -> Tuple[Scope, RunResult]:
    """Re-execute a counterexample document bit-for-bit.

    ``mutation`` defaults to the document's own; pass ``None`` to replay
    the same trace against the *unmutated* protocol (the fix-validation
    workflow).
    """
    scope = Scope.from_dict(document["scope"])
    if mutation == "__from_document__":
        mutation = document.get("mutation")
    result = run_one(
        scope, document["trace"], mutation=mutation,
        tracing=tracing, keep_cluster=keep_cluster,
    )
    return scope, result
