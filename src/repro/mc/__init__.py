"""repro.mc — bounded model checker for the secure 2PC protocol.

The simulator is deterministic: given one seed, a run is a pure function
of the choices made at its nondeterministic points (adversary moves on
frames in flight, crash injections at protocol steps, optional ready-set
tie breaks).  This package enumerates those choices explicitly — a
stateless-search model checker in the CHESS/DPOR tradition:

* :mod:`repro.mc.controller` — the controlled scheduler.  Installed as
  ``Simulator.chooser``; replays a prescribed choice trace and records
  every choice point it was consulted at.
* :mod:`repro.mc.harness` — one world per trace: builds a fresh
  cluster, drives a small fixed workload (the *scope*, default 2
  transactions x 3 nodes), applies the trace, and audits safety
  (I1–I5 online, atomicity, durability) plus — on schedules where no
  message was dropped — liveness (quiescence, lock release).
* :mod:`repro.mc.digest` — canonical digest of per-node protocol state
  (Clog/WAL bytes, lock tables, counter views, in-flight frames) for
  the visited-state cache.
* :mod:`repro.mc.explorer` — iterative-deepening DFS over choice
  traces with sleep-set pruning and visited-state subsumption, plus
  counterexample shrinking (delta debugging) and replay.
* :mod:`repro.mc.faults` — the crash-point vocabulary shared with the
  randomized crash-conformance sweep.

Entry point: ``repro mc explore --scope 2x3 --depth N --budget 60s``.
"""

from .controller import ChoicePoint, TraceController
from .explorer import (
    ExploreStats,
    explore,
    load_counterexample,
    replay_counterexample,
    save_counterexample,
    shrink_trace,
)
from .faults import (
    SCENARIOS,
    CrashInjector,
    coordinator_crash_points,
    piggyback_crash_points,
)
from .harness import MUTATIONS, RunResult, Scope, parse_scope, run_one

__all__ = [
    "ChoicePoint",
    "TraceController",
    "ExploreStats",
    "explore",
    "shrink_trace",
    "save_counterexample",
    "load_counterexample",
    "replay_counterexample",
    "SCENARIOS",
    "CrashInjector",
    "piggyback_crash_points",
    "coordinator_crash_points",
    "Scope",
    "RunResult",
    "MUTATIONS",
    "parse_scope",
    "run_one",
]
