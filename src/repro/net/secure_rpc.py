"""Treaty's secure channel: TxMessages over eRPC with at-most-once delivery.

This is the layer §VII-A describes: every 2PC message is sealed with the
cluster network key into the ``IV || pad || metadata || data || MAC``
layout before it enters the untrusted host memory and NIC, and every
received request passes the replay guard so that a duplicated or
re-injected packet can never double-execute an operation.

When the environment profile disables encryption ("Treaty w/o Enc",
native baselines), messages travel as plaintext encodings — functionally
observable by the adversary, which is exactly what that configuration
trades away — and no crypto cost is charged.
"""

from __future__ import annotations

import itertools
import struct
from typing import Any, Callable, Generator, Tuple

from ..crypto.keys import KeyRing
from ..errors import ReplayError
from ..obs.registry import SIZE_BUCKETS_BYTES
from ..sim.core import Event
from ..tee.runtime import NodeRuntime
from .erpc import ErpcEndpoint
from .message import MsgType, ReplayGuard, TxMessage, wire_size

__all__ = ["SecureRpc"]

# Handler signature: (TxMessage, src_address) -> generator -> TxMessage.
SecureHandler = Callable[[TxMessage, str], Generator[Event, Any, TxMessage]]


class SecureRpc:
    """Secure transaction messaging bound to one node's eRPC endpoint."""

    def __init__(
        self,
        runtime: NodeRuntime,
        endpoint: ErpcEndpoint,
        keyring: KeyRing,
        node_numeric_id: int,
    ):
        self.runtime = runtime
        self.endpoint = endpoint
        self.node_numeric_id = node_numeric_id
        self._aead = keyring.network_aead()
        self.replay_guard = ReplayGuard()
        self._iv_seq = itertools.count(1)
        self.messages_sealed = 0
        self.auth_failures = 0
        self.tracer = runtime.tracer
        # Shared across this runtime's RPC endpoints (cluster + front).
        self._sealed_counter = runtime.metrics.counter("net.messages_sealed")
        self._auth_fail_counter = runtime.metrics.counter("net.auth_failures")
        self._wire_hist = runtime.metrics.histogram(
            "net.wire_bytes", SIZE_BUCKETS_BYTES
        )

    # -- encoding -----------------------------------------------------------
    @property
    def _encrypted(self) -> bool:
        return self.runtime.profile.encryption

    def _next_iv(self) -> bytes:
        # Node id + per-node counter: never reused cluster-wide.
        return struct.pack("<IQ", self.node_numeric_id & 0xFFFFFFFF, next(self._iv_seq))

    def _encode(self, message: TxMessage) -> Tuple[bytes, int]:
        """Produce wire bytes + size, sealing when the profile encrypts."""
        if self._encrypted:
            self.messages_sealed += 1
            self._sealed_counter.inc()
            wire = message.seal(self._aead, self._next_iv())
        else:
            wire = message.encode()
        nbytes = wire_size(len(message.body), self._encrypted)
        self._wire_hist.observe(nbytes)
        return wire, nbytes

    def _decode(self, wire: bytes) -> TxMessage:
        if self._encrypted:
            return TxMessage.unseal(self._aead, wire)
        return TxMessage.decode(wire)

    # -- client side -------------------------------------------------------------
    def enqueue(self, dst: str, message: TxMessage, express: bool = False) -> Event:
        """Seal and enqueue a request; the event fires with the reply TxMessage.

        Like eRPC's ``enqueue_request``, this returns immediately so a
        coordinator can batch requests to all participants before
        yielding (Figure 2, steps 1–2).

        ``express`` marks traffic served by a dedicated enclave thread
        (the asynchronous trusted-counter service, §VI) that skips the
        shared fiber scheduler's resume delay.
        """
        outcome = self.runtime.sim.event()
        self.runtime.sim.process(
            self._exchange(dst, message, outcome, express),
            name="securerpc@%d" % self.node_numeric_id,
        )
        return outcome

    def call(
        self, dst: str, message: TxMessage
    ) -> Generator[Event, Any, TxMessage]:
        """Send one request and wait for its verified reply."""
        reply = yield self.enqueue(dst, message)
        return reply

    def _exchange(
        self, dst: str, message: TxMessage, outcome: Event, express: bool = False
    ):
        span = self.tracer.span(
            "net", "rpc", node=self.runtime.name or None,
            dst=dst, msg_type=message.msg_type,
        )
        nbytes = 0
        try:
            wire, nbytes = self._encode(message)
            if self._encrypted:
                yield from self.runtime.seal_cost(nbytes)
            reply = yield self.endpoint.enqueue_request(
                dst, message.msg_type, wire, nbytes
            )
            # Under SCONE, the fiber that blocked on this RPC waits for
            # the userland scheduler to run it again; the delay grows
            # with the number of concurrently served requests (§VII-C).
            if not express:
                resume_delay = self.runtime.fiber_resume_delay()
                if resume_delay > 0.0:
                    yield self.runtime.sim.timeout(resume_delay)
            if self._encrypted:
                yield from self.runtime.seal_cost(reply.nbytes)
            decoded = self._decode(reply.payload)
        except Exception as exc:  # noqa: BLE001 - propagate to the waiter
            span.close(bytes=nbytes, error=type(exc).__name__)
            if not outcome.triggered:
                outcome.fail(exc)
            return
        span.close(bytes=nbytes)
        if not outcome.triggered:
            outcome.succeed(decoded)

    # -- server side ----------------------------------------------------------------
    def register(self, msg_type: int, handler: SecureHandler) -> None:
        """Install a verified-message handler for ``msg_type`` requests."""

        def wrapped(payload: bytes, src: str):
            if self._encrypted:
                yield from self.runtime.seal_cost(len(payload))
            try:
                message = self._decode(payload)
            except Exception:
                self.auth_failures += 1
                self._auth_fail_counter.inc()
                self.tracer.event(
                    "net", "auth_failure", node=self.runtime.name or None,
                    src=src,
                )
                raise
            # At-most-once: ACK-type messages are exempt (§VII-A), every
            # state-changing request is checked.
            if message.msg_type not in (MsgType.ACK, MsgType.FAIL):
                try:
                    self.replay_guard.check(message)
                except ReplayError:
                    # A replayed request is *not* re-executed and *not*
                    # answered: the genuine execution's reply (matched by
                    # request id) is the only response the sender sees.
                    return None, 0
            reply = yield from handler(message, src)
            wire, nbytes = self._encode(reply)
            if self._encrypted:
                yield from self.runtime.seal_cost(nbytes)
            return wire, nbytes

        self.endpoint.register_handler(msg_type, wrapped)
