"""Treaty's secure channel: TxMessages over eRPC with at-most-once delivery.

This is the layer §VII-A describes: every 2PC message is sealed with the
cluster network key into the ``IV || pad || metadata || data || MAC``
layout before it enters the untrusted host memory and NIC, and every
received request passes the replay guard so that a duplicated or
re-injected packet can never double-execute an operation.

With transport batching on (``net_batching``), sealing moves from the
per-message path into a batch codec installed on the eRPC endpoint: the
endpoint hands the codec every coalesced batch and ONE AEAD pass (single
IV, length-prefixed concatenation, single MAC) protects all of it.  The
batch AAD binds the sender and a per-sender batch sequence number, and a
batch-level replay-guard entry rejects a replayed frame as a unit —
drop/duplicate/delay of a coalesced frame affects the whole batch
atomically.  Per-message ``(node, txn, op)`` replay checks still run on
the receiving side, unchanged.

When the environment profile disables encryption ("Treaty w/o Enc",
native baselines), messages travel as plaintext encodings — functionally
observable by the adversary, which is exactly what that configuration
trades away — and no crypto cost is charged.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import replace
from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

from ..crypto.keys import KeyRing
from ..errors import ReplayError
from ..obs.registry import SIZE_BUCKETS_BYTES
from ..sim.core import Event
from ..tee.runtime import NodeRuntime
from .erpc import ErpcEndpoint
from .message import (
    MsgType,
    ReplayGuard,
    TxMessage,
    batch_wire_size,
    pack_parts,
    peek_trace,
    seal_batch,
    unpack_parts,
    unseal_batch,
    wire_size,
)

__all__ = ["SecureRpc"]

# Handler signature: (TxMessage, src_address) -> generator -> TxMessage.
SecureHandler = Callable[[TxMessage, str], Generator[Event, Any, TxMessage]]

#: AAD for sealed batches; the sender id and batch sequence number are
#: packed in so a batch replayed under a different identity fails the MAC.
_AAD_BATCH = b"treaty-batch-v1"

#: replay-guard txn-id sentinel for batch-level sequence entries.  Real
#: transaction ids are non-negative, so batch entries can never collide
#: with per-message ``(node, txn, op)`` triples.
_BATCH_TXN_SENTINEL = -1


def _parts_trace(parts: Sequence[bytes]) -> Optional[str]:
    """Trace id of the first context-carrying part of a batch (or None)."""
    for part in parts:
        trace = peek_trace(part)
        if trace is not None:
            return trace
    return None


class _SecureBatchCodec:
    """Seals/unseals coalesced batches for one :class:`SecureRpc`.

    Installed on the eRPC endpoint when ``net_batching`` is on.  Both
    directions charge exactly one AEAD cost for the whole batch.
    """

    __slots__ = ("rpc",)

    def __init__(self, rpc: "SecureRpc"):
        self.rpc = rpc

    def encode_batch(self, parts: Sequence[bytes]):
        """One AEAD pass over the whole batch; returns (blob, nbytes, meta)."""
        rpc = self.rpc
        if not rpc._encrypted:
            blob = pack_parts(parts)
            return blob, len(blob), {}
            yield  # pragma: no cover - keeps this a generator
        batch_id = rpc._next_batch_id()
        aad = _AAD_BATCH + struct.pack(
            "<QQ", rpc.node_numeric_id & 0xFFFFFFFFFFFFFFFF, batch_id
        )
        # Attribute the frame's single AEAD pass to the first sub-message
        # carrying a trace context (batch-shared cost; parent is resolved
        # by interval containment in the critical-path analyzer).
        span = rpc.tracer.span(
            "crypto", "seal_batch", node=rpc.runtime.name or None,
            parent=0, trace=_parts_trace(parts),
            seal_ops=1, parts=len(parts),
        )
        blob = seal_batch(rpc._aead, rpc._next_iv(), parts, aad)
        rpc.seal_ops += 1
        rpc._seal_ops_counter.inc()
        yield from rpc.runtime.seal_cost(len(blob))
        span.close(bytes=len(blob))
        return blob, len(blob), {
            "batch_src": rpc.node_numeric_id,
            "batch_id": batch_id,
        }

    def decode_batch(self, payload: bytes, src: str, meta: dict):
        """Unseal + batch-replay-check; ``None`` drops the batch as a unit."""
        rpc = self.rpc
        if not rpc._encrypted:
            return unpack_parts(payload)
            yield  # pragma: no cover - keeps this a generator
        span = rpc.tracer.span(
            "crypto", "open_batch", node=rpc.runtime.name or None,
            parent=0, trace=None, seal_ops=1, bytes=len(payload),
        )
        yield from rpc.runtime.seal_cost(len(payload))
        aad = _AAD_BATCH + struct.pack(
            "<QQ", meta.get("batch_src", 0) & 0xFFFFFFFFFFFFFFFF,
            meta.get("batch_id", 0),
        )
        try:
            parts = unseal_batch(rpc._aead, payload, aad)
        except Exception:
            span.close(error="auth_failure")
            rpc.auth_failures += 1
            rpc._auth_fail_counter.inc()
            rpc.tracer.event(
                "net", "auth_failure", node=rpc.runtime.name or None, src=src,
            )
            raise
        # Only after decryption do we know which trace pays for the pass.
        if rpc.tracer.enabled:
            span.trace = _parts_trace(parts)
        span.close(parts=len(parts))
        rpc.seal_ops += 1
        rpc._seal_ops_counter.inc()
        # Batch-level at-most-once: the (sender, batch sequence) pair is
        # recorded in the same replay guard as per-message triples, so a
        # duplicated/replayed frame is rejected before any sub-message
        # dispatches — atomically, as the adversary delivered it.
        try:
            rpc.replay_guard.check(
                TxMessage(
                    0, meta.get("batch_src", 0), _BATCH_TXN_SENTINEL,
                    meta.get("batch_id", 0),
                )
            )
        except ReplayError:
            return None
        return parts


class SecureRpc:
    """Secure transaction messaging bound to one node's eRPC endpoint."""

    def __init__(
        self,
        runtime: NodeRuntime,
        endpoint: ErpcEndpoint,
        keyring: KeyRing,
        node_numeric_id: int,
        epoch: int = 0,
    ):
        self.runtime = runtime
        self.endpoint = endpoint
        self.node_numeric_id = node_numeric_id
        #: boot epoch folded into batch sequence numbers so a recovered
        #: node's fresh batches can never collide with (and be rejected
        #: as replays of) its pre-crash ones.
        self.epoch = epoch
        self._aead = keyring.network_aead()
        self.replay_guard = ReplayGuard()
        self._iv_seq = itertools.count(1)
        self._batch_seq = itertools.count(1)
        self.messages_sealed = 0
        #: actual AEAD passes (seal or open).  With batching on this is
        #: what shrinks: one pass per coalesced batch instead of one per
        #: message — the quantity the perf win is pinned on.
        self.seal_ops = 0
        self.auth_failures = 0
        self.tracer = runtime.tracer
        # Shared across this runtime's RPC endpoints (cluster + front).
        self._sealed_counter = runtime.metrics.counter("net.messages_sealed")
        self._seal_ops_counter = runtime.metrics.counter("net.seal_ops")
        self._auth_fail_counter = runtime.metrics.counter("net.auth_failures")
        self._wire_hist = runtime.metrics.histogram(
            "net.wire_bytes", SIZE_BUCKETS_BYTES
        )
        self._batched = endpoint.batching
        if self._batched:
            endpoint.batch_codec = _SecureBatchCodec(self)

    # -- encoding -----------------------------------------------------------
    @property
    def _encrypted(self) -> bool:
        return self.runtime.profile.encryption

    def _next_iv(self) -> bytes:
        # Node id + per-node counter: never reused cluster-wide.
        return struct.pack("<IQ", self.node_numeric_id & 0xFFFFFFFF, next(self._iv_seq))

    def _next_batch_id(self) -> int:
        return (self.epoch << 40) | next(self._batch_seq)

    def _encode(self, message: TxMessage) -> Tuple[bytes, int]:
        """Produce wire bytes + size, sealing when the profile encrypts."""
        if self._encrypted:
            self.messages_sealed += 1
            self._sealed_counter.inc()
            self.seal_ops += 1
            self._seal_ops_counter.inc()
            wire = message.seal(self._aead, self._next_iv())
        else:
            wire = message.encode()
        nbytes = wire_size(len(message.body), self._encrypted)
        self._wire_hist.observe(nbytes)
        return wire, nbytes

    def _encode_part(self, message: TxMessage) -> Tuple[bytes, int]:
        """Batch-mode encode: plaintext part, sealed later per batch.

        The returned size is the message's *standalone* wire size (what
        it would cost unbatched) — the endpoint uses it as the baseline
        for the frames-saved accounting, and the batch codec replaces it
        with the true coalesced size at seal time.
        """
        if self._encrypted:
            self.messages_sealed += 1
            self._sealed_counter.inc()
        wire = message.encode()
        nbytes = wire_size(len(message.body), self._encrypted)
        self._wire_hist.observe(nbytes)
        return wire, nbytes

    def _decode(self, wire: bytes) -> TxMessage:
        if self._encrypted:
            self.seal_ops += 1
            self._seal_ops_counter.inc()
            return TxMessage.unseal(self._aead, wire)
        return TxMessage.decode(wire)

    # -- client side -------------------------------------------------------------
    def enqueue(self, dst: str, message: TxMessage, express: bool = False) -> Event:
        """Seal and enqueue a request; the event fires with the reply TxMessage.

        Like eRPC's ``enqueue_request``, this returns immediately so a
        coordinator can batch requests to all participants before
        yielding (Figure 2, steps 1–2).

        ``express`` marks traffic served by a dedicated enclave thread
        (the asynchronous trusted-counter service, §VI) that skips the
        shared fiber scheduler's resume delay.
        """
        outcome = self.runtime.sim.event()
        self.runtime.sim.process(
            self._exchange(dst, message, outcome, express),
            name="securerpc@%d" % self.node_numeric_id,
        )
        return outcome

    def broadcast(
        self,
        pairs: Sequence[Tuple[str, TxMessage]],
        express: bool = False,
    ) -> List[Event]:
        """Enqueue one message per destination in the same instant.

        This is the group-round fan-out primitive used by the 2PC
        coordinator (PREPARE/COMMIT/COMPLETE) and the trusted-counter
        echo rounds: because every destination is enqueued before the
        caller yields, each destination's traffic lands in the same
        doorbell window and coalesces with any concurrent rounds headed
        the same way.  Returns one outcome event per destination, in
        input order.
        """
        return [
            self.enqueue(dst, message, express=express)
            for dst, message in pairs
        ]

    def call(
        self, dst: str, message: TxMessage
    ) -> Generator[Event, Any, TxMessage]:
        """Send one request and wait for its verified reply."""
        reply = yield self.enqueue(dst, message)
        return reply

    def _exchange(
        self, dst: str, message: TxMessage, outcome: Event, express: bool = False
    ):
        span = self.tracer.span(
            "net", "rpc", node=self.runtime.name or None,
            dst=dst, msg_type=message.msg_type,
        )
        # Stamp this fiber's trace context into the sealed metadata: the
        # receiving fiber adopts it, chaining its handler span under this
        # rpc span — the cross-node edge of the transaction's DAG.
        if self.tracer.enabled and span.trace is not None:
            message = replace(
                message, trace=span.trace, trace_parent=span.sid,
                trace_origin=self.node_numeric_id,
            )
        nbytes = 0
        try:
            if self._batched:
                # The batch codec seals the coalesced frame in one AEAD
                # pass and charges its cost once, on both directions.
                wire, nbytes = self._encode_part(message)
                reply = yield self.endpoint.enqueue_request(
                    dst, message.msg_type, wire, nbytes
                )
            else:
                wire, nbytes = self._encode(message)
                if self._encrypted:
                    cspan = self.tracer.span(
                        "crypto", "seal", node=self.runtime.name or None,
                        seal_ops=1, bytes=nbytes,
                    )
                    yield from self.runtime.seal_cost(nbytes)
                    cspan.close()
                reply = yield self.endpoint.enqueue_request(
                    dst, message.msg_type, wire, nbytes
                )
            # Under SCONE, the fiber that blocked on this RPC waits for
            # the userland scheduler to run it again; the delay grows
            # with the number of concurrently served requests (§VII-C).
            if not express:
                resume_delay = self.runtime.fiber_resume_delay()
                if resume_delay > 0.0:
                    yield self.runtime.sim.timeout(resume_delay)
            if self._batched:
                decoded = TxMessage.decode(reply.payload)
            else:
                if self._encrypted:
                    cspan = self.tracer.span(
                        "crypto", "open", node=self.runtime.name or None,
                        seal_ops=1, bytes=reply.nbytes,
                    )
                    yield from self.runtime.seal_cost(reply.nbytes)
                    cspan.close()
                decoded = self._decode(reply.payload)
        except Exception as exc:  # noqa: BLE001 - propagate to the waiter
            span.close(bytes=nbytes, error=type(exc).__name__)
            if not outcome.triggered:
                outcome.fail(exc)
            return
        span.close(bytes=nbytes)
        if not outcome.triggered:
            outcome.succeed(decoded)

    # -- server side ----------------------------------------------------------------
    def register(self, msg_type: int, handler: SecureHandler) -> None:
        """Install a verified-message handler for ``msg_type`` requests."""

        def wrapped(payload: bytes, src: str):
            if self._batched:
                # The batch codec already verified/decrypted the frame
                # and charged its one AEAD cost; parts are plaintext.
                try:
                    message = TxMessage.decode(payload)
                except Exception:
                    self.auth_failures += 1
                    self._auth_fail_counter.inc()
                    self.tracer.event(
                        "net", "auth_failure", node=self.runtime.name or None,
                        src=src,
                    )
                    raise
            else:
                if self._encrypted:
                    yield from self.runtime.seal_cost(len(payload))
                try:
                    message = self._decode(payload)
                except Exception:
                    self.auth_failures += 1
                    self._auth_fail_counter.inc()
                    self.tracer.event(
                        "net", "auth_failure", node=self.runtime.name or None,
                        src=src,
                    )
                    raise
            # At-most-once: ACK-type messages are exempt (§VII-A), every
            # state-changing request is checked.
            if message.msg_type not in (MsgType.ACK, MsgType.FAIL):
                try:
                    self.replay_guard.check(message)
                except ReplayError:
                    # A replayed request is *not* re-executed and *not*
                    # answered: the genuine execution's reply (matched by
                    # request id) is the only response the sender sees —
                    # and the replayed context is never adopted, so a
                    # replayed frame cannot graft spans into a live trace.
                    return None, 0
            # Adopt the sender's trace context (verified: it traveled
            # inside the MAC'd metadata) so this handler fiber's spans
            # join the transaction's cross-node DAG.
            handler_span = None
            if self.tracer.enabled and message.trace is not None:
                self.tracer.adopt(message.trace, message.trace_parent)
                handler_span = self.tracer.span(
                    "rpc",
                    MsgType.NAMES.get(message.msg_type, str(message.msg_type)),
                    node=self.runtime.name or None,
                    src=src, origin=message.trace_origin,
                )
            try:
                reply = yield from handler(message, src)
            finally:
                if handler_span is not None:
                    handler_span.close()
            if self._batched:
                wire, nbytes = self._encode_part(reply)
            else:
                wire, nbytes = self._encode(reply)
                if self._encrypted:
                    cspan = self.tracer.span(
                        "crypto", "seal", node=self.runtime.name or None,
                        seal_ops=1, bytes=nbytes,
                    )
                    yield from self.runtime.seal_cost(nbytes)
                    cspan.close()
            return wire, nbytes

        self.endpoint.register_handler(msg_type, wrapped)
