"""Network adversary: the §III attacker's powers over the untrusted network.

"An adversary can control the entire software stack outside the enclave
(including the network stack, i.e., they can drop, delay, or manipulate
network traffic)."  The adversary interposes on every routed frame and
returns a list of ``(frame_or_None, extra_delay)`` verdicts — ``None``
drops, several entries duplicate, a modified frame models tampering.

Rules are deliberately programmable so tests can script precise attacks
(e.g. "replay the 3rd prepare message").
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..sim.rng import SeededRng
from .simnet import Frame

__all__ = ["Verdict", "NetworkAdversary", "ENUMERATED_DELAY"]

Verdict = List[Tuple[Optional[Frame], float]]
Rule = Callable[[Frame], Optional[Verdict]]

#: Extra delay applied by the enumerated "delay" action.  Small enough to
#: stay well under every protocol timeout (the tightest is the 50 ms
#: counter round timeout) yet large enough to reorder a frame behind any
#: same-instant traffic — which is the only distinction that matters to a
#: schedule explorer.
ENUMERATED_DELAY = 5e-4


def _passthrough(frame: Frame) -> Verdict:
    return [(frame, 0.0)]


class NetworkAdversary:
    """Composable attack rules applied to frames in flight."""

    def __init__(self, rng: Optional[SeededRng] = None):
        self.rng = rng or SeededRng(0, "adversary")
        self._rules: List[Rule] = []
        self.tampered = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def add_rule(self, rule: Rule) -> None:
        """Install a rule; the first rule returning a verdict wins."""
        self._rules.append(rule)

    def intercept(self, frame: Frame) -> Verdict:
        for rule in self._rules:
            verdict = rule(frame)
            if verdict is not None:
                return verdict
        return _passthrough(frame)

    # -- enumerated actions (model-checker interface) ----------------------
    def enumerate_actions(
        self, frame: Frame, delay: float = ENUMERATED_DELAY
    ) -> List[Tuple[str, Verdict]]:
        """Deterministic, ordered set of single-frame moves for ``frame``.

        Returns ``(name, verdict)`` pairs; ``deliver`` is always first so
        a schedule explorer can treat index 0 as "no perturbation".  The
        verdicts are fresh lists each call — callers may consume them.
        """
        return [
            ("deliver", [(frame, 0.0)]),
            ("drop", [(None, 0.0)]),
            ("duplicate", [(frame, 0.0), (frame, 0.0)]),
            ("delay", [(frame, delay)]),
        ]

    def apply_action(
        self, name: str, frame: Frame, delay: float = ENUMERATED_DELAY
    ) -> Verdict:
        """Apply one enumerated action by name, updating attack counters."""
        for action, verdict in self.enumerate_actions(frame, delay):
            if action != name:
                continue
            if name == "drop":
                self.dropped += 1
            elif name == "duplicate":
                self.duplicated += 1
            elif name == "delay":
                self.delayed += 1
            return verdict
        raise ValueError("unknown adversary action %r" % (name,))

    # -- canned attacks ----------------------------------------------------
    def drop_matching(self, predicate: Callable[[Frame], bool]) -> None:
        """Silently drop every frame the predicate selects."""

        def rule(frame: Frame) -> Optional[Verdict]:
            if predicate(frame):
                self.dropped += 1
                return [(None, 0.0)]
            return None

        self.add_rule(rule)

    def duplicate_matching(self, predicate: Callable[[Frame], bool]) -> None:
        """Deliver matching frames twice (replay within a connection)."""

        def rule(frame: Frame) -> Optional[Verdict]:
            if predicate(frame):
                self.duplicated += 1
                return [(frame, 0.0), (frame, 0.0)]
            return None

        self.add_rule(rule)

    def delay_matching(
        self, predicate: Callable[[Frame], bool], delay: float
    ) -> None:
        """Hold matching frames back by ``delay`` seconds."""

        def rule(frame: Frame) -> Optional[Verdict]:
            if predicate(frame):
                self.delayed += 1
                return [(frame, delay)]
            return None

        self.add_rule(rule)

    def tamper_matching(
        self,
        predicate: Callable[[Frame], bool],
        mutate: Callable[[Frame], Frame],
    ) -> None:
        """Apply ``mutate`` to matching frames (bit flips, payload swaps)."""

        def rule(frame: Frame) -> Optional[Verdict]:
            if predicate(frame):
                self.tampered += 1
                return [(mutate(frame), 0.0)]
            return None

        self.add_rule(rule)

    def drop_randomly(self, probability: float) -> None:
        """Drop each frame independently with the given probability."""

        def rule(frame: Frame) -> Optional[Verdict]:
            if self.rng.random() < probability:
                self.dropped += 1
                return [(None, 0.0)]
            return None

        self.add_rule(rule)


def flip_payload_byte(frame: Frame, offset: int = 0) -> Frame:
    """Helper mutation: flip one byte of a bytes payload."""
    payload = frame.payload
    if isinstance(payload, (bytes, bytearray)) and payload:
        mutated = bytearray(payload)
        mutated[offset % len(mutated)] ^= 0x01
        frame.payload = bytes(mutated)
    return frame
