"""Simulated network fabric: NICs, links, frames, adversary interposition.

The testbed (§VIII-A) connects Treaty nodes over a 40 GbE QSFP+ switch
and clients over a secondary 1 Gb/s NIC.  A :class:`Fabric` routes
messages between :class:`Nic` endpoints; each NIC serializes its egress
at its link bandwidth and then the message propagates to the destination
inbox.  Everything an adversary may do to the untrusted network — drop,
delay, reorder, duplicate, tamper (§III) — is implemented by installing
an :class:`~repro.net.adversary.NetworkAdversary` on the fabric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from ..errors import NetworkError
from ..obs.registry import MetricsRegistry
from ..sim.core import Event, Simulator
from ..sim.sync import Resource, Store

__all__ = ["Frame", "Nic", "Fabric"]


@dataclass
class Frame:
    """One message in flight (sized for cost modelling).

    ``payload`` is the application object; ``wire_bytes`` is what the link
    serializes (header + payload + any crypto framing).
    """

    src: str
    dst: str
    wire_bytes: int
    payload: Any
    kind: str = "msg"  # "msg" for datagram-like, "stream" for TCP-like
    meta: Dict[str, Any] = field(default_factory=dict)


class Nic:
    """A network endpoint with an egress link and an inbox."""

    def __init__(
        self,
        fabric: "Fabric",
        address: str,
        bandwidth: float,
        propagation: float,
    ):
        self.fabric = fabric
        self.address = address
        self.bandwidth = bandwidth
        self.propagation = propagation
        self.inbox: Store = Store(fabric.sim)
        self._egress = Resource(fabric.sim, capacity=1)
        self.tx_bytes = 0
        self.rx_bytes = 0
        #: per-NIC frame counters; benchmarks difference the cluster
        #: NICs over a run to pin "zero coordinator rounds" claims.
        self.tx_frames = 0
        self.rx_frames = 0

    def transmit(self, frame: Frame) -> Generator[Event, Any, None]:
        """Serialize ``frame`` onto the link, then hand it to the fabric.

        The caller (a fiber) blocks for the serialization time — wire
        occupancy is what saturates links in Figure 8 — but not for the
        propagation delay.
        """
        yield self._egress.request()
        try:
            yield self.fabric.sim.timeout(frame.wire_bytes / self.bandwidth)
        finally:
            self._egress.release()
        if self.fabric._nics.get(self.address) is not self:
            # Fail-stop: this NIC was detached (node crash).  Fibers of
            # the crashed node keep running until they block forever,
            # but nothing they transmit may reach the network — an
            # identity check, so a recovered node's *fresh* NIC is
            # unaffected while stale pre-crash NICs stay dead.
            self.fabric.dropped_frames += 1
            return
        self.tx_bytes += frame.wire_bytes
        self.tx_frames += 1
        self.fabric.tx_bytes_total += frame.wire_bytes
        self.fabric.route(frame, self.propagation)

    def receive(self) -> Event:
        """Event that fires with the next inbound frame."""
        return self.inbox.get()

    def _deliver(self, frame: Frame) -> None:
        self.rx_bytes += frame.wire_bytes
        self.rx_frames += 1
        self.inbox.put(frame)


class Fabric:
    """The switch connecting every NIC; owns routing and the adversary hook."""

    def __init__(self, sim: Simulator, mtu: int = 1460):
        self.sim = sim
        self.mtu = mtu
        self._nics: Dict[str, Nic] = {}
        self.adversary: Optional[Any] = None  # NetworkAdversary, if installed
        self.delivered_frames = 0
        self.dropped_frames = 0
        #: cumulative bytes transmitted by every NIC ever attached; unlike
        #: summing per-NIC counters, a detached (crashed) NIC's history
        #: stays in the metric.
        self.tx_bytes_total = 0
        self._detach_listeners: List[Callable[[str], None]] = []
        self.metrics = MetricsRegistry("fabric")
        self.metrics.probe("net.delivered_frames",
                           lambda: self.delivered_frames)
        self.metrics.probe("net.dropped_frames", lambda: self.dropped_frames)
        self.metrics.probe("net.tx_bytes", lambda: self.tx_bytes_total)

    def attach(
        self, address: str, bandwidth: float, propagation: float
    ) -> Nic:
        """Create and register a NIC for ``address``."""
        if address in self._nics:
            raise NetworkError("address %r already attached" % address)
        nic = Nic(self, address, bandwidth, propagation)
        self._nics[address] = nic
        return nic

    def on_detach(self, listener: Callable[[str], None]) -> None:
        """Call ``listener(address)`` whenever a NIC is detached.

        Endpoints use this to fail-fast continuations of requests whose
        destination crashed, instead of leaking them forever.
        """
        self._detach_listeners.append(listener)

    def detach(self, address: str) -> None:
        """Remove a NIC (node crash); in-flight frames to it are dropped."""
        if self._nics.pop(address, None) is not None:
            for listener in list(self._detach_listeners):
                listener(address)

    def nic(self, address: str) -> Nic:
        try:
            return self._nics[address]
        except KeyError:
            raise NetworkError("no NIC attached at %r" % address) from None

    def frames_for(self, nbytes: int) -> int:
        """Number of MTU-sized frames an ``nbytes`` message occupies."""
        return max(1, math.ceil(nbytes / self.mtu))

    def route(self, frame: Frame, propagation: float) -> None:
        """Move a frame toward its destination, adversary permitting."""
        chooser = self.sim.chooser
        if chooser is not None:
            # Controlled scheduler (model checker): it subsumes the
            # adversary — the enumerated choice decides what happens to
            # the frame, so a separately installed adversary is ignored.
            verdicts = chooser.intercept_frame(frame)
        elif self.adversary is not None:
            verdicts = self.adversary.intercept(frame)
            # The adversary is installed per-test, after cluster
            # construction — look the tracer up lazily rather than
            # caching it.
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.event(
                    "net", "adversary_verdict",
                    src=frame.src,
                    dst=frame.dst,
                    copies=sum(1 for f, _ in verdicts if f is not None),
                    dropped=sum(1 for f, _ in verdicts if f is None),
                )
        else:
            verdicts = [(frame, 0.0)]
        for out_frame, extra_delay in verdicts:
            if out_frame is None:
                self.dropped_frames += 1
                continue
            self._schedule_delivery(out_frame, propagation + extra_delay)

    def _schedule_delivery(self, frame: Frame, delay: float) -> None:
        chooser = self.sim.chooser
        if chooser is not None:
            chooser.frame_sent(frame)

        def deliver():
            yield self.sim.timeout(delay)
            if chooser is not None:
                chooser.frame_delivered(frame)
            destination = self._nics.get(frame.dst)
            if destination is None:
                self.dropped_frames += 1
                return
            self.delivered_frames += 1
            destination._deliver(frame)

        self.sim.process(deliver(), name="deliver->%s" % frame.dst)
