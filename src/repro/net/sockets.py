"""Kernel-socket network stacks: the TCP/UDP baselines of Figure 8.

Conventional applications reach the network through syscalls; inside
SGX those syscalls additionally cross the enclave boundary (two extra
shielded data copies even with SCONE's asynchronous syscalls, §IV-B#2).
This module models both the native and the SCONE socket paths so the
network benchmark can regenerate all iPerf baselines:

* **TCP** — reliable stream; per-send syscall plus kernel per-packet
  work discounted by segmentation offload.
* **UDP** — per-datagram kernel work, no offload, and datagrams larger
  than the MTU are fragmented; under load fragments are lost and the
  datagram is discarded (the paper: "for large messages (> MTU), UDP
  throughput equals zero").
"""

from __future__ import annotations

from typing import Any, Generator

from ..sim.core import Event
from ..tee.runtime import NodeRuntime
from .simnet import Fabric, Frame, Nic

__all__ = ["SocketStack"]

Gen = Generator[Event, Any, Any]

#: Above this many fragments a UDP datagram is considered lost under
#: sustained load (any one lost fragment discards the whole datagram).
_UDP_MAX_FRAGMENTS = 1


class SocketStack:
    """A kernel socket endpoint (TCP or UDP) bound to a NIC."""

    def __init__(
        self,
        runtime: NodeRuntime,
        fabric: Fabric,
        nic: Nic,
        protocol: str = "tcp",
    ):
        if protocol not in ("tcp", "udp"):
            raise ValueError("protocol must be 'tcp' or 'udp'")
        self.runtime = runtime
        self.fabric = fabric
        self.nic = nic
        self.protocol = protocol
        self.sent_messages = 0
        self.dropped_messages = 0

    # -- cost helpers ------------------------------------------------------
    def _kernel_cost(self, nbytes: int) -> float:
        """Kernel network-stack CPU per send/recv call."""
        frames = self.fabric.frames_for(nbytes)
        costs = self.runtime.costs
        per_packet = costs.kernel_packet_cost
        if self.protocol == "tcp":
            per_packet *= costs.tcp_offload_factor
        else:
            per_packet *= costs.udp_packet_factor
        return frames * per_packet

    # -- data path -------------------------------------------------------------
    def send(self, dst: str, nbytes: int, payload: Any = None) -> Gen:
        """One ``send()``/``sendto()`` call transferring ``nbytes``."""
        self.sent_messages += 1
        # The syscall itself (native fast path, or SCONE async syscall
        # with two shielded copies of the payload).
        yield from self.runtime.syscall(nbytes)
        yield from self.runtime.compute(self._kernel_cost(nbytes))

        fragments = self.fabric.frames_for(nbytes)
        if self.protocol == "udp" and fragments > _UDP_MAX_FRAGMENTS:
            # Fragmented datagram: lost under sustained load.  The wire
            # time is still spent (the fragments were transmitted).
            self.dropped_messages += 1
            yield self.runtime.sim.timeout(nbytes / self.nic.bandwidth)
            return False

        frame = Frame(
            src=self.nic.address,
            dst=dst,
            wire_bytes=nbytes,
            payload=payload,
            kind=self.protocol,
        )
        yield from self.nic.transmit(frame)
        return True

    def recv(self) -> Gen:
        """One ``recv()`` call: blocks for a message, charges kernel costs.

        Returns the received :class:`~repro.net.simnet.Frame`.
        """
        frame = yield self.nic.receive()
        yield from self.runtime.syscall(frame.wire_bytes)
        yield from self.runtime.compute(self._kernel_cost(frame.wire_bytes))
        return frame
