"""Networking substrate: fabric, secure messages, eRPC, sockets, adversary."""

from .adversary import NetworkAdversary, flip_payload_byte
from .erpc import ErpcEndpoint, RpcReply
from .message import MsgType, ReplayGuard, TxMessage, wire_size
from .secure_rpc import SecureRpc
from .simnet import Fabric, Frame, Nic
from .sockets import SocketStack

__all__ = [
    "ErpcEndpoint",
    "Fabric",
    "Frame",
    "MsgType",
    "NetworkAdversary",
    "Nic",
    "ReplayGuard",
    "RpcReply",
    "SecureRpc",
    "SocketStack",
    "TxMessage",
    "flip_payload_byte",
    "wire_size",
]
